/**
 * @file
 * Ablation D: read-pipeline depth on the high-bandwidth path.
 *
 * §3.3: "LFS may have several pipeline processes issuing read
 * requests, allowing disk reads to get ahead of network send
 * operations for efficient network transfers."  Depth 1 serializes
 * disk and network; deeper windows overlap them until the array
 * itself is the bottleneck.
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
run(unsigned depth)
{
    sim::EventQueue eq;
    auto cfg = bench::hwConfig();
    cfg.pipelineDepth = depth;
    server::Raid2Server srv(eq, "srv", cfg);

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 1;
    wcfg.requestBytes = 4 * sim::MB;
    wcfg.regionBytes = 2ull * 1024 * 1024 * 1024;
    wcfg.alignBytes = cal::lfsStripeUnitBytes;
    wcfg.totalOps = 24;
    wcfg.warmupOps = 2;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.hwRead(off, len, std::move(done));
    };
    return workload::ClosedLoopRunner::run(eq, wcfg, op).throughputMBs();
}

} // namespace

int
main()
{
    bench::printHeader("Ablation D: pipeline depth on the high-"
                       "bandwidth read path",
                       "paper §3.3: pipelining overlaps disk reads with "
                       "network sends");

    const std::vector<unsigned> depths = {1, 2, 3, 4, 6, 8};
    const auto rows = bench::runSweepParallel(
        depths.size(), [&](std::size_t i) -> std::vector<double> {
            return {static_cast<double>(depths[i]), run(depths[i])};
        });

    bench::printSeriesHeader({"depth", "read MB/s"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Expected shape: depth 1 pays disk+network in "
                "series; throughput grows\n  with depth and flattens "
                "once the disk array is saturated.\n");
    return 0;
}
