/**
 * @file
 * Ablation E: RAID Level 3 vs Level 5 (the HPDS comparison, §4.2).
 *
 * "The main difference between HPDS and RAID-II is that HPDS uses a
 * bit-interleaved, or RAID Level 3, disk array, whereas RAID-II uses a
 * flexible crossbar interconnect that can support many different RAID
 * architectures.  In particular, RAID-II supports RAID Level 5, which
 * can execute several small, independent I/Os in parallel.  RAID Level
 * 3, on the other hand, supports only one small I/O at a time."
 */

#include <functional>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

struct LevelResult
{
    double small_iops;
    double large_mbs;
};

LevelResult
run(raid::RaidLevel level)
{
    LevelResult res{};

    // Small concurrent reads: 8 processes x 8 KB.
    {
        sim::EventQueue eq;
        auto cfg = bench::hwConfig();
        cfg.layout.level = level;
        server::Raid2Server srv(eq, "srv", cfg);
        workload::ClosedLoopRunner::Config w;
        w.processes = 8;
        w.requestBytes = 8 * sim::KiB;
        w.regionBytes = 1ull << 30;
        w.totalOps = 400;
        w.warmupOps = 40;
        auto r = workload::ClosedLoopRunner::run(
            eq, w,
            [&](std::uint64_t off, std::uint64_t len,
                std::function<void()> done) {
                srv.array().read(off, len, std::move(done));
            });
        res.small_iops = r.opsPerSec();
    }

    // Large sequential reads: both levels use all spindles.
    {
        sim::EventQueue eq;
        auto cfg = bench::hwConfig();
        cfg.layout.level = level;
        server::Raid2Server srv(eq, "srv", cfg);
        workload::ClosedLoopRunner::Config w;
        w.processes = 2;
        w.requestBytes = 2 * sim::MB;
        w.regionBytes = 2ull << 30;
        w.sequential = true;
        w.sharedCursor = true;
        w.totalOps = 32;
        w.warmupOps = 4;
        auto r = workload::ClosedLoopRunner::run(
            eq, w,
            [&](std::uint64_t off, std::uint64_t len,
                std::function<void()> done) {
                srv.array().read(off, len, std::move(done));
            });
        res.large_mbs = r.throughputMBs();
    }
    return res;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation E: RAID Level 3 vs Level 5 (§4.2, the "
                       "HPDS comparison)",
                       "paper: Level 3 supports only one small I/O at "
                       "a time; Level 5 runs them in parallel");

    const auto r3 = run(raid::RaidLevel::Raid3);
    const auto r5 = run(raid::RaidLevel::Raid5);

    std::printf("  %-10s %20s %20s\n", "level", "8 KB reads (ops/s)",
                "2 MB seq (MB/s)");
    std::printf("  %-10s %20.1f %20.2f\n", "RAID-3", r3.small_iops,
                r3.large_mbs);
    std::printf("  %-10s %20.1f %20.2f\n", "RAID-5", r5.small_iops,
                r5.large_mbs);
    bench::printRow("Level 5 small-I/O advantage",
                    r5.small_iops / r3.small_iops, "x", ">> 1");
    std::printf("\n  Expected shape: comparable large-transfer "
                "bandwidth, but Level 3\n  serializes small requests "
                "across all spindles while Level 5 serves\n  them from "
                "independent disks.\n");
    return 0;
}
