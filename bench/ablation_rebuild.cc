/**
 * @file
 * Ablation F: degraded service and on-line reconstruction.
 *
 * §2.3 defers reliability policy ("Techniques for maximizing
 * reliability are beyond the scope of this paper"), but the mechanism
 * matters for any RAID-5 deployment: how much does a dead disk cost
 * while degraded, and how does the rebuild window trade rebuild time
 * against foreground interference?
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "raid/reconstruct.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
randomReadMBs(sim::EventQueue &eq, raid::SimArray &array,
              std::uint64_t ops)
{
    workload::ClosedLoopRunner::Config w;
    w.processes = 2;
    w.requestBytes = 512 * sim::KiB;
    w.regionBytes = 1ull << 30;
    w.totalOps = ops;
    w.warmupOps = ops / 10;
    auto r = workload::ClosedLoopRunner::run(
        eq, w,
        [&](std::uint64_t off, std::uint64_t len,
            std::function<void()> done) {
            array.read(off, len, std::move(done));
        });
    return r.throughputMBs();
}

} // namespace

int
main()
{
    bench::printHeader("Ablation F: degraded reads and rebuild-window "
                       "sweep",
                       "mechanism study; the paper defers the policy "
                       "(§2.3)");

    // Healthy vs degraded service level.
    {
        sim::EventQueue eq;
        auto cfg = bench::lfsConfig();
        cfg.withFs = false;
        server::Raid2Server srv(eq, "srv", cfg);
        const double healthy = randomReadMBs(eq, srv.array(), 100);
        srv.array().failDisk(3);
        const double degraded = randomReadMBs(eq, srv.array(), 100);
        bench::printRow("Healthy 512 KB random reads", healthy, "MB/s",
                        "-");
        bench::printRow("Degraded (1 of 16 disks dead)", degraded,
                        "MB/s", "slower: survivor fan-out");
    }

    // Rebuild time vs window (concurrent stripes in flight); one
    // independent simulation per window, swept across the pool.
    const std::vector<unsigned> windows = {1, 2, 4, 8, 16};
    const auto rows = bench::runSweepParallel(
        windows.size(), [&](std::size_t i) -> std::vector<double> {
            const unsigned window = windows[i];
            sim::EventQueue eq;
            auto cfg = bench::lfsConfig();
            cfg.withFs = false;
            server::Raid2Server srv(eq, "srv", cfg);
            srv.array().failDisk(3);
            raid::RebuildJob job(eq, srv.array(), 3, window);
            bool done = false;
            job.start([&] { done = true; });
            eq.runUntilDone([&] { return done; });
            // The job tracks its own wall-clock and rate.
            const double minutes = job.durationMs() / 60000.0;
            const double sps = job.stripesPerSec();
            return {static_cast<double>(window), minutes, sps};
        });

    std::printf("\n");
    bench::printSeriesHeader({"window", "rebuild min", "stripes/s"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Expected shape: degraded reads lose ~30-40%%; "
                "rebuild time drops\n  steeply from window 1 and "
                "flattens once the datapath saturates.\n");
    return 0;
}
