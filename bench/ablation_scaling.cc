/**
 * @file
 * Ablation B: scaling by adding XBUS boards (§2.1.2).
 *
 * "The bandwidth of the RAID-II storage server can be scaled by adding
 * XBUS controller boards to a host workstation. ... Eventually, adding
 * XBUS controllers to a host workstation will saturate the host's CPU,
 * since the host manages all disk and network transfers."
 *
 * Each board serves 256 KB reads; every request costs host CPU for
 * command processing.  Aggregate bandwidth grows linearly until the
 * host CPU saturates.
 */

#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "host/host_workstation.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace raid2;

namespace {

struct ScalePoint
{
    double total_mbs;
    double host_util;
};

ScalePoint
run(unsigned boards)
{
    sim::EventQueue eq;
    host::HostWorkstation host(eq, "host");

    std::vector<std::unique_ptr<server::Raid2Server>> servers;
    for (unsigned b = 0; b < boards; ++b) {
        servers.push_back(std::make_unique<server::Raid2Server>(
            eq, "srv" + std::to_string(b), bench::hwConfig()));
    }

    const std::uint64_t req = 256 * sim::KB;
    const std::uint64_t ops_per_board = 300;
    const unsigned procs_per_board = 4;
    sim::Random rng(11);
    std::uint64_t done_ops = 0;
    const std::uint64_t total_ops = ops_per_board * boards;
    const std::uint64_t region = 1ull * 1024 * 1024 * 1024;

    std::function<void(unsigned)> issue = [&](unsigned b) {
        if (done_ops >= total_ops)
            return;
        const std::uint64_t off =
            rng.below(region / req) * req;
        // The host sets up every transfer (§2.1.2), then the board
        // moves the data without it.
        host.chargeIoCompletion(false, [&, b, off] {
            servers[b]->hwRead(off, req, [&, b] {
                ++done_ops;
                issue(b);
            });
        });
    };
    for (unsigned b = 0; b < boards; ++b)
        for (unsigned p = 0; p < procs_per_board; ++p)
            issue(b);
    eq.runUntilDone([&] { return done_ops >= total_ops; });

    ScalePoint out;
    out.total_mbs = sim::mbPerSec(done_ops * req, eq.now());
    out.host_util = host.cpu().utilization(eq.now());
    return out;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation B: bandwidth vs number of XBUS boards",
                       "paper §2.1.2: scales until the host CPU "
                       "saturates");

    const std::vector<unsigned> boards = {1, 2, 4, 6, 8, 10, 12, 14};
    const auto rows = bench::runSweepParallel(
        boards.size(), [&](std::size_t i) -> std::vector<double> {
            const auto pt = run(boards[i]);
            return {static_cast<double>(boards[i]), pt.total_mbs,
                    100.0 * pt.host_util};
        });

    bench::printSeriesHeader({"boards", "MB/s", "host util %"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Expected shape: near-linear growth while host CPU "
                "utilization is low,\n  flattening as it approaches "
                "100%%.\n");
    return 0;
}
