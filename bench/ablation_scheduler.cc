/**
 * @file
 * Ablation G: disk command scheduling.
 *
 * The prototype's driver queued FCFS.  With deep per-disk queues (many
 * concurrent clients), a C-SCAN elevator cuts seek time; with shallow
 * queues there is nothing to reorder.  This quantifies what RAID-II
 * left on the table for small-I/O server workloads (Table 2's regime).
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
run(bool elevator, unsigned processes)
{
    sim::EventQueue eq;
    auto cfg = bench::hwConfig();
    cfg.topo.elevatorScheduling = elevator;
    server::Raid2Server srv(eq, "srv", cfg);

    workload::ClosedLoopRunner::Config w;
    w.processes = processes;
    w.requestBytes = 8 * sim::KiB;
    w.regionBytes = 2ull << 30;
    w.totalOps = 60 * processes;
    w.warmupOps = 8 * processes;
    auto res = workload::ClosedLoopRunner::run(
        eq, w,
        [&](std::uint64_t off, std::uint64_t len,
            std::function<void()> done) {
            srv.array().read(off, len, std::move(done));
        });
    return res.opsPerSec();
}

} // namespace

int
main()
{
    bench::printHeader("Ablation G: FCFS vs C-SCAN elevator disk "
                       "scheduling",
                       "the prototype queued FCFS; reordering pays "
                       "only with deep queues");

    const std::vector<unsigned> clients = {1, 8, 32, 64, 128, 256};
    const auto rows = bench::runSweepParallel(
        clients.size(), [&](std::size_t i) -> std::vector<double> {
            const unsigned procs = clients[i];
            const double fcfs = run(false, procs);
            const double scan = run(true, procs);
            return {static_cast<double>(procs), fcfs, scan,
                    100.0 * (scan / fcfs - 1.0)};
        });

    bench::printSeriesHeader({"clients", "FCFS ops/s", "SCAN ops/s",
                              "gain %"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Expected shape: no difference at one outstanding "
                "request; the elevator\n  pulls ahead as per-disk "
                "queues deepen.\n");
    return 0;
}
