/**
 * @file
 * Ablation C: LFS segment size.
 *
 * The paper fixes segments at 960 KB (§3.4).  This sweep shows why a
 * segment should span roughly a full stripe or more: small segments
 * turn the log's flushes back into partial-stripe RAID-5 writes
 * (read-modify-write parity traffic), while very large segments only
 * add buffering without much additional bandwidth.
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

struct SegPoint
{
    double write_mbs;
    double rmw_fraction;
};

SegPoint
run(std::uint32_t seg_blocks)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    cfg.fsParams.segBlocks = seg_blocks;
    server::Raid2Server srv(eq, "srv", cfg);
    const auto ino = srv.createFile("/f");

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 1;
    wcfg.requestBytes = 256 * sim::KB;
    wcfg.regionBytes = 64 * sim::MB;
    wcfg.totalOps = 256;
    wcfg.warmupOps = 16;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.fileWrite(ino, off, len, std::move(done));
    };
    const auto res = workload::ClosedLoopRunner::run(eq, wcfg, op);

    SegPoint out;
    out.write_mbs = res.throughputMBs();
    const auto &arr = srv.array();
    const double stripes =
        static_cast<double>(arr.rmwStripes() +
                            arr.reconstructWriteStripes() +
                            arr.fullStripeWrites());
    out.rmw_fraction =
        stripes > 0 ? (arr.rmwStripes() +
                       arr.reconstructWriteStripes()) / stripes
                    : 0.0;
    return out;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation C: LFS segment size sweep",
                       "paper: 960 KB segments over a 16-disk, 64 KB "
                       "stripe-unit array (stripe = 960 KB)");

    const std::vector<std::uint32_t> segs = {30, 60, 120, 240, 480};
    const auto rows = bench::runSweepParallel(
        segs.size(), [&](std::size_t i) -> std::vector<double> {
            const auto pt = run(segs[i]);
            return {segs[i] * 4.0, pt.write_mbs,
                    100.0 * pt.rmw_fraction};
        });

    bench::printSeriesHeader({"seg KB", "write MB/s", "partial %"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Expected shape: throughput rises with segment size "
                "as flushes become\n  full-stripe writes; the paper's "
                "960 KB (= one full 15-unit stripe of the\n  16-disk "
                "array) sits at the knee.\n");
    return 0;
}
