/**
 * @file
 * Ablation A: the small-write problem — RAID level x file system.
 *
 * §3.1: "disk arrays that use large block interleaving (Level 5 RAID)
 * perform poorly on small write operations because each small write
 * requires four disk accesses ... LFS eliminates small writes,
 * grouping them into efficient large, sequential write operations."
 *
 * Three views of the same effect:
 *  1. timed per-level small-write cost on the raw array (RAID 0/1/5);
 *  2. device writes per user write, FFS (update-in-place) vs LFS;
 *  3. timed throughput of 4 KB random writes, FFS-on-RAID-5 vs
 *     LFS-on-RAID-5.
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "ffs/ffs.hh"
#include "fs/mem_block_device.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
rawLevelWriteIops(raid::RaidLevel level)
{
    sim::EventQueue eq;
    auto cfg = bench::hwConfig();
    cfg.layout.level = level;
    server::Raid2Server srv(eq, "srv", cfg);

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 8;
    wcfg.requestBytes = 4096;
    wcfg.regionBytes = 1ull * 1024 * 1024 * 1024;
    wcfg.totalOps = 600;
    wcfg.warmupOps = 50;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.array().write(off, len, std::move(done));
    };
    return workload::ClosedLoopRunner::run(eq, wcfg, op).opsPerSec();
}

struct FsCost
{
    double device_writes_per_op;
    double mbs;
};

FsCost
ffsCost()
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    cfg.withFs = false;
    server::Raid2Server srv(eq, "srv", cfg);

    fs::MemBlockDevice mem(4096, 64ull * 1024 * 1024 / 4096);
    fs::HookBlockDevice hook(mem);
    ffs::Ffs::format(hook);
    ffs::Ffs fs(hook);
    const auto ino = fs.create("/f");
    // Preallocate a 2 MB file (the FFS baseline caps at direct +
    // single-indirect) so the steady state is pure overwrites.
    std::vector<std::uint8_t> prefill(1 * sim::MB, 1);
    for (int i = 0; i < 2; ++i)
        fs.write(ino, std::uint64_t(i) * prefill.size(),
                 {prefill.data(), prefill.size()});

    std::vector<std::pair<std::uint64_t, std::uint64_t>> writes;
    hook.setHook([&](std::uint64_t off, std::uint64_t len, bool is_write) {
        if (is_write)
            writes.emplace_back(off, len);
    });

    sim::Random rng(3);
    const int ops = 400;
    std::uint64_t device_writes = 0;
    int done = 0;
    std::vector<std::uint8_t> data(4096, 7);
    std::function<void()> issue = [&] {
        if (done == ops)
            return;
        writes.clear();
        const std::uint64_t off = rng.below(2 * 256) * 4096;
        fs.write(ino, off, {data.data(), data.size()});
        device_writes += writes.size();
        // Mirror each in-place block write into the timed RAID-5
        // array (each becomes a read-modify-write there).
        auto remaining = std::make_shared<std::size_t>(writes.size());
        for (auto [woff, wlen] : writes) {
            srv.array().write(woff, wlen, [&, remaining] {
                if (--*remaining == 0) {
                    ++done;
                    issue();
                }
            });
        }
    };
    issue();
    eq.runUntilDone([&] { return done >= ops; });

    FsCost out;
    out.device_writes_per_op =
        static_cast<double>(device_writes) / ops;
    out.mbs = sim::mbPerSec(std::uint64_t(ops) * 4096, eq.now());
    return out;
}

FsCost
lfsCost()
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    server::Raid2Server srv(eq, "srv", cfg);
    const auto ino = srv.createFile("/f");

    const std::uint64_t before_segments = srv.segmentFlushes();
    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 1;
    wcfg.requestBytes = 4096;
    wcfg.regionBytes = 32 * sim::MB;
    wcfg.totalOps = 400;
    wcfg.warmupOps = 20;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.fileWrite(ino, off, len, std::move(done));
    };
    const auto res = workload::ClosedLoopRunner::run(eq, wcfg, op);

    FsCost out;
    out.device_writes_per_op =
        static_cast<double>(srv.segmentFlushes() - before_segments) /
        static_cast<double>(res.ops);
    out.mbs = res.throughputMBs();
    return out;
}

} // namespace

int
main()
{
    bench::printHeader("Ablation A: the small-write problem",
                       "paper §3.1: Level 5 small writes need 4 disk "
                       "accesses; LFS groups them");

    std::printf("  Raw array, 4 KB random writes:\n");
    bench::printRow("RAID-0 write rate", rawLevelWriteIops(
                        raid::RaidLevel::Raid0), "ops/s", "1 access/op");
    bench::printRow("RAID-1 write rate", rawLevelWriteIops(
                        raid::RaidLevel::Raid1), "ops/s", "2 accesses/op");
    bench::printRow("RAID-5 write rate", rawLevelWriteIops(
                        raid::RaidLevel::Raid5), "ops/s",
                    "4 accesses/op (RMW)");

    std::printf("\n  4 KB random overwrites through a file system on "
                "RAID-5:\n");
    const auto ffs = ffsCost();
    const auto lfs = lfsCost();
    bench::printRow("FFS device writes per op", ffs.device_writes_per_op,
                    "writes", ">= 1 in place");
    bench::printRow("FFS throughput", ffs.mbs, "MB/s", "low");
    bench::printRow("LFS segment flushes per op",
                    lfs.device_writes_per_op, "flushes",
                    "<< 1 (batched)");
    bench::printRow("LFS throughput", lfs.mbs, "MB/s",
                    "much higher than FFS");

    std::printf("\n  Expected shape: RAID-5 raw small writes are the "
                "slowest level; LFS\n  recovers the loss by turning "
                "them into segment-sized sequential writes.\n");
    return 0;
}
