/**
 * @file
 * Online backup stream sweep: window depth x segment size x link
 * drop rate.
 *
 * RAID-II's high-bandwidth mission includes backup: the array is the
 * bandwidth source, and the HIPPI network is the pipe (§1, §4.2).  The
 * snap::BackupEngine streams pinned snapshot segments from the source
 * array over HIPPI into a second server, with a bounded in-flight
 * window drawn from the XBUS buffer pool and deterministic
 * retry/backoff when the link drops.  This bench sweeps the three
 * knobs that shape that stream:
 *
 *  - window depth (concurrent in-flight segments): how much array and
 *    link parallelism the stream can exploit;
 *  - LFS segment size (the transfer unit): per-segment overhead vs
 *    pipelining granularity;
 *  - link outage duty cycle (injected via fault::FaultPlan): how
 *    gracefully throughput degrades when the link misbehaves.
 *
 * Every row is pure simulated time and simulated work counters, so the
 * sweep is bit-identical no matter how many worker threads
 * RAID2_BENCH_THREADS spreads it over — that's what the CI determinism
 * guard cmp's.  RAID2_BACKUP_QUICK=1 shrinks the sweep for smoke runs
 * (still deterministic).
 */

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_controller.hh"
#include "fault/fault_plan.hh"
#include "sim/event_queue.hh"
#include "sim/stats_registry.hh"
#include "snap/backup_engine.hh"
#include "snap/snapshot_manager.hh"

using namespace raid2;

namespace {

/** One sweep point. */
struct Point
{
    unsigned window;
    std::uint32_t segBlocks; // 4 KB blocks per LFS segment
    unsigned dropPct;        // link outage duty cycle, percent
};

constexpr std::uint64_t kFileBytes = 256 * 1024;
constexpr unsigned kFiles = 16; // 4 MB working set
/** Periodic outage pattern: every period, down for duty% of it. */
constexpr double kDropPeriodMs = 50.0;
/** Schedule outages out to here; runs end well before. */
constexpr double kDropHorizonMs = 4000.0;

bool
quickMode()
{
    const char *q = std::getenv("RAID2_BACKUP_QUICK");
    return q && q[0] && q[0] != '0';
}

server::Raid2Server::Config
serverConfig(std::uint32_t seg_blocks)
{
    server::Raid2Server::Config cfg;
    cfg.topo.disksPerString = 2;
    cfg.withFs = true;
    cfg.fsDeviceBytes = 64ull * 1024 * 1024;
    cfg.fsParams.segBlocks = seg_blocks;
    return cfg;
}

/**
 * Run one full-backup stream and report
 * {window, segKB, dropPct, elapsedMs, MB/s, segments, retries,
 *  deferred} — all derived from simulated time and counters.
 */
std::vector<double>
runPoint(const Point &p)
{
    sim::EventQueue eq;
    server::Raid2Server src(eq, "src", serverConfig(p.segBlocks));
    server::Raid2Server dst(eq, "dst", serverConfig(p.segBlocks));
    snap::SnapshotManager mgr(src);
    snap::BackupEngine::Config bcfg;
    bcfg.windowSegments = p.window;
    snap::BackupEngine eng(eq, src, dst, bcfg);

    std::vector<std::uint8_t> data(kFileBytes);
    for (unsigned i = 0; i < kFiles; ++i) {
        for (std::size_t j = 0; j < data.size(); ++j)
            data[j] = static_cast<std::uint8_t>(i * 131 + j * 7);
        const lfs::InodeNum ino =
            src.createFile("/f" + std::to_string(i));
        src.fs().write(ino, 0, {data.data(), data.size()});
    }
    mgr.create("bench");

    fault::FaultController ctl(eq, "faults",
                               {&src.array(), nullptr, &eng.channel()});
    if (p.dropPct > 0) {
        fault::FaultPlan plan;
        const double down_ms = kDropPeriodMs * p.dropPct / 100.0;
        for (double at = 1.0; at < kDropHorizonMs; at += kDropPeriodMs)
            plan.hippiLinkDrop(sim::msToTicks(at),
                               sim::msToTicks(down_ms));
        ctl.setPlan(plan);
        ctl.start();
    }

    const sim::Tick t0 = eq.now();
    bool done = false;
    eng.backupFull("bench", [&] { done = true; });
    eq.runUntilDone([&] { return done; });
    const double elapsed_ms = sim::ticksToMs(eq.now() - t0);
    const double mbs = elapsed_ms > 0
                           ? static_cast<double>(eng.bytesSent()) /
                                 (1024.0 * 1024.0) / (elapsed_ms / 1e3)
                           : 0;

    return {static_cast<double>(p.window),
            static_cast<double>(p.segBlocks) * 4096 / 1024,
            static_cast<double>(p.dropPct),
            elapsed_ms,
            mbs,
            static_cast<double>(eng.segmentsSent()),
            static_cast<double>(eng.retries()),
            static_cast<double>(eng.channel().deferredSends())};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("backup_stream", argc, argv);

    rep.header("Online backup stream: window x segment x drop rate",
               "backup over HIPPI to a second server (§1, §4.2); "
               "repo subsystem sweep, not a paper figure");
    std::printf("  4 MB snapshot working set, full backup stream, "
                "outage period %.0f ms\n\n",
                kDropPeriodMs);

    const std::vector<unsigned> windows =
        quickMode() ? std::vector<unsigned>{1, 4}
                    : std::vector<unsigned>{1, 2, 4, 8};
    const std::vector<std::uint32_t> segs =
        quickMode() ? std::vector<std::uint32_t>{240}
                    : std::vector<std::uint32_t>{64, 240};
    const std::vector<unsigned> drops =
        quickMode() ? std::vector<unsigned>{0, 30}
                    : std::vector<unsigned>{0, 10, 30};

    std::vector<Point> points;
    for (std::uint32_t sb : segs)
        for (unsigned d : drops)
            for (unsigned w : windows)
                points.push_back(Point{w, sb, d});

    rep.seriesHeader({"window", "seg KB", "drop %", "elapsed ms",
                      "MB/s", "segments", "retries", "deferred"});
    const auto rows = bench::runSweepParallel(
        points.size(),
        [&](std::size_t i) { return runPoint(points[i]); });
    for (const auto &row : rows)
        rep.seriesRow(row);

    // Registry snapshot from one instrumented stream (deterministic,
    // so the quick-mode JSON stays cmp-stable for the CI guard).
    {
        sim::EventQueue eq;
        server::Raid2Server src(eq, "src", serverConfig(240));
        server::Raid2Server dst(eq, "dst", serverConfig(240));
        snap::SnapshotManager mgr(src);
        snap::BackupEngine eng(eq, src, dst);
        std::vector<std::uint8_t> data(kFileBytes, 0x5a);
        for (unsigned i = 0; i < 4; ++i) {
            const lfs::InodeNum ino =
                src.createFile("/f" + std::to_string(i));
            src.fs().write(ino, 0, {data.data(), data.size()});
        }
        mgr.create("bench");
        sim::StatsRegistry reg;
        mgr.registerStats(reg, "snap");
        eng.registerStats(reg, "backup");
        bool done = false;
        eng.backupFull("bench", [&] { done = true; });
        eq.runUntilDone([&] { return done; });
        rep.snapshotRegistry(reg);
    }
    return 0;
}
