#include "bench_util.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/json.hh"

namespace raid2::bench {

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("====================================================="
                "=================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(%s)\n", paper_ref.c_str());
    std::printf("====================================================="
                "=================\n");
}

void
printRow(const std::string &name, double value, const std::string &unit,
         const std::string &paper)
{
    std::printf("  %-38s %8.2f %-10s paper: %s\n", name.c_str(), value,
                unit.c_str(), paper.c_str());
}

void
printSeriesHeader(const std::vector<std::string> &cols)
{
    std::printf("  ");
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
}

void
printSeriesRow(const std::vector<double> &vals)
{
    std::printf("  ");
    for (double v : vals)
        std::printf("%14.2f", v);
    std::printf("\n");
}

raid2::server::Raid2Server::Config
hwConfig()
{
    raid2::server::Raid2Server::Config cfg;
    cfg.layout.level = raid::RaidLevel::Raid5;
    cfg.layout.stripeUnitBytes = cal::lfsStripeUnitBytes; // 64 KB
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 3; // 24 disks (§2.2)
    cfg.topo.profile = &disk::ibm0661();
    cfg.withFs = false;
    // The hardware experiments keep the whole request's disk commands
    // in flight while HIPPI streams behind them.
    cfg.pipelineDepth = 8;
    return cfg;
}

raid2::server::Raid2Server::Config
lfsConfig()
{
    raid2::server::Raid2Server::Config cfg;
    cfg.layout.level = raid::RaidLevel::Raid5;
    cfg.layout.stripeUnitBytes = cal::lfsStripeUnitBytes;
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 2; // 16 disks (§3.4)
    cfg.topo.profile = &disk::ibm0661();
    cfg.withFs = true;
    // "several pipeline processes issuing read requests" (§3.3)
    cfg.pipelineDepth = 8;
    return cfg;
}

unsigned
benchThreads()
{
    if (const char *env = std::getenv("RAID2_BENCH_THREADS");
        env && *env) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<std::vector<double>>
runSweepParallel(std::size_t n,
                 const std::function<std::vector<double>(std::size_t)> &fn)
{
    std::vector<std::vector<double>> results(n);
    const std::size_t nthreads =
        std::min<std::size_t>(benchThreads(), n != 0 ? n : 1);
    if (nthreads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }
    // Work stealing off a shared counter: sweep points have wildly
    // different costs (a 20 MB LFS read vs a 16 KB one), so static
    // partitioning would idle most of the pool.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) {
        pool.emplace_back([&results, &next, &fn, n] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = fn(i);
            }
        });
    }
    for (auto &th : pool)
        th.join();
    return results;
}

// ---------------------------------------------------------------------
// Reporter
// ---------------------------------------------------------------------

Reporter::Reporter(std::string name, int argc, char **argv)
    : _name(std::move(name))
{
    if (const char *env = std::getenv("RAID2_BENCH_JSON");
        env && *env && std::strcmp(env, "0") != 0)
        _json = true;
    if (const char *env = std::getenv("RAID2_TRACE"); env && *env &&
        std::strcmp(env, "0") != 0)
        _tracePath = std::strcmp(env, "1") == 0
                         ? "TRACE_" + _name + ".json"
                         : env;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            _json = true;
        } else if (arg == "--trace") {
            _tracePath = "TRACE_" + _name + ".json";
        } else if (arg.rfind("--trace=", 0) == 0) {
            _tracePath = arg.substr(std::strlen("--trace="));
        }
    }
}

Reporter::~Reporter()
{
    if (_json)
        writeJson();
    if (_tracer && traceEnabled()) {
        if (_tracer->writeChromeTrace(_tracePath))
            std::printf("\n  trace written to %s\n", _tracePath.c_str());
        else
            std::fprintf(stderr, "  could not write trace to %s\n",
                         _tracePath.c_str());
    }
}

void
Reporter::header(const std::string &title, const std::string &paper_ref)
{
    _title = title;
    _paperRef = paper_ref;
    printHeader(title, paper_ref);
}

void
Reporter::row(const std::string &name, double value,
              const std::string &unit, const std::string &paper)
{
    _points.push_back(Point{name, value, unit, paper});
    printRow(name, value, unit, paper);
}

void
Reporter::seriesHeader(const std::vector<std::string> &cols)
{
    _seriesCols = cols;
    printSeriesHeader(cols);
}

void
Reporter::seriesRow(const std::vector<double> &vals)
{
    _seriesRows.push_back(vals);
    printSeriesRow(vals);
}

void
Reporter::snapshotRegistry(const sim::StatsRegistry &reg)
{
    std::ostringstream ss;
    reg.toJson(ss, /*pretty=*/false);
    _registryJson = ss.str();
}

sim::TraceSink *
Reporter::makeTracer(sim::EventQueue &eq)
{
    if (!traceEnabled())
        return nullptr;
    _tracer = std::make_unique<sim::TraceSink>(eq);
    eq.setTracer(_tracer.get());
    return _tracer.get();
}

void
Reporter::writeJson() const
{
    const std::string path = jsonPath();
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "  could not write %s\n", path.c_str());
        return;
    }
    sim::JsonWriter jw(os, /*pretty=*/true);
    jw.beginObject();
    jw.kv("bench", _name);
    jw.kv("title", _title);
    jw.kv("paper_ref", _paperRef);
    jw.key("points");
    jw.beginArray();
    for (const Point &p : _points) {
        jw.beginObject();
        jw.kv("name", p.name);
        jw.kv("value", p.value);
        jw.kv("unit", p.unit);
        jw.kv("paper", p.paper);
        jw.endObject();
    }
    jw.endArray();
    if (!_seriesCols.empty()) {
        jw.key("series");
        jw.beginObject();
        jw.key("columns");
        jw.beginArray();
        for (const auto &c : _seriesCols)
            jw.value(c);
        jw.endArray();
        jw.key("rows");
        jw.beginArray();
        for (const auto &r : _seriesRows) {
            jw.beginArray();
            for (double v : r)
                jw.value(v);
            jw.endArray();
        }
        jw.endArray();
        jw.endObject();
    }
    if (!_registryJson.empty()) {
        jw.key("registry");
        jw.rawValue(_registryJson);
    }
    jw.endObject();
    os << "\n";
    std::printf("\n  results written to %s\n", path.c_str());
}

} // namespace raid2::bench
