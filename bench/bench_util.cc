#include "bench_util.hh"

namespace raid2::bench {

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n");
    std::printf("====================================================="
                "=================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(%s)\n", paper_ref.c_str());
    std::printf("====================================================="
                "=================\n");
}

void
printRow(const std::string &name, double value, const std::string &unit,
         const std::string &paper)
{
    std::printf("  %-38s %8.2f %-10s paper: %s\n", name.c_str(), value,
                unit.c_str(), paper.c_str());
}

void
printSeriesHeader(const std::vector<std::string> &cols)
{
    std::printf("  ");
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
}

void
printSeriesRow(const std::vector<double> &vals)
{
    std::printf("  ");
    for (double v : vals)
        std::printf("%14.2f", v);
    std::printf("\n");
}

raid2::server::Raid2Server::Config
hwConfig()
{
    raid2::server::Raid2Server::Config cfg;
    cfg.layout.level = raid::RaidLevel::Raid5;
    cfg.layout.stripeUnitBytes = cal::lfsStripeUnitBytes; // 64 KB
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 3; // 24 disks (§2.2)
    cfg.topo.profile = &disk::ibm0661();
    cfg.withFs = false;
    // The hardware experiments keep the whole request's disk commands
    // in flight while HIPPI streams behind them.
    cfg.pipelineDepth = 8;
    return cfg;
}

raid2::server::Raid2Server::Config
lfsConfig()
{
    raid2::server::Raid2Server::Config cfg;
    cfg.layout.level = raid::RaidLevel::Raid5;
    cfg.layout.stripeUnitBytes = cal::lfsStripeUnitBytes;
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 2; // 16 disks (§3.4)
    cfg.topo.profile = &disk::ibm0661();
    cfg.withFs = true;
    // "several pipeline processes issuing read requests" (§3.3)
    cfg.pipelineDepth = 8;
    return cfg;
}

} // namespace raid2::bench
