/**
 * @file
 * Shared helpers for the reproduction benches: table printing and the
 * standard experiment configurations from the paper.
 */

#ifndef RAID2_BENCH_BENCH_UTIL_HH
#define RAID2_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "raid/sim_array.hh"
#include "server/raid2_server.hh"

namespace raid2::bench {

/** Print a rule + centered title for a bench section. */
void printHeader(const std::string &title, const std::string &paper_ref);

/** Print a single "name  value unit   (paper: x)" row. */
void printRow(const std::string &name, double value,
              const std::string &unit, const std::string &paper);

/** Print a series header for curve-style output. */
void printSeriesHeader(const std::vector<std::string> &cols);
void printSeriesRow(const std::vector<double> &vals);

/** The §2.3 hardware-experiment array: 24 IBM disks on 4 Cougars. */
raid2::server::Raid2Server::Config hwConfig();

/** The §3.4 LFS experiment array: 16 disks, 64 KB stripe, 960 KB
 *  segments. */
raid2::server::Raid2Server::Config lfsConfig();

} // namespace raid2::bench

#endif // RAID2_BENCH_BENCH_UTIL_HH
