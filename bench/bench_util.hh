/**
 * @file
 * Shared helpers for the reproduction benches: table printing, the
 * standard experiment configurations from the paper, and the Reporter
 * that mirrors a bench's output into a machine-readable
 * BENCH_<name>.json (measurement points + a StatsRegistry snapshot)
 * and optionally attaches a TraceSink for Chrome-trace export.
 */

#ifndef RAID2_BENCH_BENCH_UTIL_HH
#define RAID2_BENCH_BENCH_UTIL_HH

#include <cstddef>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "raid/sim_array.hh"
#include "server/raid2_server.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::bench {

/** Print a rule + centered title for a bench section. */
void printHeader(const std::string &title, const std::string &paper_ref);

/** Print a single "name  value unit   (paper: x)" row. */
void printRow(const std::string &name, double value,
              const std::string &unit, const std::string &paper);

/** Print a series header for curve-style output. */
void printSeriesHeader(const std::vector<std::string> &cols);
void printSeriesRow(const std::vector<double> &vals);

/** The §2.3 hardware-experiment array: 24 IBM disks on 4 Cougars. */
raid2::server::Raid2Server::Config hwConfig();

/** The §3.4 LFS experiment array: 16 disks, 64 KB stripe, 960 KB
 *  segments. */
raid2::server::Raid2Server::Config lfsConfig();

/**
 * Worker count for parallel sweeps: the RAID2_BENCH_THREADS
 * environment variable when set (>= 1; 1 forces the serial path),
 * otherwise std::thread::hardware_concurrency().
 */
unsigned benchThreads();

/**
 * Run the sweep body @p fn for indices 0..n-1 across a pool of
 * benchThreads() threads and return the per-index result rows in index
 * order.
 *
 * Each call builds and tears down its own simulated system (the kernel
 * has no global singleton), so measurements are independent and every
 * simulation is deterministic; the returned rows — and therefore
 * everything printed or serialized from them — are bit-identical to a
 * serial run.  Callers emit the rows after the join, keeping output
 * order fixed.  @p fn must not touch shared mutable state.
 */
std::vector<std::vector<double>> runSweepParallel(
    std::size_t n,
    const std::function<std::vector<double>(std::size_t)> &fn);

/**
 * Bench result reporter.
 *
 * Wraps the table printers above and records everything they print;
 * when JSON output is enabled (the "--json" flag or a non-empty
 * RAID2_BENCH_JSON environment variable) the destructor writes
 * "BENCH_<name>.json" in the working directory with the recorded
 * points/series plus any registry snapshot taken during the run.
 *
 * Tracing is enabled with "--trace" (default path TRACE_<name>.json),
 * "--trace=<path>", or the RAID2_TRACE environment variable (value =
 * path, or "1" for the default path); attach a sink to the measured
 * run's event queue with makeTracer() and the destructor writes the
 * Chrome trace_event file.
 */
class Reporter
{
  public:
    /** Parses --json / --trace[=path] out of argv (leaves the rest). */
    Reporter(std::string name, int argc = 0, char **argv = nullptr);
    ~Reporter();

    Reporter(const Reporter &) = delete;
    Reporter &operator=(const Reporter &) = delete;

    bool jsonEnabled() const { return _json; }
    bool traceEnabled() const { return !_tracePath.empty(); }
    const std::string &tracePath() const { return _tracePath; }

    /** @{ Print-and-record versions of the table helpers. */
    void header(const std::string &title, const std::string &paper_ref);
    void row(const std::string &name, double value,
             const std::string &unit, const std::string &paper);
    void seriesHeader(const std::vector<std::string> &cols);
    void seriesRow(const std::vector<double> &vals);
    /** @} */

    /**
     * Serialize @p reg into the report now (benches tear their
     * simulated systems down per measurement, so the snapshot cannot
     * wait for the destructor).  The last snapshot wins.
     */
    void snapshotRegistry(const sim::StatsRegistry &reg);

    /**
     * When tracing is enabled, create a TraceSink (owned by the
     * Reporter), attach it to @p eq and return it; the destructor
     * writes the trace file.  Returns nullptr when tracing is off.
     */
    sim::TraceSink *makeTracer(sim::EventQueue &eq);

    /** Path the destructor will write ("BENCH_<name>.json"). */
    std::string jsonPath() const { return "BENCH_" + _name + ".json"; }

  private:
    struct Point
    {
        std::string name;
        double value;
        std::string unit;
        std::string paper;
    };

    void writeJson() const;

    std::string _name;
    bool _json = false;
    std::string _tracePath;

    std::string _title;
    std::string _paperRef;
    std::vector<Point> _points;
    std::vector<std::string> _seriesCols;
    std::vector<std::vector<double>> _seriesRows;
    std::string _registryJson; // compact, spliced into the report
    std::unique_ptr<sim::TraceSink> _tracer;
};

} // namespace raid2::bench

#endif // RAID2_BENCH_BENCH_UTIL_HH
