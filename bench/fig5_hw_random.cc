/**
 * @file
 * Figure 5: hardware system level random read/write performance.
 *
 * "These performance measurements ... involve all the components of
 * the system from the disks to the HIPPI network. ... the disk system
 * is configured as a RAID Level 5 with one parity group of 24 disks.
 * For reads, data are read from the disk array into the memory on the
 * XBUS board; from there, data are sent over HIPPI, back to the XBUS
 * board, and into XBUS memory. ... For both reads and writes,
 * subsequent fixed size operations are at random locations."  (§2.3.)
 *
 * Expected shape: both curves climb to ~20 MB/s at large requests;
 * reads dip at 768 KB where the stripe span spills onto a second
 * string of one controller; writes sit below reads at small and
 * medium sizes because of parity work.
 */

#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
measure(bool writes, std::uint64_t req_bytes)
{
    sim::EventQueue eq;
    server::Raid2Server srv(eq, "srv", bench::hwConfig());

    workload::ClosedLoopRunner::Config wcfg;
    // Two outstanding requests: the next request's disk phase overlaps
    // the current one's HIPPI stream-out.
    wcfg.processes = 2;
    wcfg.requestBytes = req_bytes;
    // Random locations across a large slice of the array, aligned to
    // the stripe unit as the prototype's test program was.
    wcfg.regionBytes = std::min<std::uint64_t>(srv.array().capacity(),
                                               4ull * 1024 * 1024 * 1024);
    wcfg.alignBytes = cal::lfsStripeUnitBytes;
    wcfg.totalOps = std::max<std::uint64_t>(16, 48 * sim::MB / req_bytes);
    wcfg.warmupOps = 2;

    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        if (writes)
            srv.hwWrite(off, len, std::move(done));
        else
            srv.hwRead(off, len, std::move(done));
    };
    const auto res = workload::ClosedLoopRunner::run(eq, wcfg, op);
    return res.throughputMBs();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 5: hardware system level random read/write vs request "
        "size",
        "paper: ~20 MB/s plateau for both; read dip at 768 KB; writes "
        "slower than reads");

    const std::vector<std::uint64_t> sizes_kb = {
        64,  128,  256,  384,  512,  640,  704, 768,
        832, 1024, 1280, 1536, 2048, 4096, 8192};

    // Independent simulations per point: sweep in parallel, print in
    // order (RAID2_BENCH_THREADS=1 restores the serial path).
    const auto rows = bench::runSweepParallel(
        sizes_kb.size(), [&](std::size_t i) -> std::vector<double> {
            const std::uint64_t kb = sizes_kb[i];
            const double r = measure(false, kb * sim::KB);
            const double w = measure(true, kb * sim::KB);
            return {static_cast<double>(kb), r, w};
        });

    bench::printSeriesHeader({"req KB", "read MB/s", "write MB/s"});
    for (const auto &row : rows)
        bench::printSeriesRow(row);

    std::printf("\n  Paper reference points: reads and writes reach "
                "about 20 MB/s at the\n  largest sizes; the read curve "
                "dips at 768 KB (second-string contention).\n");
    return 0;
}
