/**
 * @file
 * Figure 6: HIPPI loopback performance.
 *
 * "Data are transferred from the XBUS memory to the HIPPI source
 * board, and then to the HIPPI destination board and back to XBUS
 * memory. ... In the loopback mode, the overhead of sending a HIPPI
 * packet is about 1.1 milliseconds ... For large requests, however,
 * the XBUS and HIPPI boards support 38 megabytes/second in both
 * directions."  (§2.3, Fig 6: throughput vs request size, asymptote
 * 38.5 MB/s.)
 */

#include <vector>

#include "bench_util.hh"
#include "net/hippi.hh"
#include "sim/event_queue.hh"
#include "xbus/xbus_board.hh"

using namespace raid2;

int
main(int argc, char **argv)
{
    bench::Reporter rep("fig6_hippi", argc, argv);
    rep.header("Figure 6: HIPPI loopback throughput vs request "
               "size",
               "paper: 1.1 ms packet overhead, 38.5 MB/s "
               "asymptote");

    const std::vector<std::uint64_t> sizes_kb = {
        4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192};

    // One loopback measurement; with a Reporter attached it becomes
    // the instrumented run (stats registry + optional trace).
    auto measure = [&rep](std::uint64_t kb,
                          bool instrumented) -> double {
        sim::EventQueue eq;
        xbus::XbusBoard board(eq, "xbus");
        net::HippiLoopback loop(eq, board);

        sim::StatsRegistry reg;
        if (instrumented) {
            board.registerStats(reg, "xbus");
            reg.setElapsed([&eq] { return eq.now(); });
            rep.makeTracer(eq);
        }

        const std::uint64_t bytes = kb * sim::KB;
        const int reps = 20;
        int done = 0;
        std::function<void()> issue = [&] {
            if (done == reps)
                return;
            loop.transfer(bytes, [&] {
                ++done;
                issue();
            });
        };
        issue();
        eq.run();

        if (instrumented)
            rep.snapshotRegistry(reg);
        return sim::mbPerSec(std::uint64_t(reps) * bytes, eq.now());
    };

    // Sweep the sizes across a thread pool (each point is its own
    // simulation), then emit rows in order; the last size runs once
    // more, serially, to fill the registry snapshot and trace.
    const auto rows = bench::runSweepParallel(
        sizes_kb.size(), [&](std::size_t i) -> std::vector<double> {
            const std::uint64_t kb = sizes_kb[i];
            return {static_cast<double>(kb),
                    measure(kb, /*instrumented=*/false)};
        });

    rep.seriesHeader({"req KB", "MB/s"});
    for (const auto &row : rows)
        rep.seriesRow(row);
    measure(sizes_kb.back(), /*instrumented=*/true);

    std::printf("\n  Expected shape: overhead-dominated at small sizes,"
                " saturating near 38.5 MB/s\n");
    return 0;
}
