/**
 * @file
 * Figure 6: HIPPI loopback performance.
 *
 * "Data are transferred from the XBUS memory to the HIPPI source
 * board, and then to the HIPPI destination board and back to XBUS
 * memory. ... In the loopback mode, the overhead of sending a HIPPI
 * packet is about 1.1 milliseconds ... For large requests, however,
 * the XBUS and HIPPI boards support 38 megabytes/second in both
 * directions."  (§2.3, Fig 6: throughput vs request size, asymptote
 * 38.5 MB/s.)
 */

#include <vector>

#include "bench_util.hh"
#include "net/hippi.hh"
#include "sim/event_queue.hh"
#include "xbus/xbus_board.hh"

using namespace raid2;

int
main(int argc, char **argv)
{
    bench::Reporter rep("fig6_hippi", argc, argv);
    rep.header("Figure 6: HIPPI loopback throughput vs request "
               "size",
               "paper: 1.1 ms packet overhead, 38.5 MB/s "
               "asymptote");

    rep.seriesHeader({"req KB", "MB/s"});
    const std::vector<std::uint64_t> sizes_kb = {
        4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192};

    const std::uint64_t last_kb = sizes_kb.back();
    for (std::uint64_t kb : sizes_kb) {
        sim::EventQueue eq;
        xbus::XbusBoard board(eq, "xbus");
        net::HippiLoopback loop(eq, board);

        sim::StatsRegistry reg;
        if (kb == last_kb) {
            board.registerStats(reg, "xbus");
            reg.setElapsed([&eq] { return eq.now(); });
            rep.makeTracer(eq);
        }

        const std::uint64_t bytes = kb * sim::KB;
        const int reps = 20;
        int done = 0;
        std::function<void()> issue = [&] {
            if (done == reps)
                return;
            loop.transfer(bytes, [&] {
                ++done;
                issue();
            });
        };
        issue();
        eq.run();

        const double mbs =
            sim::mbPerSec(std::uint64_t(reps) * bytes, eq.now());
        rep.seriesRow({static_cast<double>(kb), mbs});
        if (kb == last_kb)
            rep.snapshotRegistry(reg);
    }

    std::printf("\n  Expected shape: overhead-dominated at small sizes,"
                " saturating near 38.5 MB/s\n");
    return 0;
}
