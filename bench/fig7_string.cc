/**
 * @file
 * Figure 7: disk read performance vs number of disks on one SCSI
 * string.
 *
 * "Cougar string bandwidth is limited to about 3 megabytes/second,
 * less than that of three disks.  The dashed line indicates the
 * performance if bandwidth scaled linearly." (§2.3, Fig 7.)
 *
 * Each disk streams sequential reads from its own region; the string
 * saturates at the 3 MB/s bus rate.
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "disk/disk_model.hh"
#include "scsi/cougar_controller.hh"
#include "sim/event_queue.hh"
#include "sim/service.hh"

using namespace raid2;

int
main(int argc, char **argv)
{
    bench::Reporter rep("fig7_string", argc, argv);
    rep.header("Figure 7: read throughput vs disks on one SCSI "
               "string",
               "paper: saturates at about 3 MB/s (3.4 calibrated "
               "from Table 1); single disk well below");

    rep.seriesHeader({"disks", "MB/s", "linear MB/s"});

    const unsigned max_disks = 6;
    double single_disk_mbs = 0.0;
    for (unsigned ndisks = 1; ndisks <= max_disks; ++ndisks) {
        sim::EventQueue eq;
        scsi::CougarController cougar(eq, "cougar");
        // A fast sink stands in for the rest of the datapath so the
        // string is the only possible bottleneck.
        sim::Service sink(eq, "sink", sim::Service::Config{400.0, 0, 8});

        sim::StatsRegistry reg;
        if (ndisks == max_disks) {
            cougar.registerStats(reg, "scsi.cougar0");
            reg.setElapsed([&eq] { return eq.now(); });
            rep.makeTracer(eq);
        }

        std::vector<std::unique_ptr<disk::DiskModel>> disks;
        std::vector<std::unique_ptr<scsi::DiskChannel>> channels;
        for (unsigned i = 0; i < ndisks; ++i) {
            disks.push_back(std::make_unique<disk::DiskModel>(
                eq, "d" + std::to_string(i), disk::ibm0661()));
            cougar.string(0).attach(disks.back().get());
            channels.push_back(std::make_unique<scsi::DiskChannel>(
                eq, *disks.back(), cougar.string(0), cougar));
            if (ndisks == max_disks)
                disks.back()->registerStats(reg,
                                            "disk." + std::to_string(i));
        }

        const std::uint64_t req = 64 * sim::KB;
        const int per_disk_ops = 40;
        std::uint64_t bytes_done = 0;
        unsigned streams_done = 0;

        std::vector<std::uint64_t> pos(ndisks);
        std::vector<int> ops(ndisks, 0);
        std::function<void(unsigned)> issue = [&](unsigned d) {
            if (ops[d] >= per_disk_ops) {
                ++streams_done;
                return;
            }
            ++ops[d];
            channels[d]->read(pos[d], req, {sim::Stage(sink)},
                              [&, d] {
                                  bytes_done += req;
                                  issue(d);
                              });
            pos[d] += req;
        };
        // Two commands outstanding per disk so the drive's media phase
        // overlaps the previous command's bus phase (read-ahead).
        for (unsigned d = 0; d < ndisks; ++d) {
            issue(d);
            issue(d);
        }
        eq.run();

        const double mbs = sim::mbPerSec(bytes_done, eq.now());
        if (ndisks == 1)
            single_disk_mbs = mbs;
        rep.seriesRow({static_cast<double>(ndisks), mbs,
                       single_disk_mbs * ndisks});
        if (ndisks == max_disks)
            rep.snapshotRegistry(reg);
    }

    std::printf("\n  Expected shape: ~1.6 MB/s for one disk, capped "
                "near 3 MB/s from two disks on\n");
    return 0;
}
