/**
 * @file
 * Figure 8: performance of RAID-II running LFS.
 *
 * "All the measurements presented in this section use a single XBUS
 * board with 16 disks.  The LFS log is interleaved or striped across
 * the disks in units of 64 kilobytes.  The log is written to the disk
 * array in units or segments of 960 kilobytes. ... For each request
 * type, a single process issued requests to the disk array.  For both
 * reads and writes, data are transferred to/from network buffers, but
 * do not actually go across the network." (§3.4.)
 *
 * Expected shape: reads climb to ~20 MB/s only for very large
 * (effectively sequential) requests, burdened by ~23 ms per-op
 * overhead below that; writes reach ~15 MB/s from ~512 KB on because
 * LFS batches them into sequential segments; small random writes beat
 * small random reads.
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

constexpr std::uint64_t fileBytes = 192ull * 1024 * 1024;

/**
 * One read measurement.  With a Reporter attached this becomes the
 * instrumented run: the server's full stats tree is registered and
 * snapshotted into the report, and (when tracing is enabled) a
 * TraceSink records the pipelined prefetch overlap.
 */
double
measureReads(std::uint64_t req_bytes, bench::Reporter *rep = nullptr)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    cfg.fsDeviceBytes = 256ull * 1024 * 1024;
    server::Raid2Server srv(eq, "srv", cfg);

    sim::StatsRegistry reg;
    if (rep) {
        srv.registerStats(reg);
        reg.setElapsed([&eq] { return eq.now(); });
        rep->makeTracer(eq);
    }

    // Lay down a large file sequentially (the log makes it contiguous
    // on the array), then read at random offsets.
    const auto ino = srv.createFile("/big");
    {
        std::vector<std::uint8_t> chunk(4 * sim::MB, 0xab);
        for (std::uint64_t off = 0; off < fileBytes; off += chunk.size())
            srv.fs().write(ino, off, {chunk.data(), chunk.size()});
        srv.fs().checkpoint();
    }
    // The layout writes above were functional only; drop their timed
    // mirror so the measurement starts clean.
    eq.run();

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 1; // §3.4: a single process
    wcfg.requestBytes = req_bytes;
    wcfg.regionBytes = fileBytes;
    wcfg.totalOps =
        std::max<std::uint64_t>(12, 96 * sim::MB / req_bytes);
    wcfg.warmupOps = 2;

    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.fileRead(ino, off, len, std::move(done));
    };
    const double mbs =
        workload::ClosedLoopRunner::run(eq, wcfg, op).throughputMBs();
    if (rep)
        rep->snapshotRegistry(reg);
    return mbs;
}

double
measureWrites(std::uint64_t req_bytes)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    cfg.fsDeviceBytes = 256ull * 1024 * 1024;
    server::Raid2Server srv(eq, "srv", cfg);

    const auto ino = srv.createFile("/big");
    const std::uint64_t region = 96ull * 1024 * 1024;

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 1;
    wcfg.requestBytes = req_bytes;
    wcfg.regionBytes = region;
    wcfg.totalOps =
        std::max<std::uint64_t>(16, 64 * sim::MB / req_bytes);
    wcfg.warmupOps = 2;

    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.fileWrite(ino, off, len, std::move(done));
    };
    return workload::ClosedLoopRunner::run(eq, wcfg, op).throughputMBs();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("fig8_lfs", argc, argv);
    rep.header(
        "Figure 8: LFS on RAID-II, random reads/writes vs request size",
        "paper: reads to ~20 MB/s (>=10 MB reqs), writes ~15 MB/s "
        "(>=512 KB reqs)");

    const std::vector<std::uint64_t> sizes_kb = {
        16, 64, 128, 256, 512, 1024, 2048, 4096, 10240, 20480};

    // Each sweep point is an independent simulation, so the points run
    // across a thread pool (RAID2_BENCH_THREADS=1 restores serial) and
    // the rows are emitted in order afterwards — identical output.
    const auto rows = bench::runSweepParallel(
        sizes_kb.size(), [&](std::size_t i) -> std::vector<double> {
            const std::uint64_t kb = sizes_kb[i];
            const double r = measureReads(kb * sim::KB);
            const double w = measureWrites(kb * sim::KB);
            return {static_cast<double>(kb), r, w};
        });

    rep.seriesHeader({"req KB", "read MB/s", "write MB/s"});
    for (const auto &row : rows)
        rep.seriesRow(row);

    // One more read run, instrumented: fills the report's registry
    // snapshot and (with --trace) the Chrome-trace file showing the
    // prefetch pipeline overlap.
    const double instr = measureReads(1024 * sim::KB, &rep);
    rep.row("Instrumented read run (1 MB reqs)", instr, "MB/s",
            "matches curve");

    std::printf("\n  Expected shape: small random writes beat small "
                "random reads (log\n  batching); reads overtake at "
                "multi-megabyte requests; read plateau ~20,\n  write "
                "plateau ~15 MB/s.\n");
    return 0;
}
