/**
 * @file
 * Verify-on-read overhead sweep: integrity off vs on x read size x
 * injected media corruption.
 *
 * The end-to-end integrity layer (src/integrity/) checksums every
 * functional block on write and verifies every read, repairing from
 * RAID redundancy on a mismatch.  That buys "no silent wrong data"
 * (docs/RELIABILITY.md) — this bench prices it: server read
 * throughput with the VerifyingDevice in the chain against the plain
 * MemBlockDevice baseline, and the marginal cost of actually hitting
 * corrupt blocks (detection + parity reconstruction + writeback).
 *
 * Every row is pure simulated time and simulated work counters, so
 * the sweep is bit-identical no matter how many worker threads
 * RAID2_BENCH_THREADS spreads it over — that's what the CI
 * determinism guard cmp's.  RAID2_INTEGRITY_QUICK=1 shrinks the sweep
 * for smoke runs (still deterministic).
 */

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "server/raid2_server.hh"
#include "sim/event_queue.hh"
#include "sim/stats_registry.hh"

using namespace raid2;

namespace {

/** One sweep point. */
struct Point
{
    bool integrity;
    std::uint64_t readBytes;
    unsigned corruptions;
};

constexpr std::uint64_t kFileBytes = 512 * 1024;
constexpr unsigned kFiles = 16; // 8 MB working set

bool
quickMode()
{
    const char *q = std::getenv("RAID2_INTEGRITY_QUICK");
    return q && q[0] && q[0] != '0';
}

server::Raid2Server::Config
serverConfig(bool integrity)
{
    server::Raid2Server::Config cfg;
    cfg.topo.disksPerString = 2;
    cfg.withFs = true;
    cfg.fsDeviceBytes = 64ull * 1024 * 1024;
    cfg.withIntegrity = integrity;
    return cfg;
}

/** Flip one functional media byte under file offset @p foff. */
void
corruptUnderFile(server::Raid2Server &srv, lfs::InodeNum ino,
                 std::uint64_t foff)
{
    const auto extents = srv.fs().mapFile(ino, foff, 1);
    if (extents.empty() || extents[0].hole)
        return;
    unsigned d = 0;
    std::uint64_t doff = 0;
    srv.functionalArray().layout().mapByte(extents[0].deviceOffset, d,
                                           doff);
    srv.functionalArray().diskData(d)[doff] ^= 0xa5;
}

/**
 * Run one sweep point and report
 * {integrity, read KB, corruptions, elapsed ms, MB/s, verified,
 *  detected, repairs} — all derived from simulated time and counters.
 */
std::vector<double>
runPoint(const Point &p)
{
    sim::EventQueue eq;
    server::Raid2Server srv(eq, "s", serverConfig(p.integrity));
    srv.fs().setAutoClean(false);

    std::vector<lfs::InodeNum> inos;
    std::vector<std::uint8_t> data(kFileBytes);
    for (unsigned i = 0; i < kFiles; ++i) {
        for (std::size_t j = 0; j < data.size(); ++j)
            data[j] = static_cast<std::uint8_t>(i * 131 + j * 7);
        const lfs::InodeNum ino =
            srv.createFile("/f" + std::to_string(i));
        srv.fs().write(ino, 0, {data.data(), data.size()});
        inos.push_back(ino);
    }
    srv.fs().checkpoint();

    // Offsets are staggered across files and stripe columns; at the
    // densest point a couple of hits still share a parity column
    // (pigeonhole over the stripe's block slots) and stay
    // unrepairable — detection is complete either way, and the gap
    // between "detected" and "repairs" is the redundancy ceiling,
    // not a checksum miss.
    for (unsigned c = 0; c < p.corruptions; ++c)
        corruptUnderFile(srv, inos[c % kFiles],
                         ((c * 37 + 11) + (c / kFiles) * 3) * 4096 %
                             kFileBytes);

    // Sequential checked reads over the whole working set, one
    // outstanding, p.readBytes at a time.
    const sim::Tick t0 = eq.now();
    std::uint64_t file = 0, off = 0, bytes = 0;
    bool done = false;
    std::function<void()> next = [&] {
        if (file == inos.size()) {
            done = true;
            return;
        }
        const std::uint64_t len =
            std::min(p.readBytes, kFileBytes - off);
        srv.fileReadChecked(inos[file], off, len, [&, len](bool) {
            bytes += len;
            off += len;
            if (off >= kFileBytes) {
                off = 0;
                ++file;
            }
            next();
        });
    };
    next();
    eq.runUntilDone([&] { return done; });

    const double elapsed_ms = sim::ticksToMs(eq.now() - t0);
    const double mbs =
        elapsed_ms > 0 ? static_cast<double>(bytes) / (1024.0 * 1024.0) /
                             (elapsed_ms / 1e3)
                       : 0;
    const bool hasIntegrity = srv.hasIntegrity();
    return {p.integrity ? 1.0 : 0.0,
            static_cast<double>(p.readBytes) / 1024,
            static_cast<double>(p.corruptions),
            elapsed_ms,
            mbs,
            hasIntegrity
                ? static_cast<double>(srv.integrity().verifiedBlocks())
                : 0.0,
            hasIntegrity
                ? static_cast<double>(srv.integrity().detected())
                : 0.0,
            hasIntegrity ? static_cast<double>(srv.integrity().repairs())
                         : 0.0};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("integrity_overhead", argc, argv);

    rep.header("End-to-end integrity: verify-on-read overhead",
               "checksum + read-repair layer cost vs plain device; "
               "repo subsystem sweep, not a paper figure");
    std::printf("  %u files x %llu KB, sequential checked reads\n\n",
                kFiles, (unsigned long long)(kFileBytes / 1024));

    const std::vector<std::uint64_t> sizes =
        quickMode() ? std::vector<std::uint64_t>{512 * 1024}
                    : std::vector<std::uint64_t>{64 * 1024, 512 * 1024};
    const std::vector<unsigned> corruptions =
        quickMode() ? std::vector<unsigned>{0, 8}
                    : std::vector<unsigned>{0, 8, 32};

    std::vector<Point> points;
    for (std::uint64_t s : sizes) {
        points.push_back(Point{false, s, 0});
        for (unsigned c : corruptions)
            points.push_back(Point{true, s, c});
    }

    rep.seriesHeader({"integrity", "read KB", "corrupt", "elapsed ms",
                      "MB/s", "verified", "detected", "repairs"});
    const auto rows = bench::runSweepParallel(
        points.size(),
        [&](std::size_t i) { return runPoint(points[i]); });
    for (const auto &row : rows)
        rep.seriesRow(row);

    // Registry snapshot from one instrumented run (deterministic, so
    // the quick-mode JSON stays cmp-stable for the CI guard).
    {
        sim::EventQueue eq;
        server::Raid2Server srv(eq, "s", serverConfig(true));
        srv.fs().setAutoClean(false);
        std::vector<std::uint8_t> data(kFileBytes, 0x5a);
        const lfs::InodeNum ino = srv.createFile("/f");
        srv.fs().write(ino, 0, {data.data(), data.size()});
        srv.fs().checkpoint();
        corruptUnderFile(srv, ino, 8192);
        sim::StatsRegistry reg;
        srv.registerStats(reg);
        bool done = false;
        srv.fileReadChecked(ino, 0, kFileBytes,
                            [&](bool) { done = true; });
        eq.runUntilDone([&] { return done; });
        rep.snapshotRegistry(reg);
    }
    return 0;
}
