/**
 * @file
 * Offered-load vs goodput/latency for the scheduled server front end.
 *
 * The paper reports point throughputs (Table 1, Fig 5-8) for one or
 * two clients; this bench asks the question those numbers imply: what
 * happens when an Ultranet full of clients pushes the server past its
 * service capacity?  A 256-session fleet offers an open-loop (Poisson)
 * request mix through the RequestScheduler, and we sweep the aggregate
 * arrival rate from underload through saturation.  The expected shape
 * is the classic open-loop curve: goodput tracks offered load up to
 * the knee — set by the fast path's concurrent-stream budget draining
 * through ~3 MB/s client NICs, with the serialized §3.4 LFS op
 * overhead (~4 ms) underneath — then flattens while p99 latency grows
 * by orders of magnitude as queueing and Busy-retries take over.
 *
 * Each sweep point builds its own simulated world, so the sweep is
 * trivially parallel (RAID2_BENCH_THREADS) and bit-identical to a
 * serial run.  RAID2_LOAD_QUICK=1 shrinks the sweep for CI smoke runs.
 */

#include <cstdlib>
#include <vector>

#include "bench_util.hh"
#include "server/request_scheduler.hh"
#include "sim/stats.hh"
#include "workload/client_fleet.hh"

using namespace raid2;

namespace {

struct SweepCfg
{
    std::vector<double> offered;
    unsigned sessions;
    sim::Tick duration;
};

SweepCfg
sweepCfg()
{
    const char *quick = std::getenv("RAID2_LOAD_QUICK");
    if (quick && quick[0] && quick[0] != '0')
        return {{25, 75, 150, 250}, 64, sim::secToTicks(2.0)};
    return {{25, 50, 75, 100, 125, 150, 200, 250, 300},
            256,
            sim::secToTicks(10.0)};
}

workload::ClientFleet::Config
fleetCfg(const SweepCfg &sw, double offered)
{
    workload::ClientFleet::Config fc;
    fc.sessions = sw.sessions;
    fc.mode = workload::ClientFleet::Mode::Open;
    fc.offeredOpsPerSec = offered;
    fc.duration = sw.duration;
    return fc;
}

std::vector<double>
runPoint(const SweepCfg &sw, double offered, bench::Reporter *rep)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    server::Raid2Server srv(eq, "srv", cfg);
    server::RequestScheduler sched(eq, srv);

    sim::StatsRegistry reg;
    if (rep) {
        srv.registerStats(reg);
        sched.registerStats(reg);
        reg.setElapsed([&eq] { return eq.now(); });
        rep->makeTracer(eq);
    }

    auto res =
        workload::ClientFleet::run(eq, srv, sched, fleetCfg(sw, offered));

    auto all = res.fast.latencyMs;
    all.insert(all.end(), res.standard.latencyMs.begin(),
               res.standard.latencyMs.end());

    if (rep)
        rep->snapshotRegistry(reg);

    return {offered,
            res.opsPerSec(),
            res.goodputMBs(),
            sim::exactQuantile(all, 0.50),
            sim::exactQuantile(all, 0.99),
            sim::exactQuantile(all, 0.999),
            sim::exactQuantile(res.fast.latencyMs, 0.99),
            sim::exactQuantile(res.standard.latencyMs, 0.99),
            static_cast<double>(res.fast.rejects + res.standard.rejects),
            static_cast<double>(res.dropped)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("load_latency", argc, argv);
    const SweepCfg sw = sweepCfg();

    rep.header("Fleet offered load vs goodput and latency",
               "open-loop sweep past the §3.4 LFS op-overhead knee");
    std::printf("  %u sessions, open loop, %.0fs offered window\n\n",
                sw.sessions, sim::ticksToSec(sw.duration));

    rep.seriesHeader({"offered/s", "achieved/s", "goodput MB/s",
                      "p50 ms", "p99 ms", "p999 ms", "fast p99",
                      "std p99", "rejects", "dropped"});

    const auto rows = bench::runSweepParallel(
        sw.offered.size(), [&](std::size_t i) {
            return runPoint(sw, sw.offered[i], nullptr);
        });
    for (const auto &row : rows)
        rep.seriesRow(row);

    // One instrumented re-run near the knee feeds the registry
    // snapshot (scheduler depth/rejects/service-time stats) and the
    // optional Chrome trace into the JSON report.
    const double knee = sw.offered[sw.offered.size() / 2];
    const auto k = runPoint(sw, knee, &rep);

    rep.row("knee offered load", k[0], "ops/s", "near capacity");
    rep.row("knee goodput", k[2], "MB/s", "");
    rep.row("knee p99 latency", k[4], "ms", "");

    std::printf("\n  Expected shape: achieved tracks offered to the "
                "LFS-overhead knee, then\n  flattens; p99 rises "
                "orders of magnitude past it, rejects appear as the\n"
                "  admission queues fill, and the fast/standard split "
                "shows bulk traffic\n  monopolizing neither class "
                "(DRR fairness).\n");
    return 0;
}
