/**
 * @file
 * Functional data-plane microbenchmark: block-loop vs extent I/O.
 *
 * RAID-II's argument is that bandwidth comes from moving data in large
 * sequential units (§3.3, Table 1); the functional plane used to
 * contradict it by degenerating every multi-block operation into a
 * per-4 KB virtual call chain and recomputing each stripe's parity
 * once per block.  This bench measures what the extent path
 * (readRange/writeRange + stripe-aware single-pass parity) buys, per
 * RAID level, for segment-sized sequential writes, ragged
 * (unaligned) extents, and segment-sized reads.
 *
 * Two kinds of output:
 *  - a deterministic work-counter sweep (device block writes, parity
 *    recomputes, full-stripe folds for one segment write down each
 *    path) — bit-identical regardless of RAID2_BENCH_THREADS, which is
 *    what the CI determinism guard cmp's;
 *  - wall-clock MB/s rows for each path (extent-vs-block-loop speedup
 *    per level).  RAID2_DATAPATH_QUICK=1 skips these, keeping the
 *    quick-mode JSON deterministic for the guard.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fs/array_block_device.hh"
#include "raid/raid_array.hh"
#include "sim/stats_registry.hh"

using namespace raid2;

namespace {

constexpr std::uint32_t kBs = 4096;
/** The paper's LFS segment (§3.4): 960 KB = 240 x 4 KB blocks. */
constexpr std::uint64_t kSegBlocks = 240;
/** A deliberately unaligned extent: odd start, partial stripes. */
constexpr std::uint64_t kRaggedStart = 7;
constexpr std::uint64_t kRaggedBlocks = 33;

const raid::RaidLevel kLevels[] = {
    raid::RaidLevel::Raid0, raid::RaidLevel::Raid1,
    raid::RaidLevel::Raid3, raid::RaidLevel::Raid5};

raid::LayoutConfig
levelConfig(raid::RaidLevel level)
{
    raid::LayoutConfig cfg;
    cfg.level = level;
    cfg.numDisks =
        (level == raid::RaidLevel::Raid0 || level == raid::RaidLevel::Raid1)
            ? 4
            : 5;
    // 16 KB units x 4 data disks = 64 KB stripes: a 960 KB segment is
    // exactly 15 stripes, the aligned full-stripe case LFS arranges.
    cfg.stripeUnitBytes = 16 * 1024;
    return cfg;
}

double
levelNumber(raid::RaidLevel level)
{
    switch (level) {
    case raid::RaidLevel::Raid0: return 0;
    case raid::RaidLevel::Raid1: return 1;
    case raid::RaidLevel::Raid3: return 3;
    case raid::RaidLevel::Raid5: return 5;
    }
    return -1;
}

bool
quickMode()
{
    const char *q = std::getenv("RAID2_DATAPATH_QUICK");
    return q && q[0] && q[0] != '0';
}

struct Rig
{
    raid::RaidArray array;
    fs::ArrayBlockDevice dev;

    explicit Rig(raid::RaidLevel level)
        : array(levelConfig(level), 4 * 1024 * 1024), dev(array, kBs)
    {
    }
};

/**
 * One segment write down each path on fresh arrays; all returned
 * values are pure work counters, so the row is identical on every
 * machine and thread count.
 */
std::vector<double>
counterRow(raid::RaidLevel level)
{
    std::vector<std::uint8_t> seg(kSegBlocks * kBs, 0x5a);

    Rig loop(level);
    for (std::uint64_t b = 0; b < kSegBlocks; ++b)
        loop.dev.writeBlock(b, {seg.data() + b * kBs, kBs});

    Rig extent(level);
    extent.dev.writeRange(0, kSegBlocks, {seg.data(), seg.size()});

    return {levelNumber(level),
            static_cast<double>(kSegBlocks),
            static_cast<double>(loop.array.parityRecomputes().value()),
            static_cast<double>(extent.array.parityRecomputes().value()),
            static_cast<double>(
                extent.array.parityFullStripeWrites().value())};
}

/** Wall-clock MB/s of fn (which moves @p bytes per call). */
template <typename Fn>
double
measureMBs(std::uint64_t bytes, Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    // Warm up once (page in the disk buffers).
    fn();
    const auto t0 = clock::now();
    std::uint64_t moved = 0;
    std::chrono::duration<double> elapsed{};
    do {
        fn();
        moved += bytes;
        elapsed = clock::now() - t0;
    } while (elapsed.count() < 0.15);
    return static_cast<double>(moved) / (1024.0 * 1024.0) /
           elapsed.count();
}

struct Timings
{
    double segWriteLoop, segWriteExtent;
    double raggedWriteLoop, raggedWriteExtent;
    double segReadLoop, segReadExtent;
};

Timings
timeLevel(raid::RaidLevel level)
{
    Rig rig(level);
    std::vector<std::uint8_t> seg(kSegBlocks * kBs, 0x5a);
    std::vector<std::uint8_t> ragged(kRaggedBlocks * kBs, 0xa5);

    Timings t;
    t.segWriteLoop = measureMBs(seg.size(), [&] {
        for (std::uint64_t b = 0; b < kSegBlocks; ++b)
            rig.dev.writeBlock(b, {seg.data() + b * kBs, kBs});
    });
    t.segWriteExtent = measureMBs(seg.size(), [&] {
        rig.dev.writeRange(0, kSegBlocks, {seg.data(), seg.size()});
    });
    t.raggedWriteLoop = measureMBs(ragged.size(), [&] {
        for (std::uint64_t b = 0; b < kRaggedBlocks; ++b)
            rig.dev.writeBlock(kRaggedStart + b,
                               {ragged.data() + b * kBs, kBs});
    });
    t.raggedWriteExtent = measureMBs(ragged.size(), [&] {
        rig.dev.writeRange(kRaggedStart, kRaggedBlocks,
                           {ragged.data(), ragged.size()});
    });
    t.segReadLoop = measureMBs(seg.size(), [&] {
        for (std::uint64_t b = 0; b < kSegBlocks; ++b)
            rig.dev.readBlock(b, {seg.data() + b * kBs, kBs});
    });
    t.segReadExtent = measureMBs(seg.size(), [&] {
        rig.dev.readRange(0, kSegBlocks, {seg.data(), seg.size()});
    });
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("micro_datapath", argc, argv);

    rep.header("Functional data plane: block-loop vs extent I/O",
               "repo microbenchmark; guards the vectored-I/O fast "
               "path, not a paper figure");
    std::printf("  960 KB segment (240 x 4 KB), 16 KB units, "
                "4 data disks per array\n\n");

    // Deterministic parity-work sweep: one segment write down each
    // path.  The block loop recomputes parity once per block; the
    // extent path folds each full stripe exactly once.
    rep.seriesHeader(
        {"level", "blocks", "loop recomp", "ext recomp", "folds"});
    const auto rows = bench::runSweepParallel(
        std::size(kLevels),
        [&](std::size_t i) { return counterRow(kLevels[i]); });
    for (const auto &row : rows)
        rep.seriesRow(row);

    // Registry snapshot from an instrumented Raid5 segment write
    // (deterministic, so quick-mode JSON stays cmp-stable).
    {
        Rig rig(raid::RaidLevel::Raid5);
        sim::StatsRegistry reg;
        rig.array.registerStats(reg, "array");
        rig.dev.registerStats(reg, "dev");
        std::vector<std::uint8_t> seg(kSegBlocks * kBs, 0x5a);
        rig.dev.writeRange(0, kSegBlocks, {seg.data(), seg.size()});
        rep.snapshotRegistry(reg);
    }

    if (quickMode()) {
        std::printf("\n  quick mode: wall-clock rows skipped "
                    "(deterministic output for the CI guard)\n");
        return 0;
    }

    // Wall-clock throughput per level.  The segment-sized sequential
    // write is the acceptance case: extent must be >= 3x block loop.
    for (raid::RaidLevel level : kLevels) {
        const Timings t = timeLevel(level);
        const std::string lv =
            "raid" + std::to_string(int(levelNumber(level)));
        rep.row(lv + " seg write block-loop", t.segWriteLoop, "MB/s",
                "");
        rep.row(lv + " seg write extent", t.segWriteExtent, "MB/s",
                "target: >= 3x block-loop");
        rep.row(lv + " seg write speedup",
                t.segWriteExtent / t.segWriteLoop, "x", "");
        rep.row(lv + " ragged write block-loop", t.raggedWriteLoop,
                "MB/s", "");
        rep.row(lv + " ragged write extent", t.raggedWriteExtent,
                "MB/s", "");
        rep.row(lv + " seg read block-loop", t.segReadLoop, "MB/s",
                "");
        rep.row(lv + " seg read extent", t.segReadExtent, "MB/s", "");
    }
    return 0;
}
