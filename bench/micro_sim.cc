/**
 * @file
 * Microbenchmarks of the simulator's own primitives
 * (google-benchmark): event queue throughput, service/pipeline cost,
 * RAID mapping, XOR parity bandwidth, and the functional LFS write
 * path.  These guard the simulator's performance, not the paper's
 * results.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fs/mem_block_device.hh"
#include "lfs/lfs.hh"
#include "raid/parity.hh"
#include "raid/raid_layout.hh"
#include "sim/event_queue.hh"
#include "sim/service.hh"

using namespace raid2;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

/** Lazy-cancellation stress: schedule n events, cancel every other
 *  one, then drain.  Exercises the tombstone purge path that the
 *  timeout-heavy server configurations hit. */
void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    std::vector<sim::EventQueue::EventId> ids(n);
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            ids[i] = eq.schedule(static_cast<sim::Tick>(i),
                                 [&] { ++sink; });
        for (int i = 0; i < n; i += 2)
            eq.cancel(ids[i]);
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(10000);

/** High-fanout cascade: every event schedules range(0) children until
 *  100k events have run.  Models completion events fanning out to
 *  per-disk continuations; the queue depth stays near the fanout
 *  factor times the frontier. */
void
BM_EventQueueFanout(benchmark::State &state)
{
    const int fanout = static_cast<int>(state.range(0));
    constexpr std::uint64_t total = 100000;
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t spawned = 1;
        std::function<void()> node = [&] {
            for (int c = 0; c < fanout && spawned < total; ++c) {
                ++spawned;
                eq.scheduleIn(static_cast<sim::Tick>(1 + c), node);
            }
        };
        eq.schedule(0, node);
        eq.run();
        benchmark::DoNotOptimize(spawned);
    }
    state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_EventQueueFanout)->Arg(4)->Arg(32);

void
BM_ServiceSubmit(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::Service svc(eq, "svc", sim::Service::Config{40.0, 0, 1});
        for (int i = 0; i < 1000; ++i)
            svc.submit(4096, nullptr);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ServiceSubmit);

void
BM_PipelineChunked(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::Service a(eq, "a", sim::Service::Config{40.0, 0, 1});
        sim::Service b(eq, "b", sim::Service::Config{40.0, 0, 1});
        bool done = false;
        sim::Pipeline::start(eq, {&a, &b}, 10 * sim::MB, 16 * 1024,
                             [&] { done = true; });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
}
BENCHMARK(BM_PipelineChunked);

void
BM_RaidMapRange(benchmark::State &state)
{
    raid::LayoutConfig cfg;
    cfg.level = raid::RaidLevel::Raid5;
    cfg.numDisks = 24;
    cfg.stripeUnitBytes = 64 * 1024;
    raid::RaidLayout layout(cfg, 320ull * 1024 * 1024);
    std::uint64_t off = 0;
    for (auto _ : state) {
        auto extents = layout.mapRange(off % (1ull << 30), sim::MB);
        benchmark::DoNotOptimize(extents.data());
        off += 1234567;
    }
}
BENCHMARK(BM_RaidMapRange);

void
BM_ParityXor(benchmark::State &state)
{
    std::vector<std::uint8_t> dst(1 << 20, 1), src(1 << 20, 2);
    for (auto _ : state) {
        raid::xorInto(dst.data(), src.data(), dst.size());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(state.iterations() * dst.size());
}
BENCHMARK(BM_ParityXor);

void
BM_LfsWritePath(benchmark::State &state)
{
    for (auto _ : state) {
        fs::MemBlockDevice dev(4096, 16384); // 64 MB
        lfs::Lfs::format(dev);
        lfs::Lfs fs(dev);
        const auto ino = fs.create("/f");
        std::vector<std::uint8_t> buf(64 * 1024, 0x5a);
        for (int i = 0; i < 256; ++i)
            fs.write(ino, std::uint64_t(i) * buf.size(),
                     {buf.data(), buf.size()});
        fs.sync();
        benchmark::DoNotOptimize(fs.stats().segmentsWritten);
    }
    state.SetBytesProcessed(state.iterations() * 256 * 64 * 1024);
}
BENCHMARK(BM_LfsWritePath);

/** Wall-clock kernel throughput at queue depth @p n: repeat
 *  schedule-then-drain rounds for ~200 ms and report events/sec. */
double
kernelEventsPerSec(std::uint64_t n)
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    std::uint64_t processed = 0;
    std::chrono::duration<double> elapsed{};
    do {
        sim::EventQueue eq;
        std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
        processed += n;
        elapsed = clock::now() - t0;
    } while (elapsed.count() < 0.2);
    return static_cast<double>(processed) / elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("micro_sim", argc, argv);

    // Drop the Reporter's flags before handing argv to
    // google-benchmark, which rejects unknown arguments.
    std::vector<char *> bargs;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (i > 0 && (a == "--json" || a == "--trace" ||
                      a.rfind("--trace=", 0) == 0))
            continue;
        bargs.push_back(argv[i]);
    }
    int bargc = static_cast<int>(bargs.size());
    benchmark::Initialize(&bargc, bargs.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, bargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Wall-clock events/sec at several queue depths; with --json the
    // series lands in BENCH_micro_sim.json alongside commit history.
    rep.header("Simulation kernel wall-clock throughput",
               "repo microbenchmark; guards simulator speed, not a "
               "paper figure");

    // Frozen baselines of the previous std::map-based kernel
    // (RelWithDebInfo, machine that last touched the kernel), kept in
    // the report so regressions against the rewrite are visible.
    rep.row("baseline(map) ScheduleRun/1000", 10.72, "M/s",
            "heap+ring kernel target: >= 2x");
    rep.row("baseline(map) ScheduleRun/10000", 9.23, "M/s",
            "heap+ring kernel target: >= 2x");
    rep.row("baseline(map) ServiceSubmit", 58.09, "M/s",
            "heap+ring kernel target: >= 2x");
    rep.row("baseline(map) PipelineChunked", 181.4, "us",
            "lower is better");

    rep.seriesHeader({"events", "Mevents/s"});
    for (std::uint64_t n : {1000ull, 10000ull, 100000ull, 1000000ull})
        rep.seriesRow({static_cast<double>(n),
                       kernelEventsPerSec(n) / 1e6});
    return 0;
}
