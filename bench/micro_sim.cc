/**
 * @file
 * Microbenchmarks of the simulator's own primitives
 * (google-benchmark): event queue throughput, service/pipeline cost,
 * RAID mapping, XOR parity bandwidth, and the functional LFS write
 * path.  These guard the simulator's performance, not the paper's
 * results.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "fs/mem_block_device.hh"
#include "lfs/lfs.hh"
#include "raid/parity.hh"
#include "raid/raid_layout.hh"
#include "sim/event_queue.hh"
#include "sim/service.hh"

using namespace raid2;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void
BM_ServiceSubmit(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::Service svc(eq, "svc", sim::Service::Config{40.0, 0, 1});
        for (int i = 0; i < 1000; ++i)
            svc.submit(4096, nullptr);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ServiceSubmit);

void
BM_PipelineChunked(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::Service a(eq, "a", sim::Service::Config{40.0, 0, 1});
        sim::Service b(eq, "b", sim::Service::Config{40.0, 0, 1});
        bool done = false;
        sim::Pipeline::start(eq, {&a, &b}, 10 * sim::MB, 16 * 1024,
                             [&] { done = true; });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
}
BENCHMARK(BM_PipelineChunked);

void
BM_RaidMapRange(benchmark::State &state)
{
    raid::LayoutConfig cfg;
    cfg.level = raid::RaidLevel::Raid5;
    cfg.numDisks = 24;
    cfg.stripeUnitBytes = 64 * 1024;
    raid::RaidLayout layout(cfg, 320ull * 1024 * 1024);
    std::uint64_t off = 0;
    for (auto _ : state) {
        auto extents = layout.mapRange(off % (1ull << 30), sim::MB);
        benchmark::DoNotOptimize(extents.data());
        off += 1234567;
    }
}
BENCHMARK(BM_RaidMapRange);

void
BM_ParityXor(benchmark::State &state)
{
    std::vector<std::uint8_t> dst(1 << 20, 1), src(1 << 20, 2);
    for (auto _ : state) {
        raid::xorInto(dst.data(), src.data(), dst.size());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(state.iterations() * dst.size());
}
BENCHMARK(BM_ParityXor);

void
BM_LfsWritePath(benchmark::State &state)
{
    for (auto _ : state) {
        fs::MemBlockDevice dev(4096, 16384); // 64 MB
        lfs::Lfs::format(dev);
        lfs::Lfs fs(dev);
        const auto ino = fs.create("/f");
        std::vector<std::uint8_t> buf(64 * 1024, 0x5a);
        for (int i = 0; i < 256; ++i)
            fs.write(ino, std::uint64_t(i) * buf.size(),
                     {buf.data(), buf.size()});
        fs.sync();
        benchmark::DoNotOptimize(fs.stats().segmentsWritten);
    }
    state.SetBytesProcessed(state.iterations() * 256 * 64 * 1024);
}
BENCHMARK(BM_LfsWritePath);

} // namespace

BENCHMARK_MAIN();
