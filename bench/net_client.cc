/**
 * @file
 * §3.4 network client performance.
 *
 * "A SPARCstation 10/51 client on the HIPPI network writes data to
 * RAID-II at 3.1 megabytes per second. ... This rather inefficient
 * [polling] implementation limits RAID-II read operations for a single
 * SPARCstation client to 3.2 megabytes/second.  In the implementation
 * currently being developed, the source board will interrupt the CPU
 * when a transfer is complete."  Also: "utilization of the Sun4/280
 * workstation due to network operations is close to zero with the
 * single SPARCstation client writing to the disk array."
 */

#include <cstdlib>
#include <functional>

#include "bench_util.hh"
#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/file_protocol.hh"
#include "sim/event_queue.hh"

using namespace raid2;

namespace {

struct ClientRun
{
    double mbs;
    double host_util;
};

ClientRun
run(bool reads, bool polling_driver, bench::Reporter *rep = nullptr)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    server::Raid2Server srv(eq, "srv", cfg);
    net::UltranetFabric ultranet(eq, "ultra");
    net::ClientModel client(eq, "sparc10");
    server::RaidFileClient::Config pcfg;
    pcfg.pollingDriver = polling_driver;
    server::RaidFileClient lib(eq, srv, client, ultranet, pcfg);

    sim::StatsRegistry reg;
    if (rep) {
        srv.registerStats(reg);
        ultranet.registerStats(reg, "ultranet");
        reg.setElapsed([&eq] { return eq.now(); });
        rep->makeTracer(eq);
    }

    const std::uint64_t req = 1 * sim::MB;
    const std::uint64_t total = 48 * sim::MB;

    if (reads) {
        const auto ino = srv.createFile("/movie");
        std::vector<std::uint8_t> chunk(4 * sim::MB, 0x33);
        for (std::uint64_t off = 0; off < total; off += chunk.size())
            srv.fs().write(ino, off, {chunk.data(), chunk.size()});
        srv.fs().checkpoint();
    }

    std::uint64_t moved = 0;
    server::RaidFileClient::Handle handle = 0;
    bool finished = false;
    sim::Tick start = 0;

    std::function<void()> step = [&] {
        if (moved >= total) {
            finished = true;
            return;
        }
        auto cont = [&](const server::RaidFileClient::Result &r) {
            if (!r.ok()) {
                std::fprintf(stderr, "net_client: transfer failed\n");
                std::exit(1);
            }
            moved += r.bytes;
            step();
        };
        if (reads)
            lib.raidRead(handle, req, cont);
        else
            lib.raidWrite(handle, req, cont);
    };
    lib.raidOpen("/movie", !reads,
                 [&](const server::RaidFileClient::Result &r) {
                     if (!r.ok()) {
                         std::fprintf(stderr,
                                      "net_client: open failed\n");
                         std::exit(1);
                     }
                     handle = r.handle;
                     start = eq.now();
                     step();
                 });
    eq.runUntilDone([&] { return finished; });

    ClientRun out;
    out.mbs = sim::mbPerSec(moved, eq.now() - start);
    out.host_util =
        srv.host().cpu().utilization(eq.now() - start);
    if (rep)
        rep->snapshotRegistry(reg);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("net_client", argc, argv);
    rep.header("§3.4: single SPARCstation 10/51 client over the "
               "Ultranet",
               "paper: client writes 3.1 MB/s; polling-driver "
               "reads 3.2 MB/s");

    const auto wr = run(false, false);
    const auto rd_poll = run(true, true);
    const auto rd_intr = run(true, false, &rep);

    rep.row("Client write to RAID-II", wr.mbs, "MB/s", "3.1");
    rep.row("Client read, polling driver", rd_poll.mbs, "MB/s",
            "3.2");
    rep.row("Client read, interrupt driver", rd_intr.mbs,
            "MB/s", "client-NIC bound (~3.2)");
    rep.row("Host CPU utilization (writes)",
            100.0 * wr.host_util, "%", "close to zero");
    rep.row("Host CPU utilization (polling reads)",
            100.0 * rd_poll.host_util, "%", "high (busy-waits)");

    std::printf("\n  Expected shape: both directions limited to ~3 MB/s "
                "by the client's\n  copy-bound NIC path, far below the "
                "server's capability; the polling\n  read driver burns "
                "the host CPU, the interrupt driver frees it.\n");
    return 0;
}
