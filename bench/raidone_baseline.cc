/**
 * @file
 * §1 baseline: why RAID-I motivated RAID-II.
 *
 * "Experiments with RAID-I show that it performs well when processing
 * small, random I/Os, achieving approximately 275 four-kilobyte random
 * I/Os per second.  However, RAID-I proved woefully inadequate at
 * providing high-bandwidth I/O, sustaining at best 2.3 megabytes/
 * second to a user-level application ... By comparison, a single disk
 * on RAID-I can sustain 1.3 megabytes/second."  Also reproduced here:
 * the 9 MB/s backplane ceiling with the copy bottleneck removed.
 */

#include <functional>

#include "bench_util.hh"
#include "server/raid1_server.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
largeReadMBs(bool bypass_copies)
{
    sim::EventQueue eq;
    server::Raid1Server::Config cfg;
    if (bypass_copies) {
        // Hypothetical: DMA straight to the user buffer, leaving only
        // the 9 MB/s backplane.
        cfg.hostCfg.copyMBs = 10000.0;
    }
    server::Raid1Server srv(eq, "raid1", cfg);

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 2;
    wcfg.requestBytes = 1 * sim::MB;
    wcfg.regionBytes = 2ull * 1024 * 1024 * 1024;
    wcfg.sequential = true;
    wcfg.totalOps = 48;
    wcfg.warmupOps = 4;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        srv.read(off, len, std::move(done));
    };
    return workload::ClosedLoopRunner::run(eq, wcfg, op).throughputMBs();
}

double
singleDiskMBs()
{
    sim::EventQueue eq;
    server::Raid1Server srv(eq, "raid1", server::Raid1Server::Config{});
    std::uint64_t pos = 0, bytes = 0;
    const std::uint64_t req = 256 * sim::KB;
    const int ops = 64;
    int done = 0;
    std::function<void()> issue = [&] {
        if (done == ops)
            return;
        srv.diskRead(0, pos, req, [&] {
            ++done;
            bytes += req;
            issue();
        });
        pos += req;
    };
    issue();
    eq.run();
    return sim::mbPerSec(bytes, eq.now());
}

} // namespace

int
main()
{
    bench::printHeader("RAID-I baseline (the problem statement of §1)",
                       "paper: 2.3 MB/s to the application; 1.3 MB/s "
                       "single disk; 9 MB/s backplane");

    bench::printRow("Large sequential reads, full path",
                    largeReadMBs(false), "MB/s", "2.3");
    bench::printRow("  ...with host copies removed",
                    largeReadMBs(true), "MB/s", "<= 9 (backplane)");
    bench::printRow("Single Wren IV disk, sequential",
                    singleDiskMBs(), "MB/s", "1.3");

    std::printf("\n  Expected shape: the full path is copy-limited near "
                "2.3 MB/s -- an order\n  of magnitude under the 24+ "
                "disks' aggregate -- and even without copies\n  the 9 "
                "MB/s backplane caps the host-centric architecture.\n");
    return 0;
}
