/**
 * @file
 * Reliability campaign: seeded Monte Carlo fault injection sweeping
 * scrub rate x rebuild throttle.
 *
 * §2.3 defers reliability policy; this bench studies it with the
 * fault subsystem.  Each trial replays a generated fault plan (disk
 * deaths, latent sector errors, transient stalls/hangs) into a server
 * with hot-spare auto-rebuild and optional background scrubbing, under
 * closed-loop foreground reads.  Identical trial seeds across settings
 * give paired comparisons: the same fault history, different policy.
 *
 * Reported per setting: probability a trial hits a data-loss event
 * (double failure, latent-while-degraded, or rebuild exposure), mean
 * MTTR, foreground throughput while degraded, and overall throughput.
 * Accelerated failure rates and scaled-down member disks keep trials
 * short; what matters is the *relative* movement across settings — the
 * classic result that scrubbing shrinks rebuild exposure and a rebuild
 * throttle trades MTTR for foreground service (Thomasian,
 * arXiv:1801.08873).
 *
 * RAID2_MTTDL_TRIALS overrides the trials per setting (default 6);
 * RAID2_FAULT_SEED offsets the trial seeds.
 */

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "disk/disk_profile.hh"
#include "fault/fault_plan.hh"
#include "scsi/cougar_controller.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats_registry.hh"

using namespace raid2;

namespace {

/** Scaled-down IBM 0661 (1/40th the cylinders, ~8 MB): a full
 *  rebuild completes well inside a trial horizon (whole fail ->
 *  rebuild -> healthy cycles, not one unfinished rebuild), and a
 *  media-bound scrub sweep of the array takes ~70 s, so a 300 s
 *  campaign sees several sweeps. */
const disk::DiskProfile &
scaledProfile()
{
    static const disk::DiskProfile p = [] {
        disk::DiskProfile s = disk::ibm0661();
        s.name = "ibm0661-scaled";
        s.cylinders /= 40;
        return s;
    }();
    return p;
}

struct Setting
{
    const char *scrubName;
    sim::Tick scrubDelay; // meaningful when scrubOn
    bool scrubOn;
    sim::Tick throttle;
};

struct TrialRow
{
    double loss;        // 1 if any data-loss event
    double mttrMs;      // sum of MTTR samples
    double rebuilds;    // completed rebuilds
    double degradedMB;  // foreground MB completed while degraded
    double degradedSec; // time spent degraded (from MTTR sums)
    double overallMB;   // foreground MB inside the horizon
    double lossEvents;
    /** @{ Loss-class and repair breakdown. */
    double exposed;
    double whileDegraded;
    double doubleFails;
    double scrubRepaired;
    double readRepaired;
    /** @} */
};

constexpr sim::Tick kHorizon = sim::secToTicks(300);

fault::FaultPlan
trialPlan(server::Raid2Server &srv, std::uint64_t seed)
{
    const auto &layout = srv.array().layout();
    fault::FaultPlan::CampaignConfig pc;
    pc.horizon = kHorizon;
    pc.numDisks = layout.numDisks();
    pc.diskBytes = layout.numStripes() * layout.unitBytes();
    pc.numStrings = 8;
    // Accelerated rates: ~1.6 whole-disk deaths expected per trial
    // (capped at 2), a steady drizzle of latent defects and
    // transients.
    pc.diskFailsPerHour = 1.2;
    pc.latentsPerHour = 12.0;
    pc.stallsPerHour = 12.0;
    pc.scsiHangsPerHour = 6.0;
    pc.xbusErrorsPerHour = 6.0;
    pc.hippiDropsPerHour = 12.0;
    pc.latentBytesMax = 32 * 1024;
    return fault::FaultPlan::generate(pc, seed);
}

TrialRow
runTrial(const Setting &st, std::uint64_t seed)
{
    sim::EventQueue eq;
    auto cfg = bench::lfsConfig();
    cfg.withFs = false;
    cfg.withReliability = true;
    cfg.topo.profile = &scaledProfile();
    cfg.recovery.spares = 2;
    cfg.recovery.rebuildWindow = 8;
    cfg.recovery.rebuildThrottle = st.throttle;
    cfg.scrub.chunkBytes = 256 * 1024;
    cfg.scrub.interChunkDelay = st.scrubDelay;
    server::Raid2Server srv(eq, "srv", cfg);

    srv.faults().setPlan(trialPlan(srv, seed));
    srv.faults().start();
    if (st.scrubOn)
        srv.scrubber().start();

    double degradedSec = 0.0;
    srv.recovery().onRebuildDone(
        [&](unsigned, double mttr_ms) { degradedSec += mttr_ms / 1e3; });

    // Closed-loop foreground reads (2 outstanding) until the horizon.
    const std::uint64_t reqBytes = 512 * 1024;
    // A hot set an eighth of the array: latent defects in the cold
    // majority are the scrubber's to find, as in a real file server.
    const std::uint64_t region = srv.array().capacity() / 8;
    sim::Random rng(seed ^ 0x6d74746cull); // "mttl"
    std::uint64_t bytesDone = 0, degradedBytes = 0;
    std::function<void()> issue = [&] {
        if (eq.now() >= kHorizon)
            return;
        const std::uint64_t off =
            rng.below(region / reqBytes) * reqBytes;
        srv.array().read(off, reqBytes, [&] {
            if (eq.now() <= kHorizon) {
                bytesDone += reqBytes;
                if (srv.array().degraded())
                    degradedBytes += reqBytes;
            }
            issue();
        });
    };
    issue();
    issue();

    eq.runUntilDone([&] {
        return eq.now() >= kHorizon &&
               !srv.recovery().rebuildActive() &&
               srv.recovery().failuresWaiting() == 0;
    });
    if (st.scrubOn)
        srv.scrubber().stop();
    eq.run();

    TrialRow r{};
    r.loss = srv.faults().dataLossEvents() > 0 ? 1.0 : 0.0;
    r.lossEvents = static_cast<double>(srv.faults().dataLossEvents());
    r.exposed = static_cast<double>(srv.faults().rebuildExposedRanges());
    r.whileDegraded =
        static_cast<double>(srv.faults().latentsWhileDegraded());
    r.doubleFails = static_cast<double>(srv.faults().doubleFailures());
    r.scrubRepaired =
        static_cast<double>(srv.faults().scrubRepairedRanges());
    r.readRepaired =
        static_cast<double>(srv.faults().readRepairedRanges());
    const auto &mttr = srv.recovery().mttrMs();
    r.rebuilds = static_cast<double>(mttr.count());
    r.mttrMs = mttr.count() ? mttr.mean() * mttr.count() : 0.0;
    r.degradedMB = static_cast<double>(degradedBytes) / 1e6;
    r.degradedSec = degradedSec;
    r.overallMB = static_cast<double>(bytesDone) / 1e6;
    return r;
}

unsigned
trialsPerSetting()
{
    const char *env = std::getenv("RAID2_MTTDL_TRIALS");
    if (!env || !*env)
        return 6;
    const long n = std::strtol(env, nullptr, 10);
    return n > 0 ? static_cast<unsigned>(n) : 1;
}

std::uint64_t
seedBase()
{
    const char *env = std::getenv("RAID2_FAULT_SEED");
    if (!env || !*env)
        return 1;
    return std::strtoull(env, nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter rep("reliability_mttdl", argc, argv);
    rep.header("Reliability: Monte Carlo fault campaigns, scrub rate "
               "x rebuild throttle",
               "policy study; the paper defers it (§2.3)");

    const std::vector<Setting> settings = {
        {"off", 0, false, 0},
        {"slow", sim::msToTicks(100), true, 0},
        {"fast", 0, true, 0},
        {"off", 0, false, sim::msToTicks(250)},
        {"slow", sim::msToTicks(100), true, sim::msToTicks(250)},
        {"fast", 0, true, sim::msToTicks(250)},
    };
    const unsigned trials = trialsPerSetting();
    const std::uint64_t base = seedBase();

    // One simulation per (setting, trial), swept across the pool.
    // Trial seeds repeat across settings: paired fault histories.
    const auto rows = bench::runSweepParallel(
        settings.size() * trials, [&](std::size_t i) {
            const Setting &st = settings[i / trials];
            const TrialRow r = runTrial(st, base + i % trials);
            return std::vector<double>{
                r.loss,       r.mttrMs,        r.rebuilds,
                r.degradedMB, r.degradedSec,   r.overallMB,
                r.lossEvents, r.exposed,       r.whileDegraded,
                r.doubleFails, r.scrubRepaired, r.readRepaired};
        });

    rep.seriesHeader({"scrub ms", "throttle ms", "trials", "loss prob",
                      "MTTR s", "degr MB/s", "overall MB/s",
                      "loss events", "exposed", "while degr",
                      "dbl fail", "scrub rep", "read rep"});
    for (std::size_t s = 0; s < settings.size(); ++s) {
        const Setting &st = settings[s];
        double acc[12] = {};
        for (unsigned t = 0; t < trials; ++t) {
            const auto &r = rows[s * trials + t];
            for (std::size_t k = 0; k < 12; ++k)
                acc[k] += r[k];
        }
        const double horizonSec =
            sim::ticksToMs(kHorizon) / 1e3 * trials;
        rep.seriesRow(
            {st.scrubOn ? sim::ticksToMs(st.scrubDelay) : -1.0,
             sim::ticksToMs(st.throttle), static_cast<double>(trials),
             acc[0] / trials,
             acc[2] ? acc[1] / acc[2] / 1e3 : 0.0,
             acc[4] > 0 ? acc[3] / acc[4] : 0.0, acc[5] / horizonSec,
             acc[6], acc[7], acc[8], acc[9], acc[10], acc[11]});
    }

    // Exemplar campaign snapshot: the full fault/recovery/scrub stats
    // tree for one trial of the fast-scrub, unthrottled setting.
    {
        sim::EventQueue eq;
        auto cfg = bench::lfsConfig();
        cfg.withFs = false;
        cfg.withReliability = true;
        cfg.topo.profile = &scaledProfile();
        cfg.recovery.spares = 2;
        cfg.scrub.interChunkDelay = 0;
        server::Raid2Server srv(eq, "srv", cfg);
        srv.faults().setPlan(trialPlan(srv, base));
        srv.faults().start();
        srv.scrubber().start();
        eq.runUntilDone([&] {
            return eq.now() >= kHorizon &&
                   !srv.recovery().rebuildActive() &&
                   srv.recovery().failuresWaiting() == 0;
        });
        srv.scrubber().stop();
        eq.run();
        sim::StatsRegistry reg;
        reg.setElapsed([&] { return eq.now(); });
        srv.registerStats(reg);
        rep.snapshotRegistry(reg);
    }

    std::printf("\n  Expected shape: scrubbing cuts rebuild-exposure "
                "loss (fewer latents\n  outstanding when a disk "
                "dies); the throttle lengthens MTTR, widening\n  the "
                "double-failure window, but preserves foreground "
                "throughput while\n  degraded.  -1 scrub ms = "
                "scrubbing off.\n");
    return 0;
}
