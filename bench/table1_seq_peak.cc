/**
 * @file
 * Table 1: peak sequential read/write bandwidth of one XBUS board.
 *
 * "Table 1 shows peak performance of the system when sequential read
 * and write operations are performed.  These measurements were
 * obtained using the four Cougar boards attached to the XBUS VME
 * interfaces, and in addition, using a fifth Cougar board attached to
 * the XBUS VME control bus interface.  For requests of size 1.6
 * megabytes, read performance is 31 megabytes/second, compared to 23
 * megabytes/second for writes." (§2.3.)
 *
 * The fifth controller cannot be striped into the main array (the
 * slow control link would throttle every stripe); it runs its own
 * concurrent sequential stream through the control-bus port, which is
 * where the extra ~3 MB/s of read bandwidth (and almost nothing on
 * writes) comes from: 31 = 4 x 6.9 + 3.4, and 23 ~= 4 x 5.9 x 23/24.
 */

#include <functional>
#include <memory>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

/** A fifth Cougar with its disks streaming through the control link. */
struct AuxController
{
    scsi::CougarController cougar;
    std::vector<std::unique_ptr<disk::DiskModel>> disks;
    std::vector<std::unique_ptr<scsi::DiskChannel>> channels;
    std::uint64_t bytesMoved = 0;
    bool stop = false;

    AuxController(sim::EventQueue &eq, xbus::XbusBoard &board,
                  bool writes)
        : cougar(eq, "aux.cougar")
    {
        for (unsigned i = 0; i < 6; ++i) {
            disks.push_back(std::make_unique<disk::DiskModel>(
                eq, "aux.disk" + std::to_string(i), disk::ibm0661()));
            auto &str = cougar.string(i / 3);
            str.attach(disks.back().get());
            channels.push_back(std::make_unique<scsi::DiskChannel>(
                eq, *disks.back(), str, cougar));
        }
        // Keep all six disks streaming sequentially for the whole run.
        for (unsigned i = 0; i < 6; ++i)
            stream(eq, board, i, 0, writes);
    }

    void
    stream(sim::EventQueue &eq, xbus::XbusBoard &board, unsigned d,
           std::uint64_t pos, bool writes)
    {
        if (stop || pos + 64 * sim::KB > disks[d]->capacityBytes())
            return;
        auto cont = [this, &eq, &board, d, pos, writes] {
            bytesMoved += 64 * sim::KB;
            stream(eq, board, d, pos + 64 * sim::KB, writes);
        };
        if (writes) {
            channels[d]->write(
                pos, 64 * sim::KB,
                {sim::Stage(board.memory()),
                 sim::Stage(board.hostLink(), cal::controlLinkWriteMBs)},
                cont);
        } else {
            channels[d]->read(
                pos, 64 * sim::KB,
                {sim::Stage(board.hostLink(), cal::controlLinkReadMBs),
                 sim::Stage(board.memory())},
                cont);
        }
    }
};

double
measure(bool writes)
{
    sim::EventQueue eq;
    auto cfg = bench::hwConfig();
    server::Raid2Server srv(eq, "srv", cfg);

    const std::uint64_t stripe = srv.array().layout().stripeDataBytes();

    AuxController aux(eq, srv.board(), writes);

    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 3; // keep the array busy back-to-back
    // ~1.6 MB requests, stripe-aligned so sequential writes tile the
    // array in full stripes (the peak-bandwidth case of §3.1).
    wcfg.requestBytes = stripe;
    wcfg.regionBytes = stripe * wcfg.processes * 32;
    wcfg.sequential = true;
    wcfg.sharedCursor = true; // back-to-back requests, one stream
    wcfg.totalOps = 60;
    wcfg.warmupOps = 6;

    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        if (writes)
            srv.hwWrite(off, len, std::move(done));
        else
            srv.hwRead(off, len, std::move(done));
    };
    const sim::Tick t0 = eq.now();
    auto res = workload::ClosedLoopRunner::run(eq, wcfg, op);
    aux.stop = true;
    // Attribute the aux stream's bytes over the same wall-clock span.
    const double aux_mbs =
        sim::mbPerSec(aux.bytesMoved, eq.now() - t0);
    return res.throughputMBs() + aux_mbs;
}

} // namespace

int
main()
{
    bench::printHeader("Table 1: peak sequential performance (one XBUS "
                       "board, 4+1 controllers)",
                       "paper: sequential reads 31 MB/s, sequential "
                       "writes 23 MB/s");

    const double rd = measure(false);
    const double wr = measure(true);
    bench::printRow("Sequential reads", rd, "MB/s", "31");
    bench::printRow("Sequential writes", wr, "MB/s", "23");
    std::printf("\n  Expected shape: reads beat writes (parity traffic "
                "+ slower VME write\n  direction); reads gain ~3 MB/s "
                "from the fifth controller, writes almost\n  nothing "
                "through the slow control link.\n");
    return 0;
}
