/**
 * @file
 * Table 2: small random read I/O rates, RAID-I vs RAID-II.
 *
 * "Table 2 compares the I/O rates achieved on our two disk array
 * prototypes ... using a test program that performed random 4
 * kilobyte reads.  In each case, fifteen disks were accessed ... a
 * separate process issued 4 kilobyte, randomly distributed I/O
 * requests to each active disk in the system."  RAID-I reached ~275
 * I/Os/s (67% of its disks' potential), RAID-II over 400 (78%),
 * limited in both cases by host context switches.  (§2.3.)
 */

#include <functional>
#include <vector>

#include "bench_util.hh"
#include "server/raid1_server.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace raid2;

namespace {

struct IopsResult
{
    double iops;
};

/** Per-disk closed loop of 4 KB random reads, RAID-II style: disk ->
 *  XBUS -> host completion, no host data movement. */
IopsResult
raid2Iops(unsigned ndisks, std::uint64_t ops_per_disk)
{
    sim::EventQueue eq;
    auto cfg = bench::hwConfig();
    server::Raid2Server srv(eq, "srv", cfg);
    auto &array = srv.array();
    sim::Random rng(99);

    const std::uint64_t disk_bytes =
        cfg.topo.profile->capacityBytes() - 64 * sim::KB;
    std::uint64_t done_ops = 0;
    const std::uint64_t total = ops_per_disk * ndisks;

    std::function<void(unsigned)> issue = [&](unsigned d) {
        if (done_ops >= total)
            return;
        const std::uint64_t off =
            (rng.below(disk_bytes / 4096)) * 4096;
        array.rawDiskRead(d, off, 4096, [&, d] {
            // Completion processing on the host: the context-switch
            // bound of §2.3.
            srv.host().chargeIoCompletion(false, [&, d] {
                ++done_ops;
                issue(d);
            });
        });
    };
    for (unsigned d = 0; d < ndisks; ++d)
        issue(d);
    eq.runUntilDone([&] { return done_ops >= total; });
    return {static_cast<double>(done_ops) / sim::ticksToSec(eq.now())};
}

/** RAID-I: same loop but all data crosses the host backplane+memory. */
IopsResult
raid1Iops(unsigned ndisks, std::uint64_t ops_per_disk)
{
    sim::EventQueue eq;
    server::Raid1Server srv(eq, "raid1", server::Raid1Server::Config{});
    sim::Random rng(77);

    const std::uint64_t disk_bytes =
        disk::wrenIV().capacityBytes() - 64 * sim::KB;
    std::uint64_t done_ops = 0;
    const std::uint64_t total = ops_per_disk * ndisks;

    std::function<void(unsigned)> issue = [&](unsigned d) {
        if (done_ops >= total)
            return;
        const std::uint64_t off =
            (rng.below(disk_bytes / 4096)) * 4096;
        srv.diskRead(d, off, 4096, [&, d] {
            ++done_ops;
            issue(d);
        });
    };
    for (unsigned d = 0; d < ndisks; ++d)
        issue(d);
    eq.runUntilDone([&] { return done_ops >= total; });
    return {static_cast<double>(done_ops) / sim::ticksToSec(eq.now())};
}

} // namespace

int
main()
{
    bench::printHeader("Table 2: random 4 KB read I/O rates",
                       "paper: RAID-I ~275/s at 15 disks (67% of "
                       "potential); RAID-II 400+/s (78%)");

    // The four cells are independent simulations; run them across the
    // bench thread pool (RAID2_BENCH_THREADS=1 restores serial).
    const auto cells = bench::runSweepParallel(
        4, [](std::size_t i) -> std::vector<double> {
            switch (i) {
              case 0: return {raid1Iops(1, 400).iops};
              case 1: return {raid1Iops(15, 200).iops};
              case 2: return {raid2Iops(1, 400).iops};
              default: return {raid2Iops(15, 200).iops};
            }
        });
    const IopsResult r1_single{cells[0][0]};
    const IopsResult r1_fifteen{cells[1][0]};
    const IopsResult r2_single{cells[2][0]};
    const IopsResult r2_fifteen{cells[3][0]};

    std::printf("  %-10s %18s %18s\n", "system", "1 disk (I/Os/s)",
                "15 disks (I/Os/s)");
    std::printf("  %-10s %18.1f %18.1f\n", "RAID-I", r1_single.iops,
                r1_fifteen.iops);
    std::printf("  %-10s %18.1f %18.1f\n", "RAID-II", r2_single.iops,
                r2_fifteen.iops);

    const double r1_eff = r1_fifteen.iops / (15.0 * r1_single.iops);
    const double r2_eff = r2_fifteen.iops / (15.0 * r2_single.iops);
    std::printf("\n");
    bench::printRow("RAID-I scaling efficiency", 100.0 * r1_eff, "%",
                    "~67%");
    bench::printRow("RAID-II scaling efficiency", 100.0 * r2_eff, "%",
                    "~78%");
    std::printf("\n  Expected shape: RAID-II beats RAID-I per disk "
                "(faster IBM drives) and\n  in scaling (no data through "
                "host memory); both capped by host CPU.\n");
    return 0;
}
