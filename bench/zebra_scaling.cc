/**
 * @file
 * Zebra across RAID-II servers (§5.2).
 *
 * "Its use with RAID-II would provide a mechanism for striping high-
 * bandwidth file accesses over multiple network connections, and
 * therefore across multiple XBUS boards."  This bench measures a
 * single client's log bandwidth as servers are added, plus the cost
 * of reading while one server is down.
 */

#include <memory>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "zebra/zebra_volume.hh"

using namespace raid2;

namespace {

struct Point
{
    double write_mbs;
    double read_mbs;
    double degraded_read_mbs;
};

Point
run(unsigned nservers)
{
    sim::EventQueue eq;
    std::vector<std::unique_ptr<server::Raid2Server>> servers;
    std::vector<server::Raid2Server *> ptrs;
    for (unsigned i = 0; i < nservers; ++i) {
        auto cfg = bench::lfsConfig();
        cfg.fsDeviceBytes = 96ull * 1024 * 1024;
        servers.push_back(std::make_unique<server::Raid2Server>(
            eq, "srv" + std::to_string(i), cfg));
        ptrs.push_back(servers.back().get());
    }
    zebra::ZebraVolume::Config zcfg;
    zcfg.fragmentBytes = 512 * sim::KiB;
    zebra::ZebraVolume vol(eq, ptrs, zcfg);

    Point pt{};
    const std::uint64_t total = 32ull * 1024 * 1024;

    // Write: stream the client log out.
    {
        std::vector<std::uint8_t> chunk(2 * 1024 * 1024, 0x77);
        const sim::Tick t0 = eq.now();
        std::uint64_t sent = 0;
        while (sent < total) {
            bool done = false;
            vol.append({chunk.data(), chunk.size()},
                       [&] { done = true; });
            eq.runUntilDone([&] { return done; });
            sent += chunk.size();
        }
        bool flushed = false;
        vol.flush([&] { flushed = true; });
        eq.runUntilDone([&] { return flushed; });
        pt.write_mbs = sim::mbPerSec(sent, eq.now() - t0);
    }

    // Read it back.
    auto read_all = [&] {
        std::vector<std::uint8_t> buf(4 * 1024 * 1024);
        const sim::Tick t0 = eq.now();
        std::uint64_t got = 0;
        while (got < total) {
            bool done = false;
            vol.read(got, {buf.data(), buf.size()}, [&] { done = true; });
            eq.runUntilDone([&] { return done; });
            got += buf.size();
        }
        return sim::mbPerSec(got, eq.now() - t0);
    };
    pt.read_mbs = read_all();
    vol.failServer(nservers / 2);
    pt.degraded_read_mbs = read_all();
    return pt;
}

} // namespace

int
main()
{
    bench::printHeader("Zebra: one client's log striped across N "
                       "RAID-II servers (§5.2)",
                       "paper: striping across XBUS boards scales "
                       "client bandwidth; parity survives a loss");

    bench::printSeriesHeader(
        {"servers", "write MB/s", "read MB/s", "degraded MB/s"});
    for (unsigned n : {2u, 3u, 4u, 6u, 8u}) {
        const auto pt = run(n);
        bench::printSeriesRow({static_cast<double>(n), pt.write_mbs,
                               pt.read_mbs, pt.degraded_read_mbs});
    }

    std::printf("\n  Expected shape: write bandwidth ~ (N-1)/N of N "
                "servers' aggregate\n  (client computes parity); reads "
                "scale similarly; degraded reads pay the\n  "
                "reconstruction fan-out.\n");
    return 0;
}
