/**
 * @file
 * LFS crash recovery walkthrough (§3.1).
 *
 * "To recover from a file system crash, the LFS server need only
 * process the log from the position of the last checkpoint."  The
 * example builds a file tree, checkpoints, keeps writing (with syncs),
 * then kills the device mid-write — and shows what mount-time roll-
 * forward recovers: everything synced before the crash, and nothing
 * of the torn tail.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fs/fault_device.hh"
#include "fs/mem_block_device.hh"
#include "lfs/lfs.hh"

using namespace raid2;

int
main()
{
    std::printf("LFS crash recovery demo\n");
    std::printf("=======================\n\n");

    fs::MemBlockDevice media(4096, 32768); // 128 MB
    fs::FaultDevice dev(media);
    lfs::Lfs::format(dev);

    std::vector<std::uint8_t> payload(64 * 1024);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);

    {
        lfs::Lfs fs(dev);
        fs.mkdir("/projects");
        for (int i = 0; i < 8; ++i) {
            const auto ino = fs.create("/projects/pre" +
                                       std::to_string(i));
            fs.write(ino, 0, {payload.data(), payload.size()});
        }
        fs.checkpoint();
        std::printf("checkpointed: 8 files under /projects\n");

        // Post-checkpoint work, made durable only by sync (the log).
        for (int i = 0; i < 8; ++i) {
            const auto ino = fs.create("/projects/post" +
                                       std::to_string(i));
            fs.write(ino, 0, {payload.data(), payload.size()});
        }
        fs.sync();
        std::printf("synced (no checkpoint): 8 more files\n");

        // And work that never reaches the media: the "crash" happens
        // while this sync's segment write is in flight.
        const auto ino = fs.create("/projects/lost");
        fs.write(ino, 0, {payload.data(), payload.size()});
        dev.setWriteLimit(3); // a few blocks land, then power fails
        try {
            fs.sync();
        } catch (...) {
        }
        std::printf("CRASH mid-sync (device dropped %llu writes)\n\n",
                    (unsigned long long)dev.droppedWrites());
    }

    // Power back on: remount runs checkpoint load + roll-forward.
    dev.heal();
    lfs::Lfs fs(dev);
    std::printf("remounted; roll-forward processed %llu segments\n",
                (unsigned long long)fs.stats().rollForwardSegments);

    unsigned pre = 0, post = 0, lost = 0, intact = 0;
    for (int i = 0; i < 8; ++i) {
        if (fs.exists("/projects/pre" + std::to_string(i)))
            ++pre;
        if (fs.exists("/projects/post" + std::to_string(i)))
            ++post;
    }
    lost += fs.exists("/projects/lost") ? 1 : 0;

    for (const auto &e : fs.readdir("/projects")) {
        std::vector<std::uint8_t> back(payload.size());
        const auto st = fs.stat("/projects/" + e.name);
        if (st.type != lfs::FileType::Regular)
            continue;
        fs.read(st.ino, 0, {back.data(), back.size()});
        if (back == payload)
            ++intact;
    }

    const auto fsck = fs.fsck();
    std::printf("recovered: %u/8 pre-checkpoint, %u/8 post-checkpoint "
                "(synced), %u unsynced\n",
                pre, post, lost);
    std::printf("content verified intact: %u files\n", intact);
    std::printf("fsck after recovery: %s\n",
                fsck.ok ? "clean" : "PROBLEMS");
    for (const auto &p : fsck.problems())
        std::printf("  %s\n", p.c_str());

    const bool ok = pre == 8 && post == 8 && lost == 0 && fsck.ok &&
                    intact == 16;
    std::printf("\n%s\n", ok ? "SUCCESS: synced data survived, torn "
                               "tail discarded"
                             : "FAILURE");
    return ok ? 0 : 1;
}
