/**
 * @file
 * Disk failure, degraded service and on-line rebuild.
 *
 * RAID-5's point (§1): "this redundancy information can be used to
 * reconstruct the data on disks that fail."  The example fails a
 * member disk of a RAID-II array, shows that (a) the functional array
 * still returns correct bytes, (b) timed reads slow down while
 * degraded, and (c) a RebuildJob restores the disk and service speed.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "raid/raid_array.hh"
#include "raid/reconstruct.hh"
#include "server/raid2_server.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

double
randomReadMBs(sim::EventQueue &eq, raid::SimArray &array)
{
    workload::ClosedLoopRunner::Config wcfg;
    wcfg.processes = 2;
    wcfg.requestBytes = 512 * sim::KB;
    wcfg.regionBytes = 1ull << 30;
    wcfg.totalOps = 80;
    wcfg.warmupOps = 8;
    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        array.read(off, len, std::move(done));
    };
    return workload::ClosedLoopRunner::run(eq, wcfg, op).throughputMBs();
}

} // namespace

int
main()
{
    std::printf("Degraded operation and rebuild on RAID-II\n");
    std::printf("==========================================\n\n");

    // ---- Functional plane: bytes survive a failure. ----------------
    raid::LayoutConfig lcfg;
    lcfg.level = raid::RaidLevel::Raid5;
    lcfg.numDisks = 8;
    lcfg.stripeUnitBytes = 64 * 1024;
    raid::RaidArray farray(lcfg, 8 * sim::MB);

    sim::Random rng(17);
    std::vector<std::uint8_t> blob(3 * sim::MB);
    for (auto &b : blob)
        b = static_cast<std::uint8_t>(rng.next());
    farray.write(1 * sim::MB, {blob.data(), blob.size()});
    std::printf("functional array parity consistent: %s\n",
                farray.redundancyConsistent() ? "yes" : "NO");

    farray.failDisk(3);
    std::vector<std::uint8_t> back(blob.size());
    farray.read(1 * sim::MB, {back.data(), back.size()});
    std::printf("disk 3 failed; degraded read correct: %s\n",
                back == blob ? "yes" : "NO");

    farray.rebuildDisk(3);
    std::printf("after rebuild, parity consistent: %s\n\n",
                farray.redundancyConsistent() ? "yes" : "NO");

    // ---- Timing plane: service under degradation + rebuild. --------
    sim::EventQueue eq;
    server::Raid2Server::Config cfg;
    cfg.withFs = false;
    cfg.topo.disksPerString = 2; // 16 disks
    server::Raid2Server server(eq, "srv", cfg);
    auto &array = server.array();

    const double healthy = randomReadMBs(eq, array);
    array.failDisk(5);
    const double degraded = randomReadMBs(eq, array);

    const sim::Tick rebuild_start = eq.now();
    raid::RebuildJob job(eq, array, 5, /*window=*/4);
    bool rebuilt = false;
    job.start([&] { rebuilt = true; });
    eq.runUntilDone([&] { return rebuilt; });
    const double rebuild_min =
        sim::ticksToMs(eq.now() - rebuild_start) / 60000.0;
    const double restored = randomReadMBs(eq, array);

    std::printf("timed array, 512 KB random reads:\n");
    std::printf("  healthy:   %6.2f MB/s\n", healthy);
    std::printf("  degraded:  %6.2f MB/s  (reconstructing on the "
                "fly)\n", degraded);
    std::printf("  rebuild:   %6.2f simulated minutes for %llu "
                "stripes\n", rebuild_min,
                (unsigned long long)job.stripesTotal());
    std::printf("  restored:  %6.2f MB/s\n", restored);

    const bool ok = back == blob && farray.redundancyConsistent() &&
                    degraded < healthy && restored > degraded;
    std::printf("\n%s\n", ok ? "SUCCESS" : "FAILURE");
    return ok ? 0 : 1;
}
