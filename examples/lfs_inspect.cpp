/**
 * @file
 * A look inside the log: build a file system, churn it, and dump the
 * LFS internals — segment utilization before and after cleaning, the
 * namespace tree, and the write-cost accounting that drives the
 * cost-benefit cleaner (§3.1's "log" made visible).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fs/mem_block_device.hh"
#include "lfs/lfs.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace raid2;

namespace {

void
printUtilizationHistogram(const lfs::Lfs &fs, const char *label)
{
    sim::Histogram hist(0.0, 1.0001, 10);
    std::uint64_t free_segs = 0;
    for (std::uint64_t s = 0; s < fs.totalSegments(); ++s) {
        const double u = fs.segmentUtilization(s);
        if (u == 0.0)
            ++free_segs;
        else
            hist.sample(u);
    }
    std::printf("%s\n", label);
    std::printf("  free segments: %llu / %llu\n",
                (unsigned long long)free_segs,
                (unsigned long long)fs.totalSegments());
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
        if (hist.bucketCount(b) == 0)
            continue;
        std::printf("  util %3.0f%%-%3.0f%%: %4llu segments  ",
                    100 * hist.bucketLo(b), 100 * hist.bucketHi(b),
                    (unsigned long long)hist.bucketCount(b));
        for (std::uint64_t i = 0; i < hist.bucketCount(b) && i < 48;
             ++i)
            std::putchar('#');
        std::putchar('\n');
    }
}

void
printTree(const lfs::Lfs &fs, const std::string &path, int depth)
{
    for (const auto &e : fs.readdir(path)) {
        const std::string child =
            path == "/" ? "/" + e.name : path + "/" + e.name;
        const auto st = fs.stat(child);
        std::printf("  %*s%-20s", depth * 2, "", e.name.c_str());
        if (st.type == lfs::FileType::Directory) {
            std::printf(" <dir nlink=%u>\n", st.nlink);
            printTree(fs, child, depth + 1);
        } else {
            std::printf(" %8llu bytes  nlink=%u  ino=%u\n",
                        (unsigned long long)st.size, st.nlink, st.ino);
        }
    }
}

} // namespace

int
main()
{
    std::printf("Inside the log-structured file system\n");
    std::printf("======================================\n\n");

    fs::MemBlockDevice dev(4096, 16384); // 64 MB
    lfs::Lfs::Params params;
    params.segBlocks = 64; // 256 KB segments: more bars to look at
    lfs::Lfs::format(dev, params);
    lfs::Lfs fs(dev);

    // A small project tree plus heavy churn on a scratch file.
    fs.mkdir("/src");
    fs.mkdir("/src/core");
    fs.mkdir("/build");
    sim::Random rng(7);
    std::vector<std::uint8_t> buf;
    for (int i = 0; i < 6; ++i) {
        const auto ino =
            fs.create("/src/core/mod" + std::to_string(i) + ".cc");
        buf.assign(20000 + rng.below(60000), std::uint8_t(i));
        fs.write(ino, 0, {buf.data(), buf.size()});
    }
    const auto scratch = fs.create("/build/scratch.o");
    for (int round = 0; round < 40; ++round) {
        buf.assign(300000, std::uint8_t(round));
        fs.write(scratch, 0, {buf.data(), buf.size()});
        if (round % 5 == 0)
            fs.sync();
    }
    fs.create("/README");
    fs.link("/README", "/src/README-link");
    fs.checkpoint();

    std::printf("namespace:\n");
    printTree(fs, "/", 0);
    std::printf("\n");

    printUtilizationHistogram(
        fs, "segment utilization after churn (overwrites leave "
            "half-dead segments):");

    const auto before = fs.stats();
    const unsigned reclaimed =
        fs.clean(static_cast<unsigned>(fs.totalSegments()));
    const auto after = fs.stats();
    const double copied = static_cast<double>(
        after.cleanerBlocksCopied - before.cleanerBlocksCopied);
    const double freed_blocks =
        reclaimed > 0 ? 64.0 * reclaimed : 1.0;
    std::printf("\ncleaner: reclaimed %u segments, copied %.0f live "
                "blocks (write cost %.2fx)\n",
                reclaimed, copied, 1.0 + copied / freed_blocks);
    std::printf("\n");
    printUtilizationHistogram(fs, "segment utilization after cleaning:");

    const auto report = fs.fsck();
    std::printf("\nfsck: %s\n", report.ok ? "clean" : "PROBLEMS");
    for (const auto &p : report.problems())
        std::printf("  %s\n", p.c_str());
    std::printf("log stats: %llu segments written, %llu checkpoints, "
                "%llu cleaned\n",
                (unsigned long long)after.segmentsWritten,
                (unsigned long long)after.checkpoints,
                (unsigned long long)after.cleanerSegmentsCleaned);
    return report.ok ? 0 : 1;
}
