/**
 * @file
 * The two access modes (§2.1.1, §3.3).
 *
 * "Any client request can be serviced using either access mode, but we
 * maximize utilization and performance of the high-bandwidth data path
 * if smaller requests use the Ethernet network and larger requests use
 * the HIPPI network."  This example serves the same files over both
 * paths and shows where the crossover lives: small files are fine over
 * Ethernet (standard mode, NFS-style), large files need the fast path.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/file_protocol.hh"
#include "server/raid2_server.hh"
#include "sim/event_queue.hh"

using namespace raid2;

namespace {

struct ModeResult
{
    double standard_ms;
    double fast_ms;
};

ModeResult
serveFile(std::uint64_t bytes)
{
    sim::EventQueue eq;
    server::Raid2Server::Config cfg;
    cfg.topo.disksPerString = 2;
    server::Raid2Server server(eq, "srv", cfg);
    net::UltranetFabric ultranet(eq, "ultra");
    net::ClientModel client(eq, "ws");
    server::RaidFileClient lib(eq, server, client, ultranet);

    const auto ino = server.createFile("/file");
    std::vector<std::uint8_t> data(bytes, 0x11);
    server.fs().write(ino, 0, {data.data(), data.size()});
    server.fs().checkpoint();

    ModeResult res{};

    // Standard mode: Ethernet through the host (NFS-style).
    {
        const sim::Tick t0 = eq.now();
        bool done = false;
        server.standardRead(ino, 0, bytes, [&] { done = true; });
        eq.runUntilDone([&] { return done; });
        res.standard_ms = sim::ticksToMs(eq.now() - t0);
    }

    // High-bandwidth mode: raid_read over the Ultranet.
    {
        bool done = false;
        sim::Tick t0 = 0;
        lib.raidOpen("/file", false,
                     [&](const server::RaidFileClient::Result &open) {
                         t0 = eq.now();
                         lib.raidRead(open.handle, bytes,
                                      [&](const server::RaidFileClient::
                                              Result &) {
                                          done = true;
                                      });
                     });
        eq.runUntilDone([&] { return done; });
        res.fast_ms = sim::ticksToMs(eq.now() - t0);
    }
    return res;
}

} // namespace

int
main()
{
    std::printf("Standard mode (Ethernet) vs high-bandwidth mode "
                "(HIPPI/Ultranet)\n");
    std::printf("================================================="
                "==============\n\n");
    std::printf("%10s %16s %16s %10s\n", "file KB", "Ethernet ms",
                "fast path ms", "winner");

    for (std::uint64_t kb :
         {4ull, 16ull, 64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
        const auto r = serveFile(kb * sim::KB);
        const double ratio = r.standard_ms / r.fast_ms;
        const char *verdict = ratio < 0.95  ? "Ethernet"
                              : ratio < 1.3 ? "toss-up"
                                            : "HIPPI";
        std::printf("%10llu %16.2f %16.2f %10s\n",
                    (unsigned long long)kb, r.standard_ms, r.fast_ms,
                    verdict);
    }

    std::printf("\nExpected: for tiny requests the two paths are "
                "comparable, so standard\nmode is preferred to keep "
                "the HIPPI path free (\u00a72.1.1 is about\n"
                "utilization, not latency); the fast path wins "
                "decisively as size grows.\n");
    return 0;
}
