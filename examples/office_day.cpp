/**
 * @file
 * A day at the office: trace-driven workstation file service.
 *
 * §4.1 contrasts RAID-II with NFS-style servers built for "a large
 * number of clients" making small, latency-sensitive requests.  This
 * example synthesizes an office/engineering trace (small whole-file
 * reads, bursty writes, a few big sequential files), replays it
 * through the server over both access modes, and reports the latency
 * picture each mode gives the clients.
 */

#include <cstdio>
#include <fstream>

#include "server/raid2_server.hh"
#include "sim/event_queue.hh"
#include "workload/trace.hh"

using namespace raid2;

namespace {

workload::TraceReplayer::Results
runMode(const workload::Trace &trace, bool standard_mode)
{
    sim::EventQueue eq;
    server::Raid2Server::Config cfg;
    cfg.topo.disksPerString = 2;
    cfg.fsDeviceBytes = 384ull * 1024 * 1024;
    server::Raid2Server srv(eq, "office", cfg);

    workload::TraceReplayer::Config rcfg;
    rcfg.paced = true;
    rcfg.standardMode = standard_mode;
    auto res = workload::TraceReplayer::replay(eq, srv, trace, rcfg);
    if (!srv.fs().fsck().ok)
        std::printf("  (fsck reported problems!)\n");
    return res;
}

} // namespace

int
main()
{
    std::printf("Trace-driven office workload on RAID-II (§4.1)\n");
    std::printf("===============================================\n\n");

    const auto trace = workload::Trace::synthesizeOffice(
        /*clients=*/12, sim::secToTicks(120), /*seed=*/2026);
    std::printf("synthesized trace: %zu ops, %.1f MB moved over %.0f "
                "simulated seconds\n",
                trace.size(), trace.totalBytes() / 1e6,
                sim::ticksToSec(trace.duration()));

    // The trace is an artifact too: save and re-parse it.
    {
        std::ofstream out("/tmp/office_day.trace");
        trace.save(out);
    }
    std::printf("saved to /tmp/office_day.trace (plain text, "
                "replayable)\n\n");

    const auto fast = runMode(trace, false);
    const auto standard = runMode(trace, true);

    std::printf("%-24s %14s %14s\n", "", "fast path", "standard mode");
    std::printf("%-24s %14.1f %14.1f\n", "mean op latency (ms)",
                fast.latencyMs.mean(), standard.latencyMs.mean());
    std::printf("%-24s %14.1f %14.1f\n", "max op latency (ms)",
                fast.latencyMs.max(), standard.latencyMs.max());
    std::printf("%-24s %14.1f %14.1f\n", "achieved ops/s",
                fast.opsPerSec(), standard.opsPerSec());

    std::printf("\nExpected: the paced trace completes on both paths, "
                "but Ethernet-mode\nlatencies stretch with transfer "
                "size while the fast path stays flat —\nthe reason "
                "§2.1.1 routes small requests to Ethernet only to "
                "keep the\nHIPPI path free for the big ones.\n");
    return 0;
}
