/**
 * @file
 * Quickstart: bring up a RAID-II server, store a file through the
 * client library over the Ultranet fast path, read it back, and check
 * the bytes survived the trip through LFS and the RAID-5 array.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/file_protocol.hh"
#include "server/raid2_server.hh"
#include "sim/event_queue.hh"

using namespace raid2;

int
main()
{
    std::printf("RAID-II quickstart\n");
    std::printf("==================\n\n");

    // 1. The simulated world: one event queue drives everything.
    sim::EventQueue eq;

    // 2. A RAID-II server: XBUS board, 16 IBM 0661 drives in RAID-5
    //    (64 KB stripe unit), LFS with 960 KB segments.
    server::Raid2Server::Config cfg;
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 2;
    server::Raid2Server server(eq, "raid2", cfg);
    std::printf("server: %u disks, %s, stripe unit %llu KB, capacity "
                "%.1f GB\n",
                server.array().numDisks(),
                raid::raidLevelName(server.array().layout().level()),
                (unsigned long long)(server.array().layout().unitBytes() /
                                     1024),
                server.array().capacity() / 1e9);

    // 3. A client workstation on the Ultranet ring, using the RAID
    //    file library (raid_open / raid_read / raid_write, §3.3).
    net::UltranetFabric ultranet(eq, "ultranet");
    net::ClientModel client(eq, "client");
    server::RaidFileClient lib(eq, server, client, ultranet);

    const std::uint64_t file_bytes = 16 * sim::MB;
    const std::uint64_t req = 1 * sim::MB;

    // 4. Write the file over the fast path.
    server::RaidFileClient::Handle handle = 0;
    std::uint64_t written = 0;
    bool write_finished = false;
    sim::Tick write_start = 0;

    std::function<void()> write_next = [&] {
        if (written >= file_bytes) {
            server.fsSync([&] { write_finished = true; });
            return;
        }
        lib.raidWrite(handle, req,
                      [&](const server::RaidFileClient::Result &r) {
                          if (!r.ok()) {
                              std::printf("raid_write failed\n");
                              std::exit(1);
                          }
                          written += r.bytes;
                          write_next();
                      });
    };
    server.fs().mkdir("/demo"); // parent directory for the new file
    lib.raidOpen("/demo/movie.bin", /*create=*/true,
                 [&](const server::RaidFileClient::Result &r) {
                     if (!r.ok()) {
                         std::printf("raid_open failed\n");
                         std::exit(1);
                     }
                     handle = r.handle;
                     write_start = eq.now();
                     write_next();
                 });

    eq.runUntilDone([&] { return write_finished; });
    const double write_mbs =
        sim::mbPerSec(written, eq.now() - write_start);

    // 5. Read it back.
    lib.raidSeek(handle, 0);
    std::uint64_t read_back = 0;
    bool read_finished = false;
    const sim::Tick read_start = eq.now();
    std::function<void()> read_next = [&] {
        if (read_back >= file_bytes) {
            read_finished = true;
            return;
        }
        lib.raidRead(handle, req,
                     [&](const server::RaidFileClient::Result &r) {
                         if (!r.ok()) {
                             std::printf("raid_read failed\n");
                             std::exit(1);
                         }
                         read_back += r.bytes;
                         read_next();
                     });
    };
    read_next();
    eq.runUntilDone([&] { return read_finished; });
    const double read_mbs =
        sim::mbPerSec(read_back, eq.now() - read_start);
    lib.raidClose(handle);

    // 6. Verify the functional plane end to end.
    const auto st = server.fs().stat("/demo/movie.bin");
    std::vector<std::uint8_t> data(st.size);
    server.fs().read(st.ino, 0, {data.data(), data.size()});
    std::uint64_t nonzero = 0;
    for (std::uint8_t b : data)
        nonzero += b != 0;
    const auto fsck = server.fs().fsck();

    std::printf("\nwrote %llu MB at %.2f MB/s (client-limited, §3.4)\n",
                (unsigned long long)(written / sim::MB), write_mbs);
    std::printf("read  %llu MB at %.2f MB/s\n",
                (unsigned long long)(read_back / sim::MB), read_mbs);
    std::printf("file size on server: %llu bytes, %llu non-zero\n",
                (unsigned long long)st.size,
                (unsigned long long)nonzero);
    std::printf("segments written: %llu, fsck: %s\n",
                (unsigned long long)server.fs().stats().segmentsWritten,
                fsck.ok ? "clean" : "PROBLEMS");
    for (const auto &p : fsck.problems())
        std::printf("  fsck: %s\n", p.c_str());

    return fsck.ok && st.size == file_bytes ? 0 : 1;
}
