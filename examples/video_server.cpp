/**
 * @file
 * Video storage and playback server (§5.1).
 *
 * "RAID-II will act as a high-bandwidth video storage and playback
 * server ... RAID-II will provide video storage and play-back from the
 * disk array to a network of base stations."  This example stores a
 * set of "video" files and then plays them back as open-loop periodic
 * streams, sweeping the number of concurrent viewers and reporting
 * deadline misses — the question a playback service actually cares
 * about.
 */

#include <cstdio>
#include <vector>

#include "server/raid2_server.hh"
#include "sim/event_queue.hh"
#include "workload/generators.hh"

using namespace raid2;

namespace {

struct PlaybackResult
{
    unsigned streams;
    double miss_rate;
    double mean_latency_ms;
    double p_like_max_ms;
};

PlaybackResult
playback(unsigned streams)
{
    sim::EventQueue eq;
    server::Raid2Server::Config cfg;
    cfg.topo.numCougars = 4;
    cfg.topo.disksPerString = 3; // full 24-disk array
    cfg.fsDeviceBytes = 512ull * 1024 * 1024;
    server::Raid2Server server(eq, "vs", cfg);

    // Store one clip per stream: ~30 s of 2 Mb/s video in 256 KB
    // "frames" (a GOP each).
    const std::uint64_t frame = 256 * sim::KB;
    const std::uint64_t frames_per_clip = 64;
    std::vector<lfs::InodeNum> clips;
    std::vector<std::uint8_t> buf(4 * sim::MB, 0x42);
    for (unsigned s = 0; s < streams; ++s) {
        const auto ino =
            server.createFile("/clip" + std::to_string(s));
        for (std::uint64_t off = 0; off < frame * frames_per_clip;
             off += buf.size()) {
            server.fs().write(ino, off, {buf.data(), buf.size()});
        }
        clips.push_back(ino);
    }
    server.fs().checkpoint();

    workload::StreamRunner::Config scfg;
    scfg.streams = streams;
    scfg.frameBytes = frame;
    scfg.framePeriod = sim::msToTicks(250); // ~1 MB/s per stream
    scfg.framesPerStream = frames_per_clip;
    const std::uint64_t clip_bytes = frame * frames_per_clip;
    scfg.streamStrideBytes = clip_bytes;

    auto op = [&](std::uint64_t off, std::uint64_t len,
                  std::function<void()> done) {
        // StreamRunner strides each stream by one clip; decode the
        // clip index and position back out of the offset.
        const unsigned s = static_cast<unsigned>(off / clip_bytes);
        server.fileRead(clips[s], off % clip_bytes, len,
                        std::move(done));
    };
    const auto res = workload::StreamRunner::run(eq, scfg, op);

    PlaybackResult out;
    out.streams = streams;
    out.miss_rate = res.missRate();
    out.mean_latency_ms = res.frameLatencyMs.mean();
    out.p_like_max_ms = res.frameLatencyMs.max();
    return out;
}

} // namespace

int
main()
{
    std::printf("RAID-II as a video playback server (§5.1)\n");
    std::printf("==========================================\n");
    std::printf("~1 MB/s streams (256 KB GOP / 250 ms); server is a "
                "24-disk RAID-5\n\n");
    std::printf("%8s %12s %16s %14s\n", "streams", "miss %",
                "mean frame ms", "max frame ms");

    for (unsigned streams : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
        const auto r = playback(streams);
        std::printf("%8u %12.2f %16.2f %14.2f\n", r.streams,
                    100.0 * r.miss_rate, r.mean_latency_ms,
                    r.p_like_max_ms);
    }

    std::printf("\nExpected: clean playback for a handful of streams, "
                "then rising deadline\nmisses as aggregate demand "
                "approaches the array's ~20 MB/s delivery.\n");
    return 0;
}
