/**
 * @file
 * Striping across file servers with Zebra (§5.2) — the §5.1 scenario:
 * an instrument (the LBL electron microscope of the Gigabit Test Bed)
 * streams data faster than one server can absorb, so the client
 * stripes its log across several RAID-II servers with client-computed
 * parity, survives a server failure mid-experiment, and rebuilds the
 * lost fragments on line.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "zebra/zebra_volume.hh"

using namespace raid2;

namespace {

double
streamIn(sim::EventQueue &eq, zebra::ZebraVolume &vol,
         const std::vector<std::uint8_t> &capture)
{
    const sim::Tick t0 = eq.now();
    const std::uint64_t burst = 2 * 1024 * 1024;
    for (std::uint64_t off = 0; off < capture.size(); off += burst) {
        const std::uint64_t n =
            std::min<std::uint64_t>(burst, capture.size() - off);
        bool done = false;
        vol.append({capture.data() + off, n}, [&] { done = true; });
        eq.runUntilDone([&] { return done; });
    }
    bool flushed = false;
    vol.flush([&] { flushed = true; });
    eq.runUntilDone([&] { return flushed; });
    return sim::mbPerSec(capture.size(), eq.now() - t0);
}

bool
verify(sim::EventQueue &eq, zebra::ZebraVolume &vol,
       const std::vector<std::uint8_t> &capture)
{
    std::vector<std::uint8_t> back(capture.size());
    bool done = false;
    vol.read(0, {back.data(), back.size()}, [&] { done = true; });
    eq.runUntilDone([&] { return done; });
    return back == capture;
}

} // namespace

int
main()
{
    std::printf("Zebra: striping one client's log across RAID-II "
                "servers (§5.2)\n");
    std::printf("============================================="
                "=================\n\n");

    sim::EventQueue eq;
    constexpr unsigned nservers = 4;
    std::vector<std::unique_ptr<server::Raid2Server>> servers;
    std::vector<server::Raid2Server *> ptrs;
    for (unsigned i = 0; i < nservers; ++i) {
        server::Raid2Server::Config cfg;
        cfg.topo.disksPerString = 2; // 16 disks each
        cfg.fsDeviceBytes = 96ull * 1024 * 1024;
        servers.push_back(std::make_unique<server::Raid2Server>(
            eq, "srv" + std::to_string(i), cfg));
        ptrs.push_back(servers.back().get());
    }
    zebra::ZebraVolume::Config zcfg;
    zcfg.fragmentBytes = 512 * 1024;
    zebra::ZebraVolume vol(eq, ptrs, zcfg);

    // The "microscope capture": 48 MB of random bytes.
    sim::Random rng(2026);
    std::vector<std::uint8_t> capture(48ull * 1024 * 1024);
    for (auto &b : capture)
        b = static_cast<std::uint8_t>(rng.next());

    const double in_mbs = streamIn(eq, vol, capture);
    std::printf("streamed %zu MB across %u servers at %.1f MB/s "
                "(%llu stripes)\n",
                capture.size() >> 20, nservers, in_mbs,
                (unsigned long long)vol.stripesWritten());

    const bool ok1 = verify(eq, vol, capture);
    std::printf("playback verified: %s\n", ok1 ? "yes" : "NO");

    // A server dies mid-experiment.
    vol.failServer(1);
    const bool ok2 = verify(eq, vol, capture);
    std::printf("server 1 down; degraded playback verified: %s "
                "(%llu reconstructed fragments)\n",
                ok2 ? "yes" : "NO",
                (unsigned long long)vol.degradedReads());

    // Replace it and rebuild its fragment file from the survivors.
    vol.restoreServer(1);
    const sim::Tick t0 = eq.now();
    bool rebuilt = false;
    vol.rebuildServer(1, [&] { rebuilt = true; });
    eq.runUntilDone([&] { return rebuilt; });
    std::printf("server 1 rebuilt on line in %.1f simulated seconds\n",
                sim::ticksToSec(eq.now() - t0));

    const bool ok3 = verify(eq, vol, capture);
    std::printf("post-rebuild playback verified: %s\n",
                ok3 ? "yes" : "NO");

    const bool ok = ok1 && ok2 && ok3;
    std::printf("\n%s\n", ok ? "SUCCESS" : "FAILURE");
    return ok ? 0 : 1;
}
