#include "check/artifact.hh"

#include <sstream>
#include <stdexcept>

namespace raid2::check {

namespace {

const char *
modeName(TrialSpec::Mode m)
{
    switch (m) {
      case TrialSpec::Mode::Cut:
        return "cut";
      case TrialSpec::Mode::Torn:
        return "torn";
      case TrialSpec::Mode::Dropped:
        return "dropped";
      case TrialSpec::Mode::Corrupt:
        return "corrupt";
    }
    return "?";
}

TrialSpec::Mode
modeFromName(const std::string &name)
{
    if (name == "cut")
        return TrialSpec::Mode::Cut;
    if (name == "torn")
        return TrialSpec::Mode::Torn;
    if (name == "dropped")
        return TrialSpec::Mode::Dropped;
    if (name == "corrupt")
        return TrialSpec::Mode::Corrupt;
    throw std::runtime_error("artifact: bad trial mode '" + name + "'");
}

[[noreturn]] void
malformed(const std::string &what)
{
    throw std::runtime_error("artifact: " + what);
}

std::string
nextLine(std::istringstream &in, const char *what)
{
    std::string line;
    if (!std::getline(in, line))
        malformed(std::string("truncated before ") + what);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

Op
parseOp(const std::string &line)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    Op op;
    auto need = [&](auto &...field) {
        (in >> ... >> field);
        if (in.fail())
            malformed("bad op line '" + line + "'");
    };
    if (kind == "create") {
        op.kind = Op::Kind::Create;
        need(op.path);
    } else if (kind == "mkdir") {
        op.kind = Op::Kind::Mkdir;
        need(op.path);
    } else if (kind == "write") {
        op.kind = Op::Kind::Write;
        need(op.path, op.off, op.len, op.dataSeed);
    } else if (kind == "truncate") {
        op.kind = Op::Kind::Truncate;
        need(op.path, op.len);
    } else if (kind == "rename") {
        op.kind = Op::Kind::Rename;
        need(op.path, op.path2);
    } else if (kind == "link") {
        op.kind = Op::Kind::Link;
        need(op.path, op.path2);
    } else if (kind == "unlink") {
        op.kind = Op::Kind::Unlink;
        need(op.path);
    } else if (kind == "rmdir") {
        op.kind = Op::Kind::Rmdir;
        need(op.path);
    } else if (kind == "sync") {
        op.kind = Op::Kind::Sync;
    } else if (kind == "checkpoint") {
        op.kind = Op::Kind::Checkpoint;
    } else if (kind == "clean") {
        op.kind = Op::Kind::Clean;
        need(op.len);
    } else if (kind == "snap_create") {
        op.kind = Op::Kind::SnapCreate;
        need(op.path);
    } else if (kind == "snap_delete") {
        op.kind = Op::Kind::SnapDelete;
        need(op.path);
    } else {
        malformed("unknown op '" + kind + "'");
    }
    return op;
}

SessionOp
parseSessionOp(const std::string &line)
{
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    SessionOp op;
    auto need = [&](auto &...field) {
        (in >> ... >> field);
        if (in.fail())
            malformed("bad history line '" + line + "'");
    };
    if (kind == "open") {
        op.kind = SessionOp::Kind::Open;
        need(op.client, op.path);
    } else if (kind == "pwrite") {
        op.kind = SessionOp::Kind::PWrite;
        need(op.client, op.off, op.len);
    } else if (kind == "burst_write") {
        op.kind = SessionOp::Kind::BurstWrite;
        need(op.client, op.off, op.len);
    } else if (kind == "pread") {
        op.kind = SessionOp::Kind::PRead;
        need(op.client, op.off, op.len);
    } else if (kind == "seek") {
        op.kind = SessionOp::Kind::Seek;
        need(op.client, op.off);
    } else if (kind == "close") {
        op.kind = SessionOp::Kind::Close;
        need(op.client);
    } else if (kind == "sync") {
        op.kind = SessionOp::Kind::Sync;
        need(op.client);
    } else if (kind == "snap_create") {
        op.kind = SessionOp::Kind::SnapCreate;
        need(op.client, op.path);
    } else if (kind == "snap_delete") {
        op.kind = SessionOp::Kind::SnapDelete;
        need(op.client, op.path);
    } else {
        malformed("unknown history op '" + kind + "'");
    }
    return op;
}

fault::FaultKind
faultKindFromName(const std::string &name)
{
    using K = fault::FaultKind;
    for (K k : {K::DiskFail, K::LatentError, K::DiskStall, K::ScsiHang,
                K::XbusPortError, K::HippiLinkDrop,
                K::SilentCorruption}) {
        if (name == fault::faultKindName(k))
            return k;
    }
    malformed("unknown fault kind '" + name + "'");
}

CheckConfig
parseConfigLine(std::istringstream &in)
{
    CheckConfig cfg;
    std::istringstream ln(nextLine(in, "config"));
    std::string tag;
    unsigned autoclean = 0;
    ln >> tag >> cfg.blockSize >> cfg.numBlocks >> cfg.segBlocks >>
        cfg.maxInodes >> autoclean;
    if (ln.fail() || tag != "config")
        malformed("bad config line");
    cfg.autoClean = autoclean != 0;
    return cfg;
}

std::size_t
parseCountLine(std::istringstream &in, const char *what)
{
    std::istringstream ln(nextLine(in, what));
    std::string tag;
    std::size_t n = 0;
    ln >> tag >> n;
    if (ln.fail() || tag != what)
        malformed(std::string("bad ") + what + " line");
    return n;
}

TrialSpec
parseTrialLine(std::istringstream &in)
{
    TrialSpec trial;
    std::istringstream ln(nextLine(in, "trial"));
    std::string tag, mode;
    unsigned mask = 0;
    ln >> tag >> mode >> trial.cut >> trial.target >> mask >>
        trial.forceBarrier;
    if (ln.fail() || tag != "trial")
        malformed("bad trial line");
    trial.mode = modeFromName(mode);
    trial.xorMask = static_cast<std::uint8_t>(mask);
    return trial;
}

void
serializeTail(std::ostringstream &out, const CheckConfig &,
              const TrialSpec &trial,
              const std::vector<std::string> &diffs)
{
    out << "trial " << modeName(trial.mode) << " " << trial.cut << " "
        << trial.target << " " << unsigned(trial.xorMask) << " "
        << trial.forceBarrier << "\n";
    out << "diffs " << diffs.size() << "\n";
    for (const std::string &d : diffs)
        out << d << "\n";
    out << "end\n";
}

} // namespace

std::string
Artifact::serialize() const
{
    std::ostringstream out;
    out << "raid2-check v1\n";
    out << "config " << cfg.blockSize << " " << cfg.numBlocks << " "
        << cfg.segBlocks << " " << cfg.maxInodes << " "
        << (cfg.autoClean ? 1 : 0) << "\n";
    out << "ops " << ops.size() << "\n";
    for (const Op &op : ops)
        out << op.str() << "\n";
    out << "trial " << modeName(trial.mode) << " " << trial.cut << " "
        << trial.target << " " << unsigned(trial.xorMask) << " "
        << trial.forceBarrier << "\n";
    out << "diffs " << diffs.size() << "\n";
    for (const std::string &d : diffs)
        out << d << "\n";
    out << "end\n";
    return out.str();
}

Artifact
Artifact::parse(const std::string &text)
{
    std::istringstream in(text);
    Artifact art;

    if (nextLine(in, "header") != "raid2-check v1")
        malformed("bad header (want 'raid2-check v1')");

    {
        std::istringstream ln(nextLine(in, "config"));
        std::string tag;
        unsigned autoclean = 0;
        ln >> tag >> art.cfg.blockSize >> art.cfg.numBlocks >>
            art.cfg.segBlocks >> art.cfg.maxInodes >> autoclean;
        if (ln.fail() || tag != "config")
            malformed("bad config line");
        art.cfg.autoClean = autoclean != 0;
    }

    {
        std::istringstream ln(nextLine(in, "ops"));
        std::string tag;
        std::size_t n = 0;
        ln >> tag >> n;
        if (ln.fail() || tag != "ops")
            malformed("bad ops line");
        art.ops.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            art.ops.push_back(parseOp(nextLine(in, "op")));
    }

    {
        std::istringstream ln(nextLine(in, "trial"));
        std::string tag, mode;
        unsigned mask = 0;
        ln >> tag >> mode >> art.trial.cut >> art.trial.target >>
            mask >> art.trial.forceBarrier;
        if (ln.fail() || tag != "trial")
            malformed("bad trial line");
        art.trial.mode = modeFromName(mode);
        art.trial.xorMask = static_cast<std::uint8_t>(mask);
    }

    {
        std::istringstream ln(nextLine(in, "diffs"));
        std::string tag;
        std::size_t n = 0;
        ln >> tag >> n;
        if (ln.fail() || tag != "diffs")
            malformed("bad diffs line");
        art.diffs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            art.diffs.push_back(nextLine(in, "diff"));
    }

    if (nextLine(in, "end") != "end")
        malformed("missing end marker");
    return art;
}

// ---------------------------------------------------------------------
// Format v2: whole-server histories
// ---------------------------------------------------------------------

bool
isServerArtifact(const std::string &text)
{
    const std::string header = "raid2-check v2";
    return text.compare(0, header.size(), header) == 0 &&
           (text.size() == header.size() ||
            text[header.size()] == '\n' ||
            text[header.size()] == '\r');
}

std::string
ServerArtifact::serialize() const
{
    std::ostringstream out;
    out << "raid2-check v2\n";
    out << "config " << cfg.blockSize << " " << cfg.numBlocks << " "
        << cfg.segBlocks << " " << cfg.maxInodes << " "
        << (cfg.autoClean ? 1 : 0) << "\n";
    out << "clients " << hist.clients << "\n";
    out << "history " << hist.ops.size() << "\n";
    for (const SessionOp &op : hist.ops)
        out << op.str() << "\n";
    out << "faults " << hist.faults.events.size() << "\n";
    for (const fault::FaultEvent &e : hist.faults.events) {
        out << e.at << " " << fault::faultKindName(e.kind) << " "
            << e.target << " " << e.offset << " " << e.bytes << " "
            << e.duration;
        // The corruption surface rides as an optional trailing column
        // so pre-integrity artifacts stay parseable.
        if (e.kind == fault::FaultKind::SilentCorruption)
            out << " " << fault::corruptionSurfaceName(e.surface);
        out << "\n";
    }
    serializeTail(out, cfg, trial, diffs);
    return out.str();
}

ServerArtifact
ServerArtifact::parse(const std::string &text)
{
    std::istringstream in(text);
    ServerArtifact art;

    if (nextLine(in, "header") != "raid2-check v2")
        malformed("bad header (want 'raid2-check v2')");

    art.cfg = parseConfigLine(in);

    {
        std::istringstream ln(nextLine(in, "clients"));
        std::string tag;
        ln >> tag >> art.hist.clients;
        if (ln.fail() || tag != "clients")
            malformed("bad clients line");
    }

    const std::size_t nops = parseCountLine(in, "history");
    art.hist.ops.reserve(nops);
    for (std::size_t i = 0; i < nops; ++i)
        art.hist.ops.push_back(
            parseSessionOp(nextLine(in, "history op")));

    const std::size_t nfaults = parseCountLine(in, "faults");
    for (std::size_t i = 0; i < nfaults; ++i) {
        std::istringstream ln(nextLine(in, "fault"));
        fault::FaultEvent e;
        std::string kind;
        ln >> e.at >> kind >> e.target >> e.offset >> e.bytes >>
            e.duration;
        if (ln.fail())
            malformed("bad fault line");
        e.kind = faultKindFromName(kind);
        if (e.kind == fault::FaultKind::SilentCorruption) {
            std::string surface;
            // Tolerate an absent column (older artifacts): Media.
            if (ln >> surface &&
                !fault::corruptionSurfaceFromName(surface.c_str(),
                                                  e.surface))
                malformed("unknown corruption surface '" + surface +
                          "'");
        }
        art.hist.faults.events.push_back(e);
    }

    art.trial = parseTrialLine(in);

    const std::size_t ndiffs = parseCountLine(in, "diffs");
    art.diffs.reserve(ndiffs);
    for (std::size_t i = 0; i < ndiffs; ++i)
        art.diffs.push_back(nextLine(in, "diff"));

    if (nextLine(in, "end") != "end")
        malformed("missing end marker");
    return art;
}

} // namespace raid2::check
