/**
 * @file
 * Replayable text artifact for a failing checker trial.
 *
 * Everything a trial needs is (config, ops, spec): trials are pure
 * functions of those, so an artifact replays byte-for-byte on any
 * build of the same source.  The expected diffs are stored too, which
 * lets tools/check_replay verify an exact reproduction rather than
 * just "still fails".  The format is a line-oriented text file:
 *
 *     raid2-check v1
 *     config <blockSize> <numBlocks> <segBlocks> <maxInodes> <autoClean>
 *     ops <N>
 *     <one Op::str() line per op>
 *     trial <mode> <cut> <target> <xorMask> <forceBarrier>
 *     diffs <M>
 *     <one diff line per entry>
 *     end
 *
 * Version 2 carries a whole-server counterexample instead of a bare
 * op list: the concurrent multi-session history plus its fault
 * schedule (ServerExplorer replays are pure functions of those plus
 * the config), with the same trial/diffs tail:
 *
 *     raid2-check v2
 *     config <blockSize> <numBlocks> <segBlocks> <maxInodes> <autoClean>
 *     clients <C>
 *     history <N>
 *     <one SessionOp::str() line per op>
 *     faults <K>
 *     <at> <kind> <target> <offset> <bytes> <duration>   (one per event)
 *     trial <mode> <cut> <target> <xorMask> <forceBarrier>
 *     diffs <M>
 *     <one diff line per entry>
 *     end
 *
 * v1 artifacts keep replaying unchanged; consumers dispatch on the
 * header line (see isServerArtifact()).
 */

#ifndef RAID2_CHECK_ARTIFACT_HH
#define RAID2_CHECK_ARTIFACT_HH

#include <string>
#include <vector>

#include "check/crash_explorer.hh"
#include "check/server_history.hh"

namespace raid2::check {

/** A self-contained failing trial. */
struct Artifact
{
    CheckConfig cfg;
    std::vector<Op> ops;
    TrialSpec trial;
    std::vector<std::string> diffs; // expected verdict

    std::string serialize() const;

    /** Parse @p text; throws std::runtime_error on malformed input. */
    static Artifact parse(const std::string &text);
};

/** A self-contained failing server-level trial (format v2). */
struct ServerArtifact
{
    CheckConfig cfg;
    ServerHistory hist;
    TrialSpec trial;
    std::vector<std::string> diffs; // expected verdict

    std::string serialize() const;

    /** Parse @p text; throws std::runtime_error on malformed input
     *  (including a v1 header — check isServerArtifact() first). */
    static ServerArtifact parse(const std::string &text);
};

/** True if @p text leads with the v2 header (a server artifact). */
bool isServerArtifact(const std::string &text);

} // namespace raid2::check

#endif // RAID2_CHECK_ARTIFACT_HH
