#include "check/crash_explorer.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>

#include "fs/fault_device.hh"
#include "fs/mem_block_device.hh"
#include "lfs/format.hh"
#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::check {

namespace {

/** Copy-on-write view over a base image: trial writes stay local. */
class OverlayDevice : public fs::BlockDevice
{
  public:
    OverlayDevice(std::uint32_t block_size,
                  const std::vector<std::uint8_t> &base_image)
        : bs(block_size), base(base_image)
    {
    }

    std::uint32_t blockSize() const override { return bs; }
    std::uint64_t numBlocks() const override
    {
        return base.size() / bs;
    }

    void
    readBlock(std::uint64_t bno, std::span<std::uint8_t> out) override
    {
        checkAccess(bno, out.size());
        noteRead();
        auto it = dirty.find(bno);
        const std::uint8_t *src = it != dirty.end()
                                      ? it->second.data()
                                      : base.data() + bno * bs;
        std::copy(src, src + bs, out.begin());
    }

    void
    writeBlock(std::uint64_t bno,
               std::span<const std::uint8_t> data) override
    {
        checkAccess(bno, data.size());
        noteWrite();
        dirty[bno].assign(data.begin(), data.end());
    }

  private:
    std::uint32_t bs;
    const std::vector<std::uint8_t> &base;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> dirty;
};

lfs::Lfs::Params
fsParams(const CheckConfig &cfg)
{
    lfs::Lfs::Params p;
    p.blockSize = cfg.blockSize;
    p.segBlocks = cfg.segBlocks;
    p.maxInodes = cfg.maxInodes;
    return p;
}

/** Apply one workload op to a live file system. */
void
applyToLfs(lfs::Lfs &fs, const Op &op)
{
    switch (op.kind) {
      case Op::Kind::Create:
        fs.create(op.path);
        break;
      case Op::Kind::Mkdir:
        fs.mkdir(op.path);
        break;
      case Op::Kind::Write: {
        const auto data = patternBytes(op.len, op.dataSeed);
        fs.write(fs.lookup(op.path), op.off,
                 {data.data(), data.size()});
        break;
      }
      case Op::Kind::Truncate:
        fs.truncate(fs.lookup(op.path), op.len);
        break;
      case Op::Kind::Rename:
        fs.rename(op.path, op.path2);
        break;
      case Op::Kind::Link:
        fs.link(op.path, op.path2);
        break;
      case Op::Kind::Unlink:
        fs.unlink(op.path);
        break;
      case Op::Kind::Rmdir:
        fs.rmdir(op.path);
        break;
      case Op::Kind::Sync:
        fs.sync();
        break;
      case Op::Kind::Checkpoint:
        fs.checkpoint();
        break;
      case Op::Kind::Clean:
        fs.clean(static_cast<unsigned>(op.len));
        break;
      case Op::Kind::SnapCreate:
        fs.takeSnapshot(op.path);
        break;
      case Op::Kind::SnapDelete:
        fs.deleteSnapshot(op.path);
        break;
    }
}

/** Read the whole recovered tree (paths, types, file bytes). */
Tree
recoverTree(const lfs::Lfs &fs)
{
    Tree out;
    std::vector<std::string> stack{"/"};
    while (!stack.empty()) {
        const std::string path = std::move(stack.back());
        stack.pop_back();
        const auto st = fs.stat(path);
        TreeNode node;
        if (st.type == lfs::FileType::Directory) {
            node.isDir = true;
            for (const auto &e : fs.readdir(path)) {
                node.entries.insert(e.name);
                stack.push_back(path == "/" ? "/" + e.name
                                            : path + "/" + e.name);
            }
        } else {
            auto bytes =
                std::make_shared<std::vector<std::uint8_t>>(st.size);
            if (st.size > 0)
                fs.read(st.ino, 0, {bytes->data(), bytes->size()});
            node.bytes = std::move(bytes);
        }
        out.emplace(path, std::move(node));
    }
    return out;
}

std::string
describeNode(const TreeNode &n)
{
    if (!n.isDir)
        return "file size=" + std::to_string(n.bytes->size());
    std::string s = "dir {";
    bool first = true;
    for (const auto &e : n.entries) {
        if (!first)
            s += ",";
        s += e;
        first = false;
    }
    return s + "}";
}

/**
 * The oracle comparison: every recovered path must match some legal
 * version, and every path present in all legal versions must have
 * been recovered.
 */
std::vector<std::string>
compareAgainstOracle(const Tree &recovered,
                     const std::vector<Tree> &versions, std::size_t lo,
                     std::size_t hi)
{
    std::vector<std::string> diffs;
    const std::string range =
        "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";

    for (const auto &[path, node] : recovered) {
        bool matched = false;
        bool everExists = false;
        for (std::size_t j = lo; j <= hi && !matched; ++j) {
            auto it = versions[j].find(path);
            if (it == versions[j].end())
                continue;
            everExists = true;
            if (it->second == node)
                matched = true;
        }
        if (matched)
            continue;
        if (!everExists) {
            diffs.push_back("path " + path + ": recovered (" +
                            describeNode(node) +
                            ") but absent from every legal version " +
                            range);
        } else {
            diffs.push_back("path " + path + ": recovered " +
                            describeNode(node) +
                            " matches no legal version " + range);
        }
    }

    // Paths present in *all* legal versions are durable: they must
    // have been recovered (content equality was checked above).
    for (const auto &[path, node] : versions[lo]) {
        bool everywhere = true;
        for (std::size_t j = lo + 1; j <= hi && everywhere; ++j)
            everywhere = versions[j].count(path) != 0;
        if (everywhere && !recovered.count(path)) {
            diffs.push_back("path " + path +
                            ": durable but missing after recovery "
                            "(present in all legal versions " +
                            range + ")");
        }
    }
    return diffs;
}

/**
 * The snapshot-table oracle: every recovered snapshot must be one the
 * workload created, created snapshots must survive once durable, and
 * deleted ones must stay gone — never a torn table.
 *
 * Durability is checkpoint-bound, not sync-bound: a snap op syncs
 * (recording a barrier) *before* writing the checkpoint that carries
 * the table, so at lo == createVersion the table write may still be
 * in flight and the snapshot is optional.  The first later barrier
 * (any tag > create's op) implies the checkpoint landed — writes are
 * ordered — so with c/d the create/delete versions of a name:
 * present required iff c < lo and d > hi; absent required iff c > hi
 * or d < lo; optional in between.  (Names are never reused, which
 * keeps the per-name rule unambiguous.)
 */
std::vector<std::string>
compareSnapshotTable(const std::set<std::string> &recovered,
                     const std::vector<Op> &ops, std::size_t lo,
                     std::size_t hi)
{
    constexpr std::size_t never = static_cast<std::size_t>(-1);
    struct Life
    {
        std::size_t create = never;
        std::size_t destroy = never;
        bool reused = false;
    };
    std::map<std::string, Life> names;
    for (std::size_t j = 0; j < ops.size(); ++j) {
        if (ops[j].kind == Op::Kind::SnapCreate) {
            Life &l = names[ops[j].path];
            if (l.create != never)
                l.reused = true; // ambiguous; skip its checks
            l.create = j + 1;
        } else if (ops[j].kind == Op::Kind::SnapDelete) {
            names[ops[j].path].destroy = j + 1;
        }
    }

    std::vector<std::string> diffs;
    const std::string range =
        "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
    for (const std::string &n : recovered) {
        if (!names.count(n))
            diffs.push_back("snapshot " + n +
                            ": recovered but never created");
    }
    for (const auto &[n, l] : names) {
        if (l.reused)
            continue;
        const std::size_t d = l.destroy;
        const bool present = recovered.count(n) != 0;
        if (l.create < lo && (d == never || d > hi) && !present) {
            diffs.push_back("snapshot " + n +
                            ": durable but missing after recovery " +
                            range);
        } else if ((l.create > hi || (d != never && d < lo)) &&
                   present) {
            diffs.push_back("snapshot " + n +
                            ": recovered but not legal in " + range);
        }
    }
    return diffs;
}

} // namespace

std::string
TrialSpec::str() const
{
    const char *m = mode == Mode::Cut       ? "cut"
                    : mode == Mode::Torn    ? "torn"
                    : mode == Mode::Dropped ? "dropped"
                                            : "corrupt";
    return std::string(m) + " cut=" + std::to_string(cut) +
           " target=" + std::to_string(target) +
           " xor=" + std::to_string(xorMask) +
           " barrier=" + std::to_string(forceBarrier);
}

// ---------------------------------------------------------------------
// Live capture
// ---------------------------------------------------------------------

Capture
CrashExplorer::capture(const std::vector<Op> &ops,
                       const CheckConfig &cfg)
{
    Capture cap;
    cap.cfg = cfg;
    cap.ops = ops;

    fs::MemBlockDevice media(cfg.blockSize, cfg.numBlocks);
    fs::FaultDevice dev(media);
    lfs::Lfs::format(dev, fsParams(cfg));
    lfs::Lfs fs(dev); // creates the root directory + first checkpoint

    cap.base.resize(std::size_t(cfg.numBlocks) * cfg.blockSize);
    media.readRange(0, cfg.numBlocks,
                    {cap.base.data(), cap.base.size()});

    dev.attachWriteLog(&cap.log);
    fs.setAutoClean(cfg.autoClean);

    RefFs model;
    cap.versions.push_back(model.tree());
    for (std::size_t j = 0; j < ops.size(); ++j) {
        cap.log.setTag(static_cast<std::uint32_t>(j));
        applyToLfs(fs, ops[j]);
        model.apply(ops[j]);
        cap.versions.push_back(model.tree());
    }
    dev.attachWriteLog(nullptr);
    return cap;
}

// ---------------------------------------------------------------------
// Oracle bounds
// ---------------------------------------------------------------------

std::pair<std::size_t, std::size_t>
CrashExplorer::versionRange(const Capture &cap, const TrialSpec &spec)
{
    // cut/target and Barrier::at all index the log's flat block space
    // (WriteLog::numBlocks), independent of how writes coalesced into
    // extent entries.
    const auto &barriers = cap.log.barriers();

    // Durability lower bound: the newest barrier whose writes all
    // survive this trial.  A Cut at exactly a barrier keeps it; a
    // torn/dropped write invalidates any barrier recorded after it.
    std::size_t lo = 0; // version 0 = the freshly formatted tree
    if (spec.forceBarrier >= 0) {
        lo = barriers.at(static_cast<std::size_t>(spec.forceBarrier))
                 .tag +
             1;
    } else {
        const std::size_t anchor = (spec.mode == TrialSpec::Mode::Torn ||
                                    spec.mode ==
                                        TrialSpec::Mode::Dropped)
                                       ? spec.target
                                       : spec.cut;
        for (const auto &b : barriers) {
            if (b.at <= anchor && b.at <= spec.cut)
                lo = b.tag + 1;
        }
    }

    // Upper bound: the op that issued the last write that could have
    // landed.
    std::size_t hi = lo;
    if (spec.cut > 0) {
        std::size_t last = spec.cut - 1;
        if (spec.mode == TrialSpec::Mode::Dropped &&
            spec.target == last && last > 0) {
            --last;
        }
        hi = std::max<std::size_t>(lo, cap.log.blockAt(last).tag + 1);
    }
    return {lo, hi};
}

// ---------------------------------------------------------------------
// One trial
// ---------------------------------------------------------------------

namespace {

TrialResult
runTrialFrom(const Capture &cap, const TrialSpec &spec,
             const std::vector<std::uint8_t> &base_image,
             std::size_t base_count)
{
    TrialResult result;

    OverlayDevice overlay(cap.cfg.blockSize, base_image);
    fs::FaultDevice dev(overlay);

    // Rebuild the post-crash image: blocks [base_count, cut) of the
    // flat log with the spec's perturbation, injected through the
    // FaultDevice.  Crash points index blocks, not extent entries, so
    // coalesced captures enumerate the same states per-block captures
    // did.
    cap.log.forEachBlockIn(
        base_count, spec.cut,
        [&](std::size_t i, std::uint64_t bno,
            std::span<const std::uint8_t> data) {
            if (i == spec.target && spec.mode != TrialSpec::Mode::Cut) {
                switch (spec.mode) {
                  case TrialSpec::Mode::Torn:
                    dev.setWriteLimit(0);
                    dev.setTearOnCrash(true);
                    dev.writeBlock(bno, data);
                    dev.heal();
                    dev.setTearOnCrash(false);
                    break;
                  case TrialSpec::Mode::Dropped:
                    dev.setWriteLimit(0);
                    dev.writeBlock(bno, data);
                    dev.heal();
                    break;
                  case TrialSpec::Mode::Corrupt: {
                    std::vector<std::uint8_t> bad(data.begin(),
                                                  data.end());
                    const std::size_t n =
                        std::min<std::size_t>(64, bad.size());
                    for (std::size_t k = 0; k < n; ++k)
                        bad[k] ^= spec.xorMask;
                    dev.writeBlock(bno, {bad.data(), bad.size()});
                    break;
                  }
                  case TrialSpec::Mode::Cut:
                    break;
                }
                return;
            }
            dev.writeBlock(bno, data);
        });

    // Remount: checkpoint load + roll-forward recovery.
    const auto [lo, hi] = CrashExplorer::versionRange(cap, spec);
    try {
        lfs::Lfs fs(dev);
        const auto fsck = fs.fsck();
        if (!fsck.ok) {
            for (const auto &issue : fsck.issues)
                result.diffs.push_back("fsck: " + issue.str());
        } else {
            const Tree recovered = recoverTree(fs);
            result.diffs = compareAgainstOracle(recovered,
                                                cap.versions, lo, hi);
            std::set<std::string> rsnaps;
            for (const auto &rec : fs.listSnapshots())
                rsnaps.insert(rec.name);
            const auto sdiffs =
                compareSnapshotTable(rsnaps, cap.ops, lo, hi);
            result.diffs.insert(result.diffs.end(), sdiffs.begin(),
                                sdiffs.end());
        }
    } catch (const std::exception &e) {
        result.diffs.push_back(std::string("mount failed: ") +
                               e.what());
    }

    result.ok = result.diffs.empty();
    return result;
}

} // namespace

TrialResult
CrashExplorer::runTrial(const Capture &cap, const TrialSpec &spec)
{
    return runTrialFrom(cap, spec, cap.base, 0);
}

// ---------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------

ExploreReport
CrashExplorer::explore(const Capture &cap, const ExploreOptions &opt)
{
    ExploreReport report;
    const auto &barriers = cap.log.barriers();
    const std::size_t n = cap.log.numBlocks();

    auto run = [&](const TrialSpec &spec,
                   const std::vector<std::uint8_t> &base,
                   std::size_t base_count) -> bool {
        ++report.trials;
        const TrialResult r = runTrialFrom(cap, spec, base, base_count);
        if (!r.ok)
            report.failures.push_back(Failure{spec, r.diffs});
        return !r.ok && opt.stopAtFirst;
    };

    // Window boundaries: the implicit barrier at write 0 (the base
    // image is a checkpointed state), every recorded barrier, the end
    // of the log.
    std::vector<std::size_t> bounds{0};
    for (const auto &b : barriers) {
        if (b.at != bounds.back())
            bounds.push_back(b.at);
    }
    if (bounds.back() != n)
        bounds.push_back(n);

    // The empty prefix: crash before anything after the mount landed.
    if (opt.legalTrials &&
        run(TrialSpec{TrialSpec::Mode::Cut, 0, 0, 0xff, -1}, cap.base,
            0)) {
        return report;
    }

    // Advance a shared base image window by window so each trial only
    // replays writes from its own window.
    std::vector<std::uint8_t> base = cap.base;
    for (std::size_t w = 0; w + 1 < bounds.size(); ++w) {
        const std::size_t start = bounds[w];
        const std::size_t end = bounds[w + 1];

        for (std::size_t i = start; opt.legalTrials && i < end; ++i) {
            // Crash point after write i: either write i+1 never
            // starts (Cut — also the "dropped in flight" variant of
            // crash point i+1 under ordered writes) ...
            if (run(TrialSpec{TrialSpec::Mode::Cut, i + 1, 0, 0xff, -1},
                    base, start)) {
                return report;
            }
            // ... or write i itself lands torn mid-transfer.
            if (run(TrialSpec{TrialSpec::Mode::Torn, i + 1, i, 0xff,
                              -1},
                    base, start)) {
                return report;
            }
        }

        // Self-test: drop an *acknowledged* summary write from before
        // the barrier that ends this window — must be flagged.
        if (opt.dropAckedWrites && end < n) {
            std::size_t bidx = npos;
            for (std::size_t k = 0; k < barriers.size(); ++k) {
                if (barriers[k].at == end)
                    bidx = k;
            }
            if (bidx != npos) {
                const std::size_t target =
                    ackedSummaryWriteBefore(cap, bidx);
                if (target != npos) {
                    if (run(TrialSpec{TrialSpec::Mode::Dropped, end,
                                      target,
                                      0xff, static_cast<int>(bidx)},
                            cap.base, 0)) {
                        return report;
                    }
                }
            }
        }

        cap.log.forEachBlockIn(
            start, end,
            [&](std::size_t, std::uint64_t bno,
                std::span<const std::uint8_t> data) {
                std::copy(data.begin(), data.end(),
                          base.begin() +
                              std::size_t(bno) * cap.cfg.blockSize);
            });
    }

    return report;
}

std::size_t
CrashExplorer::ackedSummaryWriteBefore(const Capture &cap,
                                       std::size_t barrier)
{
    const auto &barriers = cap.log.barriers();
    if (barrier >= barriers.size())
        return npos;

    lfs::Superblock sb;
    std::memcpy(&sb, cap.base.data(), sizeof(sb));
    if (!sb.valid())
        sim::panic("ackedSummaryWriteBefore: bad base superblock");

    const std::size_t end = barriers[barrier].at;
    const std::size_t start =
        barrier > 0 ? barriers[barrier - 1].at : 0;
    std::size_t found = npos;
    cap.log.forEachBlockIn(
        start, end,
        [&](std::size_t i, std::uint64_t bno,
            std::span<const std::uint8_t>) {
            if (bno >= sb.firstSegBlock &&
                bno < sb.firstSegBlock +
                          sb.numSegments * sb.segBlocks &&
                (bno - sb.firstSegBlock) % sb.segBlocks == 0) {
                found = i; // last match in the window wins
            }
        });
    return found;
}

} // namespace raid2::check
