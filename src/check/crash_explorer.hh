/**
 * @file
 * Crash-point enumeration and oracle verdicts.
 *
 * The explorer runs a workload once against a real lfs::Lfs on a
 * RAM-backed device, capturing every block write (with the index of
 * the op that issued it) and every flush barrier, plus a RefFs oracle
 * snapshot after each op.  It then enumerates crash points: for every
 * barrier window it cuts the write log after each write, and injects
 * torn and dropped writes via fs::FaultDevice.  Each trial rebuilds
 * the media image a crash would leave behind, remounts (running LFS
 * roll-forward recovery), runs the structured fsck, and compares the
 * recovered tree against the oracle's set of legal durable states:
 * everything acknowledged-and-synced must persist byte-for-byte; an
 * unsynced op may surface at any op-boundary version inside the window
 * (independently per path).
 *
 * Device model: the log device writes in order (the FaultDevice
 * power-loss model), so the legal crash states are exactly the write
 * prefixes, with the final in-flight write either absent (Cut) or
 * landing torn (Torn).  Dropping an *earlier* write while later ones
 * land (Dropped) or silently flipping bits (Corrupt) is a device
 * violating its contract — the enumerator uses those modes as
 * self-tests proving the oracle detects real durability violations
 * (see ExploreOptions::dropAckedWrites and tools/check_replay --demo).
 *
 * Trials are pure functions of (ops, config, spec), which is what
 * makes shrunk artifacts replayable byte-for-byte by check_replay.
 */

#ifndef RAID2_CHECK_CRASH_EXPLORER_HH
#define RAID2_CHECK_CRASH_EXPLORER_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "check/ref_fs.hh"
#include "fs/write_log.hh"

namespace raid2::check {

/** File-system geometry for a checker run (small and fast). */
struct CheckConfig
{
    std::uint32_t blockSize = 1024;
    std::uint64_t numBlocks = 4096; // 4 MB device
    std::uint32_t segBlocks = 16;   // 16 KB segments
    std::uint32_t maxInodes = 256;
    bool autoClean = true;
};

/** One crash trial: how to rebuild the post-crash media image. */
struct TrialSpec
{
    enum class Mode {
        Cut,     // writes [0, cut) land, nothing else
        Torn,    // writes [0, cut); the last one (target) lands torn
        Dropped, // writes [0, cut) except target — an acknowledged
                 // write lost out of order (illegal device behavior,
                 // used to self-test the oracle)
        Corrupt, // writes [0, cut); target lands bit-flipped (illegal
                 // device behavior — used to self-test the oracle)
    };

    Mode mode = Mode::Cut;
    std::size_t cut = 0;
    std::size_t target = 0;
    std::uint8_t xorMask = 0xff; // Corrupt only
    /** Anchor the durability lower bound at this recorded barrier
     *  index instead of deriving it from cut/target.  Used to assert
     *  that an *acknowledged* barrier survives a later illegal drop
     *  (-1 = derive). */
    int forceBarrier = -1;

    std::string str() const;
};

/** Recorded run: everything a trial needs, replayable from (ops,cfg). */
struct Capture
{
    CheckConfig cfg;
    std::vector<Op> ops;
    std::vector<std::uint8_t> base; // image after format + first mount
    fs::WriteLog log;               // tagged writes + barriers
    std::vector<Tree> versions;     // versions[j] = tree after j ops
};

/** Verdict of one trial. */
struct TrialResult
{
    bool ok = true;
    std::vector<std::string> diffs; // deterministic, one line each
};

/** A failing trial with its verdict. */
struct Failure
{
    TrialSpec spec;
    std::vector<std::string> diffs;
};

struct ExploreOptions
{
    bool stopAtFirst = false;
    /** Enumerate the legal crash states (Cut + Torn at every write).
     *  Disable to run only the self-test trials below. */
    bool legalTrials = true;
    /** Self-test mode: for each barrier also drop an acknowledged
     *  segment-summary write from before it (cutting there) — an
     *  illegal device behavior the oracle must flag. */
    bool dropAckedWrites = false;
};

struct ExploreReport
{
    std::size_t trials = 0;
    std::vector<Failure> failures;
};

class CrashExplorer
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Run @p ops live, recording the write log and oracle
     *  snapshots.  Deterministic: equal inputs give equal captures. */
    static Capture capture(const std::vector<Op> &ops,
                           const CheckConfig &cfg);

    /** Rebuild the media image @p spec describes, remount, fsck, and
     *  compare against the legal-state set. */
    static TrialResult runTrial(const Capture &cap,
                                const TrialSpec &spec);

    /** Full crash-point enumeration over every barrier window. */
    static ExploreReport explore(const Capture &cap,
                                 const ExploreOptions &opt = {});

    /** Index of the last segment-summary write at or before recorded
     *  barrier @p barrier (npos if none).  Dropping it severs the
     *  roll-forward chain — the canonical deliberate violation. */
    static std::size_t ackedSummaryWriteBefore(const Capture &cap,
                                               std::size_t barrier);

    /** Legal oracle version range [lo, hi] for @p spec. */
    static std::pair<std::size_t, std::size_t>
    versionRange(const Capture &cap, const TrialSpec &spec);
};

} // namespace raid2::check

#endif // RAID2_CHECK_CRASH_EXPLORER_HH
