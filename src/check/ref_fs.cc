#include "check/ref_fs.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace raid2::check {

// ---------------------------------------------------------------------
// Op / pattern helpers
// ---------------------------------------------------------------------

std::string
Op::str() const
{
    switch (kind) {
      case Kind::Create:
        return "create " + path;
      case Kind::Mkdir:
        return "mkdir " + path;
      case Kind::Write:
        return "write " + path + " " + std::to_string(off) + " " +
               std::to_string(len) + " " + std::to_string(dataSeed);
      case Kind::Truncate:
        return "truncate " + path + " " + std::to_string(len);
      case Kind::Rename:
        return "rename " + path + " " + path2;
      case Kind::Link:
        return "link " + path + " " + path2;
      case Kind::Unlink:
        return "unlink " + path;
      case Kind::Rmdir:
        return "rmdir " + path;
      case Kind::Sync:
        return "sync";
      case Kind::Checkpoint:
        return "checkpoint";
      case Kind::Clean:
        return "clean " + std::to_string(len);
      case Kind::SnapCreate:
        return "snap_create " + path;
      case Kind::SnapDelete:
        return "snap_delete " + path;
    }
    return "?";
}

std::vector<std::uint8_t>
patternBytes(std::uint64_t len, std::uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<std::uint8_t> v(len);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next());
    return v;
}

// ---------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------

namespace {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t i = 0;
    while (i < path.size()) {
        while (i < path.size() && path[i] == '/')
            ++i;
        std::size_t j = i;
        while (j < path.size() && path[j] != '/')
            ++j;
        if (j > i)
            parts.push_back(path.substr(i, j - i));
        i = j;
    }
    return parts;
}

} // namespace

RefFs::RefFs()
{
    Node root;
    root.dir = true;
    root.nlink = 2;
    nodes.push_back(std::move(root));
}

std::size_t
RefFs::lookup(const std::string &path) const
{
    std::size_t cur = 0;
    for (const std::string &part : splitPath(path)) {
        if (!nodes[cur].dir)
            return npos;
        auto it = nodes[cur].children.find(part);
        if (it == nodes[cur].children.end())
            return npos;
        cur = it->second;
    }
    return cur;
}

std::size_t
RefFs::lookupParent(const std::string &path, std::string &leaf) const
{
    const auto parts = splitPath(path);
    if (parts.empty())
        return npos; // the root has no parent
    leaf = parts.back();
    std::size_t cur = 0;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        if (!nodes[cur].dir)
            return npos;
        auto it = nodes[cur].children.find(parts[i]);
        if (it == nodes[cur].children.end())
            return npos;
        cur = it->second;
    }
    return nodes[cur].dir ? cur : npos;
}

void
RefFs::unref(std::size_t id)
{
    Node &n = nodes[id];
    if (n.nlink > 0)
        --n.nlink;
    if (n.nlink == 0) {
        n.freed = true;
        n.data.reset();
        n.children.clear();
    }
}

// ---------------------------------------------------------------------
// Validity (mirrors lfs::Lfs error checks)
// ---------------------------------------------------------------------

bool
RefFs::valid(const Op &op) const
{
    std::string leaf;
    switch (op.kind) {
      case Op::Kind::Create:
      case Op::Kind::Mkdir: {
        const std::size_t parent = lookupParent(op.path, leaf);
        return parent != npos &&
               !nodes[parent].children.count(leaf);
      }
      case Op::Kind::Write: {
        const std::size_t id = lookup(op.path);
        return id != npos && !nodes[id].dir && op.len > 0;
      }
      case Op::Kind::Truncate: {
        const std::size_t id = lookup(op.path);
        return id != npos && !nodes[id].dir;
      }
      case Op::Kind::Rename: {
        const std::size_t src = lookup(op.path);
        if (src == npos)
            return false;
        const std::size_t to_parent = lookupParent(op.path2, leaf);
        if (to_parent == npos)
            return false;
        const bool moving_dir = nodes[src].dir;
        if (moving_dir && op.path2.size() > op.path.size() &&
            op.path2.compare(0, op.path.size(), op.path) == 0 &&
            op.path2[op.path.size()] == '/') {
            return false; // directory into its own subtree
        }
        auto it = nodes[to_parent].children.find(leaf);
        if (it != nodes[to_parent].children.end()) {
            const std::size_t target = it->second;
            if (target == src)
                return true; // no-op rename, legal
            if (nodes[target].dir) {
                if (!moving_dir || !nodes[target].children.empty())
                    return false;
            } else if (moving_dir) {
                return false;
            }
        }
        return true;
      }
      case Op::Kind::Link: {
        const std::size_t src = lookup(op.path);
        if (src == npos || nodes[src].dir)
            return false;
        const std::size_t parent = lookupParent(op.path2, leaf);
        return parent != npos &&
               !nodes[parent].children.count(leaf);
      }
      case Op::Kind::Unlink: {
        const std::size_t id = lookup(op.path);
        return id != npos && !nodes[id].dir;
      }
      case Op::Kind::Rmdir: {
        const std::size_t id = lookup(op.path);
        return id != npos && id != 0 && nodes[id].dir &&
               nodes[id].children.empty();
      }
      case Op::Kind::Sync:
      case Op::Kind::Checkpoint:
      case Op::Kind::Clean:
        return true;
      case Op::Kind::SnapCreate:
        // Mirrors lfs::Lfs::takeSnapshot: sane name, unique, table
        // not full (lfs::maxSnapshots == 8, name cap 64).
        return !op.path.empty() && op.path.size() <= 64 &&
               op.path.find('/') == std::string::npos &&
               op.path.find(' ') == std::string::npos &&
               !snaps.count(op.path) && snaps.size() < 8;
      case Op::Kind::SnapDelete:
        return snaps.count(op.path) != 0;
    }
    return false;
}

// ---------------------------------------------------------------------
// Application
// ---------------------------------------------------------------------

void
RefFs::apply(const Op &op)
{
    if (!valid(op))
        sim::panic("RefFs::apply: invalid op '%s'", op.str().c_str());

    std::string leaf;
    switch (op.kind) {
      case Op::Kind::Create: {
        const std::size_t parent = lookupParent(op.path, leaf);
        Node n;
        n.dir = false;
        n.data = std::make_shared<const std::vector<std::uint8_t>>();
        n.nlink = 1;
        nodes.push_back(std::move(n));
        nodes[parent].children[leaf] = nodes.size() - 1;
        break;
      }
      case Op::Kind::Mkdir: {
        const std::size_t parent = lookupParent(op.path, leaf);
        Node n;
        n.dir = true;
        n.nlink = 2;
        nodes.push_back(std::move(n));
        nodes[parent].children[leaf] = nodes.size() - 1;
        ++nodes[parent].nlink;
        break;
      }
      case Op::Kind::Write: {
        const std::size_t id = lookup(op.path);
        auto bytes = std::make_shared<std::vector<std::uint8_t>>(
            *nodes[id].data);
        if (bytes->size() < op.off + op.len)
            bytes->resize(op.off + op.len, 0);
        const auto data = patternBytes(op.len, op.dataSeed);
        std::copy(data.begin(), data.end(),
                  bytes->begin() + static_cast<std::ptrdiff_t>(op.off));
        nodes[id].data = std::move(bytes);
        break;
      }
      case Op::Kind::Truncate: {
        const std::size_t id = lookup(op.path);
        auto bytes = std::make_shared<std::vector<std::uint8_t>>(
            *nodes[id].data);
        bytes->resize(op.len, 0);
        nodes[id].data = std::move(bytes);
        break;
      }
      case Op::Kind::Rename: {
        const std::size_t src = lookup(op.path);
        std::string from_leaf;
        const std::size_t from_parent =
            lookupParent(op.path, from_leaf);
        const std::size_t to_parent = lookupParent(op.path2, leaf);
        auto it = nodes[to_parent].children.find(leaf);
        if (it != nodes[to_parent].children.end()) {
            if (it->second == src)
                break; // no-op
            const std::size_t target = it->second;
            if (nodes[target].dir) {
                // Replaces an empty directory (validated): rmdir it.
                --nodes[to_parent].nlink;
                unref(target);
                unref(target); // directories carry nlink 2
            } else {
                unref(target);
            }
            nodes[to_parent].children.erase(it);
        }
        nodes[from_parent].children.erase(from_leaf);
        nodes[to_parent].children[leaf] = src;
        if (nodes[src].dir && from_parent != to_parent) {
            --nodes[from_parent].nlink;
            ++nodes[to_parent].nlink;
        }
        break;
      }
      case Op::Kind::Link: {
        const std::size_t src = lookup(op.path);
        const std::size_t parent = lookupParent(op.path2, leaf);
        nodes[parent].children[leaf] = src;
        ++nodes[src].nlink;
        break;
      }
      case Op::Kind::Unlink: {
        std::string l;
        const std::size_t parent = lookupParent(op.path, l);
        const std::size_t id = nodes[parent].children.at(l);
        nodes[parent].children.erase(l);
        unref(id);
        break;
      }
      case Op::Kind::Rmdir: {
        std::string l;
        const std::size_t parent = lookupParent(op.path, l);
        const std::size_t id = nodes[parent].children.at(l);
        nodes[parent].children.erase(l);
        --nodes[parent].nlink;
        unref(id);
        unref(id); // directories carry nlink 2
        break;
      }
      case Op::Kind::Sync:
      case Op::Kind::Checkpoint:
      case Op::Kind::Clean:
        break; // no effect on the logical tree
      case Op::Kind::SnapCreate:
        snaps.insert(op.path);
        break;
      case Op::Kind::SnapDelete:
        snaps.erase(op.path);
        break;
    }
}

// ---------------------------------------------------------------------
// Snapshots / introspection
// ---------------------------------------------------------------------

Tree
RefFs::tree() const
{
    Tree out;
    // Iterative DFS carrying (node id, path).
    std::vector<std::pair<std::size_t, std::string>> stack{{0, "/"}};
    while (!stack.empty()) {
        auto [id, path] = stack.back();
        stack.pop_back();
        const Node &n = nodes[id];
        TreeNode t;
        t.isDir = n.dir;
        if (n.dir) {
            for (const auto &[name, child] : n.children) {
                t.entries.insert(name);
                const std::string cpath =
                    path == "/" ? "/" + name : path + "/" + name;
                stack.push_back({child, cpath});
            }
        } else {
            t.bytes = n.data;
        }
        out.emplace(std::move(path), std::move(t));
    }
    return out;
}

bool
RefFs::exists(const std::string &path) const
{
    return lookup(path) != npos;
}

bool
RefFs::isDir(const std::string &path) const
{
    const std::size_t id = lookup(path);
    return id != npos && nodes[id].dir;
}

std::uint64_t
RefFs::fileSize(const std::string &path) const
{
    const std::size_t id = lookup(path);
    if (id == npos || nodes[id].dir)
        return 0;
    return nodes[id].data->size();
}

std::vector<std::string>
RefFs::allFiles() const
{
    std::vector<std::string> out;
    for (const auto &[path, node] : tree()) {
        if (!node.isDir)
            out.push_back(path);
    }
    return out;
}

std::vector<std::string>
RefFs::allDirs() const
{
    std::vector<std::string> out;
    for (const auto &[path, node] : tree()) {
        if (node.isDir)
            out.push_back(path);
    }
    return out;
}

std::uint64_t
RefFs::totalBytes() const
{
    std::uint64_t sum = 0;
    for (const Node &n : nodes) {
        if (!n.freed && !n.dir && n.data)
            sum += n.data->size();
    }
    return sum;
}

} // namespace raid2::check
