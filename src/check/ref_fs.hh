/**
 * @file
 * In-memory reference file system — the model checker's oracle.
 *
 * RefFs mirrors the user-visible semantics of lfs::Lfs (paths, hard
 * links, holes, rename-over-existing, ...) with none of its on-media
 * machinery.  The checker runs every workload operation through both
 * and snapshots the reference tree after each op; the set of legal
 * post-crash states is then expressed in terms of those snapshots:
 * everything acknowledged-and-synced must persist exactly, while an
 * unsynced op may surface at any op-boundary version inside the crash
 * window (per path — LFS flushes whole inodes at op boundaries, so
 * mid-op blends are never durable, but different files may land at
 * different versions).
 */

#ifndef RAID2_CHECK_REF_FS_HH
#define RAID2_CHECK_REF_FS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace raid2::check {

/** One workload operation, self-contained and replayable. */
struct Op
{
    enum class Kind {
        Create,
        Mkdir,
        Write,      // bytes = patternBytes(len, dataSeed) at off
        Truncate,   // len = new size
        Rename,     // path -> path2
        Link,       // path2 becomes another name for path
        Unlink,
        Rmdir,
        Sync,
        Checkpoint,
        Clean,      // len = target free segments
        SnapCreate, // path = snapshot name (no leading '/')
        SnapDelete, // path = snapshot name
    };

    Kind kind;
    std::string path;
    std::string path2;
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    std::uint64_t dataSeed = 0;

    /** One-line rendering, parseable by Artifact. */
    std::string str() const;
};

/** Deterministic payload for Write ops. */
std::vector<std::uint8_t> patternBytes(std::uint64_t len,
                                       std::uint64_t seed);

/** Materialized view of one path in a tree snapshot. */
struct TreeNode
{
    bool isDir = false;
    /** File content (shared across snapshots; never mutated). */
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
    /** Child names (directories only). */
    std::set<std::string> entries;

    bool operator==(const TreeNode &o) const
    {
        if (isDir != o.isDir)
            return false;
        if (isDir)
            return entries == o.entries;
        const auto &a = *bytes;
        const auto &b = *o.bytes;
        return a == b;
    }
};

/** Full tree snapshot: every live path, including "/". */
using Tree = std::map<std::string, TreeNode>;

/** The oracle model. */
class RefFs
{
  public:
    RefFs();

    /** Would lfs::Lfs accept this op? (mirrors its error checks) */
    bool valid(const Op &op) const;

    /** Apply @p op; the op must be valid(). */
    void apply(const Op &op);

    /** Materialize the current tree (cheap: content is shared). */
    Tree tree() const;

    /** @{ Introspection for the workload generator. */
    bool exists(const std::string &path) const;
    bool isDir(const std::string &path) const;
    std::uint64_t fileSize(const std::string &path) const;
    std::vector<std::string> allFiles() const;  // sorted paths
    std::vector<std::string> allDirs() const;   // sorted, incl. "/"
    std::uint64_t totalBytes() const;           // sum of file sizes
    /** Live snapshot names (sorted; mirrors the lfs table). */
    const std::set<std::string> &snapshots() const { return snaps; }
    /** @} */

  private:
    struct Node
    {
        bool dir = false;
        std::shared_ptr<const std::vector<std::uint8_t>> data;
        std::map<std::string, std::size_t> children; // name -> node id
        unsigned nlink = 0;
        bool freed = false;
    };

    std::size_t lookup(const std::string &path) const; // npos if absent
    std::size_t lookupParent(const std::string &path,
                             std::string &leaf) const;
    void unref(std::size_t id);

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::vector<Node> nodes; // node 0 is the root
    std::set<std::string> snaps; // live snapshot names
};

} // namespace raid2::check

#endif // RAID2_CHECK_REF_FS_HH
