#include "check/server_explorer.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "disk/disk_profile.hh"
#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/file_protocol.hh"
#include "server/raid2_server.hh"
#include "server/request_scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats_registry.hh"
#include "snap/snapshot_manager.hh"

namespace raid2::check {

const char *
sessionOpKindName(SessionOp::Kind k)
{
    switch (k) {
      case SessionOp::Kind::Open:
        return "open";
      case SessionOp::Kind::PWrite:
        return "pwrite";
      case SessionOp::Kind::BurstWrite:
        return "burst_write";
      case SessionOp::Kind::PRead:
        return "pread";
      case SessionOp::Kind::Seek:
        return "seek";
      case SessionOp::Kind::Close:
        return "close";
      case SessionOp::Kind::Sync:
        return "sync";
      case SessionOp::Kind::SnapCreate:
        return "snap_create";
      case SessionOp::Kind::SnapDelete:
        return "snap_delete";
    }
    return "?";
}

std::string
SessionOp::str() const
{
    std::string s = std::string(sessionOpKindName(kind)) + " " +
                    std::to_string(client);
    switch (kind) {
      case Kind::Open:
      case Kind::SnapCreate:
      case Kind::SnapDelete:
        s += " " + path;
        break;
      case Kind::PWrite:
      case Kind::BurstWrite:
      case Kind::PRead:
        s += " " + std::to_string(off) + " " + std::to_string(len);
        break;
      case Kind::Seek:
        s += " " + std::to_string(off);
        break;
      case Kind::Close:
      case Kind::Sync:
        break;
    }
    return s;
}

namespace {

/** 1/40-scale drives (~8 MB): a mid-history disk death rebuilds onto
 *  its hot spare well inside the simulated run. */
const disk::DiskProfile &
checkProfile()
{
    static const disk::DiskProfile p = [] {
        disk::DiskProfile s = disk::ibm0661();
        s.name = "ibm0661-check";
        s.cylinders /= 40;
        return s;
    }();
    return p;
}

ServerCheckStats &
mutableStats()
{
    static ServerCheckStats s;
    return s;
}

constexpr unsigned maxRetries = 8;
constexpr unsigned maxClients = 16;

/** Mirror of Raid2Server::fileWrite's synthesized payload. */
std::uint8_t
payloadByte(std::uint64_t pos, lfs::InodeNum ino)
{
    return static_cast<std::uint8_t>(pos * 131 + ino);
}

void
treeCreate(Tree &t, const std::string &path)
{
    TreeNode f;
    f.isDir = false;
    f.bytes = std::make_shared<std::vector<std::uint8_t>>();
    t[path] = std::move(f);
    const auto slash = path.find_last_of('/');
    const std::string parent =
        slash == 0 ? "/" : path.substr(0, slash);
    t[parent].entries.insert(path.substr(slash + 1));
}

void
treeWrite(Tree &t, const std::string &path, std::uint64_t off,
          std::uint64_t len, lfs::InodeNum ino)
{
    auto it = t.find(path);
    if (it == t.end() || it->second.isDir)
        sim::panic("ServerExplorer: write to unknown path %s",
                   path.c_str());
    auto nb = std::make_shared<std::vector<std::uint8_t>>(
        *it->second.bytes);
    if (nb->size() < off + len)
        nb->resize(off + len, 0); // holes read back as zeros
    for (std::uint64_t i = 0; i < len; ++i)
        (*nb)[off + i] = payloadByte(off + i, ino);
    it->second.bytes = std::move(nb);
}

/** One live history run against a full server. */
struct Runner
{
    using Handle = server::RaidFileClient::Handle;
    using Status = server::Status;

    const ServerExplorer::Options &opt;
    ServerHistory hist; // sanitized
    Capture cap;

    sim::EventQueue eq;
    std::unique_ptr<server::Raid2Server> srv;
    std::unique_ptr<server::RequestScheduler> sched;
    std::unique_ptr<snap::SnapshotManager> snapMgr;
    std::unique_ptr<net::UltranetFabric> ring;
    std::vector<std::unique_ptr<net::ClientModel>> nics;
    std::vector<std::unique_ptr<server::RaidFileClient>> libs;

    /** @{ Oracle state. */
    Tree tree;
    std::map<lfs::InodeNum, std::string> inoPath;
    std::vector<std::string> unresolved; // created, ino not yet known
    /** @} */

    /** @{ Execution state. */
    struct Session
    {
        std::vector<SessionOp> ops;
        std::size_t next = 0;
        Handle h = server::RaidFileClient::invalidHandle;
        unsigned retries = 0;
        unsigned burstPending = 0;
    };
    std::vector<Session> sessions; // [0] = admin
    unsigned sessionsDone = 0;
    bool finished = false;
    /** @} */

    static constexpr sim::Tick opGap = sim::usToTicks(50);

    Runner(ServerHistory h, const ServerExplorer::Options &o)
        : opt(o), hist(std::move(h))
    {
    }

    Capture
    run()
    {
        build();
        cap.cfg = opt.cfg;
        cap.base.resize(std::size_t(opt.cfg.numBlocks) *
                        opt.cfg.blockSize);
        srv->rawFsDevice().readRange(0, opt.cfg.numBlocks,
                                     {cap.base.data(),
                                      cap.base.size()});

        TreeNode root;
        root.isDir = true;
        tree["/"] = root;
        cap.versions.push_back(tree);

        srv->fsHookDevice().attachWriteLog(&cap.log);
        srv->setFsOpObserver(
            [this](const server::Raid2Server::FsOp &op) {
                onFsOp(op);
            });

        if (!hist.faults.events.empty()) {
            srv->faults().setPlan(hist.faults);
            srv->faults().start();
        }

        for (unsigned c = 1; c <= hist.clients; ++c)
            eq.scheduleIn(sim::usToTicks(100) * c,
                          [this, c] { step(c); });
        eq.scheduleIn(sim::usToTicks(150), [this] { stepAdmin(); });

        if (!eq.runUntilDone([this] { return finished; }))
            sim::panic("ServerExplorer: history deadlocked (%zu/%zu "
                       "sessions done)",
                       std::size_t(sessionsDone),
                       std::size_t(hist.clients + 1));

        mutableStats().faultFirings += srv->faults().injectedTotal();
        ++mutableStats().histories;

        srv->setFsOpObserver(nullptr);
        srv->fsHookDevice().attachWriteLog(nullptr);
        return std::move(cap);
    }

    void
    build()
    {
        server::Raid2Server::Config scfg;
        scfg.topo.disksPerString = 2; // 16 disks
        scfg.topo.profile = &checkProfile();
        scfg.fsParams.blockSize = opt.cfg.blockSize;
        scfg.fsParams.segBlocks = opt.cfg.segBlocks;
        scfg.fsParams.maxInodes = opt.cfg.maxInodes;
        // Explicit: the server defaults 0 to the stripe width, which
        // would blow the small checker geometry up.
        scfg.fsParams.alignSegmentsTo = opt.cfg.blockSize;
        scfg.fsDeviceBytes =
            std::uint64_t(opt.cfg.numBlocks) * opt.cfg.blockSize;
        scfg.withReliability = true;
        scfg.withIntegrity = true;
        srv = std::make_unique<server::Raid2Server>(eq, "check",
                                                    scfg);
        srv->fs().setAutoClean(opt.cfg.autoClean);

        // Tiny admission caps: Busy/Throttled rejections on every
        // seeded run, so the retry paths are checked surface.
        server::RequestScheduler::Config rcfg;
        rcfg.fastQueueCap = 2;
        rcfg.stdQueueCap = 2;
        rcfg.sessionQueueCap = 1;
        rcfg.fastInFlight = 1;
        rcfg.stdInFlight = 1;
        sched = std::make_unique<server::RequestScheduler>(eq, *srv,
                                                           rcfg);
        snapMgr = std::make_unique<snap::SnapshotManager>(*srv);
        ring = std::make_unique<net::UltranetFabric>(eq, "check.ring");

        sessions.resize(hist.clients + 1);
        for (const SessionOp &op : hist.ops)
            sessions[op.client].ops.push_back(op);
        for (unsigned c = 1; c <= hist.clients; ++c) {
            nics.push_back(std::make_unique<net::ClientModel>(
                eq, "check.c" + std::to_string(c)));
            server::RaidFileClient::Config ccfg;
            ccfg.scheduler = sched.get();
            libs.push_back(std::make_unique<server::RaidFileClient>(
                eq, *srv, *nics.back(), *ring, ccfg));
        }
    }

    // -----------------------------------------------------------------
    // Oracle capture (fires in LFS apply order)
    // -----------------------------------------------------------------

    const std::string &
    pathOf(lfs::InodeNum ino)
    {
        auto it = inoPath.find(ino);
        if (it == inoPath.end()) {
            for (auto u = unresolved.begin(); u != unresolved.end();) {
                if (srv->fs().exists(*u)) {
                    inoPath[srv->fs().lookup(*u)] = *u;
                    u = unresolved.erase(u);
                } else {
                    ++u;
                }
            }
            it = inoPath.find(ino);
        }
        if (it == inoPath.end())
            sim::panic("ServerExplorer: write to unknown inode %llu",
                       static_cast<unsigned long long>(ino));
        return it->second;
    }

    void
    onFsOp(const server::Raid2Server::FsOp &fop)
    {
        using K = server::Raid2Server::FsOp::Kind;
        cap.log.setTag(static_cast<std::uint32_t>(cap.ops.size()));
        Op o;
        switch (fop.kind) {
          case K::Create:
            o.kind = Op::Kind::Create;
            o.path = fop.path;
            treeCreate(tree, fop.path);
            unresolved.push_back(fop.path);
            break;
          case K::Write:
            o.kind = Op::Kind::Write;
            o.path = pathOf(fop.ino);
            o.off = fop.off;
            o.len = fop.len;
            o.dataSeed = fop.ino; // payload = server formula, not
                                  // patternBytes — versions are built
                                  // here, never by RefFs::apply
            treeWrite(tree, o.path, fop.off, fop.len, fop.ino);
            break;
          case K::Sync:
            o.kind = Op::Kind::Sync;
            break;
        }
        cap.ops.push_back(std::move(o));
        cap.versions.push_back(tree);
    }

    /** Record a snapshot-table op the explorer issues itself (the
     *  manager's create/remove are synchronous functional calls that
     *  bypass the server's observer). */
    void
    recordSnapOp(Op::Kind k, const std::string &name)
    {
        cap.log.setTag(static_cast<std::uint32_t>(cap.ops.size()));
        Op o;
        o.kind = k;
        o.path = name;
        cap.ops.push_back(std::move(o));
        if (k == Op::Kind::SnapCreate)
            snapMgr->create(name);
        else
            snapMgr->remove(name);
        cap.versions.push_back(tree); // live tree unchanged
    }

    // -----------------------------------------------------------------
    // History execution (closed loop per session)
    // -----------------------------------------------------------------

    void
    sessionDone()
    {
        if (++sessionsDone == hist.clients + 1) {
            // Trailing sync: the log ends at a barrier, anchoring
            // everything the clients saw complete.
            srv->fsSync([this] { finished = true; });
        }
    }

    void
    advance(unsigned c)
    {
        Session &s = sessions[c];
        s.retries = 0;
        ++s.next;
        eq.scheduleIn(opGap, [this, c] {
            if (c == 0)
                stepAdmin();
            else
                step(c);
        });
    }

    static bool
    rejected(Status st)
    {
        return st == Status::Busy || st == Status::Throttled;
    }

    /** True if the op should be re-issued (and the backoff charged). */
    bool
    shouldRetry(Session &s, Status st)
    {
        if (!rejected(st) || s.retries >= maxRetries)
            return false;
        ++s.retries;
        if (st == Status::Busy)
            ++mutableStats().busyRetries;
        else
            ++mutableStats().throttledRetries;
        return true;
    }

    sim::Tick
    backoff(unsigned attempt)
    {
        return sim::usToTicks(400) << std::min(attempt, 4u);
    }

    void
    stepAdmin()
    {
        Session &s = sessions[0];
        if (s.next >= s.ops.size()) {
            sessionDone();
            return;
        }
        const SessionOp &op = s.ops[s.next];
        ++mutableStats().opMix[static_cast<int>(op.kind)];
        switch (op.kind) {
          case SessionOp::Kind::Sync:
            srv->fsSync([this] {
                ++mutableStats().opsVerified;
                advance(0);
            });
            return;
          case SessionOp::Kind::SnapCreate:
            recordSnapOp(Op::Kind::SnapCreate, op.path);
            ++mutableStats().opsVerified;
            advance(0);
            return;
          case SessionOp::Kind::SnapDelete:
            recordSnapOp(Op::Kind::SnapDelete, op.path);
            ++mutableStats().opsVerified;
            advance(0);
            return;
          default: // client kinds routed to the admin: skip
            advance(0);
            return;
        }
    }

    void
    step(unsigned c)
    {
        Session &s = sessions[c];
        if (s.next >= s.ops.size()) {
            sessionDone();
            return;
        }
        ++mutableStats().opMix[static_cast<int>(s.ops[s.next].kind)];
        issueCurrent(c);
    }

    void
    issueCurrent(unsigned c)
    {
        Session &s = sessions[c];
        const SessionOp &op = s.ops[s.next];
        server::RaidFileClient &lib = *libs[c - 1];
        const bool haveHandle =
            s.h != server::RaidFileClient::invalidHandle;

        switch (op.kind) {
          case SessionOp::Kind::Open:
            if (haveHandle) {
                lib.raidClose(s.h);
                s.h = server::RaidFileClient::invalidHandle;
            }
            lib.raidOpen(
                op.path, /*create=*/true,
                [this, c](const server::RaidFileClient::Result &r) {
                    Session &s2 = sessions[c];
                    if (shouldRetry(s2, r.status)) {
                        eq.scheduleIn(backoff(s2.retries), [this, c] {
                            issueCurrent(c);
                        });
                        return;
                    }
                    if (r.ok()) {
                        s2.h = r.handle;
                        ++mutableStats().opsVerified;
                    }
                    advance(c);
                });
            return;

          case SessionOp::Kind::PWrite:
          case SessionOp::Kind::PRead: {
            if (!haveHandle) {
                advance(c); // handle lost to a dropped open: no-op
                return;
            }
            auto done = [this,
                         c](const server::RaidFileClient::Result &r) {
                Session &s2 = sessions[c];
                if (shouldRetry(s2, r.status)) {
                    eq.scheduleIn(backoff(s2.retries),
                                  [this, c] { issueCurrent(c); });
                    return;
                }
                if (r.ok())
                    ++mutableStats().opsVerified;
                advance(c);
            };
            if (op.kind == SessionOp::Kind::PWrite)
                lib.raidPWrite(s.h, op.off, op.len, std::move(done));
            else
                lib.raidPRead(s.h, op.off, op.len, std::move(done));
            return;
          }

          case SessionOp::Kind::BurstWrite:
            if (!haveHandle) {
                advance(c);
                return;
            }
            s.burstPending = 2;
            burstPart(c, op.off, op.len);
            burstPart(c, op.off + op.len, op.len);
            return;

          case SessionOp::Kind::Seek:
            if (haveHandle &&
                lib.raidSeek(s.h, op.off) == Status::Ok)
                ++mutableStats().opsVerified;
            advance(c);
            return;

          case SessionOp::Kind::Close:
            if (haveHandle && lib.raidClose(s.h) == Status::Ok)
                ++mutableStats().opsVerified;
            s.h = server::RaidFileClient::invalidHandle;
            advance(c);
            return;

          default: // admin kinds routed to a client: skip
            advance(c);
            return;
        }
    }

    /** One half of a BurstWrite: both halves are outstanding at once,
     *  so the second can draw Status::Throttled from the per-session
     *  backlog cap; each half retries independently. */
    void
    burstPart(unsigned c, std::uint64_t off, std::uint64_t len)
    {
        libs[c - 1]->raidPWrite(
            sessions[c].h, off, len,
            [this, c, off,
             len](const server::RaidFileClient::Result &r) {
                Session &s = sessions[c];
                if (shouldRetry(s, r.status)) {
                    eq.scheduleIn(backoff(s.retries),
                                  [this, c, off, len] {
                                      burstPart(c, off, len);
                                  });
                    return;
                }
                if (r.ok())
                    ++mutableStats().opsVerified;
                if (--s.burstPending == 0)
                    advance(c);
            });
    }
};

} // namespace

// ---------------------------------------------------------------------
// History generation
// ---------------------------------------------------------------------

ServerHistory
generateServerHistory(std::uint64_t seed, const ServerGenConfig &cfg)
{
    sim::Random rng(seed * 0x9e3779b97f4a7c15ull + 2);
    ServerHistory hist;
    hist.clients = std::max(1u, std::min(cfg.clients, maxClients));

    std::vector<bool> open(hist.clients + 1, false);
    unsigned snapCounter = 0;
    std::set<std::string> live;

    auto fileName = [&] {
        return "/f" + std::to_string(rng.below(
                          std::max(1u, cfg.filePool)));
    };

    // Every client opens a file up front so handles exist early.
    for (unsigned c = 1; c <= hist.clients; ++c) {
        SessionOp op;
        op.kind = SessionOp::Kind::Open;
        op.client = c;
        op.path = fileName();
        open[c] = true;
        hist.ops.push_back(std::move(op));
    }

    while (hist.ops.size() < cfg.numOps) {
        SessionOp op;
        const std::uint64_t roll = rng.below(100);
        if (roll < 14) { // admin session
            op.client = 0;
            const std::uint64_t a = rng.below(100);
            if (a < 55) {
                op.kind = SessionOp::Kind::Sync;
            } else if (a < 80) {
                if (live.size() >= cfg.maxLiveSnapshots)
                    continue;
                op.kind = SessionOp::Kind::SnapCreate;
                op.path = "s" + std::to_string(snapCounter++);
                live.insert(op.path);
            } else {
                if (live.empty())
                    continue;
                const std::vector<std::string> v(live.begin(),
                                                 live.end());
                op.kind = SessionOp::Kind::SnapDelete;
                op.path = v[rng.below(v.size())];
                live.erase(op.path);
            }
        } else {
            op.client = 1 + static_cast<unsigned>(
                                rng.below(hist.clients));
            const std::uint64_t a = rng.below(100);
            if (!open[op.client]) {
                op.kind = SessionOp::Kind::Open;
                op.path = fileName();
                open[op.client] = true;
            } else if (a < 40) {
                op.kind = SessionOp::Kind::PWrite;
                if (rng.chance(cfg.pBulkWrite)) {
                    // Fast-path sized: completion is write-behind.
                    op.off = rng.below(8 * 1024);
                    op.len = cfg.bulkWrite;
                } else {
                    op.off = rng.below(cfg.maxOffset);
                    op.len = 1 + rng.below(cfg.maxWrite);
                }
            } else if (a < 52) {
                op.kind = SessionOp::Kind::BurstWrite;
                op.off = rng.below(cfg.maxOffset);
                op.len = 1 + rng.below(std::max<std::uint64_t>(
                                 1, cfg.maxWrite / 2));
            } else if (a < 72) {
                op.kind = SessionOp::Kind::PRead;
                op.off = rng.below(cfg.maxOffset + 16 * 1024);
                op.len = 1 + rng.below(cfg.maxWrite);
            } else if (a < 80) {
                op.kind = SessionOp::Kind::Seek;
                op.off = rng.below(cfg.maxOffset);
            } else if (a < 88) {
                op.kind = SessionOp::Kind::Close;
                open[op.client] = false;
            } else {
                op.kind = SessionOp::Kind::Open;
                op.path = fileName();
            }
        }
        hist.ops.push_back(std::move(op));
    }

    if (cfg.withFaults) {
        // A short scripted campaign inside the history's time window
        // (clients run closed-loop at ~1 ms command RTT, so a few
        // dozen ops span tens of simulated milliseconds).
        const unsigned n = 1 + static_cast<unsigned>(rng.below(3));
        bool diskFailed = false;
        for (unsigned i = 0; i < n; ++i) {
            const sim::Tick at =
                sim::msToTicks(1.0 + double(rng.below(25)));
            const std::uint64_t f = rng.below(100);
            if (f < 35) {
                hist.faults.hippiLinkDrop(
                    at, sim::msToTicks(1.0 + double(rng.below(4))));
            } else if (f < 60) {
                hist.faults.diskStall(
                    at, static_cast<unsigned>(rng.below(16)),
                    sim::msToTicks(0.5 + double(rng.below(3))));
            } else if (f < 70) {
                hist.faults.latent(
                    at, static_cast<unsigned>(rng.below(16)),
                    512 * rng.below(1024), 512 * (1 + rng.below(8)));
            } else if (f < 82) {
                // Silent corruption: media flips dominate, with the
                // transfer and network surfaces sampled too.
                const std::uint64_t s = rng.below(10);
                const fault::CorruptionSurface surface =
                    s < 5   ? fault::CorruptionSurface::Media
                    : s < 7 ? fault::CorruptionSurface::TransferRead
                    : s < 9 ? fault::CorruptionSurface::TransferWrite
                            : fault::CorruptionSurface::Network;
                hist.faults.silentCorruption(
                    at, surface, static_cast<unsigned>(rng.below(16)),
                    512 * rng.below(1024), 1 + rng.below(16));
            } else if (f < 92) {
                hist.faults.scsiHang(
                    at, static_cast<unsigned>(rng.below(8)),
                    sim::msToTicks(1.0 + double(rng.below(3))));
            } else if (!diskFailed) {
                hist.faults.diskFail(
                    at, static_cast<unsigned>(rng.below(16)));
                diskFailed = true;
            } else {
                hist.faults.hippiLinkDrop(at, sim::msToTicks(1.0));
            }
        }
        hist.faults.sortByTime();
    }
    return hist;
}

// ---------------------------------------------------------------------
// ServerExplorer
// ---------------------------------------------------------------------

ServerHistory
ServerExplorer::sanitize(const ServerHistory &hist)
{
    ServerHistory out;
    out.clients = std::max(1u, std::min(hist.clients, maxClients));
    out.faults = hist.faults;

    std::vector<bool> open(out.clients + 1, false);
    std::set<std::string> live, used;

    for (const SessionOp &op : hist.ops) {
        const bool clientOk =
            op.client >= 1 && op.client <= out.clients;
        switch (op.kind) {
          case SessionOp::Kind::Open:
            // Root-level leaf names only (no parent directories to
            // create through the open path).
            if (!clientOk || op.path.size() < 2 ||
                op.path.front() != '/' ||
                op.path.find('/', 1) != std::string::npos)
                continue;
            open[op.client] = true;
            break;
          case SessionOp::Kind::PWrite:
          case SessionOp::Kind::BurstWrite:
            if (!clientOk || !open[op.client] || op.len == 0)
                continue;
            break;
          case SessionOp::Kind::PRead:
          case SessionOp::Kind::Seek:
            if (!clientOk || !open[op.client])
                continue;
            break;
          case SessionOp::Kind::Close:
            if (!clientOk || !open[op.client])
                continue;
            open[op.client] = false;
            break;
          case SessionOp::Kind::Sync:
            if (op.client != 0)
                continue;
            break;
          case SessionOp::Kind::SnapCreate:
            // Unique-forever names keep the per-name table oracle
            // unambiguous; 8 is the lfs live-snapshot limit.
            if (op.client != 0 || op.path.empty() ||
                op.path.size() > 64 || used.count(op.path) ||
                live.size() >= 8)
                continue;
            used.insert(op.path);
            live.insert(op.path);
            break;
          case SessionOp::Kind::SnapDelete:
            if (op.client != 0 || !live.count(op.path))
                continue;
            live.erase(op.path);
            break;
        }
        out.ops.push_back(op);
    }
    return out;
}

Capture
ServerExplorer::capture(const ServerHistory &hist, const Options &opt)
{
    Runner r(sanitize(hist), opt);
    return r.run();
}

ExploreReport
ServerExplorer::explore(const ServerHistory &hist, const Options &opt)
{
    const Capture cap = capture(hist, opt);
    ExploreOptions eo;
    eo.stopAtFirst = opt.stopAtFirst;
    eo.legalTrials = opt.legalTrials;
    eo.dropAckedWrites = opt.dropAckedWrites;
    const ExploreReport rep = CrashExplorer::explore(cap, eo);
    mutableStats().crashPoints += rep.trials;
    return rep;
}

const ServerCheckStats &
ServerExplorer::stats()
{
    return mutableStats();
}

void
ServerExplorer::resetStats()
{
    mutableStats() = ServerCheckStats{};
}

void
ServerExplorer::registerStats(sim::StatsRegistry &reg)
{
    reg.addGauge("check.server.histories", [] {
        return double(mutableStats().histories);
    });
    reg.addGauge("check.server.crash_points", [] {
        return double(mutableStats().crashPoints);
    });
    reg.addGauge("check.server.fault_firings", [] {
        return double(mutableStats().faultFirings);
    });
    reg.addGauge("check.server.ops_verified", [] {
        return double(mutableStats().opsVerified);
    });
    reg.addGauge("check.server.busy_retries", [] {
        return double(mutableStats().busyRetries);
    });
    reg.addGauge("check.server.throttled_retries", [] {
        return double(mutableStats().throttledRetries);
    });
    for (int k = 0; k <= int(SessionOp::Kind::SnapDelete); ++k) {
        reg.addGauge(
            std::string("check.server.op_mix.") +
                sessionOpKindName(static_cast<SessionOp::Kind>(k)),
            [k] { return double(mutableStats().opMix[k]); });
    }
}

} // namespace raid2::check
