/**
 * @file
 * Whole-server crash-consistency checking.
 *
 * ServerExplorer lifts the src/check/ machinery from lfs::Lfs in
 * isolation to a full server::Raid2Server: seeded concurrent client
 * sessions drive positional reads/writes, seeks, closes and snapshot
 * ops through the RequestScheduler (with deliberately tiny admission
 * caps so Status::Busy / Status::Throttled retries happen on every
 * run), while fault::FaultPlan events — disk deaths, latent sectors,
 * stalls, link drops — fire mid-history in the timed plane.  The
 * functional LFS mutations the server applies are observed in apply
 * order (Raid2Server::setFsOpObserver), every device write is captured
 * in a fs::WriteLog attached to the server's hook device, and an
 * oracle tree is maintained alongside; the result is a standard
 * check::Capture, so CrashExplorer enumerates crash points and renders
 * verdicts with the exact same trial machinery the single-node checker
 * uses.
 *
 * Durability model (the oracle rule, restated at the server level):
 * an operation whose completion a client observed on the *standard*
 * path persisted — standard-mode writes sync before replying, so their
 * completion is barrier-anchored; a fast-path write is write-behind
 * (completion means "buffered", per §3.4) and becomes durable at the
 * next server sync.  A crashed server may roll an un-synced op back or
 * surface it whole, never a blend: recovery must land every file at
 * some op boundary inside the crash window (per-op atomicity), and
 * anything behind the last surviving barrier must persist exactly
 * (prefix consistency).  That is a restricted linearizability
 * condition over the observed-completion order, and it is precisely
 * what CrashExplorer::versionRange + the tree comparison check.
 */

#ifndef RAID2_CHECK_SERVER_EXPLORER_HH
#define RAID2_CHECK_SERVER_EXPLORER_HH

#include <cstdint>

#include "check/crash_explorer.hh"
#include "check/server_history.hh"

namespace raid2::sim {
class StatsRegistry;
}

namespace raid2::check {

/** Distribution knobs for generateServerHistory(). */
struct ServerGenConfig
{
    unsigned numOps = 48;
    unsigned clients = 3;
    unsigned filePool = 4; // names /f0../f{n-1}, shared across clients
    /** Write offsets stay under this (bounds live bytes per file). */
    std::uint64_t maxOffset = 24 * 1024;
    std::uint64_t maxWrite = 12 * 1024;
    /** Odds a write is bulk-sized (> smallOpBytes: rides the HIPPI
     *  fast path, so its completion is write-behind, not synced). */
    double pBulkWrite = 0.10;
    std::uint64_t bulkWrite = 96 * 1024;
    unsigned maxLiveSnapshots = 2;
    /** Emit a scripted fault schedule alongside the ops. */
    bool withFaults = true;
};

/** Generate a valid concurrent history, bit-reproducible from seed. */
ServerHistory generateServerHistory(std::uint64_t seed,
                                    const ServerGenConfig &cfg = {});

/** Process-wide coverage counters (see registerStats). */
struct ServerCheckStats
{
    std::uint64_t histories = 0;    // capture() runs
    std::uint64_t crashPoints = 0;  // trials enumerated
    std::uint64_t faultFirings = 0; // injected fault events
    std::uint64_t opsVerified = 0;  // client completions with Ok
    std::uint64_t busyRetries = 0;
    std::uint64_t throttledRetries = 0;
    /** Executed session ops by SessionOp::Kind (the op mix). */
    std::uint64_t opMix[9] = {};
};

class ServerExplorer
{
  public:
    struct Options
    {
        /** File-system geometry; mirrored into the server's fsParams
         *  (alignSegmentsTo is pinned to blockSize so the tiny test
         *  geometry survives the server's stripe-width default). */
        CheckConfig cfg;
        bool stopAtFirst = false;
        /** @{ Forwarded to ExploreOptions (the Dropped-mode self-test
         *  doubles as the server-level mutation check). */
        bool legalTrials = true;
        bool dropAckedWrites = false;
        /** @} */
    };

    /** Canonical form of a history: exactly the ops capture() will
     *  execute (handle-less ops dropped, duplicate or over-budget
     *  snapshot ops dropped, out-of-range clients dropped).  capture()
     *  sanitizes internally; sanitize(sanitize(h)) == sanitize(h). */
    static ServerHistory sanitize(const ServerHistory &hist);

    /** Run @p hist live against a full Raid2Server — scheduler, fault
     *  controller, snapshot manager — recording the write log, apply-
     *  order op list, and oracle trees.  Deterministic: equal
     *  (history, options) give equal captures. */
    static Capture capture(const ServerHistory &hist,
                           const Options &opt);
    static Capture capture(const ServerHistory &hist)
    {
        return capture(hist, Options{});
    }

    /** capture() + CrashExplorer::explore over every crash point. */
    static ExploreReport explore(const ServerHistory &hist,
                                 const Options &opt);
    static ExploreReport explore(const ServerHistory &hist)
    {
        return explore(hist, Options{});
    }

    /** @{ Coverage counters, accumulated process-wide across runs
     *  ("check.server.*" once registered). */
    static const ServerCheckStats &stats();
    static void resetStats();
    static void registerStats(sim::StatsRegistry &reg);
    /** @} */
};

} // namespace raid2::check

#endif // RAID2_CHECK_SERVER_EXPLORER_HH
