/**
 * @file
 * Concurrent multi-client histories for the server-level checker.
 *
 * A ServerHistory is the program the ServerExplorer runs against a
 * full server::Raid2Server: an interleaved list of per-session client
 * operations (positional reads/writes, seeks, closes, open/create)
 * plus an admin session (client 0) issuing server-wide syncs and
 * snapshot lifecycle ops, and a fault::FaultPlan whose events fire
 * mid-history.  Histories are plain data — generated from a seed,
 * shrunk by the Shrinker, and serialized into "raid2-check v2"
 * artifacts — so this header stays free of server dependencies.
 */

#ifndef RAID2_CHECK_SERVER_HISTORY_HH
#define RAID2_CHECK_SERVER_HISTORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"

namespace raid2::check {

/** One client-visible operation in a concurrent server history. */
struct SessionOp
{
    enum class Kind {
        Open,       // open-or-create path on this client's handle
        PWrite,     // positional write [off, off+len)
        BurstWrite, // two concurrent positional writes: [off, off+len)
                    // and [off+len, off+2len) — provokes per-session
                    // Status::Throttled under a tight backlog cap
        PRead,      // positional read [off, off+len)
        Seek,       // set the handle position to off
        Close,      // close this client's handle
        Sync,       // admin (client 0): server-wide fsSync
        SnapCreate, // admin: take snapshot named path
        SnapDelete, // admin: delete snapshot named path
    };

    Kind kind = Kind::Sync;
    /** Session index: 0 = admin, 1..clients = RaidFileClient fleets. */
    unsigned client = 0;
    std::string path;      // Open / SnapCreate / SnapDelete
    std::uint64_t off = 0; // PWrite / BurstWrite / PRead / Seek
    std::uint64_t len = 0; // PWrite / BurstWrite / PRead

    /** One-line rendering, parseable by ServerArtifact. */
    std::string str() const;
};

/** Stable lower-case token for @p k (also the artifact line tag). */
const char *sessionOpKindName(SessionOp::Kind k);

/** A seeded concurrent history plus its fault schedule. */
struct ServerHistory
{
    unsigned clients = 3;
    std::vector<SessionOp> ops;
    fault::FaultPlan faults;
};

} // namespace raid2::check

#endif // RAID2_CHECK_SERVER_HISTORY_HH
