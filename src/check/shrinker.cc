#include "check/shrinker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::check {

std::vector<Op>
Shrinker::sanitize(const std::vector<Op> &ops)
{
    RefFs model;
    std::vector<Op> out;
    out.reserve(ops.size());
    for (const Op &op : ops) {
        if (!model.valid(op))
            continue;
        model.apply(op);
        out.push_back(op);
    }
    return out;
}

Shrinker::Result
Shrinker::shrink(const std::vector<Op> &ops, const Predicate &pred)
{
    Result res;
    res.ops = sanitize(ops);

    auto check = [&](const std::vector<Op> &cand)
        -> std::optional<Failure> {
        ++res.attempts;
        return pred(cand);
    };

    auto witness = check(res.ops);
    if (!witness)
        sim::panic("Shrinker::shrink: seed sequence does not fail");
    res.witness = *witness;

    // Pass 1: remove chunks, halving the chunk size down to one op.
    for (std::size_t chunk = std::max<std::size_t>(res.ops.size() / 2,
                                                   1);
         ;) {
        bool removed = false;
        for (std::size_t at = 0; at < res.ops.size();) {
            std::vector<Op> cand;
            cand.reserve(res.ops.size());
            cand.insert(cand.end(), res.ops.begin(),
                        res.ops.begin() + static_cast<std::ptrdiff_t>(
                                              at));
            cand.insert(cand.end(),
                        res.ops.begin() +
                            static_cast<std::ptrdiff_t>(std::min(
                                at + chunk, res.ops.size())),
                        res.ops.end());
            cand = sanitize(cand);
            if (cand.size() < res.ops.size()) {
                if (auto w = check(cand)) {
                    res.ops = std::move(cand);
                    res.witness = *w;
                    removed = true;
                    continue; // same position, next chunk slid in
                }
            }
            at += chunk;
        }
        if (chunk == 1 && !removed)
            break;
        if (chunk > 1)
            chunk = std::max<std::size_t>(chunk / 2, 1);
    }

    // Pass 2: shrink write lengths (patternBytes has the prefix
    // property: halving a write keeps its first half identical).
    for (std::size_t i = 0; i < res.ops.size(); ++i) {
        if (res.ops[i].kind != Op::Kind::Write)
            continue;
        while (res.ops[i].len > 1) {
            std::vector<Op> cand = res.ops;
            cand[i].len /= 2;
            if (auto w = check(cand)) {
                res.ops = std::move(cand);
                res.witness = *w;
            } else {
                break;
            }
        }
    }

    return res;
}

} // namespace raid2::check
