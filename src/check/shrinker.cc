#include "check/shrinker.hh"

#include <algorithm>

#include "check/server_explorer.hh"
#include "sim/logging.hh"

namespace raid2::check {

std::vector<Op>
Shrinker::sanitize(const std::vector<Op> &ops)
{
    RefFs model;
    std::vector<Op> out;
    out.reserve(ops.size());
    for (const Op &op : ops) {
        if (!model.valid(op))
            continue;
        model.apply(op);
        out.push_back(op);
    }
    return out;
}

Shrinker::Result
Shrinker::shrink(const std::vector<Op> &ops, const Predicate &pred)
{
    Result res;
    res.ops = sanitize(ops);

    auto check = [&](const std::vector<Op> &cand)
        -> std::optional<Failure> {
        ++res.attempts;
        return pred(cand);
    };

    auto witness = check(res.ops);
    if (!witness)
        sim::panic("Shrinker::shrink: seed sequence does not fail");
    res.witness = *witness;

    // Pass 1: remove chunks, halving the chunk size down to one op.
    for (std::size_t chunk = std::max<std::size_t>(res.ops.size() / 2,
                                                   1);
         ;) {
        bool removed = false;
        for (std::size_t at = 0; at < res.ops.size();) {
            std::vector<Op> cand;
            cand.reserve(res.ops.size());
            cand.insert(cand.end(), res.ops.begin(),
                        res.ops.begin() + static_cast<std::ptrdiff_t>(
                                              at));
            cand.insert(cand.end(),
                        res.ops.begin() +
                            static_cast<std::ptrdiff_t>(std::min(
                                at + chunk, res.ops.size())),
                        res.ops.end());
            cand = sanitize(cand);
            if (cand.size() < res.ops.size()) {
                if (auto w = check(cand)) {
                    res.ops = std::move(cand);
                    res.witness = *w;
                    removed = true;
                    continue; // same position, next chunk slid in
                }
            }
            at += chunk;
        }
        if (chunk == 1 && !removed)
            break;
        if (chunk > 1)
            chunk = std::max<std::size_t>(chunk / 2, 1);
    }

    // Pass 2: shrink write lengths (patternBytes has the prefix
    // property: halving a write keeps its first half identical).
    for (std::size_t i = 0; i < res.ops.size(); ++i) {
        if (res.ops[i].kind != Op::Kind::Write)
            continue;
        while (res.ops[i].len > 1) {
            std::vector<Op> cand = res.ops;
            cand[i].len /= 2;
            if (auto w = check(cand)) {
                res.ops = std::move(cand);
                res.witness = *w;
            } else {
                break;
            }
        }
    }

    return res;
}

Shrinker::ServerResult
Shrinker::shrinkHistory(const ServerHistory &hist,
                        const ServerPredicate &pred)
{
    ServerResult res;
    res.hist = ServerExplorer::sanitize(hist);

    auto check = [&](const ServerHistory &cand)
        -> std::optional<Failure> {
        ++res.attempts;
        return pred(cand);
    };

    auto witness = check(res.hist);
    if (!witness)
        sim::panic("Shrinker::shrinkHistory: seed history does not "
                   "fail");
    res.witness = *witness;

    auto withOps = [&](std::vector<SessionOp> ops) {
        ServerHistory h;
        h.clients = res.hist.clients;
        h.faults = res.hist.faults;
        h.ops = std::move(ops);
        return ServerExplorer::sanitize(h);
    };

    // Pass 1: ddmin chunk removal over the interleaved history.
    for (std::size_t chunk =
             std::max<std::size_t>(res.hist.ops.size() / 2, 1);
         ;) {
        bool removed = false;
        for (std::size_t at = 0; at < res.hist.ops.size();) {
            const auto &cur = res.hist.ops;
            std::vector<SessionOp> ops;
            ops.reserve(cur.size());
            ops.insert(ops.end(), cur.begin(),
                       cur.begin() + static_cast<std::ptrdiff_t>(at));
            ops.insert(ops.end(),
                       cur.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(at + chunk,
                                                  cur.size())),
                       cur.end());
            ServerHistory cand = withOps(std::move(ops));
            if (cand.ops.size() < res.hist.ops.size()) {
                if (auto w = check(cand)) {
                    res.hist = std::move(cand);
                    res.witness = *w;
                    removed = true;
                    continue; // same position, next chunk slid in
                }
            }
            at += chunk;
        }
        if (chunk == 1 && !removed)
            break;
        if (chunk > 1)
            chunk = std::max<std::size_t>(chunk / 2, 1);
    }

    // Pass 2: halve write lengths (the synthesized payload byte at a
    // position depends only on (position, inode), so a shorter write
    // keeps its surviving prefix identical).
    for (std::size_t i = 0; i < res.hist.ops.size(); ++i) {
        const auto k = res.hist.ops[i].kind;
        if (k != SessionOp::Kind::PWrite &&
            k != SessionOp::Kind::BurstWrite)
            continue;
        while (res.hist.ops[i].len > 1) {
            ServerHistory cand = res.hist;
            cand.ops[i].len /= 2;
            if (auto w = check(cand)) {
                res.hist = std::move(cand);
                res.witness = *w;
            } else {
                break;
            }
        }
    }

    return res;
}

} // namespace raid2::check
