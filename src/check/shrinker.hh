/**
 * @file
 * Greedy workload minimization for failing checker trials.
 *
 * Given an op sequence and a predicate that re-runs the checker and
 * reports whether a failure (any failure) still reproduces, the
 * shrinker removes chunks of ops (ddmin-style, halving chunk sizes
 * down to single ops) and then halves write lengths, keeping every
 * change that preserves the failure.  Removing ops can invalidate
 * later ones (unlink of a never-created file); candidates are passed
 * through sanitize(), which cascade-drops ops a RefFs replay rejects,
 * so the predicate only ever sees valid sequences.  The shrunk
 * sequence plus the surviving trial forms the replayable artifact.
 */

#ifndef RAID2_CHECK_SHRINKER_HH
#define RAID2_CHECK_SHRINKER_HH

#include <functional>
#include <optional>
#include <vector>

#include "check/crash_explorer.hh"
#include "check/server_history.hh"

namespace raid2::check {

class Shrinker
{
  public:
    /** Re-run the checker over a candidate sequence; return the
     *  failure it still provokes, or nullopt if it passes. */
    using Predicate =
        std::function<std::optional<Failure>(const std::vector<Op> &)>;

    struct Result
    {
        std::vector<Op> ops; // minimized sequence
        Failure witness;     // the failure the final sequence provokes
        std::size_t attempts = 0; // predicate invocations
    };

    /** Server-history variant: candidates carry the whole history
     *  (ops swapped; clients and fault schedule preserved). */
    using ServerPredicate = std::function<std::optional<Failure>(
        const ServerHistory &)>;

    struct ServerResult
    {
        ServerHistory hist; // minimized history
        Failure witness;
        std::size_t attempts = 0;
    };

    /** Drop every op a sequential RefFs replay rejects (cascading:
     *  a drop can invalidate later ops, which are dropped too). */
    static std::vector<Op> sanitize(const std::vector<Op> &ops);

    /** Minimize @p ops, preserving failure per @p pred.  @p seed must
     *  already fail (the predicate is consulted first; panics
     *  otherwise). */
    static Result shrink(const std::vector<Op> &ops,
                         const Predicate &pred);

    /** Minimize a concurrent server history: ddmin chunk removal over
     *  the interleaved op list (candidates pass through
     *  ServerExplorer::sanitize, which cascade-drops handle-less and
     *  invalid snapshot ops) followed by write-length halving.  The
     *  seed history must already fail. */
    static ServerResult shrinkHistory(const ServerHistory &hist,
                                      const ServerPredicate &pred);
};

} // namespace raid2::check

#endif // RAID2_CHECK_SHRINKER_HH
