#include "check/workload_gen.hh"

#include "sim/random.hh"

namespace raid2::check {

namespace {

/** Pick a random element of a non-empty vector. */
template <typename T>
const T &
pick(sim::Random &rng, const std::vector<T> &v)
{
    return v[rng.below(v.size())];
}

} // namespace

std::vector<Op>
generateWorkload(std::uint64_t seed, const GenConfig &cfg)
{
    sim::Random rng(seed * 0x9e3779b97f4a7c15ull + 1);
    RefFs model;
    std::vector<Op> ops;
    ops.reserve(cfg.numOps);
    unsigned snapCounter = 0; // unique snapshot names s0, s1, ...

    auto name = [&](const char *stem, unsigned pool) {
        return std::string(stem) + std::to_string(rng.below(pool));
    };
    auto somePath = [&](const char *stem, unsigned pool) {
        // A leaf name under a random existing directory.
        const auto dirs = model.allDirs();
        const std::string &dir = pick(rng, dirs);
        const std::string leaf = name(stem, pool);
        return dir == "/" ? "/" + leaf : dir + "/" + leaf;
    };

    auto emit = [&](Op op) -> bool {
        if (!model.valid(op))
            return false;
        model.apply(op);
        ops.push_back(std::move(op));
        return true;
    };

    while (ops.size() < cfg.numOps) {
        const auto files = model.allFiles();
        const std::uint64_t roll = rng.below(100);
        Op op;

        if (roll < 12) {
            op.kind = Op::Kind::Create;
            op.path = somePath("f", cfg.filePool);
        } else if (roll < 17) {
            op.kind = Op::Kind::Mkdir;
            op.path = somePath("d", cfg.dirPool);
        } else if (roll < 47) {
            if (files.empty())
                continue;
            op.kind = Op::Kind::Write;
            op.path = pick(rng, files);
            const std::uint64_t size = model.fileSize(op.path);
            // Offset: start, append, overwrite inside, or a hole.
            switch (rng.below(4)) {
              case 0:
                op.off = 0;
                break;
              case 1:
                op.off = size;
                break;
              case 2:
                op.off = size ? rng.below(size) : 0;
                break;
              default:
                op.off = size + rng.below(8 * 1024);
                break;
            }
            const bool big = model.totalBytes() <
                                 cfg.liveByteBudget / 2 &&
                             rng.chance(cfg.pBigWrite);
            const std::uint64_t cap =
                big ? cfg.maxBigWrite : cfg.maxSmallWrite;
            // Bias small: square a unit draw.
            const double u = rng.unit();
            op.len = 1 + static_cast<std::uint64_t>(u * u *
                                                    double(cap - 1));
            if (model.totalBytes() + op.len > cfg.liveByteBudget)
                continue; // over budget; try another op kind
            op.dataSeed = rng.next();
        } else if (roll < 55) {
            if (files.empty())
                continue;
            op.kind = Op::Kind::Truncate;
            op.path = pick(rng, files);
            const std::uint64_t size = model.fileSize(op.path);
            op.len = rng.below(size + size / 2 + 512);
        } else if (roll < 63) {
            op.kind = Op::Kind::Rename;
            // Source: any file, or occasionally a directory.
            if (!files.empty() && !rng.chance(0.2)) {
                op.path = pick(rng, files);
                op.path2 = rng.chance(0.3) && files.size() > 1
                               ? pick(rng, files) // rename-over
                               : somePath("f", cfg.filePool);
            } else {
                const auto dirs = model.allDirs();
                op.path = pick(rng, dirs);
                if (op.path == "/")
                    continue;
                op.path2 = somePath("d", cfg.dirPool);
            }
        } else if (roll < 67) {
            if (files.empty())
                continue;
            op.kind = Op::Kind::Link;
            op.path = pick(rng, files);
            op.path2 = somePath("f", cfg.filePool);
        } else if (roll < 74) {
            if (files.empty())
                continue;
            op.kind = Op::Kind::Unlink;
            op.path = pick(rng, files);
        } else if (roll < 77) {
            const auto dirs = model.allDirs();
            op.kind = Op::Kind::Rmdir;
            op.path = pick(rng, dirs);
        } else if (roll < 85) {
            op.kind = Op::Kind::Sync;
        } else if (roll < 91) {
            op.kind = Op::Kind::Checkpoint;
        } else if (roll < 93) {
            // Names are globally unique so an op sequence never
            // recreates a deleted snapshot under the same name — the
            // post-crash table oracle stays per-name unambiguous.
            if (model.snapshots().size() >= cfg.maxLiveSnapshots)
                continue;
            op.kind = Op::Kind::SnapCreate;
            op.path = "s" + std::to_string(snapCounter++);
        } else if (roll < 97) {
            if (model.snapshots().empty())
                continue;
            const std::vector<std::string> live(
                model.snapshots().begin(), model.snapshots().end());
            op.kind = Op::Kind::SnapDelete;
            op.path = pick(rng, live);
        } else {
            op.kind = Op::Kind::Clean;
            op.len = 2 + rng.below(6);
        }

        emit(std::move(op));
    }

    return ops;
}

} // namespace raid2::check
