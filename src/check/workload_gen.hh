/**
 * @file
 * Seeded workload generator for the crash-consistency checker.
 *
 * Emits a sequence of valid file-system operations —
 * create/write/append/truncate/rename/link/unlink/mkdir/rmdir plus
 * sync/checkpoint/clean — bit-reproducible from its seed.  Validity is
 * guaranteed by consulting a RefFs model while generating, so the live
 * lfs::Lfs run never throws.  Size and name distributions are tuned to
 * exercise the interesting machinery: partial blocks, holes, indirect
 * and double-indirect trees, cross-directory renames, rename-over-
 * existing, hard links, and enough rewrite traffic that cleaning and
 * segment-boundary crossings happen naturally on the small test
 * geometry.
 */

#ifndef RAID2_CHECK_WORKLOAD_GEN_HH
#define RAID2_CHECK_WORKLOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "check/ref_fs.hh"

namespace raid2::check {

/** Distribution knobs (defaults match the ctest sweep). */
struct GenConfig
{
    unsigned numOps = 110;
    unsigned filePool = 8;      // names f0..f{n-1}
    unsigned dirPool = 3;       // names d0..d{n-1}
    std::uint64_t maxSmallWrite = 6 * 1024;
    std::uint64_t maxBigWrite = 150 * 1024; // reaches dindirect @1KB
    double pBigWrite = 0.02;
    /** Soft cap on total live bytes (stay well under the device). */
    std::uint64_t liveByteBudget = 1200 * 1024;
    /** Concurrent snapshots (each pins its live segment set, so keep
     *  well under the segment budget of the small test geometry). */
    unsigned maxLiveSnapshots = 2;
};

/** Generate @p cfg.numOps valid ops, deterministically from @p seed. */
std::vector<Op> generateWorkload(std::uint64_t seed,
                                 const GenConfig &cfg = GenConfig{});

} // namespace raid2::check

#endif // RAID2_CHECK_WORKLOAD_GEN_HH
