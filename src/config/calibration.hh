/**
 * @file
 * Calibration constants for the RAID-II reproduction.
 *
 * Every constant is traceable to a sentence in the paper (cited next
 * to it) or, where the paper gives only a measured end-to-end number,
 * to the component spec that produces that number.  Benches must take
 * their parameters from here so EXPERIMENTS.md can audit the mapping.
 *
 * Nothing in this file is fitted to the paper's *curves*; the curves
 * are reproduced by simulating the datapath built from these specs.
 */

#ifndef RAID2_CONFIG_CALIBRATION_HH
#define RAID2_CONFIG_CALIBRATION_HH

#include "sim/types.hh"

namespace raid2::cal {

using sim::Tick;
using sim::msToTicks;
using sim::usToTicks;

// ---------------------------------------------------------------------
// SCSI subsystem ("Disk performance is responsible for the lower-than-
// expected hardware system level performance of RAID-II", §2.3)
// ---------------------------------------------------------------------

/** "the Cougar disk controller ... only supports about 3 megabytes/
 *  second on each of two SCSI strings" (§2.3, Fig 7).  Table 1's own
 *  arithmetic pins it more precisely: 4 VME ports deliver 27.6 MB/s
 *  through 8 strings = ~3.45 MB/s per string; we use 3.4. */
constexpr double scsiStringMBs = 3.4;

/** "The Cougar disk controllers can transfer data at 8 megabytes/
 *  second" (§2.2) — aggregate cap across both strings. */
constexpr double cougarMBs = 8.0;

/** Per-SCSI-command overhead on the string (arbitration, selection,
 *  message phases). Era-typical ~0.5 ms. */
constexpr Tick scsiCommandOverhead = usToTicks(500);

// ---------------------------------------------------------------------
// XBUS board (§2.2)
// ---------------------------------------------------------------------

/** "Each port was intended to support 40 megabytes/second" (§2.2). */
constexpr double xbusPortMBs = 40.0;

/** Four 8 MB DRAM modules, 16-word interleave (§2.2, Fig 4). */
constexpr unsigned xbusMemModules = 4;
constexpr double xbusMemModuleMBs = 40.0; // 4 x 40 = 160 MB/s total
constexpr std::uint64_t xbusMemBytes = 4ull * 8 * 1024 * 1024;

/** "our relatively slow, synchronous VME interface ports ... only
 *  support 6.9 megabytes/second on read operations and 5.9 megabytes/
 *  second on write operations" (§2.3). */
constexpr double vmePortReadMBs = 6.9;
constexpr double vmePortWriteMBs = 5.9;

/** Parity (XOR) engine sits on one 40 MB/s XBUS port (§2.2). */
constexpr double parityEngineMBs = 40.0;

/**
 * The TMC-VME control-bus link to the host.  For Table 1 the paper
 * attaches a fifth Cougar to it, run as an independent stream (it
 * cannot be striped into the array without throttling every stripe):
 * reads gain 31 - 4*6.9 = 3.4 MB/s through it, writes nearly nothing
 * (23 ~= 4*5.9*23/24).  The link is "slow" (§2.3) because of
 * asynchronous-VME synchronization, which is worse when writing.
 */
constexpr double controlLinkReadMBs = 3.4;
constexpr double controlLinkWriteMBs = 1.0;

// ---------------------------------------------------------------------
// HIPPI network (§2.3, Fig 6)
// ---------------------------------------------------------------------

/** "the XBUS and HIPPI boards support 38 megabytes/second in both
 *  directions" — measured asymptote 38.5 (Fig 6) against the 40 MB/s
 *  port design target. */
constexpr double hippiPortMBs = 38.5;

/** "the overhead of sending a HIPPI packet is about 1.1 milliseconds,
 *  mostly due to setting up the HIPPI and XBUS control registers
 *  across the slow VME link" (§2.3). */
constexpr Tick hippiSetupOverhead = msToTicks(1.1);

/** HIPPI FIFO burst interface: "bursts of 100 megabytes/second into
 *  32 kilobyte FIFO interfaces" (§2.2). */
constexpr double hippiBurstMBs = 100.0;
constexpr std::uint64_t hippiFifoBytes = 32 * 1024;

// ---------------------------------------------------------------------
// Ethernet / clients (§2.1.1, §3.4)
// ---------------------------------------------------------------------

/** 10 Mb/s Ethernet = 1.25 MB/s raw. */
constexpr double ethernetMBs = 1.25;

/** "an Ethernet packet takes approximately 0.5 millisecond" (§2.3). */
constexpr Tick ethernetPacketOverhead = usToTicks(500);
constexpr std::uint64_t ethernetMTU = 1500;

/** SPARCstation 10/51 client NIC path is copy-limited: "writes data to
 *  RAID-II at 3.1 megabytes per second" / polling-driver reads at
 *  3.2 MB/s (§3.4). */
constexpr double clientWriteMBs = 3.1;
constexpr double clientReadMBs = 3.2;

// ---------------------------------------------------------------------
// Host workstation: Sun 4/280 (§1)
// ---------------------------------------------------------------------

/** "the low backplane bandwidth of the Sun 4/280's system bus, which
 *  becomes saturated at 9 megabytes/second" (§1). */
constexpr double hostBackplaneMBs = 9.0;

/** "copy operations ... saturate the memory system when I/O bandwidth
 *  reaches 2.3 megabytes/second" (§1): two passes (kernel DMA buffer
 *  -> user buffer each cross memory twice with the VME DMA stream in
 *  between) over a ~4.6 MB/s effective copy engine. */
constexpr double hostCopyMBs = 4.6;

/** Copies per byte for the RAID-I / standard-mode data path. */
constexpr unsigned hostCopiesPerByte = 2;

/** Per-I/O host CPU cost: "limited by the large number of context
 *  switches required on the Sun4/280 workstation to handle request
 *  completions" (§2.3).  Two switches plus kernel work per I/O. */
constexpr Tick hostPerIoCpu = msToTicks(2.4);

/** Extra per-I/O kernel work on the RAID-I path (buffer management on
 *  the host, cache flush interference, §1). */
constexpr Tick hostRaid1ExtraPerIo = msToTicks(1.3);

// ---------------------------------------------------------------------
// LFS on RAID-II (§3.4)
// ---------------------------------------------------------------------

/** "The LFS log is interleaved or striped across the disks in units of
 *  64 kilobytes" (§3.4) — binary kilobytes: 15 units x 64 KiB is
 *  exactly the 960 KB segment. */
constexpr std::uint64_t lfsStripeUnitBytes = 64 * sim::KiB;

/** "The log is written to the disk array in units or segments of 960
 *  kilobytes" (§3.4). */
constexpr std::uint64_t lfsSegmentBytes = 960 * sim::KiB;

/** "an average overhead of 23 milliseconds per operation: 4
 *  milliseconds of file system overhead and 19 milliseconds of disk
 *  overhead" (§3.4) — the 19 ms emerges from the disk model; the 4 ms
 *  is charged by the file server software. */
constexpr Tick lfsReadOpOverhead = msToTicks(4.0);

/** "approximately 3 milliseconds of network and file system overhead
 *  per request" for small writes (§3.4). */
constexpr Tick lfsWriteOpOverhead = msToTicks(3.0);

/** Default pipeline depth for the high-bandwidth read path (§3.3:
 *  "LFS may have several pipeline processes issuing read requests"). */
constexpr unsigned defaultPipelineDepth = 4;

/** Default XBUS transfer chunk for pipelined moves. */
constexpr std::uint64_t xbusChunkBytes = 16 * 1024;

} // namespace raid2::cal

#endif // RAID2_CONFIG_CALIBRATION_HH
