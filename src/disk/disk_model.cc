#include "disk/disk_model.hh"

#include <cstdlib>
#include <functional>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::disk {

DiskModel::DiskModel(sim::EventQueue &eq_, std::string name,
                     const DiskProfile &profile,
                     std::unique_ptr<Scheduler> sched_)
    : eq(eq_), _name(std::move(name)), prof(profile),
      sched(sched_ ? std::move(sched_) : makeFcfsScheduler())
{
    // Give each drive a distinct rotational phase so an array's
    // rotational latencies don't line up artificially.
    std::size_t h = std::hash<std::string>{}(_name);
    rotPhase = static_cast<Tick>(h % prof.rotationTicks());
}

void
DiskModel::submit(std::uint64_t start_sector, std::uint32_t sectors,
                  bool write, std::function<void()> done)
{
    if (sectors == 0)
        sim::panic("disk %s: zero-sector request", _name.c_str());
    if (start_sector + sectors > prof.totalSectors())
        sim::panic("disk %s: request [%llu, +%u) beyond capacity %llu",
                   _name.c_str(), (unsigned long long)start_sector, sectors,
                   (unsigned long long)prof.totalSectors());

    DiskRequest req;
    req.startSector = start_sector;
    req.sectors = sectors;
    req.write = write;
    req.done = std::move(done);
    req.submitTick = eq.now();
    sched->push(std::move(req));
    _queueDepth.sample(static_cast<double>(sched->size()) + (busy ? 1 : 0));

    if (!busy)
        startNext();
}

void
DiskModel::submitBytes(std::uint64_t offset, std::uint64_t bytes, bool write,
                       std::function<void()> done)
{
    // Round outward to whole sectors: the drive always transfers full
    // sectors regardless of the caller's byte range.
    const std::uint64_t first = offset / prof.sectorBytes;
    const std::uint64_t last =
        (offset + bytes + prof.sectorBytes - 1) / prof.sectorBytes;
    submit(first, static_cast<std::uint32_t>(last - first), write,
           std::move(done));
}

void
DiskModel::stall(Tick duration)
{
    const Tick until = eq.now() + duration;
    ++_stalls;
    _stallTicks += duration;
    if (until > stallUntil)
        stallUntil = until;
    if (auto *t = eq.tracer())
        t->complete(_name, "stall", eq.now(), until, 0);
}

void
DiskModel::startNext()
{
    if (sched->empty()) {
        busy = false;
        return;
    }
    if (eq.now() < stallUntil) {
        // Drive is riding out an injected timeout: hold the queue and
        // resume when the stall expires.  One wakeup suffices even if
        // the stall is extended meanwhile — startNext re-checks.
        busy = true;
        if (!stallPending) {
            stallPending = true;
            eq.schedule(stallUntil, [this] {
                stallPending = false;
                startNext();
            });
        }
        return;
    }
    busy = true;

    // std::function closures must be copyable; stash the request in a
    // shared_ptr so its done-callback survives the capture.
    auto req = std::make_shared<DiskRequest>(sched->pop(headSector));
    const Tick start = eq.now();
    Tick positioning = 0;
    const Tick service = computeService(*req, start, positioning);
    const Tick finish = start + service;

    ++_requests;
    if (req->write)
        _sectorsWritten += req->sectors;
    else
        _sectorsRead += req->sectors;
    _serviceMs.sample(sim::ticksToMs(service));
    _positionMs.sample(sim::ticksToMs(positioning));
    busyTime.addBusy(start, finish);
    if (auto *t = eq.tracer())
        t->complete(_name, req->write ? "write" : "read", start, finish,
                    std::uint64_t(req->sectors) * prof.sectorBytes);

    eq.schedule(finish, [this, req] {
        if (!req->write) {
            readAheadPos = req->startSector + req->sectors;
            lastReadDone = eq.now();
        } else {
            // A write invalidates any overlapping read-ahead state.
            readAheadPos = ~std::uint64_t(0);
        }
        if (req->done)
            req->done();
        startNext();
    });
}

Tick
DiskModel::computeService(const DiskRequest &req, Tick start,
                          Tick &position_out)
{
    std::uint32_t cyl, head, sec;
    prof.decompose(req.startSector, cyl, head, sec);

    Tick t = prof.cmdOverhead;

    // Read-ahead: a strictly sequential read that arrives while the
    // buffered stream is still warm skips seek and rotation entirely.
    const bool seq_read_hit =
        !req.write && prof.trackBufferKiB > 0 &&
        req.startSector == readAheadPos &&
        start - lastReadDone <= 4 * prof.rotationTicks();

    Tick positioning = 0;
    if (seq_read_hit) {
        ++_readAheadHits;
    } else {
        const std::uint32_t dist = cyl > curCylinder ? cyl - curCylinder
                                                     : curCylinder - cyl;
        const Tick seek = prof.seekTicks(dist);

        // Rotational delay: platter angle is a pure function of time.
        const Tick rot = prof.rotationTicks();
        const Tick target_angle = Tick(sec) * prof.sectorTicks();
        const Tick angle_at_arrival = (start + t + seek + rotPhase) % rot;
        Tick rot_delay = (target_angle + rot - angle_at_arrival) % rot;
        positioning = seek + rot_delay;
    }
    t += positioning;
    position_out = positioning;

    // Media transfer: sector time per sector plus a head/track switch
    // at each track boundary crossed (track skew assumed to cover
    // resynchronization).
    const std::uint32_t spt = prof.sectorsPerTrack;
    const std::uint32_t boundaries = (sec + req.sectors - 1) / spt;
    t += Tick(req.sectors) * prof.sectorTicks() +
         Tick(boundaries) * prof.headSwitch;

    // Track head position after the transfer.
    const std::uint64_t end_sector = req.startSector + req.sectors;
    std::uint32_t ecyl, ehead, esec;
    prof.decompose(end_sector == prof.totalSectors() ? end_sector - 1
                                                     : end_sector,
                   ecyl, ehead, esec);
    curCylinder = ecyl;
    headSector = end_sector;

    return t;
}

void
DiskModel::registerStats(sim::StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.addGauge(prefix + ".requests",
                 [this] { return static_cast<double>(_requests); });
    reg.addGauge(prefix + ".sectors_read",
                 [this] { return static_cast<double>(_sectorsRead); });
    reg.addGauge(prefix + ".sectors_written",
                 [this] { return static_cast<double>(_sectorsWritten); });
    reg.addGauge(prefix + ".readahead_hits",
                 [this] { return static_cast<double>(_readAheadHits); });
    reg.addGauge(prefix + ".stalls",
                 [this] { return static_cast<double>(_stalls); });
    reg.addGauge(prefix + ".stall_ms",
                 [this] { return sim::ticksToMs(_stallTicks); });
    reg.add(prefix + ".service_ms", _serviceMs);
    reg.add(prefix + ".position_ms", _positionMs);
    reg.add(prefix + ".queue_depth", _queueDepth);
    reg.add(prefix + ".busy", busyTime);
}

void
DiskModel::resetStats()
{
    _requests = 0;
    _sectorsRead = 0;
    _sectorsWritten = 0;
    _readAheadHits = 0;
    _stalls = 0;
    _stallTicks = 0;
    _serviceMs.reset();
    _positionMs.reset();
    _queueDepth.reset();
    busyTime.reset();
}

} // namespace raid2::disk
