/**
 * @file
 * Mechanical disk drive model.
 *
 * Simulates the media phase of a disk command: per-command firmware
 * overhead, a three-point-fitted seek curve, true rotational-position
 * tracking (the platter angle is a function of simulated time), media
 * transfer at the geometry-implied rate with head-switch costs at
 * track boundaries, and a track read-ahead buffer that lets strictly
 * sequential reads stream without positioning — the asymmetry behind
 * the paper's sequential read-vs-write gap (Table 1) and the Wren IV
 * vs IBM 0661 I/O-rate gap (Table 2).
 *
 * The model covers mechanics only.  Bus transfer (SCSI string, Cougar
 * controller, VME port) is layered on by the scsi module: for reads
 * the media phase fills the drive's buffer, after which bytes drain
 * over the bus; for writes the bus fills the buffer and the media
 * phase commits it.
 */

#ifndef RAID2_DISK_DISK_MODEL_HH
#define RAID2_DISK_DISK_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "disk/disk_profile.hh"
#include "disk/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace raid2::disk {

/** A single simulated disk drive. */
class DiskModel
{
  public:
    DiskModel(sim::EventQueue &eq, std::string name,
              const DiskProfile &profile,
              std::unique_ptr<Scheduler> sched = nullptr);

    /**
     * Queue a media command.  @p done fires when the media phase
     * completes (read: data in drive buffer; write: data committed).
     */
    void submit(std::uint64_t start_sector, std::uint32_t sectors,
                bool write, std::function<void()> done);

    /** Convenience: byte-addressed submit (must be sector aligned). */
    void submitBytes(std::uint64_t offset, std::uint64_t bytes, bool write,
                     std::function<void()> done);

    const DiskProfile &profile() const { return prof; }
    const std::string &name() const { return _name; }
    std::uint64_t capacityBytes() const { return prof.capacityBytes(); }

    /** True if no command is queued or in flight. */
    bool idle() const { return !busy && sched->empty(); }

    /**
     * Fault-injection hook: stall the drive for @p duration ticks,
     * modeling a transient firmware timeout or retry storm.  A command
     * already on the media finishes normally; the next command does
     * not start until the stall expires.  Overlapping stalls extend,
     * they do not stack.
     */
    void stall(Tick duration);

    /** True while a stall is pending or in effect. */
    bool stalled() const { return eq.now() < stallUntil; }

    /** @{ Statistics. */
    std::uint64_t requests() const { return _requests; }
    std::uint64_t sectorsRead() const { return _sectorsRead; }
    std::uint64_t sectorsWritten() const { return _sectorsWritten; }
    std::uint64_t readAheadHits() const { return _readAheadHits; }
    std::uint64_t stalls() const { return _stalls; }
    Tick stallTicks() const { return _stallTicks; }
    /** Per-command service time in ms (positioning + transfer). */
    const sim::Distribution &serviceMs() const { return _serviceMs; }
    /** Per-command positioning (seek + rotation) time in ms. */
    const sim::Distribution &positionMs() const { return _positionMs; }
    const sim::Distribution &queueDepth() const { return _queueDepth; }
    sim::Tick busyTicks() const { return busyTime.busy(); }
    void resetStats();
    /** Register all drive stats under @p prefix (e.g. "disk.0"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;
    /** @} */

  private:
    /** Start servicing the head of the queue. */
    void startNext();

    /**
     * Compute the media service time of @p req starting at @p start and
     * update head position / read-ahead state.
     * @param position_out seek + rotational component, for stats.
     */
    Tick computeService(const DiskRequest &req, Tick start,
                        Tick &position_out);

    sim::EventQueue &eq;
    std::string _name;
    const DiskProfile &prof;
    std::unique_ptr<Scheduler> sched;

    bool busy = false;
    std::uint32_t curCylinder = 0;
    std::uint64_t headSector = 0;    // absolute sector under the head
    Tick rotPhase = 0;               // per-drive rotation phase offset

    /** Next sector the read-ahead buffer holds (one past last read). */
    std::uint64_t readAheadPos = ~std::uint64_t(0);
    /** Simulated time of the last read completion. */
    Tick lastReadDone = 0;

    /** @{ Injected-stall state: commands queued before this tick wait;
     *  stallPending guards against scheduling duplicate wakeups. */
    Tick stallUntil = 0;
    bool stallPending = false;
    /** @} */

    std::uint64_t _requests = 0;
    std::uint64_t _sectorsRead = 0;
    std::uint64_t _sectorsWritten = 0;
    std::uint64_t _readAheadHits = 0;
    std::uint64_t _stalls = 0;
    Tick _stallTicks = 0;
    sim::Distribution _serviceMs;
    sim::Distribution _positionMs;
    sim::Distribution _queueDepth;
    sim::Utilization busyTime;
};

} // namespace raid2::disk

#endif // RAID2_DISK_DISK_MODEL_HH
