#include "disk/disk_profile.hh"

#include <cmath>

#include "sim/logging.hh"

namespace raid2::disk {

Tick
DiskProfile::rotationTicks() const
{
    return static_cast<Tick>(60.0 / rpm * static_cast<double>(sim::nsPerSec));
}

Tick
DiskProfile::sectorTicks() const
{
    return rotationTicks() / sectorsPerTrack;
}

std::uint64_t
DiskProfile::bytesPerTrack() const
{
    return std::uint64_t(sectorsPerTrack) * sectorBytes;
}

std::uint64_t
DiskProfile::bytesPerCylinder() const
{
    return bytesPerTrack() * heads;
}

std::uint64_t
DiskProfile::capacityBytes() const
{
    return bytesPerCylinder() * cylinders;
}

std::uint64_t
DiskProfile::totalSectors() const
{
    return std::uint64_t(cylinders) * heads * sectorsPerTrack;
}

double
DiskProfile::mediaMBs() const
{
    return static_cast<double>(bytesPerTrack()) /
           (static_cast<double>(rotationTicks()) /
            static_cast<double>(sim::nsPerSec)) / 1e6;
}

Tick
DiskProfile::seekTicks(std::uint32_t d) const
{
    if (d == 0)
        return 0;
    // Fit t(d) = a + b*sqrt(d) + c*d to:
    //   t(1)        = minSeek
    //   t(C/3)      = avgSeek   (mean random seek distance ~ C/3)
    //   t(C-1)      = maxSeek
    const double c1 = 1.0;
    const double c2 = cylinders / 3.0;
    const double c3 = cylinders - 1.0;
    const double t1 = static_cast<double>(minSeek);
    const double t2 = static_cast<double>(avgSeek);
    const double t3 = static_cast<double>(maxSeek);

    // Solve the 2x2 system for b, c with a eliminated via point 1:
    //   b*(sqrt(c2)-1) + c*(c2-1) = t2-t1
    //   b*(sqrt(c3)-1) + c*(c3-1) = t3-t1
    const double a11 = std::sqrt(c2) - std::sqrt(c1);
    const double a12 = c2 - c1;
    const double a21 = std::sqrt(c3) - std::sqrt(c1);
    const double a22 = c3 - c1;
    const double det = a11 * a22 - a12 * a21;
    double b = 0.0, c = 0.0;
    if (det != 0.0) {
        b = ((t2 - t1) * a22 - (t3 - t1) * a12) / det;
        c = (a11 * (t3 - t1) - a21 * (t2 - t1)) / det;
    }
    const double a = t1 - b * std::sqrt(c1) - c * c1;

    double t = a + b * std::sqrt(static_cast<double>(d)) +
               c * static_cast<double>(d);
    if (t < static_cast<double>(minSeek))
        t = static_cast<double>(minSeek);
    return static_cast<Tick>(t);
}

void
DiskProfile::decompose(std::uint64_t sector, std::uint32_t &cyl,
                       std::uint32_t &head, std::uint32_t &sec) const
{
    const std::uint64_t per_cyl =
        std::uint64_t(heads) * sectorsPerTrack;
    cyl = static_cast<std::uint32_t>(sector / per_cyl);
    const std::uint64_t in_cyl = sector % per_cyl;
    head = static_cast<std::uint32_t>(in_cyl / sectorsPerTrack);
    sec = static_cast<std::uint32_t>(in_cyl % sectorsPerTrack);
}

const DiskProfile &
ibm0661()
{
    static const DiskProfile profile = [] {
        DiskProfile p;
        p.name = "IBM 0661 (320 MB, 3.5in)";
        p.cylinders = 949;
        p.heads = 14;
        p.sectorsPerTrack = 48;
        p.rpm = 4316.0;             // 13.9 ms rotation
        p.minSeek = sim::msToTicks(2.0);
        p.avgSeek = sim::msToTicks(12.5);
        p.maxSeek = sim::msToTicks(25.0);
        p.headSwitch = sim::msToTicks(1.0);
        p.cmdOverhead = sim::msToTicks(1.5);
        p.trackBufferKiB = 256;
        return p;
    }();
    return profile;
}

const DiskProfile &
wrenIV()
{
    static const DiskProfile profile = [] {
        DiskProfile p;
        p.name = "Seagate Wren IV (344 MB, 5.25in)";
        p.cylinders = 1549;
        p.heads = 9;
        p.sectorsPerTrack = 48;
        p.rpm = 3600.0;             // 16.7 ms rotation
        p.minSeek = sim::msToTicks(3.0);
        p.avgSeek = sim::msToTicks(16.5);
        p.maxSeek = sim::msToTicks(35.0);
        p.headSwitch = sim::msToTicks(1.2);
        p.cmdOverhead = sim::msToTicks(2.0);
        p.trackBufferKiB = 64;
        return p;
    }();
    return profile;
}

} // namespace raid2::disk
