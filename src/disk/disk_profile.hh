/**
 * @file
 * Disk drive parameter profiles.
 *
 * The paper's two prototypes used Seagate Wren IV (RAID-I) and IBM
 * 0661 (RAID-II) drives; §2.3 notes "The IBM 0661 disk drives ... can
 * perform more I/Os per second than the Seagate Wren IV disks ...
 * because they have shorter seek and rotation times."  The profiles
 * below use the published drive specifications of that era; the
 * single-disk sustained rate of the Wren IV comes out at ~1.3 MB/s,
 * matching §1 ("a single disk on RAID-I can sustain 1.3 megabytes/
 * second").
 */

#ifndef RAID2_DISK_DISK_PROFILE_HH
#define RAID2_DISK_DISK_PROFILE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace raid2::disk {

using sim::Tick;

/** Static description of a disk drive model. */
struct DiskProfile
{
    std::string name;

    std::uint32_t cylinders = 0;
    std::uint32_t heads = 0;
    std::uint32_t sectorsPerTrack = 0;
    std::uint32_t sectorBytes = 512;

    double rpm = 3600.0;

    /** Single-cylinder, random-average and full-stroke seek times. */
    Tick minSeek = 0;
    Tick avgSeek = 0;
    Tick maxSeek = 0;

    /** Head-switch time (also charged at track boundaries while
     *  streaming; track skew is assumed to match it). */
    Tick headSwitch = 0;

    /** Per-command firmware/controller overhead inside the drive. */
    Tick cmdOverhead = 0;

    /** Read-ahead (track) buffer size; 0 disables read-ahead. */
    std::uint32_t trackBufferKiB = 0;

    /** @{ Derived quantities. */
    Tick rotationTicks() const;
    Tick sectorTicks() const;
    std::uint64_t bytesPerTrack() const;
    std::uint64_t bytesPerCylinder() const;
    std::uint64_t capacityBytes() const;
    std::uint64_t totalSectors() const;
    /** Media streaming rate in MB/s (decimal). */
    double mediaMBs() const;
    /** @} */

    /**
     * Seek time for a cylinder distance using the standard
     * a + b*sqrt(d) + c*d curve fitted to (min, avg, max).
     */
    Tick seekTicks(std::uint32_t cylinder_distance) const;

    /** Map an absolute sector number to (cylinder, head, sector). */
    void decompose(std::uint64_t sector, std::uint32_t &cyl,
                   std::uint32_t &head, std::uint32_t &sec) const;
};

/** IBM 0661 "Lightning" 3.5-inch, 320 MB (RAID-II's drives, §2.2). */
const DiskProfile &ibm0661();

/** Seagate Wren IV 5.25-inch (RAID-I's drives, §1). */
const DiskProfile &wrenIV();

} // namespace raid2::disk

#endif // RAID2_DISK_DISK_PROFILE_HH
