#include "disk/scheduler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::disk {

void
FcfsScheduler::push(DiskRequest req)
{
    queue.push_back(std::move(req));
}

DiskRequest
FcfsScheduler::pop(std::uint64_t)
{
    if (queue.empty())
        sim::panic("FcfsScheduler::pop on empty queue");
    DiskRequest req = std::move(queue.front());
    queue.pop_front();
    return req;
}

void
ElevatorScheduler::push(DiskRequest req)
{
    queue.push_back(std::move(req));
}

DiskRequest
ElevatorScheduler::pop(std::uint64_t current_sector)
{
    if (queue.empty())
        sim::panic("ElevatorScheduler::pop on empty queue");

    // Prefer the smallest start sector at or beyond the head; if none,
    // wrap to the overall smallest (C-SCAN).
    auto best = queue.end();
    auto smallest = queue.begin();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->startSector < smallest->startSector)
            smallest = it;
        if (it->startSector >= current_sector &&
            (best == queue.end() || it->startSector < best->startSector)) {
            best = it;
        }
    }
    if (best == queue.end())
        best = smallest;
    DiskRequest req = std::move(*best);
    queue.erase(best);
    return req;
}

std::unique_ptr<Scheduler>
makeFcfsScheduler()
{
    return std::make_unique<FcfsScheduler>();
}

std::unique_ptr<Scheduler>
makeElevatorScheduler()
{
    return std::make_unique<ElevatorScheduler>();
}

} // namespace raid2::disk
