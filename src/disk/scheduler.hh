/**
 * @file
 * Disk command queue scheduling policies.
 *
 * The drives of the era accepted one command at a time; queueing
 * happens in the (simulated) driver.  FCFS matches the paper's
 * prototype; a C-SCAN elevator is provided for ablation studies.
 */

#ifndef RAID2_DISK_SCHEDULER_HH
#define RAID2_DISK_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sim/types.hh"

namespace raid2::disk {

using sim::Tick;

/** One queued disk command (media phase only; see DiskModel). */
struct DiskRequest
{
    std::uint64_t startSector = 0;
    std::uint32_t sectors = 0;
    bool write = false;
    std::function<void()> done;
    Tick submitTick = 0;
};

/** Queue-order policy for pending disk commands. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual void push(DiskRequest req) = 0;
    /** Select and remove the next command given the head position. */
    virtual DiskRequest pop(std::uint64_t current_sector) = 0;
    virtual bool empty() const = 0;
    virtual std::size_t size() const = 0;
};

/** First-come first-served (the prototype's policy). */
class FcfsScheduler : public Scheduler
{
  public:
    void push(DiskRequest req) override;
    DiskRequest pop(std::uint64_t current_sector) override;
    bool empty() const override { return queue.empty(); }
    std::size_t size() const override { return queue.size(); }

  private:
    std::deque<DiskRequest> queue;
};

/** C-SCAN elevator: service ascending sector order, wrap at the end. */
class ElevatorScheduler : public Scheduler
{
  public:
    void push(DiskRequest req) override;
    DiskRequest pop(std::uint64_t current_sector) override;
    bool empty() const override { return queue.empty(); }
    std::size_t size() const override { return queue.size(); }

  private:
    std::deque<DiskRequest> queue;
};

std::unique_ptr<Scheduler> makeFcfsScheduler();
std::unique_ptr<Scheduler> makeElevatorScheduler();

} // namespace raid2::disk

#endif // RAID2_DISK_SCHEDULER_HH
