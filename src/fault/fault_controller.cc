#include "fault/fault_controller.hh"

#include <algorithm>

#include "scsi/cougar_controller.hh"
#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace raid2::fault {

FaultController::FaultController(sim::EventQueue &eq_, std::string name,
                                 Hooks hooks_)
    : eq(eq_), _name(std::move(name)), hooks(hooks_)
{
    if (!hooks.array)
        sim::panic("FaultController %s: no array", _name.c_str());
    const unsigned n = hooks.array->numDisks();
    _latents.resize(n);
    // Latents land inside the space the layout actually stripes (and,
    // when a functional twin is attached, inside its member disks).
    const auto &layout = hooks.array->layout();
    _diskSpan = layout.numStripes() * layout.unitBytes();
    if (hooks.functional) {
        if (hooks.functional->numDisks() != n)
            sim::panic("FaultController %s: functional twin has %u "
                       "disks, timed array %u", _name.c_str(),
                       hooks.functional->numDisks(), n);
        _diskSpan =
            std::min<std::uint64_t>(_diskSpan,
                                    hooks.functional->diskData(0).size());
    }
    hooks.array->setFaultOracle(this);
}

FaultController::~FaultController()
{
    hooks.array->setFaultOracle(nullptr);
}

void
FaultController::setPlan(FaultPlan plan)
{
    if (_started)
        sim::panic("FaultController %s: plan set after start",
                   _name.c_str());
    _plan = std::move(plan);
    _plan.sortByTime();
}

void
FaultController::start()
{
    if (_started)
        sim::panic("FaultController %s: started twice", _name.c_str());
    _started = true;
    for (const FaultEvent &e : _plan.events) {
        eq.schedule(std::max(e.at, eq.now()),
                    [this, e] { handleEvent(e); });
    }
}

void
FaultController::trace(const FaultEvent &e, const char *label) const
{
    if (auto *t = eq.tracer())
        t->complete(_name, label, eq.now(), eq.now() + e.duration,
                    e.bytes);
}

void
FaultController::handleEvent(const FaultEvent &e)
{
    raid::SimArray &array = *hooks.array;
    switch (e.kind) {
    case FaultKind::DiskFail:
        injectDiskFail(e.target);
        return;
    case FaultKind::LatentError:
        injectLatent(e.target, e.offset, e.bytes);
        return;
    case FaultKind::DiskStall: {
        if (e.target >= array.numDisks() || array.isFailed(e.target)) {
            ++_suppressed;
            return;
        }
        array.disk(e.target).stall(e.duration);
        ++_injected[static_cast<std::size_t>(e.kind)];
        trace(e, "disk_stall");
        return;
    }
    case FaultKind::ScsiHang: {
        const unsigned per = scsi::CougarController::numStrings;
        const unsigned total = array.numCougarControllers() * per;
        const unsigned s = e.target % total;
        array.cougar(s / per).string(s % per).injectHang(e.duration);
        ++_injected[static_cast<std::size_t>(e.kind)];
        trace(e, "scsi_hang");
        return;
    }
    case FaultKind::XbusPortError: {
        array.board().injectPortError(
            e.target % xbus::XbusBoard::numVmePorts, e.duration);
        ++_injected[static_cast<std::size_t>(e.kind)];
        trace(e, "xbus_port_error");
        return;
    }
    case FaultKind::HippiLinkDrop: {
        if (!hooks.hippi) {
            ++_suppressed;
            return;
        }
        hooks.hippi->injectLinkDown(e.duration);
        ++_injected[static_cast<std::size_t>(e.kind)];
        trace(e, "hippi_link_drop");
        return;
    }
    case FaultKind::SilentCorruption:
        injectSilentCorruption(e);
        return;
    }
}

void
FaultController::injectSilentCorruption(const FaultEvent &e)
{
    if (e.surface == CorruptionSurface::Media) {
        raid::RaidArray *fn = hooks.functional;
        if (!fn || e.target >= fn->numDisks() ||
            fn->isFailed(e.target) || e.bytes == 0 ||
            e.offset >= _diskSpan) {
            ++_suppressed;
            return;
        }
        const std::uint64_t n = std::min(e.bytes, _diskSpan - e.offset);
        auto disk = fn->diskData(e.target);
        for (std::uint64_t i = 0; i < n; ++i)
            disk[e.offset + i] ^= 0xa5;
        // Deliberately NOT entered in the latent map: the drive
        // reports nothing.  Only checksums (src/integrity/) can tell
        // this copy no longer holds what was written.
        ++_injected[static_cast<std::size_t>(e.kind)];
        trace(e, "silent_corruption_media");
        return;
    }
    if (!_onCorruption) {
        ++_suppressed;
        return;
    }
    _onCorruption(e);
    ++_injected[static_cast<std::size_t>(e.kind)];
    trace(e, e.surface == CorruptionSurface::Network
                 ? "silent_corruption_net"
                 : "silent_corruption_xfer");
}

void
FaultController::injectDiskFail(unsigned d)
{
    raid::SimArray &array = *hooks.array;
    if (d >= array.numDisks() || array.isFailed(d)) {
        ++_suppressed;
        return;
    }
    const raid::RaidLevel level = array.layout().level();
    if (level == raid::RaidLevel::Raid0) {
        // No redundancy: the disk's data is simply gone.  Account the
        // loss; injecting would leave the simulator unable to serve
        // any read of the dead disk.
        ++_dataLossEvents;
        ++_suppressed;
        return;
    }
    if (array.degraded()) {
        // Second failure before the first rebuild completed: the
        // classic RAID data-loss mode.  The campaign records it; the
        // simulated array soldiers on with the first failure so the
        // run (and its statistics) stay well-defined.
        ++_doubleFailures;
        ++_dataLossEvents;
        if (auto *t = eq.tracer())
            t->complete(_name, "double_failure", eq.now(), eq.now(), 0);
        return;
    }

    // Latent ranges outstanding on the disks the rebuild will read are
    // unreconstructable stripes: each is a data-loss event.  The
    // defects are consumed here (media reallocation on the failed
    // array) so both planes stay recoverable.
    const unsigned half = array.layout().numDisks() / 2;
    for (unsigned o = 0; o < _latents.size(); ++o) {
        if (o == d || _latents[o].empty())
            continue;
        if (level == raid::RaidLevel::Raid1) {
            // Only the mirror partner participates in this rebuild.
            const unsigned partner = d < half
                                         ? array.layout().mirrorDisk(d)
                                         : d - half;
            if (o != partner)
                continue;
        }
        const std::uint64_t n = _latents[o].size();
        _rebuildExposed += n;
        _dataLossEvents += n;
        if (hooks.functional) {
            for (const auto &[s, len] : _latents[o])
                hooks.functional->repairLatent(o, s, len);
        }
        _latents[o].clear();
    }
    _latents[d].clear();

    if (hooks.functional)
        hooks.functional->failDisk(d);
    array.failDisk(d);
    ++_injected[static_cast<std::size_t>(FaultKind::DiskFail)];
    if (auto *t = eq.tracer())
        t->complete(_name, "disk_fail", eq.now(), eq.now(), 0);
    if (_onDiskFail)
        _onDiskFail(d);
}

void
FaultController::injectLatent(unsigned d, std::uint64_t off,
                              std::uint64_t bytes)
{
    raid::SimArray &array = *hooks.array;
    if (d >= array.numDisks() || bytes == 0 || off >= _diskSpan) {
        ++_suppressed;
        return;
    }
    bytes = std::min(bytes, _diskSpan - off);
    if (array.isFailed(d)) {
        ++_suppressed;
        return;
    }
    if (array.degraded()) {
        // A defect growing on a survivor while the array is degraded
        // has no redundancy to repair from: data loss.
        ++_latentWhileDegraded;
        ++_dataLossEvents;
        return;
    }
    for (unsigned o = 0; o < _latents.size(); ++o) {
        if (o != d && overlaps(_latents[o], off, bytes)) {
            // Overlapping defects on two disks of one stripe row:
            // neither side can reconstruct the other.
            ++_latentCollisions;
            ++_dataLossEvents;
            return;
        }
    }
    insertInterval(_latents[d], off, bytes);
    if (hooks.functional)
        hooks.functional->injectLatent(d, off, bytes);
    ++_injected[static_cast<std::size_t>(FaultKind::LatentError)];
    if (auto *t = eq.tracer())
        t->complete(_name, "latent_error", eq.now(), eq.now(), bytes);
}

void
FaultController::noteDiskRestored(unsigned d)
{
    if (hooks.functional && hooks.functional->isFailed(d))
        hooks.functional->rebuildDisk(d);
}

bool
FaultController::hasLatent(unsigned d, std::uint64_t off,
                           std::uint64_t bytes) const
{
    return overlaps(_latents.at(d), off, bytes);
}

void
FaultController::repairedLatent(unsigned d, std::uint64_t off,
                                std::uint64_t bytes, bool by_scrub)
{
    // The datapath reports the whole transfer it verified (a scrub
    // chunk, a read extent); only the defective subranges inside it
    // are repaired in the functional plane.  Repairing the full span
    // would reconstruct bytes that are latent on *other* disks —
    // a false unrecoverable-range error.
    IntervalMap &m = _latents.at(d);
    const std::uint64_t end = off + bytes;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> touched;
    for (const auto &[s, len] : m) {
        const std::uint64_t e = s + len;
        if (e <= off || s >= end)
            continue;
        const std::uint64_t cs = std::max(s, off);
        touched.emplace_back(cs, std::min(e, end) - cs);
    }
    if (touched.empty())
        return;
    std::uint64_t repaired_bytes = 0;
    for (const auto &[s, len] : touched) {
        if (hooks.functional &&
            hooks.functional->latentOverlaps(d, s, len))
            hooks.functional->repairLatent(d, s, len);
        repaired_bytes += len;
    }
    const std::uint64_t ranges = eraseInterval(m, off, bytes);
    (by_scrub ? _scrubRepairs : _readRepairs) += ranges;
    _repairedBytes += repaired_bytes;
}

std::uint64_t
FaultController::latentRangesOutstanding() const
{
    std::uint64_t n = 0;
    for (const auto &m : _latents)
        n += m.size();
    return n;
}

std::uint64_t
FaultController::latentBytesOutstanding() const
{
    std::uint64_t n = 0;
    for (const auto &m : _latents)
        for (const auto &[s, len] : m)
            n += len;
    return n;
}

std::uint64_t
FaultController::injectedTotal() const
{
    std::uint64_t n = 0;
    for (const auto v : _injected)
        n += v;
    return n;
}

bool
FaultController::overlaps(const IntervalMap &m, std::uint64_t off,
                          std::uint64_t bytes) const
{
    if (m.empty() || bytes == 0)
        return false;
    auto it = m.upper_bound(off);
    if (it != m.begin()) {
        const auto prev = std::prev(it);
        if (prev->first + prev->second > off)
            return true;
    }
    return it != m.end() && it->first < off + bytes;
}

void
FaultController::insertInterval(IntervalMap &m, std::uint64_t off,
                                std::uint64_t bytes)
{
    std::uint64_t s = off, e = off + bytes;
    auto it = m.upper_bound(s);
    if (it != m.begin())
        --it;
    while (it != m.end() && it->first <= e) {
        const std::uint64_t iend = it->first + it->second;
        if (iend < s) {
            ++it;
            continue;
        }
        s = std::min(s, it->first);
        e = std::max(e, iend);
        it = m.erase(it);
    }
    m.emplace(s, e - s);
}

std::uint64_t
FaultController::eraseInterval(IntervalMap &m, std::uint64_t off,
                               std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    std::uint64_t ranges = 0;
    const std::uint64_t end = off + bytes;
    auto it = m.upper_bound(off);
    if (it != m.begin())
        --it;
    while (it != m.end() && it->first < end) {
        const std::uint64_t istart = it->first;
        const std::uint64_t iend = it->first + it->second;
        if (iend <= off) {
            ++it;
            continue;
        }
        ++ranges;
        it = m.erase(it);
        if (istart < off)
            m.emplace(istart, off - istart);
        if (iend > end)
            it = m.emplace(end, iend - end).first;
    }
    return ranges;
}

void
FaultController::registerStats(sim::StatsRegistry &reg,
                               const std::string &prefix) const
{
    static const char *kindKeys[] = {"disk_fails", "latent_errors",
                                     "disk_stalls", "scsi_hangs",
                                     "xbus_port_errors",
                                     "hippi_link_drops",
                                     "silent_corruptions"};
    for (std::size_t k = 0; k < _injected.size(); ++k) {
        reg.addGauge(prefix + ".injected." + kindKeys[k], [this, k] {
            return static_cast<double>(_injected[k]);
        });
    }
    reg.addGauge(prefix + ".suppressed", [this] {
        return static_cast<double>(_suppressed);
    });
    reg.addGauge(prefix + ".data_loss_events", [this] {
        return static_cast<double>(_dataLossEvents);
    });
    reg.addGauge(prefix + ".double_failures", [this] {
        return static_cast<double>(_doubleFailures);
    });
    reg.addGauge(prefix + ".rebuild_exposed_ranges", [this] {
        return static_cast<double>(_rebuildExposed);
    });
    reg.addGauge(prefix + ".latents_while_degraded", [this] {
        return static_cast<double>(_latentWhileDegraded);
    });
    reg.addGauge(prefix + ".latent_collisions", [this] {
        return static_cast<double>(_latentCollisions);
    });
    reg.addGauge(prefix + ".latent_ranges_outstanding", [this] {
        return static_cast<double>(latentRangesOutstanding());
    });
    reg.addGauge(prefix + ".latent_bytes_outstanding", [this] {
        return static_cast<double>(latentBytesOutstanding());
    });
    reg.addGauge(prefix + ".read_repaired_ranges", [this] {
        return static_cast<double>(_readRepairs);
    });
    reg.addGauge(prefix + ".scrub_repaired_ranges", [this] {
        return static_cast<double>(_scrubRepairs);
    });
    reg.addGauge(prefix + ".repaired_bytes", [this] {
        return static_cast<double>(_repairedBytes);
    });
    // Parity-work counters of the functional array this controller
    // fronts (full-stripe vs read-modify-write split).
    if (hooks.functional)
        hooks.functional->registerStats(reg, prefix + ".array");
}

} // namespace raid2::fault
