/**
 * @file
 * Orchestrated fault injection for the RAID-II simulator.
 *
 * The FaultController replays a FaultPlan into a running system
 * through the small hook points the layers expose: DiskModel::stall,
 * ScsiString::injectHang, XbusBoard::injectPortError,
 * HippiChannel::injectLinkDown, and SimArray::failDisk.  It also owns
 * the latent-media-defect map and implements raid::MediaFaultOracle,
 * so a timed read that lands on a defective range triggers the array's
 * reconstruct-and-rewrite sequence; when a functional RaidArray twin
 * is attached, every fault and repair is mirrored into it so the byte
 * plane and the timing plane stay consistent (the property tests
 * compare the functional plane against a fault-free shadow).
 *
 * Injection preserves the recoverability invariant documented in
 * RaidArray: events that *would* destroy data — a second disk death
 * while degraded, a latent error surfacing while the array is
 * degraded, latent ranges colliding across disks, or latents
 * outstanding on survivors when a disk dies (the rebuild would be
 * unable to reconstruct those stripes) — are accounted as data-loss
 * events instead of being injected, which is exactly the quantity a
 * Monte Carlo MTTDL campaign estimates.
 */

#ifndef RAID2_FAULT_FAULT_CONTROLLER_HH
#define RAID2_FAULT_FAULT_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "net/hippi.hh"
#include "raid/raid_array.hh"
#include "raid/sim_array.hh"
#include "sim/event_queue.hh"
#include "sim/stats_registry.hh"

namespace raid2::fault {

/** Deterministic fault injector + latent-defect oracle. */
class FaultController : public raid::MediaFaultOracle
{
  public:
    /** Injection targets.  @c array is required; the rest optional. */
    struct Hooks
    {
        raid::SimArray *array = nullptr;
        /** Functional twin; faults/repairs are mirrored into it. */
        raid::RaidArray *functional = nullptr;
        /** HIPPI channel for link-drop events. */
        net::HippiChannel *hippi = nullptr;
    };

    FaultController(sim::EventQueue &eq, std::string name, Hooks hooks);
    ~FaultController() override;

    /** @{ The plan.  start() schedules every event; call once. */
    void setPlan(FaultPlan plan);
    const FaultPlan &plan() const { return _plan; }
    void start();
    /** @} */

    /** Invoked after a whole-disk failure is injected (the
     *  RecoveryManager hangs its spare allocation off this). */
    void onDiskFail(std::function<void(unsigned disk)> cb)
    {
        _onDiskFail = std::move(cb);
    }

    /** A rebuild finished: mirror the restore into the functional
     *  plane. */
    void noteDiskRestored(unsigned d);

    /** Transfer/network SilentCorruption events are delivered here
     *  (the server arms one-shot flips in its integrity layer); media
     *  events are applied to the functional twin directly.  Without a
     *  listener, non-media corruption events are suppressed. */
    void onSilentCorruption(std::function<void(const FaultEvent &)> cb)
    {
        _onCorruption = std::move(cb);
    }

    /** @{ raid::MediaFaultOracle. */
    bool hasLatent(unsigned d, std::uint64_t off,
                   std::uint64_t bytes) const override;
    void repairedLatent(unsigned d, std::uint64_t off,
                        std::uint64_t bytes, bool by_scrub) override;
    /** @} */

    /** @{ Latent-map queries (scrubber, tests). */
    std::uint64_t latentRangesOutstanding() const;
    std::uint64_t latentBytesOutstanding() const;
    bool diskHasLatents(unsigned d) const
    {
        return !_latents.at(d).empty();
    }
    /** @} */

    /** @{ Campaign accounting. */
    std::uint64_t injected(FaultKind k) const
    {
        return _injected[static_cast<std::size_t>(k)];
    }
    std::uint64_t injectedTotal() const;
    /** Events skipped (bad target, already-failed disk, ...). */
    std::uint64_t suppressed() const { return _suppressed; }
    /** Would-be unrecoverable situations, by cause. */
    std::uint64_t dataLossEvents() const { return _dataLossEvents; }
    std::uint64_t doubleFailures() const { return _doubleFailures; }
    std::uint64_t rebuildExposedRanges() const
    {
        return _rebuildExposed;
    }
    std::uint64_t latentsWhileDegraded() const
    {
        return _latentWhileDegraded;
    }
    /** Repairs reported back by the datapath / scrubber. */
    std::uint64_t readRepairedRanges() const { return _readRepairs; }
    std::uint64_t scrubRepairedRanges() const { return _scrubRepairs; }
    /** @} */

    /** Register campaign stats under @p prefix ("fault.*"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "fault") const;

    const std::string &name() const { return _name; }

  private:
    using IntervalMap = std::map<std::uint64_t, std::uint64_t>;

    void handleEvent(const FaultEvent &e);
    void injectDiskFail(unsigned d);
    void injectLatent(unsigned d, std::uint64_t off, std::uint64_t bytes);
    void injectSilentCorruption(const FaultEvent &e);
    void trace(const FaultEvent &e, const char *label) const;

    bool overlaps(const IntervalMap &m, std::uint64_t off,
                  std::uint64_t bytes) const;
    void insertInterval(IntervalMap &m, std::uint64_t off,
                        std::uint64_t bytes);
    /** Remove overlap with [off, off+bytes); @return ranges touched. */
    std::uint64_t eraseInterval(IntervalMap &m, std::uint64_t off,
                                std::uint64_t bytes);

    sim::EventQueue &eq;
    std::string _name;
    Hooks hooks;
    FaultPlan _plan;
    bool _started = false;

    /** Per-disk latent ranges (offset -> length, non-overlapping). */
    std::vector<IntervalMap> _latents;
    /** Per-disk span usable for latent placement. */
    std::uint64_t _diskSpan = 0;

    std::function<void(unsigned)> _onDiskFail;
    std::function<void(const FaultEvent &)> _onCorruption;

    std::array<std::uint64_t, 7> _injected{};
    std::uint64_t _suppressed = 0;
    std::uint64_t _dataLossEvents = 0;
    std::uint64_t _doubleFailures = 0;
    std::uint64_t _rebuildExposed = 0;
    std::uint64_t _latentWhileDegraded = 0;
    std::uint64_t _latentCollisions = 0;
    std::uint64_t _readRepairs = 0;
    std::uint64_t _scrubRepairs = 0;
    std::uint64_t _repairedBytes = 0;
};

} // namespace raid2::fault

#endif // RAID2_FAULT_FAULT_CONTROLLER_HH
