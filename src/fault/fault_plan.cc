#include "fault/fault_plan.hh"

#include <algorithm>
#include <string_view>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace raid2::fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::DiskFail:
        return "disk_fail";
    case FaultKind::LatentError:
        return "latent_error";
    case FaultKind::DiskStall:
        return "disk_stall";
    case FaultKind::ScsiHang:
        return "scsi_hang";
    case FaultKind::XbusPortError:
        return "xbus_port_error";
    case FaultKind::HippiLinkDrop:
        return "hippi_link_drop";
    case FaultKind::SilentCorruption:
        return "silent_corruption";
    }
    return "?";
}

const char *
corruptionSurfaceName(CorruptionSurface s)
{
    switch (s) {
    case CorruptionSurface::Media:
        return "media";
    case CorruptionSurface::TransferRead:
        return "xfer_read";
    case CorruptionSurface::TransferWrite:
        return "xfer_write";
    case CorruptionSurface::Network:
        return "network";
    }
    return "?";
}

bool
corruptionSurfaceFromName(const char *name, CorruptionSurface &out)
{
    for (CorruptionSurface s :
         {CorruptionSurface::Media, CorruptionSurface::TransferRead,
          CorruptionSurface::TransferWrite, CorruptionSurface::Network}) {
        if (std::string_view(name) == corruptionSurfaceName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

FaultPlan &
FaultPlan::diskFail(sim::Tick at, unsigned disk)
{
    events.push_back({at, FaultKind::DiskFail, disk, 0, 0, 0});
    return *this;
}

FaultPlan &
FaultPlan::latent(sim::Tick at, unsigned disk, std::uint64_t off,
                  std::uint64_t bytes)
{
    events.push_back({at, FaultKind::LatentError, disk, off, bytes, 0});
    return *this;
}

FaultPlan &
FaultPlan::diskStall(sim::Tick at, unsigned disk, sim::Tick duration)
{
    events.push_back({at, FaultKind::DiskStall, disk, 0, 0, duration});
    return *this;
}

FaultPlan &
FaultPlan::scsiHang(sim::Tick at, unsigned string, sim::Tick duration)
{
    events.push_back({at, FaultKind::ScsiHang, string, 0, 0, duration});
    return *this;
}

FaultPlan &
FaultPlan::xbusPortError(sim::Tick at, unsigned port, sim::Tick duration)
{
    events.push_back(
        {at, FaultKind::XbusPortError, port, 0, 0, duration});
    return *this;
}

FaultPlan &
FaultPlan::hippiLinkDrop(sim::Tick at, sim::Tick duration)
{
    events.push_back({at, FaultKind::HippiLinkDrop, 0, 0, 0, duration});
    return *this;
}

FaultPlan &
FaultPlan::silentCorruption(sim::Tick at, CorruptionSurface surface,
                            unsigned disk, std::uint64_t off,
                            std::uint64_t bytes)
{
    events.push_back({at, FaultKind::SilentCorruption, disk, off, bytes,
                      0, surface});
    return *this;
}

void
FaultPlan::sortByTime()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
}

namespace {

constexpr double ticksPerHour = 3600.0 * 1e9;

/** Exponential inter-arrival times at @p per_hour events per hour,
 *  clipped to the horizon; one call per (class, instance) stream. */
template <typename Emit>
void
poissonStream(sim::Random &rng, double per_hour, sim::Tick horizon,
              const Emit &emit)
{
    if (per_hour <= 0.0)
        return;
    const double mean_ticks = ticksPerHour / per_hour;
    double t = 0.0;
    for (;;) {
        t += rng.exponential(mean_ticks);
        if (t >= static_cast<double>(horizon))
            return;
        emit(static_cast<sim::Tick>(t), rng);
    }
}

} // namespace

FaultPlan
FaultPlan::generate(const CampaignConfig &cfg, std::uint64_t seed)
{
    if (cfg.numDisks == 0)
        sim::panic("FaultPlan::generate: numDisks not set");

    FaultPlan plan;

    // One independent RNG stream per fault class and instance, derived
    // from the seed with fixed offsets: adding or re-rating one class
    // never perturbs the arrivals of another.
    std::uint64_t stream = 0;
    auto rngFor = [&](unsigned instance) {
        return sim::Random(seed ^ (0x9e3779b97f4a7c15ull * ++stream) ^
                           instance);
    };

    for (unsigned d = 0; d < cfg.numDisks; ++d) {
        auto rng = rngFor(d);
        poissonStream(rng, cfg.diskFailsPerHour, cfg.horizon,
                      [&](sim::Tick at, sim::Random &) {
                          plan.diskFail(at, d);
                      });
    }
    for (unsigned d = 0; d < cfg.numDisks; ++d) {
        auto rng = rngFor(d);
        poissonStream(
            rng, cfg.latentsPerHour, cfg.horizon,
            [&](sim::Tick at, sim::Random &r) {
                if (cfg.diskBytes == 0)
                    return;
                std::uint64_t len = r.inRange(cfg.latentBytesMin,
                                              cfg.latentBytesMax);
                len = std::max<std::uint64_t>(512, (len / 512) * 512);
                len = std::min(len, cfg.diskBytes);
                const std::uint64_t slots =
                    (cfg.diskBytes - len) / 512 + 1;
                plan.latent(at, d, r.below(slots) * 512, len);
            });
    }
    for (unsigned d = 0; d < cfg.numDisks; ++d) {
        auto rng = rngFor(d);
        poissonStream(rng, cfg.stallsPerHour, cfg.horizon,
                      [&](sim::Tick at, sim::Random &r) {
                          plan.diskStall(
                              at, d, r.inRange(cfg.stallMin, cfg.stallMax));
                      });
    }
    for (unsigned s = 0; s < cfg.numStrings; ++s) {
        auto rng = rngFor(s);
        poissonStream(rng, cfg.scsiHangsPerHour, cfg.horizon,
                      [&](sim::Tick at, sim::Random &r) {
                          plan.scsiHang(
                              at, s, r.inRange(cfg.stallMin, cfg.stallMax));
                      });
    }
    for (unsigned p = 0; p < cfg.numXbusPorts; ++p) {
        auto rng = rngFor(p);
        poissonStream(rng, cfg.xbusErrorsPerHour, cfg.horizon,
                      [&](sim::Tick at, sim::Random &r) {
                          plan.xbusPortError(
                              at, p, r.inRange(cfg.stallMin, cfg.stallMax));
                      });
    }
    {
        auto rng = rngFor(0);
        poissonStream(rng, cfg.hippiDropsPerHour, cfg.horizon,
                      [&](sim::Tick at, sim::Random &r) {
                          plan.hippiLinkDrop(
                              at, r.inRange(cfg.stallMin, cfg.stallMax));
                      });
    }
    {
        // Appended after every pre-existing class so enabling silent
        // corruption never perturbs the other streams' arrivals.
        auto rng = rngFor(0);
        poissonStream(
            rng, cfg.silentCorruptionsPerHour, cfg.horizon,
            [&](sim::Tick at, sim::Random &r) {
                const double u = r.unit();
                if (u < cfg.corruptionMediaFraction &&
                    cfg.diskBytes > 0) {
                    std::uint64_t len =
                        1 + r.below(std::max<std::uint64_t>(
                                1, cfg.corruptionBytesMax));
                    len = std::min(len, cfg.diskBytes);
                    const std::uint64_t off =
                        r.below(cfg.diskBytes - len + 1);
                    plan.silentCorruption(at, CorruptionSurface::Media,
                                          r.below(cfg.numDisks), off,
                                          len);
                } else if (u < cfg.corruptionMediaFraction +
                                   cfg.corruptionTransferFraction) {
                    plan.silentCorruption(
                        at, r.chance(0.5)
                                ? CorruptionSurface::TransferRead
                                : CorruptionSurface::TransferWrite);
                } else {
                    plan.silentCorruption(at,
                                          CorruptionSurface::Network);
                }
            });
    }

    plan.sortByTime();

    // Cap whole-disk deaths: drop DiskFail events past the limit.
    if (cfg.maxDiskFails != ~0u) {
        unsigned fails = 0;
        std::erase_if(plan.events, [&](const FaultEvent &e) {
            if (e.kind != FaultKind::DiskFail)
                return false;
            return ++fails > cfg.maxDiskFails;
        });
    }
    return plan;
}

} // namespace raid2::fault
