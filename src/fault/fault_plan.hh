/**
 * @file
 * Deterministic fault plans for availability experiments.
 *
 * A FaultPlan is a time-ordered list of fault events — whole-disk
 * deaths, latent sector errors, transient drive stalls, SCSI-string
 * hangs, XBUS port errors and HIPPI link drops — that the
 * FaultController replays into a simulated system.  Plans are either
 * scripted event by event (tests) or generated up front from per-hour
 * rates and a seed (Monte Carlo campaigns); because generation happens
 * before the simulation starts and uses sim::Random exclusively, a
 * campaign is bit-reproducible from (plan config, seed).  The paper
 * defers reliability policy ("Techniques for maximizing reliability
 * are beyond the scope of this paper", §2.3); this is the machinery
 * for studying it anyway.
 */

#ifndef RAID2_FAULT_FAULT_PLAN_HH
#define RAID2_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace raid2::fault {

enum class FaultKind
{
    DiskFail,      ///< whole-disk death (target = disk)
    LatentError,   ///< grown media defect (target = disk, offset/bytes)
    DiskStall,     ///< transient drive timeout (target = disk, duration)
    ScsiHang,      ///< string seized mid-handshake (target = global
                   ///< string index, duration)
    XbusPortError, ///< VME port parity/handshake retry (target = port,
                   ///< duration)
    HippiLinkDrop, ///< connection drop on the HIPPI loop (duration)
    SilentCorruption, ///< undetected bit flip (target/offset/bytes for
                      ///< media; see CorruptionSurface)
};

const char *faultKindName(FaultKind k);

/** Where a SilentCorruption event lands. */
enum class CorruptionSurface
{
    Media,         ///< disk bytes at rest (target = disk, offset/bytes)
    TransferRead,  ///< SCSI/XBUS return path: next device read garbled
    TransferWrite, ///< SCSI/XBUS outbound: next write's landed copy
    Network,       ///< HIPPI payload: next transfer retransmitted
};

const char *corruptionSurfaceName(CorruptionSurface s);
/** Parse @p name; @return false if unknown (out untouched). */
bool corruptionSurfaceFromName(const char *name, CorruptionSurface &out);

/** One scheduled fault. */
struct FaultEvent
{
    sim::Tick at = 0;
    FaultKind kind = FaultKind::DiskFail;
    unsigned target = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    sim::Tick duration = 0;
    /** Only meaningful for FaultKind::SilentCorruption. */
    CorruptionSurface surface = CorruptionSurface::Media;
};

/**
 * A deterministic fault schedule.
 *
 * The chaining helpers script events explicitly; generate() draws them
 * from independent Poisson processes (exponential inter-arrivals, one
 * RNG stream per fault class) so two campaigns with the same config
 * and seed produce byte-identical plans.
 */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    /** @{ Scripted-plan helpers (return *this for chaining). */
    FaultPlan &diskFail(sim::Tick at, unsigned disk);
    FaultPlan &latent(sim::Tick at, unsigned disk, std::uint64_t off,
                      std::uint64_t bytes);
    FaultPlan &diskStall(sim::Tick at, unsigned disk, sim::Tick duration);
    FaultPlan &scsiHang(sim::Tick at, unsigned string,
                        sim::Tick duration);
    FaultPlan &xbusPortError(sim::Tick at, unsigned port,
                             sim::Tick duration);
    FaultPlan &hippiLinkDrop(sim::Tick at, sim::Tick duration);
    /** Media: garble @p bytes at @p off of disk @p disk.  Transfer /
     *  network surfaces ignore disk/off and arm one-shot flips. */
    FaultPlan &silentCorruption(sim::Tick at, CorruptionSurface surface,
                                unsigned disk = 0, std::uint64_t off = 0,
                                std::uint64_t bytes = 1);
    /** @} */

    /** Stable-sort events by time (generation emits per-class streams;
     *  the controller wants one timeline). */
    void sortByTime();

    /** Rates and shapes for stochastic generation.  Rates are per hour
     *  of simulated time; a rate of 0 disables the class. */
    struct CampaignConfig
    {
        sim::Tick horizon = sim::secToTicks(3600);
        unsigned numDisks = 0;           ///< required
        std::uint64_t diskBytes = 0;     ///< latent placement space
        unsigned numStrings = 0;         ///< global string count
        unsigned numXbusPorts = 4;

        double diskFailsPerHour = 0.0;   ///< per disk
        double latentsPerHour = 0.0;     ///< per disk
        double stallsPerHour = 0.0;      ///< per disk
        double scsiHangsPerHour = 0.0;   ///< per string
        double xbusErrorsPerHour = 0.0;  ///< per port
        double hippiDropsPerHour = 0.0;
        double silentCorruptionsPerHour = 0.0; ///< per array

        /** Latent defects cover [min, max] bytes, 512-aligned. */
        std::uint64_t latentBytesMin = 512;
        std::uint64_t latentBytesMax = 8 * 1024;
        /** Uniform transient-outage durations. */
        sim::Tick stallMin = sim::msToTicks(50);
        sim::Tick stallMax = sim::msToTicks(500);
        /** Media corruption runs cover [1, corruptionBytesMax] bytes. */
        std::uint64_t corruptionBytesMax = 64;
        /** Surface mix for generated corruption: media at rest vs
         *  in-flight transfers; the remainder is network (HIPPI). */
        double corruptionMediaFraction = 0.70;
        double corruptionTransferFraction = 0.20;
        /** Cap on whole-disk deaths across the campaign (a double
         *  failure is a terminal data-loss event; more adds nothing). */
        unsigned maxDiskFails = 2;
    };

    /** Draw a plan from @p cfg; same (cfg, seed) -> identical plan. */
    static FaultPlan generate(const CampaignConfig &cfg,
                              std::uint64_t seed);
};

} // namespace raid2::fault

#endif // RAID2_FAULT_FAULT_PLAN_HH
