#include "fault/recovery_manager.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace raid2::fault {

RecoveryManager::RecoveryManager(sim::EventQueue &eq_, std::string name,
                                 raid::SimArray &array_,
                                 FaultController &faults_,
                                 const Config &cfg_)
    : eq(eq_), _name(std::move(name)), array(array_), faults(faults_),
      cfg(cfg_), _spares(cfg_.spares)
{
    faults.onDiskFail([this](unsigned d) { diskFailed(d); });
}

void
RecoveryManager::diskFailed(unsigned d)
{
    pending.push_back({d, eq.now()});
    tryStart();
}

void
RecoveryManager::tryStart()
{
    if (attaching || rebuildActive() || pending.empty())
        return;
    if (_spares == 0)
        return; // a replacement arrival re-triggers
    const PendingFailure f = pending.front();
    pending.pop_front();
    --_spares;
    ++_sparesUsed;
    attaching = true;
    eq.scheduleIn(cfg.spareAttachDelay, [this, f] {
        attaching = false;
        startRebuild(f.disk, f.at);
    });
}

void
RecoveryManager::startRebuild(unsigned disk, sim::Tick failed_at)
{
    ++_rebuildsStarted;
    _job = std::make_unique<raid::RebuildJob>(eq, array, disk,
                                              cfg.rebuildWindow,
                                              cfg.rebuildThrottle);
    _job->start([this, disk, failed_at] {
        ++_rebuildsCompleted;
        const double mttr = sim::ticksToMs(eq.now() - failed_at);
        _mttrMs.sample(mttr);
        if (auto *t = eq.tracer())
            t->complete(_name, "rebuild", failed_at, eq.now(), 0);
        // The timed plane is already restored (RebuildJob does it);
        // mirror into the functional plane.
        faults.noteDiskRestored(disk);
        if (cfg.replacementDelay > 0) {
            eq.scheduleIn(cfg.replacementDelay, [this] {
                ++_spares;
                tryStart();
            });
        }
        if (_onDone)
            _onDone(disk, mttr);
        tryStart();
    });
}

void
RecoveryManager::registerStats(sim::StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.addGauge(prefix + ".spares_available",
                 [this] { return static_cast<double>(_spares); });
    reg.addGauge(prefix + ".spares_used",
                 [this] { return static_cast<double>(_sparesUsed); });
    reg.addGauge(prefix + ".rebuilds_started", [this] {
        return static_cast<double>(_rebuildsStarted);
    });
    reg.addGauge(prefix + ".rebuilds_completed", [this] {
        return static_cast<double>(_rebuildsCompleted);
    });
    reg.addGauge(prefix + ".failures_waiting", [this] {
        return static_cast<double>(pending.size());
    });
    reg.add(prefix + ".mttr_ms", _mttrMs);
    // Live view of the current (or last) rebuild.
    reg.addGauge(prefix + ".rebuild.active", [this] {
        return rebuildActive() ? 1.0 : 0.0;
    });
    reg.addGauge(prefix + ".rebuild.stripes_done", [this] {
        return _job ? static_cast<double>(_job->stripesDone()) : 0.0;
    });
    reg.addGauge(prefix + ".rebuild.stripes_total", [this] {
        return _job ? static_cast<double>(_job->stripesTotal()) : 0.0;
    });
    reg.addGauge(prefix + ".rebuild.duration_ms", [this] {
        return _job ? _job->durationMs() : 0.0;
    });
    reg.addGauge(prefix + ".rebuild.stripes_per_sec", [this] {
        return _job ? _job->stripesPerSec() : 0.0;
    });
}

} // namespace raid2::fault
