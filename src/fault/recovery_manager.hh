/**
 * @file
 * Automatic failure recovery: hot spares + throttled rebuild.
 *
 * The paper's prototype left reliability policy to the operator
 * (§2.3); this is the policy layer a production RAID-II would need.
 * The RecoveryManager listens for whole-disk failures from the
 * FaultController, allocates a drive from a hot-spare pool, and drives
 * a raid::RebuildJob onto it with a configurable window and
 * inter-stripe throttle — the rebuild-rate vs. foreground-interference
 * trade that dominates MTTR (Thomasian, arXiv:1801.08873).  Failures
 * that arrive while the pool is empty queue until a replacement drive
 * restocks it.  MTTR is measured from the failure to the rebuild's
 * completion, including any time spent waiting for a spare.
 */

#ifndef RAID2_FAULT_RECOVERY_MANAGER_HH
#define RAID2_FAULT_RECOVERY_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "fault/fault_controller.hh"
#include "raid/reconstruct.hh"
#include "raid/sim_array.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/stats_registry.hh"

namespace raid2::fault {

/** Detect -> allocate spare -> rebuild -> restock. */
class RecoveryManager
{
  public:
    struct Config
    {
        /** Hot spares initially in the pool. */
        unsigned spares = 1;
        /** Swap-in time before the rebuild can start. */
        sim::Tick spareAttachDelay = sim::msToTicks(100);
        /** Time for a replacement drive to restock the pool after a
         *  rebuild completes (0 = the pool never refills). */
        sim::Tick replacementDelay = 0;
        /** Concurrent stripes in flight during rebuild. */
        unsigned rebuildWindow = 4;
        /** Minimum tick spacing between rebuild stripe launches
         *  (0 = rebuild at full datapath speed). */
        sim::Tick rebuildThrottle = 0;
    };

    /** Registers itself as @p faults' disk-failure listener. */
    RecoveryManager(sim::EventQueue &eq, std::string name,
                    raid::SimArray &array, FaultController &faults,
                    const Config &cfg);

    /** Failure notification (normally via the FaultController). */
    void diskFailed(unsigned d);

    /** Fires after each completed rebuild. */
    void onRebuildDone(std::function<void(unsigned disk, double mttr_ms)> cb)
    {
        _onDone = std::move(cb);
    }

    /** @{ State and statistics. */
    bool rebuildActive() const { return _job && !_job->finished(); }
    const raid::RebuildJob *currentJob() const { return _job.get(); }
    unsigned sparesAvailable() const { return _spares; }
    std::uint64_t sparesUsed() const { return _sparesUsed; }
    std::uint64_t rebuildsStarted() const { return _rebuildsStarted; }
    std::uint64_t rebuildsCompleted() const { return _rebuildsCompleted; }
    std::size_t failuresWaiting() const { return pending.size(); }
    /** Failure -> rebuild-complete, includes spare wait + attach. */
    const sim::Distribution &mttrMs() const { return _mttrMs; }
    /** @} */

    /** Register recovery stats under @p prefix ("recovery.*"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "recovery") const;

  private:
    void tryStart();
    void startRebuild(unsigned disk, sim::Tick failed_at);

    sim::EventQueue &eq;
    std::string _name;
    raid::SimArray &array;
    FaultController &faults;
    Config cfg;

    struct PendingFailure
    {
        unsigned disk;
        sim::Tick at;
    };
    std::deque<PendingFailure> pending;
    std::unique_ptr<raid::RebuildJob> _job;
    bool attaching = false;

    unsigned _spares;
    std::uint64_t _sparesUsed = 0;
    std::uint64_t _rebuildsStarted = 0;
    std::uint64_t _rebuildsCompleted = 0;
    sim::Distribution _mttrMs;
    std::function<void(unsigned, double)> _onDone;
};

} // namespace raid2::fault

#endif // RAID2_FAULT_RECOVERY_MANAGER_HH
