#include "fault/scrubber.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"
#include "sim/trace_sink.hh"
#include "xbus/parity_engine.hh"

namespace raid2::fault {

Scrubber::Scrubber(sim::EventQueue &eq_, std::string name,
                   raid::SimArray &array_, FaultController &faults_,
                   const Config &cfg_)
    : eq(eq_), _name(std::move(name)), array(array_), faults(faults_),
      cfg(cfg_)
{
    const auto &layout = array.layout();
    sweepBytes = layout.numStripes() * layout.unitBytes();
    if (cfg.chunkBytes == 0)
        sim::panic("Scrubber %s: zero chunk size", _name.c_str());
}

void
Scrubber::start()
{
    if (_running)
        return;
    _running = true;
    if (!chunkInFlight)
        step();
}

void
Scrubber::stop()
{
    _running = false;
    if (wakeup != sim::EventQueue::invalidEvent) {
        eq.cancel(wakeup);
        wakeup = sim::EventQueue::invalidEvent;
    }
}

void
Scrubber::scheduleNext(sim::Tick delay)
{
    wakeup = eq.scheduleIn(delay, [this] {
        wakeup = sim::EventQueue::invalidEvent;
        step();
    });
}

void
Scrubber::advanceCursor(std::uint64_t len)
{
    curOff += len;
    if (curOff >= sweepBytes) {
        curOff = 0;
        ++curDisk;
        if (curDisk >= array.numDisks()) {
            curDisk = 0;
            ++_sweeps;
        }
    }
}

void
Scrubber::step()
{
    if (!_running)
        return;
    if (cfg.pauseWhileDegraded && array.degraded()) {
        scheduleNext(std::max(cfg.interChunkDelay, sim::msToTicks(5)));
        return;
    }
    // Failed disks have nothing to verify; move past them.
    unsigned skipped = 0;
    while (array.isFailed(curDisk)) {
        curOff = 0;
        curDisk = (curDisk + 1) % array.numDisks();
        if (++skipped >= array.numDisks()) {
            // Whole array failed; retry later.
            scheduleNext(std::max(cfg.interChunkDelay,
                                  sim::msToTicks(5)));
            return;
        }
    }
    const unsigned d = curDisk;
    const std::uint64_t off = curOff;
    const std::uint64_t len =
        std::min<std::uint64_t>(cfg.chunkBytes, sweepBytes - off);
    chunkInFlight = true;
    array.rawDiskRead(d, off, len,
                      [this, d, off, len] { finishChunk(d, off, len); });
}

void
Scrubber::finishChunk(unsigned d, std::uint64_t off, std::uint64_t len)
{
    ++_chunksScanned;
    _bytesScanned += len;
    advanceCursor(len);

    if (verifyHook) {
        ++_verifyCalls;
        verifyHook(d, off, len);
    }

    const bool damaged = faults.hasLatent(d, off, len);
    // Repair needs full redundancy: skip while degraded (the latent
    // stays in the map; a later sweep retries) and on RAID-0 (nothing
    // to repair from).
    const bool repairable =
        damaged && !array.degraded() && !array.isFailed(d) &&
        array.layout().level() != raid::RaidLevel::Raid0;
    if (repairable) {
        repairChunk(d, off, len);
        return;
    }
    chunkInFlight = false;
    if (_running)
        scheduleNext(cfg.interChunkDelay);
}

void
Scrubber::repairChunk(unsigned d, std::uint64_t off, std::uint64_t len)
{
    const sim::Tick started = eq.now();
    auto writeback = [this, d, off, len, started] {
        array.rawDiskWrite(d, off, len, [this, d, off, len, started] {
            faults.repairedLatent(d, off, len, true);
            ++_rangesRepaired;
            _repairedBytes += len;
            if (auto *t = eq.tracer())
                t->complete(_name, "scrub_repair", started, eq.now(),
                            len);
            chunkInFlight = false;
            if (_running)
                scheduleNext(cfg.interChunkDelay);
        });
    };

    const raid::RaidLevel level = array.layout().level();
    if (level == raid::RaidLevel::Raid1) {
        const unsigned half = array.layout().numDisks() / 2;
        const unsigned partner =
            d < half ? array.layout().mirrorDisk(d) : d - half;
        array.rawDiskRead(partner, off, len, std::move(writeback));
        return;
    }
    // Parity levels: the chunk is reconstructed from every survivor
    // plus an XOR pass through the board's parity engine.
    const unsigned n = array.numDisks();
    auto remaining = std::make_shared<unsigned>(n - 1);
    auto wb = std::make_shared<std::function<void()>>(
        std::move(writeback));
    for (unsigned s = 0; s < n; ++s) {
        if (s == d)
            continue;
        array.rawDiskRead(s, off, len, [this, remaining, wb, len, n] {
            if (--*remaining > 0)
                return;
            array.board().parity().pass(len * (n - 1), len,
                                        [wb] { (*wb)(); });
        });
    }
}

void
Scrubber::registerStats(sim::StatsRegistry &reg,
                        const std::string &prefix) const
{
    reg.addGauge(prefix + ".running",
                 [this] { return _running ? 1.0 : 0.0; });
    reg.addGauge(prefix + ".sweeps_completed",
                 [this] { return static_cast<double>(_sweeps); });
    reg.addGauge(prefix + ".chunks_scanned", [this] {
        return static_cast<double>(_chunksScanned);
    });
    reg.addGauge(prefix + ".bytes_scanned", [this] {
        return static_cast<double>(_bytesScanned);
    });
    reg.addGauge(prefix + ".ranges_repaired", [this] {
        return static_cast<double>(_rangesRepaired);
    });
    reg.addGauge(prefix + ".repaired_bytes", [this] {
        return static_cast<double>(_repairedBytes);
    });
    reg.addGauge(prefix + ".verify_calls", [this] {
        return static_cast<double>(_verifyCalls);
    });
}

} // namespace raid2::fault
