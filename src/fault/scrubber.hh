/**
 * @file
 * Background media scrubber.
 *
 * Latent sector errors surface only when the sector is read; on a
 * mostly-idle range they lie in wait until a disk failure makes them
 * unreconstructable (the dominant data-loss mode once arrays grew
 * past a handful of drives — Thomasian, arXiv:1801.08873).  The
 * scrubber sweeps every member disk chunk by chunk through the real
 * timed datapath (so it competes with foreground traffic for the
 * drives, strings and XBUS ports), asks the FaultController's defect
 * map whether the chunk is damaged, and repairs damage from redundancy
 * with a timed reconstruct-and-rewrite.  The inter-chunk delay is the
 * scrub-rate knob an MTTDL campaign sweeps.
 */

#ifndef RAID2_FAULT_SCRUBBER_HH
#define RAID2_FAULT_SCRUBBER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "fault/fault_controller.hh"
#include "raid/sim_array.hh"
#include "sim/event_queue.hh"
#include "sim/stats_registry.hh"

namespace raid2::fault {

/** Cyclic background sweep repairing latent defects from redundancy. */
class Scrubber
{
  public:
    struct Config
    {
        /** Bytes verified per scrub I/O. */
        std::uint64_t chunkBytes = 1024 * 1024;
        /** Pause between chunks; the scrub-rate knob (0 = scrub
         *  back-to-back, i.e. as fast as the datapath allows). */
        sim::Tick interChunkDelay = sim::msToTicks(20);
        /** Hold the sweep while the array is degraded (the rebuild
         *  needs the datapath more than the scrubber does). */
        bool pauseWhileDegraded = true;
    };

    Scrubber(sim::EventQueue &eq, std::string name,
             raid::SimArray &array, FaultController &faults,
             const Config &cfg);

    /** Begin (or resume) the cyclic sweep. */
    void start();
    /** Stop; pending wakeups are cancelled so the queue can drain. */
    void stop();
    bool running() const { return _running; }

    /**
     * Full-verify upgrade: invoked once per scanned chunk with the
     * member-disk extent (disk, offset, length) after the timed read
     * completes.  The server points this at its integrity layer, which
     * checksum-verifies the logical bytes the chunk covers and heals
     * the redundancy (parity recompute / mirror copy) — turning the
     * latent-defect sweep into a silent-corruption sweep as well.
     */
    using VerifyHook =
        std::function<void(unsigned d, std::uint64_t off,
                           std::uint64_t len)>;
    void setVerifyHook(VerifyHook hook) { verifyHook = std::move(hook); }

    /** @{ Statistics. */
    std::uint64_t sweepsCompleted() const { return _sweeps; }
    std::uint64_t chunksScanned() const { return _chunksScanned; }
    std::uint64_t bytesScanned() const { return _bytesScanned; }
    std::uint64_t rangesRepaired() const { return _rangesRepaired; }
    std::uint64_t repairedBytes() const { return _repairedBytes; }
    std::uint64_t verifyCalls() const { return _verifyCalls; }
    /** @} */

    /** Register scrub stats under @p prefix ("scrub.*"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "scrub") const;

  private:
    void step();
    void finishChunk(unsigned d, std::uint64_t off, std::uint64_t len);
    void repairChunk(unsigned d, std::uint64_t off, std::uint64_t len);
    void scheduleNext(sim::Tick delay);
    void advanceCursor(std::uint64_t len);

    sim::EventQueue &eq;
    std::string _name;
    raid::SimArray &array;
    FaultController &faults;
    Config cfg;
    VerifyHook verifyHook;

    /** Per-disk extent the sweep covers. */
    std::uint64_t sweepBytes;

    unsigned curDisk = 0;
    std::uint64_t curOff = 0;
    bool _running = false;
    bool chunkInFlight = false;
    sim::EventQueue::EventId wakeup = sim::EventQueue::invalidEvent;

    std::uint64_t _sweeps = 0;
    std::uint64_t _chunksScanned = 0;
    std::uint64_t _bytesScanned = 0;
    std::uint64_t _rangesRepaired = 0;
    std::uint64_t _repairedBytes = 0;
    std::uint64_t _verifyCalls = 0;
};

} // namespace raid2::fault

#endif // RAID2_FAULT_SCRUBBER_HH
