#include "ffs/ffs.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace raid2::ffs {

namespace {

constexpr std::uint32_t inodeSize = 256;

std::vector<std::string>
splitPath(const std::string &path)
{
    if (path.empty() || path[0] != '/')
        throw LfsError(Errno::Invalid, "path must be absolute: " + path);
    std::vector<std::string> parts;
    std::size_t pos = 1;
    while (pos < path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        if (end > pos)
            parts.push_back(path.substr(pos, end - pos));
        pos = end + 1;
    }
    return parts;
}

} // namespace

void
Ffs::format(fs::BlockDevice &dev, const Params &params)
{
    const std::uint32_t bs = params.blockSize;
    if (dev.blockSize() != bs)
        sim::fatal("Ffs::format: block size mismatch");

    Super sb{};
    sb.magic = magicValue;
    sb.blockSize = bs;
    sb.maxInodes = params.maxInodes;
    sb.inodeTableBlock = 1;
    const std::uint32_t itable_blocks =
        (params.maxInodes * inodeSize + bs - 1) / bs;
    sb.bitmapBlock = sb.inodeTableBlock + itable_blocks;
    sb.numBlocks = dev.numBlocks();
    sb.bitmapBlocks = static_cast<std::uint32_t>(
        (sb.numBlocks / 8 + bs - 1) / bs);
    sb.dataStartBlock = sb.bitmapBlock + sb.bitmapBlocks;
    sb.rootIno = 1;

    std::vector<std::uint8_t> block(bs, 0);
    std::memcpy(block.data(), &sb, sizeof(sb));
    dev.writeBlock(0, {block.data(), block.size()});

    // Zero the inode table and bitmap.
    std::fill(block.begin(), block.end(), 0);
    for (std::uint32_t b = sb.inodeTableBlock; b < sb.dataStartBlock; ++b)
        dev.writeBlock(b, {block.data(), block.size()});

    // Root inode.
    Inode ri{};
    ri.ino = sb.rootIno;
    ri.type = static_cast<std::uint16_t>(FileType::Directory);
    ri.nlink = 2;
    std::memcpy(block.data(), &ri, sizeof(ri));
    // Root is inode #1 -> slot 1 in the table.
    std::vector<std::uint8_t> itable(bs, 0);
    std::memcpy(itable.data() + inodeSize, &ri, sizeof(ri));
    dev.writeBlock(sb.inodeTableBlock, {itable.data(), itable.size()});
    dev.flush();
}

Ffs::Ffs(fs::BlockDevice &dev_) : dev(dev_)
{
    std::vector<std::uint8_t> block(dev.blockSize());
    dev.readBlock(0, {block.data(), block.size()});
    std::memcpy(&sb, block.data(), sizeof(sb));
    if (sb.magic != magicValue)
        throw LfsError(Errno::Invalid, "not an FFS device");
    root = sb.rootIno;
    bitmap.resize(std::size_t(sb.bitmapBlocks) * sb.blockSize);
    dev.readBlocks(sb.bitmapBlock, sb.bitmapBlocks,
                   {bitmap.data(), bitmap.size()});
}

Ffs::Inode
Ffs::loadInode(InodeNum ino) const
{
    if (ino == lfs::nullIno || ino >= sb.maxInodes)
        throw LfsError(Errno::Invalid, "bad inode number");
    const std::uint32_t per = sb.blockSize / inodeSize;
    std::vector<std::uint8_t> block(sb.blockSize);
    dev.readBlock(sb.inodeTableBlock + ino / per,
                  {block.data(), block.size()});
    Inode inode;
    std::memcpy(&inode, block.data() + (ino % per) * inodeSize,
                sizeof(inode));
    if (inode.type == static_cast<std::uint16_t>(FileType::Free))
        throw LfsError(Errno::NoEntry, "inode not allocated");
    return inode;
}

void
Ffs::storeInode(const Inode &inode)
{
    const std::uint32_t per = sb.blockSize / inodeSize;
    std::vector<std::uint8_t> block(sb.blockSize);
    const std::uint64_t bno = sb.inodeTableBlock + inode.ino / per;
    dev.readBlock(bno, {block.data(), block.size()});
    std::memcpy(block.data() + (inode.ino % per) * inodeSize, &inode,
                sizeof(inode));
    dev.writeBlock(bno, {block.data(), block.size()});
}

InodeNum
Ffs::allocInode(FileType type)
{
    const std::uint32_t per = sb.blockSize / inodeSize;
    std::vector<std::uint8_t> block(sb.blockSize);
    for (InodeNum ino = 1; ino < sb.maxInodes; ++ino) {
        dev.readBlock(sb.inodeTableBlock + ino / per,
                      {block.data(), block.size()});
        Inode inode;
        std::memcpy(&inode, block.data() + (ino % per) * inodeSize,
                    sizeof(inode));
        if (inode.type == static_cast<std::uint16_t>(FileType::Free)) {
            Inode fresh{};
            fresh.ino = ino;
            fresh.type = static_cast<std::uint16_t>(type);
            fresh.nlink = type == FileType::Directory ? 2 : 1;
            storeInode(fresh);
            return ino;
        }
    }
    throw LfsError(Errno::NoSpace, "out of inodes");
}

bool
Ffs::bitGet(std::uint64_t bno) const
{
    return (bitmap[bno / 8] >> (bno % 8)) & 1;
}

void
Ffs::bitSet(std::uint64_t bno, bool v)
{
    if (v)
        bitmap[bno / 8] |= std::uint8_t(1u << (bno % 8));
    else
        bitmap[bno / 8] &= std::uint8_t(~(1u << (bno % 8)));
    // Write-through the affected bitmap block.
    const std::uint64_t which = (bno / 8) / sb.blockSize;
    dev.writeBlock(sb.bitmapBlock + which,
                   {bitmap.data() + which * sb.blockSize, sb.blockSize});
}

std::uint64_t
Ffs::allocBlock()
{
    for (std::uint64_t b = sb.dataStartBlock; b < sb.numBlocks; ++b) {
        if (!bitGet(b)) {
            bitSet(b, true);
            return b;
        }
    }
    throw LfsError(Errno::NoSpace, "device full");
}

void
Ffs::freeBlock(std::uint64_t bno)
{
    bitSet(bno, false);
}

std::uint64_t
Ffs::freeBlocks() const
{
    std::uint64_t n = 0;
    for (std::uint64_t b = sb.dataStartBlock; b < sb.numBlocks; ++b)
        n += bitGet(b) ? 0 : 1;
    return n;
}

std::uint64_t
Ffs::getFileBlock(const Inode &inode, std::uint64_t fbno) const
{
    const std::uint32_t p = sb.blockSize / 8;
    if (fbno < numDirect)
        return inode.direct[fbno];
    if (fbno < numDirect + p) {
        if (inode.indirect == 0)
            return 0;
        std::vector<std::uint8_t> block(sb.blockSize);
        dev.readBlock(inode.indirect, {block.data(), block.size()});
        std::uint64_t addr;
        std::memcpy(&addr, block.data() + (fbno - numDirect) * 8,
                    sizeof(addr));
        return addr;
    }
    throw LfsError(Errno::FileTooBig, "file too big for FFS baseline");
}

void
Ffs::setFileBlock(Inode &inode, std::uint64_t fbno, std::uint64_t addr)
{
    const std::uint32_t p = sb.blockSize / 8;
    if (fbno < numDirect) {
        inode.direct[fbno] = addr;
        return;
    }
    if (fbno >= numDirect + p)
        throw LfsError(Errno::FileTooBig, "file too big for FFS baseline");
    if (inode.indirect == 0)
        inode.indirect = allocBlock();
    std::vector<std::uint8_t> block(sb.blockSize);
    dev.readBlock(inode.indirect, {block.data(), block.size()});
    std::memcpy(block.data() + (fbno - numDirect) * 8, &addr,
                sizeof(addr));
    dev.writeBlock(inode.indirect, {block.data(), block.size()});
}

std::uint64_t
Ffs::writeData(Inode &inode, std::uint64_t off,
               std::span<const std::uint8_t> data)
{
    const std::uint32_t bs = sb.blockSize;
    std::vector<std::uint8_t> buf(bs);
    std::uint64_t pos = off;
    std::uint64_t left = data.size();
    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));

        std::uint64_t addr = getFileBlock(inode, fbno);
        if (addr == 0) {
            addr = allocBlock();
            setFileBlock(inode, fbno, addr);
        }
        if (take == bs) {
            dev.writeBlock(addr, {data.data() + (pos - off), bs});
        } else {
            dev.readBlock(addr, {buf.data(), bs});
            std::memcpy(buf.data() + in_block, data.data() + (pos - off),
                        take);
            dev.writeBlock(addr, {buf.data(), bs});
        }
        pos += take;
        left -= take;
    }
    inode.size = std::max<std::uint64_t>(inode.size, off + data.size());
    storeInode(inode);
    return data.size();
}

std::uint64_t
Ffs::readData(const Inode &inode, std::uint64_t off,
              std::span<std::uint8_t> out) const
{
    if (off >= inode.size || out.empty())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), inode.size - off);
    const std::uint32_t bs = sb.blockSize;
    std::vector<std::uint8_t> buf(bs);
    std::uint64_t pos = off;
    std::uint64_t left = n;
    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));
        std::uint8_t *dst = out.data() + (pos - off);
        const std::uint64_t addr = getFileBlock(inode, fbno);
        if (addr == 0) {
            std::memset(dst, 0, take);
        } else if (take == bs) {
            dev.readBlock(addr, {dst, bs});
        } else {
            dev.readBlock(addr, {buf.data(), bs});
            std::memcpy(dst, buf.data() + in_block, take);
        }
        pos += take;
        left -= take;
    }
    return n;
}

std::uint64_t
Ffs::write(InodeNum ino, std::uint64_t off,
           std::span<const std::uint8_t> data)
{
    Inode inode = loadInode(ino);
    if (inode.type == static_cast<std::uint16_t>(FileType::Directory))
        throw LfsError(Errno::IsDirectory, "write to a directory");
    return writeData(inode, off, data);
}

std::uint64_t
Ffs::read(InodeNum ino, std::uint64_t off,
          std::span<std::uint8_t> out) const
{
    return readData(loadInode(ino), off, out);
}

std::vector<FileExtent>
Ffs::mapFile(InodeNum ino, std::uint64_t off, std::uint64_t len) const
{
    const Inode inode = loadInode(ino);
    std::vector<FileExtent> extents;
    if (off >= inode.size || len == 0)
        return extents;
    len = std::min<std::uint64_t>(len, inode.size - off);
    const std::uint32_t bs = sb.blockSize;
    std::uint64_t pos = off;
    std::uint64_t left = len;
    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));
        const std::uint64_t addr = getFileBlock(inode, fbno);
        const bool hole = addr == 0;
        const std::uint64_t dev_off = hole ? 0 : addr * bs + in_block;
        if (!extents.empty()) {
            FileExtent &prev = extents.back();
            if (prev.hole == hole &&
                prev.fileOffset + prev.bytes == pos &&
                (hole || prev.deviceOffset + prev.bytes == dev_off)) {
                prev.bytes += take;
                pos += take;
                left -= take;
                continue;
            }
        }
        extents.push_back(FileExtent{dev_off, take, pos, hole});
        pos += take;
        left -= take;
    }
    return extents;
}

std::vector<DirEntry>
Ffs::readDirEntries(const Inode &dir) const
{
    std::vector<std::uint8_t> raw(dir.size);
    if (dir.size > 0)
        readData(dir, 0, {raw.data(), raw.size()});
    std::vector<DirEntry> entries;
    std::size_t pos = 0;
    while (pos + 6 <= raw.size()) {
        InodeNum ino;
        std::uint16_t len;
        std::memcpy(&ino, raw.data() + pos, 4);
        std::memcpy(&len, raw.data() + pos + 4, 2);
        pos += 6;
        if (ino == lfs::nullIno && len == 0)
            break;
        if (len == 0 || pos + len > raw.size())
            sim::panic("Ffs: corrupt directory");
        entries.push_back(DirEntry{
            ino, std::string(
                     reinterpret_cast<const char *>(raw.data() + pos),
                     len)});
        pos += len;
    }
    return entries;
}

void
Ffs::writeDirEntries(Inode &dir, const std::vector<DirEntry> &ents)
{
    std::vector<std::uint8_t> raw;
    for (const DirEntry &e : ents) {
        const std::uint16_t len = static_cast<std::uint16_t>(
            e.name.size());
        raw.insert(raw.end(),
                   reinterpret_cast<const std::uint8_t *>(&e.ino),
                   reinterpret_cast<const std::uint8_t *>(&e.ino) + 4);
        raw.insert(raw.end(),
                   reinterpret_cast<const std::uint8_t *>(&len),
                   reinterpret_cast<const std::uint8_t *>(&len) + 2);
        raw.insert(raw.end(), e.name.begin(), e.name.end());
    }
    // Terminator.
    raw.insert(raw.end(), 6, 0);
    writeData(dir, 0, {raw.data(), raw.size()});
    dir.size = raw.size();
    storeInode(dir);
}

InodeNum
Ffs::resolve(const std::string &path) const
{
    InodeNum cur = root;
    for (const std::string &comp : splitPath(path)) {
        const Inode dir = loadInode(cur);
        if (dir.type != static_cast<std::uint16_t>(FileType::Directory))
            throw LfsError(Errno::NotDirectory, path);
        InodeNum next = lfs::nullIno;
        for (const DirEntry &e : readDirEntries(dir)) {
            if (e.name == comp) {
                next = e.ino;
                break;
            }
        }
        if (next == lfs::nullIno)
            throw LfsError(Errno::NoEntry, path + " not found");
        cur = next;
    }
    return cur;
}

InodeNum
Ffs::resolveParent(const std::string &path, std::string &leaf) const
{
    auto parts = splitPath(path);
    if (parts.empty())
        throw LfsError(Errno::Invalid, "no leaf in path");
    leaf = parts.back();
    std::string parent = "/";
    for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        parent += parts[i] + "/";
    return resolve(parent);
}

InodeNum
Ffs::create(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    Inode parent = loadInode(parent_ino);
    for (const DirEntry &e : readDirEntries(parent)) {
        if (e.name == leaf)
            throw LfsError(Errno::Exists, path + " exists");
    }
    const InodeNum ino = allocInode(FileType::Regular);
    auto ents = readDirEntries(parent);
    ents.push_back(DirEntry{ino, leaf});
    writeDirEntries(parent, ents);
    return ino;
}

InodeNum
Ffs::mkdir(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    Inode parent = loadInode(parent_ino);
    for (const DirEntry &e : readDirEntries(parent)) {
        if (e.name == leaf)
            throw LfsError(Errno::Exists, path + " exists");
    }
    const InodeNum ino = allocInode(FileType::Directory);
    auto ents = readDirEntries(parent);
    ents.push_back(DirEntry{ino, leaf});
    writeDirEntries(parent, ents);
    parent = loadInode(parent_ino);
    ++parent.nlink;
    storeInode(parent);
    return ino;
}

void
Ffs::freeInodeBlocks(Inode &inode)
{
    const std::uint32_t bs = sb.blockSize;
    const std::uint64_t blocks = (inode.size + bs - 1) / bs;
    for (std::uint64_t f = 0; f < blocks; ++f) {
        const std::uint64_t addr = getFileBlock(inode, f);
        if (addr != 0)
            freeBlock(addr);
    }
    if (inode.indirect != 0)
        freeBlock(inode.indirect);
}

void
Ffs::unlink(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    Inode parent = loadInode(parent_ino);
    auto ents = readDirEntries(parent);
    for (auto it = ents.begin(); it != ents.end(); ++it) {
        if (it->name != leaf)
            continue;
        const InodeNum dead = it->ino;
        Inode victim = loadInode(dead);
        if (victim.type ==
            static_cast<std::uint16_t>(FileType::Directory)) {
            throw LfsError(Errno::IsDirectory, path + " is a directory");
        }
        ents.erase(it);
        writeDirEntries(parent, ents);
        freeInodeBlocks(victim);

        // Clear the inode slot in the table.
        const std::uint32_t per = sb.blockSize / inodeSize;
        std::vector<std::uint8_t> block(sb.blockSize);
        const std::uint64_t bno = sb.inodeTableBlock + dead / per;
        dev.readBlock(bno, {block.data(), block.size()});
        std::memset(block.data() + (dead % per) * inodeSize, 0,
                    inodeSize);
        dev.writeBlock(bno, {block.data(), block.size()});
        return;
    }
    throw LfsError(Errno::NoEntry, path + " not found");
}

InodeNum
Ffs::lookup(const std::string &path) const
{
    return resolve(path);
}

bool
Ffs::exists(const std::string &path) const
{
    try {
        resolve(path);
        return true;
    } catch (const LfsError &) {
        return false;
    }
}

std::vector<DirEntry>
Ffs::readdir(const std::string &path) const
{
    const Inode dir = loadInode(resolve(path));
    if (dir.type != static_cast<std::uint16_t>(FileType::Directory))
        throw LfsError(Errno::NotDirectory, path);
    return readDirEntries(dir);
}

Stat
Ffs::stat(const std::string &path) const
{
    const Inode inode = loadInode(resolve(path));
    Stat st;
    st.ino = inode.ino;
    st.type = static_cast<FileType>(inode.type);
    st.size = inode.size;
    st.nlink = inode.nlink;
    return st;
}

} // namespace raid2::ffs
