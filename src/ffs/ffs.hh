/**
 * @file
 * Baseline update-in-place file system ("traditional", FFS-style).
 *
 * §3.1: "This is in contrast to traditional file systems, which assign
 * files to fixed blocks on disk.  In traditional file systems, a
 * sequence of random file writes results in inefficient small, random
 * disk accesses" — and on a Level 5 array every such write becomes a
 * 4-access read-modify-write.  This deliberately simple FS provides
 * that baseline for the small-write ablation: fixed inode table, block
 * bitmap, update-in-place data blocks, no logging.
 */

#ifndef RAID2_FFS_FFS_HH
#define RAID2_FFS_FFS_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "fs/block_device.hh"
#include "lfs/lfs.hh" // reuse LfsError/Errno/Stat/DirEntry/FileExtent

namespace raid2::ffs {

using lfs::DirEntry;
using lfs::Errno;
using lfs::FileExtent;
using lfs::FileType;
using lfs::InodeNum;
using lfs::LfsError;
using lfs::Stat;

/** Update-in-place file system over a BlockDevice. */
class Ffs
{
  public:
    struct Params
    {
        std::uint32_t blockSize = 4096;
        std::uint32_t maxInodes = 1024;
    };

    static void format(fs::BlockDevice &dev, const Params &params);
    static void format(fs::BlockDevice &dev) { format(dev, Params{}); }

    explicit Ffs(fs::BlockDevice &dev);

    /** @{ Namespace (absolute paths). */
    InodeNum create(const std::string &path);
    InodeNum mkdir(const std::string &path);
    void unlink(const std::string &path);
    InodeNum lookup(const std::string &path) const;
    bool exists(const std::string &path) const;
    std::vector<DirEntry> readdir(const std::string &path) const;
    Stat stat(const std::string &path) const;
    /** @} */

    /** @{ File I/O — write-through (every block hits the device). */
    std::uint64_t write(InodeNum ino, std::uint64_t off,
                        std::span<const std::uint8_t> data);
    std::uint64_t read(InodeNum ino, std::uint64_t off,
                       std::span<std::uint8_t> out) const;
    /** @} */

    /** Device byte extents of a file range. */
    std::vector<FileExtent> mapFile(InodeNum ino, std::uint64_t off,
                                    std::uint64_t len) const;

    std::uint64_t freeBlocks() const;
    InodeNum rootIno() const { return root; }

  private:
    static constexpr std::uint32_t magicValue = 0x46465321; // "FFS!"
    static constexpr unsigned numDirect = 12;

#pragma pack(push, 1)
    struct Super
    {
        std::uint32_t magic;
        std::uint32_t blockSize;
        std::uint32_t maxInodes;
        std::uint32_t inodeTableBlock;
        std::uint32_t bitmapBlock;
        std::uint32_t bitmapBlocks;
        std::uint32_t dataStartBlock;
        std::uint64_t numBlocks;
        InodeNum rootIno;
    };
    struct Inode
    {
        InodeNum ino;
        std::uint16_t type;
        std::uint16_t nlink;
        std::uint64_t size;
        std::uint64_t direct[numDirect];
        std::uint64_t indirect;
        std::uint8_t pad[256 - (4 + 2 + 2 + 8 + 8 * numDirect + 8)];
    };
    static_assert(sizeof(Inode) == 256);
#pragma pack(pop)

    Inode loadInode(InodeNum ino) const;
    void storeInode(const Inode &inode);
    InodeNum allocInode(FileType type);
    void freeInodeBlocks(Inode &inode);
    std::uint64_t allocBlock();
    void freeBlock(std::uint64_t bno);
    bool bitGet(std::uint64_t bno) const;
    void bitSet(std::uint64_t bno, bool v);

    std::uint64_t getFileBlock(const Inode &inode,
                               std::uint64_t fbno) const;
    void setFileBlock(Inode &inode, std::uint64_t fbno,
                      std::uint64_t addr);

    std::vector<DirEntry> readDirEntries(const Inode &dir) const;
    void writeDirEntries(Inode &dir, const std::vector<DirEntry> &ents);
    InodeNum resolve(const std::string &path) const;
    InodeNum resolveParent(const std::string &path,
                           std::string &leaf) const;

    std::uint64_t writeData(Inode &inode, std::uint64_t off,
                            std::span<const std::uint8_t> data);
    std::uint64_t readData(const Inode &inode, std::uint64_t off,
                           std::span<std::uint8_t> out) const;

    fs::BlockDevice &dev;
    Super sb{};
    InodeNum root = lfs::nullIno;
    mutable std::vector<std::uint8_t> bitmap; // cached, write-through
};

} // namespace raid2::ffs

#endif // RAID2_FFS_FFS_HH
