#include "fs/array_block_device.hh"

namespace raid2::fs {

ArrayBlockDevice::ArrayBlockDevice(raid::RaidArray &array,
                                   std::uint32_t block_size,
                                   std::uint64_t max_blocks)
    : _array(array), bs(block_size),
      blocks(array.capacity() / block_size)
{
    if (max_blocks != 0 && max_blocks < blocks)
        blocks = max_blocks;
}

void
ArrayBlockDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    checkAccess(bno, out.size());
    noteRead();
    _array.read(bno * bs, out);
    if (ioHook)
        ioHook(bno * bs, bs, false);
}

void
ArrayBlockDevice::writeBlock(std::uint64_t bno,
                             std::span<const std::uint8_t> data)
{
    checkAccess(bno, data.size());
    noteWrite();
    _array.write(bno * bs, data);
    if (ioHook)
        ioHook(bno * bs, bs, true);
}

void
ArrayBlockDevice::readRange(std::uint64_t bno, std::uint64_t count,
                            std::span<std::uint8_t> out)
{
    if (count == 0)
        return;
    checkExtent(bno, count, out.size());
    noteRead(count);
    _array.read(bno * bs, out);
    if (ioHook)
        ioHook(bno * bs, count * std::uint64_t(bs), false);
}

void
ArrayBlockDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                             std::span<const std::uint8_t> data)
{
    if (count == 0)
        return;
    checkExtent(bno, count, data.size());
    noteWrite(count);
    _array.write(bno * bs, data);
    if (ioHook)
        ioHook(bno * bs, count * std::uint64_t(bs), true);
}

} // namespace raid2::fs
