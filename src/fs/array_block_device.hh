/**
 * @file
 * Block device backed by a functional RAID array.
 *
 * Runs a file system on real RAID bytes (parity maintained, degraded
 * reads work), and exposes an I/O hook so a bench can mirror each
 * block access into the timing plane (SimArray) — the glue between
 * the functional and timed halves of the reproduction.
 */

#ifndef RAID2_FS_ARRAY_BLOCK_DEVICE_HH
#define RAID2_FS_ARRAY_BLOCK_DEVICE_HH

#include <cstdint>
#include <functional>

#include "fs/block_device.hh"
#include "raid/raid_array.hh"

namespace raid2::fs {

/** BlockDevice view of a raid::RaidArray. */
class ArrayBlockDevice : public BlockDevice
{
  public:
    /** Observer invoked for every block access. */
    using IoHook = std::function<void(std::uint64_t offset_bytes,
                                      std::uint64_t len_bytes, bool write)>;

    /** @p max_blocks caps the exposed geometry (0 = the array's full
     *  data capacity); the array is usually stripe-rounded and callers
     *  may need the device to match an exact byte budget. */
    ArrayBlockDevice(raid::RaidArray &array, std::uint32_t block_size,
                     std::uint64_t max_blocks = 0);

    std::uint32_t blockSize() const override { return bs; }
    std::uint64_t numBlocks() const override { return blocks; }

    void readBlock(std::uint64_t bno,
                   std::span<std::uint8_t> out) override;
    void writeBlock(std::uint64_t bno,
                    std::span<const std::uint8_t> data) override;

    void readRange(std::uint64_t bno, std::uint64_t count,
                   std::span<std::uint8_t> out) override;
    void writeRange(std::uint64_t bno, std::uint64_t count,
                    std::span<const std::uint8_t> data) override;

    void setIoHook(IoHook hook) { ioHook = std::move(hook); }

    raid::RaidArray &array() { return _array; }

  private:
    raid::RaidArray &_array;
    std::uint32_t bs;
    std::uint64_t blocks;
    IoHook ioHook;
};

} // namespace raid2::fs

#endif // RAID2_FS_ARRAY_BLOCK_DEVICE_HH
