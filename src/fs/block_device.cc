#include "fs/block_device.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::fs {

void
BlockDevice::registerStats(sim::StatsRegistry &reg,
                           const std::string &prefix) const
{
    reg.add(prefix + ".reads", _reads);
    reg.add(prefix + ".writes", _writes);
}

void
BlockDevice::checkAccess(std::uint64_t bno, std::size_t len) const
{
    if (bno >= numBlocks())
        sim::panic("BlockDevice: block %llu beyond device size %llu",
                   (unsigned long long)bno,
                   (unsigned long long)numBlocks());
    if (len != blockSize())
        sim::panic("BlockDevice: buffer size %zu != block size %u", len,
                   blockSize());
}

void
BlockDevice::readBlocks(std::uint64_t bno, std::uint64_t count,
                        std::span<std::uint8_t> out)
{
    const std::uint32_t bs = blockSize();
    for (std::uint64_t i = 0; i < count; ++i)
        readBlock(bno + i, out.subspan(i * bs, bs));
}

void
BlockDevice::writeBlocks(std::uint64_t bno, std::uint64_t count,
                         std::span<const std::uint8_t> data)
{
    const std::uint32_t bs = blockSize();
    for (std::uint64_t i = 0; i < count; ++i)
        writeBlock(bno + i, data.subspan(i * bs, bs));
}

} // namespace raid2::fs
