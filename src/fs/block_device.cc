#include "fs/block_device.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::fs {

void
BlockDevice::registerStats(sim::StatsRegistry &reg,
                           const std::string &prefix) const
{
    reg.add(prefix + ".reads", _reads);
    reg.add(prefix + ".writes", _writes);
}

void
BlockDevice::checkExtent(std::uint64_t bno, std::uint64_t count,
                         std::size_t len) const
{
    // Bounds first, phrased so bno + count cannot wrap.
    const std::uint64_t nb = numBlocks();
    if (bno >= nb || count > nb - bno)
        sim::panic("BlockDevice: extent [%llu, +%llu) beyond device "
                   "size %llu",
                   (unsigned long long)bno, (unsigned long long)count,
                   (unsigned long long)nb);
    if (std::uint64_t(len) != count * std::uint64_t(blockSize()))
        sim::panic("BlockDevice: buffer size %zu != %llu blocks of %u",
                   len, (unsigned long long)count, blockSize());
}

void
BlockDevice::readRange(std::uint64_t bno, std::uint64_t count,
                       std::span<std::uint8_t> out)
{
    if (count == 0)
        return;
    checkExtent(bno, count, out.size());
    const std::uint32_t bs = blockSize();
    for (std::uint64_t i = 0; i < count; ++i)
        readBlock(bno + i, out.subspan(i * bs, bs));
}

void
BlockDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                        std::span<const std::uint8_t> data)
{
    if (count == 0)
        return;
    checkExtent(bno, count, data.size());
    const std::uint32_t bs = blockSize();
    for (std::uint64_t i = 0; i < count; ++i)
        writeBlock(bno + i, data.subspan(i * bs, bs));
}

} // namespace raid2::fs
