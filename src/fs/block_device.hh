/**
 * @file
 * Synchronous block-device interface for the file systems.
 *
 * The functional plane of LFS and FFS runs against this interface:
 * real bytes in, real bytes out.  MemBlockDevice backs tests,
 * ArrayBlockDevice runs the file system on a functional RAID array
 * (with an I/O hook benches use to drive the timing plane), and
 * FaultDevice injects crashes for recovery testing.
 */

#ifndef RAID2_FS_BLOCK_DEVICE_HH
#define RAID2_FS_BLOCK_DEVICE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fs/write_log.hh"
#include "sim/stats.hh"

namespace raid2::fs {

/** Abstract synchronous block device. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    virtual std::uint32_t blockSize() const = 0;
    virtual std::uint64_t numBlocks() const = 0;

    /** Read block @p bno into @p out (out.size() == blockSize()). */
    virtual void readBlock(std::uint64_t bno,
                           std::span<std::uint8_t> out) = 0;

    /** Write @p data (data.size() == blockSize()) to block @p bno. */
    virtual void writeBlock(std::uint64_t bno,
                            std::span<const std::uint8_t> data) = 0;

    /** Barrier: all previous writes are durable afterwards. */
    virtual void flush() {}

    /** @{ Extent (vectored) I/O: @p count consecutive blocks starting
     *  at @p bno, in one call.  The base implementation loops over
     *  readBlock/writeBlock; devices override with a native
     *  single-pass path (MemBlockDevice: one memcpy, ArrayBlockDevice:
     *  one RaidArray call with stripe-aware parity).  Zero-length
     *  extents return immediately. */
    virtual void readRange(std::uint64_t bno, std::uint64_t count,
                           std::span<std::uint8_t> out);
    virtual void writeRange(std::uint64_t bno, std::uint64_t count,
                            std::span<const std::uint8_t> data);
    /** @} */

    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(blockSize()) * numBlocks();
    }

    /** @{ Multi-block helpers (delegate to readRange/writeRange). */
    void
    readBlocks(std::uint64_t bno, std::uint64_t count,
               std::span<std::uint8_t> out)
    {
        readRange(bno, count, out);
    }
    void
    writeBlocks(std::uint64_t bno, std::uint64_t count,
                std::span<const std::uint8_t> data)
    {
        writeRange(bno, count, data);
    }
    /** @} */

    /** @{ Statistics (maintained by implementations via note*()). */
    const sim::Scalar &readsStat() const { return _reads; }
    const sim::Scalar &writesStat() const { return _writes; }
    void
    resetCounters()
    {
        _reads.reset();
        _writes.reset();
    }

    /** Register "<prefix>.reads" / "<prefix>.writes". */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;
    /** @} */

  protected:
    void checkAccess(std::uint64_t bno, std::size_t len) const
    {
        checkExtent(bno, 1, len);
    }
    /** Validate an extent: in-bounds (overflow-safe) and the buffer
     *  exactly count * blockSize() bytes. */
    void checkExtent(std::uint64_t bno, std::uint64_t count,
                     std::size_t len) const;
    void noteRead(std::uint64_t n = 1) { _reads.inc(n); }
    void noteWrite(std::uint64_t n = 1) { _writes.inc(n); }

  private:
    mutable sim::Scalar _reads;
    mutable sim::Scalar _writes;
};

/**
 * Pass-through wrapper that reports every access to an observer.
 * The timed server uses it to mirror the file system's device traffic
 * into the simulation plane.
 */
class HookBlockDevice : public BlockDevice
{
  public:
    /** (byte offset, byte length, is_write) per block access. */
    using Hook = std::function<void(std::uint64_t, std::uint64_t, bool)>;

    explicit HookBlockDevice(BlockDevice &inner) : inner(inner) {}

    std::uint32_t blockSize() const override
    {
        return inner.blockSize();
    }
    std::uint64_t numBlocks() const override
    {
        return inner.numBlocks();
    }

    void
    readBlock(std::uint64_t bno, std::span<std::uint8_t> out) override
    {
        noteRead();
        inner.readBlock(bno, out);
        if (hook)
            hook(bno * blockSize(), blockSize(), false);
    }

    void
    writeBlock(std::uint64_t bno,
               std::span<const std::uint8_t> data) override
    {
        noteWrite();
        inner.writeBlock(bno, data);
        if (wlog)
            wlog->noteWrite(bno, data);
        if (hook)
            hook(bno * blockSize(), blockSize(), true);
    }

    void
    readRange(std::uint64_t bno, std::uint64_t count,
              std::span<std::uint8_t> out) override
    {
        if (count == 0)
            return;
        noteRead(count);
        inner.readRange(bno, count, out);
        if (hook)
            hook(bno * blockSize(),
                 count * std::uint64_t(blockSize()), false);
    }

    void
    writeRange(std::uint64_t bno, std::uint64_t count,
               std::span<const std::uint8_t> data) override
    {
        if (count == 0)
            return;
        noteWrite(count);
        inner.writeRange(bno, count, data);
        if (wlog)
            wlog->noteWrite(bno, data, std::uint32_t(count));
        if (hook)
            hook(bno * blockSize(),
                 count * std::uint64_t(blockSize()), true);
    }

    void
    flush() override
    {
        inner.flush();
        if (wlog)
            wlog->noteBarrier();
    }

    /** Observe every access; the is_write argument tells reads from
     *  writes. */
    void setHook(Hook h) { hook = std::move(h); }

    /** Record every write + barrier into @p log (nullptr detaches). */
    void attachWriteLog(WriteLog *log) { wlog = log; }

  private:
    BlockDevice &inner;
    Hook hook;
    WriteLog *wlog = nullptr;
};

} // namespace raid2::fs

#endif // RAID2_FS_BLOCK_DEVICE_HH
