/**
 * @file
 * Synchronous block-device interface for the file systems.
 *
 * The functional plane of LFS and FFS runs against this interface:
 * real bytes in, real bytes out.  MemBlockDevice backs tests,
 * ArrayBlockDevice runs the file system on a functional RAID array
 * (with an I/O hook benches use to drive the timing plane), and
 * FaultDevice injects crashes for recovery testing.
 */

#ifndef RAID2_FS_BLOCK_DEVICE_HH
#define RAID2_FS_BLOCK_DEVICE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace raid2::fs {

/** Abstract synchronous block device. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    virtual std::uint32_t blockSize() const = 0;
    virtual std::uint64_t numBlocks() const = 0;

    /** Read block @p bno into @p out (out.size() == blockSize()). */
    virtual void readBlock(std::uint64_t bno,
                           std::span<std::uint8_t> out) = 0;

    /** Write @p data (data.size() == blockSize()) to block @p bno. */
    virtual void writeBlock(std::uint64_t bno,
                            std::span<const std::uint8_t> data) = 0;

    /** Barrier: all previous writes are durable afterwards. */
    virtual void flush() {}

    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(blockSize()) * numBlocks();
    }

    /** @{ Multi-block helpers (sequential loops over the virtuals). */
    void readBlocks(std::uint64_t bno, std::uint64_t count,
                    std::span<std::uint8_t> out);
    void writeBlocks(std::uint64_t bno, std::uint64_t count,
                     std::span<const std::uint8_t> data);
    /** @} */

    /** @{ Statistics (maintained by implementations via note*()). */
    std::uint64_t readCount() const { return _reads; }
    std::uint64_t writeCount() const { return _writes; }
    void resetCounters() { _reads = _writes = 0; }
    /** @} */

  protected:
    void checkAccess(std::uint64_t bno, std::size_t len) const;
    void noteRead() { ++_reads; }
    void noteWrite() { ++_writes; }

  private:
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
};

/**
 * Pass-through wrapper that reports every access to an observer.
 * The timed server uses it to mirror the file system's device traffic
 * into the simulation plane.
 */
class HookBlockDevice : public BlockDevice
{
  public:
    /** (byte offset, byte length, is_write) per block access. */
    using Hook = std::function<void(std::uint64_t, std::uint64_t, bool)>;

    explicit HookBlockDevice(BlockDevice &inner) : inner(inner) {}

    std::uint32_t blockSize() const override
    {
        return inner.blockSize();
    }
    std::uint64_t numBlocks() const override
    {
        return inner.numBlocks();
    }

    void
    readBlock(std::uint64_t bno, std::span<std::uint8_t> out) override
    {
        noteRead();
        inner.readBlock(bno, out);
        if (readHook)
            readHook(bno * blockSize(), blockSize(), false);
    }

    void
    writeBlock(std::uint64_t bno,
               std::span<const std::uint8_t> data) override
    {
        noteWrite();
        inner.writeBlock(bno, data);
        if (writeHook)
            writeHook(bno * blockSize(), blockSize(), true);
    }

    void flush() override { inner.flush(); }

    void setReadHook(Hook h) { readHook = std::move(h); }
    void setWriteHook(Hook h) { writeHook = std::move(h); }

  private:
    BlockDevice &inner;
    Hook readHook;
    Hook writeHook;
};

} // namespace raid2::fs

#endif // RAID2_FS_BLOCK_DEVICE_HH
