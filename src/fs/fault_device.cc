#include "fs/fault_device.hh"

#include <vector>

namespace raid2::fs {

FaultDevice::FaultDevice(BlockDevice &inner_) : inner(inner_) {}

void
FaultDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    noteRead();
    inner.readBlock(bno, out);
}

void
FaultDevice::writeBlock(std::uint64_t bno,
                        std::span<const std::uint8_t> data)
{
    noteWrite();
    if (limit > 0) {
        --limit;
        inner.writeBlock(bno, data);
        if (wlog)
            wlog->noteWrite(bno, data);
        return;
    }
    ++dropped;
    if (tearOnCrash && !tearDone) {
        tearDone = true;
        // Half the new data lands, the rest is garbage.
        std::vector<std::uint8_t> torn(data.begin(), data.end());
        for (std::size_t i = torn.size() / 2; i < torn.size(); ++i)
            torn[i] = 0xbd;
        inner.writeBlock(bno, torn);
        if (wlog)
            wlog->noteWrite(bno, {torn.data(), torn.size()});
    }
}

void
FaultDevice::readRange(std::uint64_t bno, std::uint64_t count,
                       std::span<std::uint8_t> out)
{
    if (count == 0)
        return;
    noteRead(count);
    inner.readRange(bno, count, out);
}

void
FaultDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                        std::span<const std::uint8_t> data)
{
    if (count == 0)
        return;
    noteWrite(count);
    const std::uint32_t bs = blockSize();
    if (limit >= count) {
        limit -= count;
        inner.writeRange(bno, count, data);
        if (wlog)
            wlog->noteWrite(bno, data, std::uint32_t(count));
        return;
    }
    // Crash lands inside this extent: the first `landed` blocks reach
    // the media, the rest drop (the first dropped one tears if armed).
    const std::uint64_t landed = limit;
    limit = 0;
    if (landed > 0) {
        inner.writeRange(bno, landed, data.subspan(0, landed * bs));
        if (wlog)
            wlog->noteWrite(bno, data.subspan(0, landed * bs),
                            std::uint32_t(landed));
    }
    dropped += count - landed;
    if (tearOnCrash && !tearDone) {
        tearDone = true;
        auto block = data.subspan(landed * bs, bs);
        std::vector<std::uint8_t> torn(block.begin(), block.end());
        for (std::size_t i = torn.size() / 2; i < torn.size(); ++i)
            torn[i] = 0xbd;
        inner.writeBlock(bno + landed, torn);
        if (wlog)
            wlog->noteWrite(bno + landed, {torn.data(), torn.size()});
    }
}

void
FaultDevice::flush()
{
    if (limit > 0) {
        inner.flush();
        if (wlog)
            wlog->noteBarrier();
    }
}

} // namespace raid2::fs
