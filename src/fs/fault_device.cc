#include "fs/fault_device.hh"

#include <vector>

namespace raid2::fs {

FaultDevice::FaultDevice(BlockDevice &inner_) : inner(inner_) {}

void
FaultDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    noteRead();
    inner.readBlock(bno, out);
}

void
FaultDevice::writeBlock(std::uint64_t bno,
                        std::span<const std::uint8_t> data)
{
    noteWrite();
    if (limit > 0) {
        --limit;
        inner.writeBlock(bno, data);
        if (wlog)
            wlog->noteWrite(bno, data);
        return;
    }
    ++dropped;
    if (tearOnCrash && !tearDone) {
        tearDone = true;
        // Half the new data lands, the rest is garbage.
        std::vector<std::uint8_t> torn(data.begin(), data.end());
        for (std::size_t i = torn.size() / 2; i < torn.size(); ++i)
            torn[i] = 0xbd;
        inner.writeBlock(bno, torn);
        if (wlog)
            wlog->noteWrite(bno, {torn.data(), torn.size()});
    }
}

void
FaultDevice::flush()
{
    if (limit > 0) {
        inner.flush();
        if (wlog)
            wlog->noteBarrier();
    }
}

} // namespace raid2::fs
