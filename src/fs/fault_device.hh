/**
 * @file
 * Fault-injecting block device wrapper for crash-recovery testing.
 *
 * The LFS recovery tests need to "pull the plug" at an arbitrary point
 * in a write stream: after a configurable number of writes the device
 * silently drops everything (as a losing-power disk does), and the
 * test then remounts from whatever made it to the media.  A torn-write
 * mode garbles the first post-limit write instead of dropping it.
 */

#ifndef RAID2_FS_FAULT_DEVICE_HH
#define RAID2_FS_FAULT_DEVICE_HH

#include <cstdint>
#include <limits>

#include "fs/block_device.hh"

namespace raid2::fs {

/** Wrapper that kills writes after a set point. */
class FaultDevice : public BlockDevice
{
  public:
    explicit FaultDevice(BlockDevice &inner);

    std::uint32_t blockSize() const override
    {
        return inner.blockSize();
    }
    std::uint64_t numBlocks() const override
    {
        return inner.numBlocks();
    }

    void readBlock(std::uint64_t bno,
                   std::span<std::uint8_t> out) override;
    void writeBlock(std::uint64_t bno,
                    std::span<const std::uint8_t> data) override;
    void flush() override;

    void readRange(std::uint64_t bno, std::uint64_t count,
                   std::span<std::uint8_t> out) override;
    /** The write limit counts blocks, so a limit landing inside an
     *  extent crashes mid-extent: the leading blocks land, the rest
     *  drop (or the first dropped block tears).  Crash-point coverage
     *  is therefore identical to the per-block path. */
    void writeRange(std::uint64_t bno, std::uint64_t count,
                    std::span<const std::uint8_t> data) override;

    /** Allow @p n more writes, then drop everything ("crash"). */
    void setWriteLimit(std::uint64_t n) { limit = n; }

    /** If set, the first dropped write is instead written torn (half
     *  old, half new garbage). */
    void setTearOnCrash(bool tear) { tearOnCrash = tear; }

    /** Clear the fault: writes flow again (a "repaired" device).  All
     *  crash state resets so a healed device can be crashed again —
     *  the tear fires once per crash, not once per device lifetime. */
    void heal()
    {
        limit = std::numeric_limits<std::uint64_t>::max();
        tearDone = false;
        dropped = 0;
    }

    bool crashed() const { return limit == 0; }
    std::uint64_t droppedWrites() const { return dropped; }

    /** Record every write that reaches the inner device (including
     *  torn payloads, as written) plus completed flush barriers into
     *  @p log.  nullptr detaches. */
    void attachWriteLog(WriteLog *log) { wlog = log; }

  private:
    BlockDevice &inner;
    WriteLog *wlog = nullptr;
    std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t dropped = 0;
    bool tearOnCrash = false;
    bool tearDone = false;
};

} // namespace raid2::fs

#endif // RAID2_FS_FAULT_DEVICE_HH
