#include "fs/mem_block_device.hh"

#include <cstring>

namespace raid2::fs {

MemBlockDevice::MemBlockDevice(std::uint32_t block_size,
                               std::uint64_t num_blocks)
    : bs(block_size), blocks(num_blocks),
      data(static_cast<std::size_t>(block_size) * num_blocks, 0)
{
}

void
MemBlockDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    checkAccess(bno, out.size());
    noteRead();
    std::memcpy(out.data(), data.data() + bno * bs, bs);
}

void
MemBlockDevice::writeBlock(std::uint64_t bno,
                           std::span<const std::uint8_t> in)
{
    checkAccess(bno, in.size());
    noteWrite();
    std::memcpy(data.data() + bno * bs, in.data(), bs);
}

void
MemBlockDevice::readRange(std::uint64_t bno, std::uint64_t count,
                          std::span<std::uint8_t> out)
{
    if (count == 0)
        return;
    checkExtent(bno, count, out.size());
    noteRead(count);
    std::memcpy(out.data(), data.data() + bno * bs, count * bs);
}

void
MemBlockDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                           std::span<const std::uint8_t> in)
{
    if (count == 0)
        return;
    checkExtent(bno, count, in.size());
    noteWrite(count);
    std::memcpy(data.data() + bno * bs, in.data(), count * bs);
}

std::span<std::uint8_t>
MemBlockDevice::raw(std::uint64_t bno)
{
    checkAccess(bno, bs);
    return {data.data() + bno * bs, bs};
}

} // namespace raid2::fs
