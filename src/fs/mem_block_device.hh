/**
 * @file
 * In-memory block device for functional tests.
 */

#ifndef RAID2_FS_MEM_BLOCK_DEVICE_HH
#define RAID2_FS_MEM_BLOCK_DEVICE_HH

#include <cstdint>
#include <vector>

#include "fs/block_device.hh"

namespace raid2::fs {

/** RAM-backed block device. */
class MemBlockDevice : public BlockDevice
{
  public:
    MemBlockDevice(std::uint32_t block_size, std::uint64_t num_blocks);

    std::uint32_t blockSize() const override { return bs; }
    std::uint64_t numBlocks() const override { return blocks; }

    void readBlock(std::uint64_t bno,
                   std::span<std::uint8_t> out) override;
    void writeBlock(std::uint64_t bno,
                    std::span<const std::uint8_t> data) override;

    void readRange(std::uint64_t bno, std::uint64_t count,
                   std::span<std::uint8_t> out) override;
    void writeRange(std::uint64_t bno, std::uint64_t count,
                    std::span<const std::uint8_t> data) override;

    /** Direct access for tests (e.g. corrupting a block). */
    std::span<std::uint8_t> raw(std::uint64_t bno);

  private:
    std::uint32_t bs;
    std::uint64_t blocks;
    std::vector<std::uint8_t> data;
};

} // namespace raid2::fs

#endif // RAID2_FS_MEM_BLOCK_DEVICE_HH
