#include "fs/sim_block_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::fs {

SimBlockDevice::SimBlockDevice(sim::EventQueue &eq_,
                               raid::RaidArray &functional_,
                               raid::SimArray &timed_,
                               std::uint32_t block_size)
    : eq(eq_), functional(functional_), timed(timed_), bs(block_size),
      blocks(std::min(functional_.capacity(), timed_.capacity()) /
             block_size)
{
    if (blocks == 0)
        sim::fatal("SimBlockDevice: array smaller than one block");
}

void
SimBlockDevice::block(bool write, std::uint64_t off, std::uint64_t len)
{
    bool done = false;
    const sim::Tick t0 = eq.now();
    if (write)
        timed.write(off, len, [&done] { done = true; });
    else
        timed.read(off, len, [&done] { done = true; });
    if (!eq.runUntilDone([&done] { return done; }))
        sim::panic("SimBlockDevice: timed op never completed");
    spent += eq.now() - t0;
}

void
SimBlockDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    checkAccess(bno, out.size());
    noteRead();
    functional.read(bno * bs, out);
    block(false, bno * bs, bs);
}

void
SimBlockDevice::writeBlock(std::uint64_t bno,
                           std::span<const std::uint8_t> data)
{
    checkAccess(bno, data.size());
    noteWrite();
    functional.write(bno * bs, data);
    block(true, bno * bs, bs);
}

void
SimBlockDevice::readRange(std::uint64_t bno, std::uint64_t count,
                          std::span<std::uint8_t> out)
{
    if (count == 0)
        return;
    checkExtent(bno, count, out.size());
    noteRead(count);
    functional.read(bno * bs, out);
    block(false, bno * bs, count * std::uint64_t(bs));
}

void
SimBlockDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                           std::span<const std::uint8_t> data)
{
    if (count == 0)
        return;
    checkExtent(bno, count, data.size());
    noteWrite(count);
    functional.write(bno * bs, data);
    block(true, bno * bs, count * std::uint64_t(bs));
}

} // namespace raid2::fs
