#include "fs/sim_block_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::fs {

SimBlockDevice::SimBlockDevice(sim::EventQueue &eq_,
                               raid::RaidArray &functional_,
                               raid::SimArray &timed_,
                               std::uint32_t block_size)
    : eq(eq_), functional(functional_), timed(timed_), bs(block_size),
      blocks(std::min(functional_.capacity(), timed_.capacity()) /
             block_size)
{
    if (blocks == 0)
        sim::fatal("SimBlockDevice: array smaller than one block");
}

void
SimBlockDevice::block(bool write, std::uint64_t bno)
{
    bool done = false;
    const sim::Tick t0 = eq.now();
    if (write)
        timed.write(bno * bs, bs, [&done] { done = true; });
    else
        timed.read(bno * bs, bs, [&done] { done = true; });
    if (!eq.runUntilDone([&done] { return done; }))
        sim::panic("SimBlockDevice: timed op never completed");
    spent += eq.now() - t0;
}

void
SimBlockDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    checkAccess(bno, out.size());
    noteRead();
    functional.read(bno * bs, out);
    block(false, bno);
}

void
SimBlockDevice::writeBlock(std::uint64_t bno,
                           std::span<const std::uint8_t> data)
{
    checkAccess(bno, data.size());
    noteWrite();
    functional.write(bno * bs, data);
    block(true, bno);
}

} // namespace raid2::fs
