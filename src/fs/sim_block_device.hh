/**
 * @file
 * Timed + functional block device over the simulated array.
 *
 * Couples the two planes at the device interface: every block access
 * performs the functional transfer on a RaidArray (real bytes) *and*
 * advances the event queue until the corresponding timed SimArray
 * operation completes — synchronous code (a file system, a test)
 * experiences simulated time without being rewritten around
 * callbacks.  Useful for mounting LFS/FFS directly on the full
 * datapath; the server's asynchronous paths remain the right tool for
 * pipelined benches.
 */

#ifndef RAID2_FS_SIM_BLOCK_DEVICE_HH
#define RAID2_FS_SIM_BLOCK_DEVICE_HH

#include <cstdint>

#include "fs/block_device.hh"
#include "raid/raid_array.hh"
#include "raid/sim_array.hh"

namespace raid2::fs {

/** Synchronous-in-simulated-time block device. */
class SimBlockDevice : public BlockDevice
{
  public:
    /**
     * @param functional byte store (layout should match @p timed)
     * @param timed      the simulated datapath the ops run through
     */
    SimBlockDevice(sim::EventQueue &eq, raid::RaidArray &functional,
                   raid::SimArray &timed, std::uint32_t block_size);

    std::uint32_t blockSize() const override { return bs; }
    std::uint64_t numBlocks() const override { return blocks; }

    void readBlock(std::uint64_t bno,
                   std::span<std::uint8_t> out) override;
    void writeBlock(std::uint64_t bno,
                    std::span<const std::uint8_t> data) override;

    void readRange(std::uint64_t bno, std::uint64_t count,
                   std::span<std::uint8_t> out) override;
    void writeRange(std::uint64_t bno, std::uint64_t count,
                    std::span<const std::uint8_t> data) override;

    /** Simulated time consumed by this device's operations so far. */
    sim::Tick ticksSpent() const { return spent; }

  private:
    /** Run the queue until the timed op finishes; tally the time. */
    void block(bool write, std::uint64_t off, std::uint64_t len);

    sim::EventQueue &eq;
    raid::RaidArray &functional;
    raid::SimArray &timed;
    std::uint32_t bs;
    std::uint64_t blocks;
    sim::Tick spent = 0;
};

} // namespace raid2::fs

#endif // RAID2_FS_SIM_BLOCK_DEVICE_HH
