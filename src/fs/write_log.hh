/**
 * @file
 * Block-level write-log capture for crash-consistency testing.
 *
 * A WriteLog records every write that reaches the media, in order,
 * together with a caller-supplied tag (the model checker tags each
 * write with the index of the file-system operation that issued it)
 * and the position of every barrier (flush).  The crash-point explorer
 * replays prefixes of this log — optionally with one write torn,
 * dropped or corrupted — to enumerate every state a real device could
 * be left in by a crash.
 *
 * Writes are stored as *extents*: adjacent same-tag writes coalesce
 * into one record (a full-segment flush is one entry, not one per
 * block), which cuts the explorer's memory and bookkeeping.  Crash
 * points remain block-granular: barriers and the flat indexing exposed
 * by numBlocks()/blockAt()/forEachBlockIn() address individual blocks
 * inside the extents, so extent-sized device writes do not coarsen the
 * enumerated crash states.
 *
 * Capture attaches to the pass-through device wrappers
 * (HookBlockDevice, FaultDevice) via attachWriteLog(); detaching is
 * attaching nullptr.  The log stores full payloads, so a recorded run
 * is replayable without the writer.
 */

#ifndef RAID2_FS_WRITE_LOG_HH
#define RAID2_FS_WRITE_LOG_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace raid2::fs {

/** Ordered record of block writes and barriers. */
class WriteLog
{
  public:
    /** One extent of @c count consecutive blocks that reached the
     *  media in a single ordered burst. */
    struct Entry
    {
        std::uint64_t bno;              // first block of the extent
        std::uint32_t count;            // blocks in the extent
        std::vector<std::uint8_t> data; // count * blockSize bytes
        std::uint32_t tag;              // caller-defined (op index)
        std::size_t firstBlock;         // flat block index of block 0
    };

    /** A completed flush(): blocks [0, at) are durable.  @c at counts
     *  flat blocks, not entries, so coalescing never moves it. */
    struct Barrier
    {
        std::size_t at;    // flat block index (see numBlocks())
        std::uint32_t tag; // tag current when the flush completed
    };

    /** Flat view of one block inside an extent entry. */
    struct BlockRef
    {
        std::uint64_t bno;
        std::span<const std::uint8_t> data;
        std::uint32_t tag;
    };

    /** Tag applied to subsequently recorded writes/barriers. */
    void setTag(std::uint32_t t) { _tag = t; }
    std::uint32_t tag() const { return _tag; }

    /** Record @p count blocks starting at @p bno (data holds all of
     *  them, concatenated).  Adjacent same-tag extents coalesce. */
    void
    noteWrite(std::uint64_t bno, std::span<const std::uint8_t> data,
              std::uint32_t count = 1)
    {
        if (count == 0)
            return;
        if (!_entries.empty()) {
            Entry &last = _entries.back();
            if (last.tag == _tag && last.bno + last.count == bno) {
                last.data.insert(last.data.end(), data.begin(),
                                 data.end());
                last.count += count;
                _blocks += count;
                return;
            }
        }
        _entries.push_back(Entry{
            bno, count, {data.begin(), data.end()}, _tag, _blocks});
        _blocks += count;
    }

    void
    noteBarrier()
    {
        // Coalesce back-to-back flushes with no interleaved writes.
        if (!_barriers.empty() && _barriers.back().at == _blocks)
            return;
        _barriers.push_back(Barrier{_blocks, _tag});
    }

    /** Total blocks recorded (the flat crash-point index space). */
    std::size_t numBlocks() const { return _blocks; }

    /** The @p i-th recorded block (flat index; O(log entries)). */
    BlockRef
    blockAt(std::size_t i) const
    {
        auto it = std::upper_bound(
            _entries.begin(), _entries.end(), i,
            [](std::size_t v, const Entry &e) {
                return v < e.firstBlock;
            });
        --it;
        const std::size_t k = i - it->firstBlock;
        const std::size_t bs = it->data.size() / it->count;
        return BlockRef{it->bno + k,
                        {it->data.data() + k * bs, bs},
                        it->tag};
    }

    /** Call fn(flat_index, bno, data) for every block in
     *  [@p first, @p last); one entry walk, no per-block search. */
    template <typename Fn>
    void
    forEachBlockIn(std::size_t first, std::size_t last, Fn &&fn) const
    {
        if (first >= last)
            return;
        auto it = std::upper_bound(
            _entries.begin(), _entries.end(), first,
            [](std::size_t v, const Entry &e) {
                return v < e.firstBlock;
            });
        --it;
        for (; it != _entries.end() && it->firstBlock < last; ++it) {
            const std::size_t bs = it->data.size() / it->count;
            const std::size_t lo =
                std::max(first, it->firstBlock) - it->firstBlock;
            const std::size_t hi =
                std::min<std::size_t>(last - it->firstBlock,
                                      it->count);
            for (std::size_t k = lo; k < hi; ++k) {
                fn(it->firstBlock + k, it->bno + k,
                   std::span<const std::uint8_t>{
                       it->data.data() + k * bs, bs});
            }
        }
    }

    const std::vector<Entry> &entries() const { return _entries; }
    const std::vector<Barrier> &barriers() const { return _barriers; }

    void
    clear()
    {
        _entries.clear();
        _barriers.clear();
        _blocks = 0;
        _tag = 0;
    }

  private:
    std::vector<Entry> _entries;
    std::vector<Barrier> _barriers;
    std::size_t _blocks = 0;
    std::uint32_t _tag = 0;
};

} // namespace raid2::fs

#endif // RAID2_FS_WRITE_LOG_HH
