/**
 * @file
 * Block-level write-log capture for crash-consistency testing.
 *
 * A WriteLog records every block write that reaches the media, in
 * order, together with a caller-supplied tag (the model checker tags
 * each write with the index of the file-system operation that issued
 * it) and the position of every barrier (flush).  The crash-point
 * explorer replays prefixes of this log — optionally with one write
 * torn, dropped or corrupted — to enumerate every state a real device
 * could be left in by a crash.
 *
 * Capture attaches to the pass-through device wrappers
 * (HookBlockDevice, FaultDevice) via attachWriteLog(); detaching is
 * attaching nullptr.  The log stores full block payloads, so a
 * recorded run is replayable without the writer.
 */

#ifndef RAID2_FS_WRITE_LOG_HH
#define RAID2_FS_WRITE_LOG_HH

#include <cstdint>
#include <span>
#include <vector>

namespace raid2::fs {

/** Ordered record of block writes and barriers. */
class WriteLog
{
  public:
    /** One block write that reached the media. */
    struct Entry
    {
        std::uint64_t bno;
        std::vector<std::uint8_t> data;
        std::uint32_t tag; // caller-defined (op index)
    };

    /** A completed flush(): entries [0, at) are durable. */
    struct Barrier
    {
        std::size_t at;    // index into entries()
        std::uint32_t tag; // tag current when the flush completed
    };

    /** Tag applied to subsequently recorded writes/barriers. */
    void setTag(std::uint32_t t) { _tag = t; }
    std::uint32_t tag() const { return _tag; }

    void
    noteWrite(std::uint64_t bno, std::span<const std::uint8_t> data)
    {
        _entries.push_back(
            Entry{bno, {data.begin(), data.end()}, _tag});
    }

    void
    noteBarrier()
    {
        // Coalesce back-to-back flushes with no interleaved writes.
        if (!_barriers.empty() && _barriers.back().at == _entries.size())
            return;
        _barriers.push_back(Barrier{_entries.size(), _tag});
    }

    const std::vector<Entry> &entries() const { return _entries; }
    const std::vector<Barrier> &barriers() const { return _barriers; }

    void
    clear()
    {
        _entries.clear();
        _barriers.clear();
        _tag = 0;
    }

  private:
    std::vector<Entry> _entries;
    std::vector<Barrier> _barriers;
    std::uint32_t _tag = 0;
};

} // namespace raid2::fs

#endif // RAID2_FS_WRITE_LOG_HH
