#include "host/host_workstation.hh"

namespace raid2::host {

HostWorkstation::HostWorkstation(sim::EventQueue &eq, std::string name,
                                 const Config &cfg_)
    : _name(std::move(name)), cfg(cfg_),
      _cpu(eq, _name + ".cpu", sim::Service::Config{0.0, 0, 1}),
      _memory(eq, _name + ".memcpy",
              sim::Service::Config{cfg_.copyMBs, 0, 1}),
      _backplane(eq, _name + ".vme",
                 sim::Service::Config{cfg_.backplaneMBs, 0, 1})
{
}

void
HostWorkstation::chargeIoCompletion(bool through_host_memory,
                                    std::function<void()> done)
{
    sim::Tick cost = cfg.perIoCpu;
    if (through_host_memory)
        cost += cfg.raid1ExtraPerIo;
    _cpu.submitBusyTime(cost, std::move(done));
}

void
HostWorkstation::copyThroughMemory(std::uint64_t bytes,
                                   std::function<void()> done)
{
    // Each byte crosses the memory system copiesPerByte times.
    _memory.submit(bytes * cfg.copiesPerByte, std::move(done));
}

std::vector<sim::Stage>
HostWorkstation::dataPathStages()
{
    // Bulk data: backplane DMA, then the copy passes.  The copy stage
    // sees each byte copiesPerByte times, which we express as a rate
    // reduction so chunk accounting stays in payload bytes.
    const double eff_copy =
        cfg.copyMBs / static_cast<double>(cfg.copiesPerByte);
    return {sim::Stage(_backplane), sim::Stage(_memory, eff_copy)};
}

} // namespace raid2::host
