/**
 * @file
 * Host workstation model (Sun 4/280).
 *
 * §1 is a catalogue of this machine's bottlenecks: kernel-to-user copy
 * operations saturate the memory system at 2.3 MB/s of I/O bandwidth,
 * the VME backplane saturates at 9 MB/s, and request completions cost
 * context switches that cap the small-I/O rate of both prototypes
 * (§2.3).  The model is a CPU service station (per-I/O costs), a copy
 * engine (per-byte memory costs for data that moves through host
 * memory) and a backplane stage.
 */

#ifndef RAID2_HOST_HOST_WORKSTATION_HH
#define RAID2_HOST_HOST_WORKSTATION_HH

#include <cstdint>
#include <functional>
#include <string>

#include "config/calibration.hh"
#include "sim/service.hh"

namespace raid2::host {

/** The Sun 4/280 file-server host. */
class HostWorkstation
{
  public:
    struct Config
    {
        double copyMBs;
        unsigned copiesPerByte;
        double backplaneMBs;
        sim::Tick perIoCpu;
        sim::Tick raid1ExtraPerIo;

        Config()
            : copyMBs(cal::hostCopyMBs),
              copiesPerByte(cal::hostCopiesPerByte),
              backplaneMBs(cal::hostBackplaneMBs),
              perIoCpu(cal::hostPerIoCpu),
              raid1ExtraPerIo(cal::hostRaid1ExtraPerIo)
        {
        }
    };

    HostWorkstation(sim::EventQueue &eq, std::string name,
                    const Config &cfg = Config());

    /** CPU station: request handling, context switches. */
    sim::Service &cpu() { return _cpu; }

    /** Memory copy engine (kernel<->user data movement). */
    sim::Service &memoryCopy() { return _memory; }

    /** VME backplane into host memory. */
    sim::Service &backplane() { return _backplane; }

    /**
     * Charge the per-I/O completion cost (context switches + kernel
     * work).  @p through_host_memory adds the RAID-I-style extra cost.
     */
    void chargeIoCompletion(bool through_host_memory,
                            std::function<void()> done);

    /** Move @p bytes through host memory (copiesPerByte passes). */
    void copyThroughMemory(std::uint64_t bytes,
                           std::function<void()> done);

    /** Stage list for bulk data crossing backplane + memory copies. */
    std::vector<sim::Stage> dataPathStages();

    const Config &config() const { return cfg; }

    /** Register cpu/copy/backplane station stats under @p prefix. */
    void
    registerStats(sim::StatsRegistry &reg, const std::string &prefix) const
    {
        _cpu.registerStats(reg, prefix + ".cpu");
        _memory.registerStats(reg, prefix + ".memory_copy");
        _backplane.registerStats(reg, prefix + ".backplane");
    }

  private:
    std::string _name;
    Config cfg;
    sim::Service _cpu;
    sim::Service _memory;
    sim::Service _backplane;
};

} // namespace raid2::host

#endif // RAID2_HOST_HOST_WORKSTATION_HH
