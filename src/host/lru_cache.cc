#include "host/lru_cache.hh"

#include "sim/logging.hh"

namespace raid2::host {

LruCache::LruCache(std::uint64_t capacity_bytes)
    : _capacity(capacity_bytes)
{
}

bool
LruCache::lookup(std::uint64_t key)
{
    auto it = map.find(key);
    if (it == map.end()) {
        ++_misses;
        return false;
    }
    ++_hits;
    lru.splice(lru.begin(), lru, it->second);
    return true;
}

void
LruCache::evictTo(std::uint64_t target)
{
    while (used > target && !lru.empty()) {
        const Entry &cold = lru.back();
        used -= cold.bytes;
        map.erase(cold.key);
        lru.pop_back();
        ++_evictions;
    }
}

void
LruCache::insert(std::uint64_t key, std::uint64_t bytes)
{
    if (bytes > _capacity)
        sim::panic("LruCache: entry larger than the cache");
    auto it = map.find(key);
    if (it != map.end()) {
        used -= it->second->bytes;
        lru.erase(it->second);
        map.erase(it);
    }
    evictTo(_capacity - bytes);
    lru.push_front(Entry{key, bytes});
    map[key] = lru.begin();
    used += bytes;
}

void
LruCache::invalidate(std::uint64_t key)
{
    auto it = map.find(key);
    if (it == map.end())
        return;
    used -= it->second->bytes;
    lru.erase(it->second);
    map.erase(it);
}

void
LruCache::clear()
{
    lru.clear();
    map.clear();
    used = 0;
}

} // namespace raid2::host
