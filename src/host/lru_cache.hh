/**
 * @file
 * Byte-budgeted LRU cache.
 *
 * §3.2: "The host memory cache contains metadata as well as files that
 * have been read into workstation memory for transfer over the
 * Ethernet.  The cache is managed with a simple Least Recently Used
 * replacement policy."  This is that cache: keys are opaque 64-bit
 * identifiers (e.g. (ino, block)), each entry carries a byte size,
 * and insertion evicts from the cold end until the budget fits.
 */

#ifndef RAID2_HOST_LRU_CACHE_HH
#define RAID2_HOST_LRU_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

namespace raid2::host {

/** LRU cache with a byte capacity. */
class LruCache
{
  public:
    explicit LruCache(std::uint64_t capacity_bytes);

    /** True (and refreshed) if @p key is resident. */
    bool lookup(std::uint64_t key);

    /** Insert/refresh @p key at @p bytes, evicting as needed. */
    void insert(std::uint64_t key, std::uint64_t bytes);

    /** Drop @p key if present. */
    void invalidate(std::uint64_t key);

    void clear();

    std::uint64_t capacity() const { return _capacity; }
    std::uint64_t bytesUsed() const { return used; }
    std::size_t entries() const { return map.size(); }

    /** @{ Statistics. */
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t evictions() const { return _evictions; }
    double
    hitRate() const
    {
        const std::uint64_t total = _hits + _misses;
        return total ? static_cast<double>(_hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** @} */

  private:
    struct Entry
    {
        std::uint64_t key;
        std::uint64_t bytes;
    };

    void evictTo(std::uint64_t target);

    std::uint64_t _capacity;
    std::uint64_t used = 0;
    std::list<Entry> lru; // front = hottest
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _evictions = 0;
};

} // namespace raid2::host

#endif // RAID2_HOST_LRU_CACHE_HH
