/**
 * @file
 * Per-block content checksums for the functional data plane.
 *
 * RAID parity protects against *reported* failures; a silently flipped
 * bit on media or on a transfer is invisible to it.  The ChecksumMap
 * closes that gap: every block written through the functional device
 * chain records a 64-bit FNV-1a of its contents, and verify-on-read
 * (integrity::VerifyingDevice) compares what came back against what
 * was written.  The same checksum is persisted in each segment
 * summary's SummaryEntry::csum (format v2), so the map can be re-seeded
 * from the log after a crash (integrity::seedFromSegments).
 *
 * Blocks never written have no expectation and verify trivially — the
 * map answers "does this match what the server last wrote", not "is
 * this byte pattern plausible".
 */

#ifndef RAID2_INTEGRITY_CHECKSUM_MAP_HH
#define RAID2_INTEGRITY_CHECKSUM_MAP_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "lfs/format.hh"
#include "sim/logging.hh"

namespace raid2::integrity {

/** Block number -> expected content checksum (fnv1a64). */
class ChecksumMap
{
  public:
    ChecksumMap(std::uint64_t num_blocks, std::uint32_t block_size)
        : bs(block_size), sums(num_blocks, 0), isKnown(num_blocks, false)
    {
    }

    std::uint32_t blockSize() const { return bs; }
    std::uint64_t numBlocks() const { return sums.size(); }

    /** Record the checksum of a freshly written block. */
    void
    record(std::uint64_t bno, std::span<const std::uint8_t> block)
    {
        if (block.size() != bs)
            sim::panic("ChecksumMap: bad block size %zu", block.size());
        set(bno, lfs::fnv1a64(block));
    }

    /** Install a known-good checksum directly (log re-seeding). */
    void
    set(std::uint64_t bno, std::uint64_t csum)
    {
        if (bno >= sums.size())
            sim::panic("ChecksumMap: block %llu out of range",
                       (unsigned long long)bno);
        if (!isKnown[bno]) {
            isKnown[bno] = true;
            ++_known;
        }
        sums[bno] = csum;
    }

    bool
    known(std::uint64_t bno) const
    {
        return bno < isKnown.size() && isKnown[bno];
    }

    /** @pre known(bno) */
    std::uint64_t
    expected(std::uint64_t bno) const
    {
        return sums.at(bno);
    }

    /** True if @p block matches the expectation (or none exists). */
    bool
    matches(std::uint64_t bno, std::span<const std::uint8_t> block) const
    {
        if (!known(bno))
            return true;
        return lfs::fnv1a64(block) == sums[bno];
    }

    /** Blocks with a recorded expectation. */
    std::uint64_t knownCount() const { return _known; }

    /** Forget every expectation (a remount re-seeds from the log). */
    void
    reset()
    {
        std::fill(isKnown.begin(), isKnown.end(), false);
        _known = 0;
    }

  private:
    std::uint32_t bs;
    std::vector<std::uint64_t> sums;
    std::vector<bool> isKnown;
    std::uint64_t _known = 0;
};

} // namespace raid2::integrity

#endif // RAID2_INTEGRITY_CHECKSUM_MAP_HH
