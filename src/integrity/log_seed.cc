#include "integrity/log_seed.hh"

#include <cstring>
#include <vector>

#include "lfs/format.hh"

namespace raid2::integrity {

std::uint64_t
seedFromSegments(fs::BlockDevice &dev, ChecksumMap &map)
{
    const std::uint32_t bs = dev.blockSize();
    if (bs < sizeof(lfs::Superblock))
        return 0;
    std::vector<std::uint8_t> blk(bs);
    dev.readRange(0, 1, {blk.data(), blk.size()});
    lfs::Superblock sb{};
    std::memcpy(&sb, blk.data(), sizeof(sb));
    if (!sb.valid() || sb.blockSize != bs)
        return 0;

    const std::uint32_t summary_blocks = sb.summaryBlocksPerSegment();
    std::vector<std::uint8_t> summary(
        std::size_t(summary_blocks) * bs);
    std::uint64_t seeded = 0;
    for (std::uint64_t seg = 0; seg < sb.numSegments; ++seg) {
        const std::uint64_t seg_start = sb.segmentStartBlock(seg);
        if (seg_start + sb.segBlocks > dev.numBlocks())
            break;
        dev.readRange(seg_start, summary_blocks,
                      {summary.data(), summary.size()});
        lfs::SummaryHeader hdr{};
        std::memcpy(&hdr, summary.data(), sizeof(hdr));
        if (hdr.magic != lfs::summaryMagic || hdr.count == 0 ||
            hdr.count > sb.payloadBlocksPerSegment())
            continue;
        // Same validation roll-forward applies: the summary checksum
        // is computed with its own field zeroed.
        std::vector<std::uint8_t> tmp = summary;
        const std::uint32_t zero = 0;
        std::memcpy(tmp.data() + offsetof(lfs::SummaryHeader, checksum),
                    &zero, sizeof(zero));
        if (lfs::fnv1a({tmp.data(), tmp.size()}) != hdr.checksum)
            continue;

        const auto *entries = reinterpret_cast<const lfs::SummaryEntry *>(
            summary.data() + sizeof(lfs::SummaryHeader));
        for (std::uint32_t i = 0; i < hdr.count; ++i) {
            map.set(seg_start + summary_blocks + i, entries[i].csum);
            ++seeded;
        }
    }
    return seeded;
}

} // namespace raid2::integrity
