/**
 * @file
 * Checksum-map re-seeding from the on-media log.
 *
 * The ChecksumMap lives in memory, so a crash loses it.  The on-media
 * copy survives: every segment summary carries SummaryEntry::csum for
 * each payload block (format v2).  seedFromSegments() walks the
 * segment chain exactly like roll-forward recovery — validating each
 * summary's magic and checksum — and re-installs the per-block
 * expectations, so verify-on-read is armed again right after mount.
 * Stale (cleaned, not yet reused) segments still describe their
 * current payload bytes: a segment is only rewritten whole, summary
 * included, so seeding from every valid summary is consistent.
 */

#ifndef RAID2_INTEGRITY_LOG_SEED_HH
#define RAID2_INTEGRITY_LOG_SEED_HH

#include <cstdint>

#include "fs/block_device.hh"
#include "integrity/checksum_map.hh"

namespace raid2::integrity {

/** Re-seed @p map from every valid segment summary on @p dev.
 *  @return payload blocks whose checksum was installed. */
std::uint64_t seedFromSegments(fs::BlockDevice &dev, ChecksumMap &map);

} // namespace raid2::integrity

#endif // RAID2_INTEGRITY_LOG_SEED_HH
