#include "integrity/verifying_device.hh"

#include <cstring>

#include "sim/stats_registry.hh"

namespace raid2::integrity {

VerifyingDevice::VerifyingDevice(fs::BlockDevice &inner_,
                                 raid::RaidArray *array_,
                                 const Config &cfg_)
    : inner(inner_), array(array_), cfg(cfg_),
      map(inner_.numBlocks(), inner_.blockSize()),
      scratch(inner_.blockSize())
{
    if (array && array->capacity() < inner.capacityBytes())
        sim::panic("VerifyingDevice: array smaller than inner device");
}

VerifyingDevice::VerifyingDevice(fs::BlockDevice &inner_,
                                 raid::RaidArray *array_)
    : VerifyingDevice(inner_, array_, Config{})
{
}

std::uint32_t
VerifyingDevice::blockSize() const
{
    return inner.blockSize();
}

std::uint64_t
VerifyingDevice::numBlocks() const
{
    return inner.numBlocks();
}

void
VerifyingDevice::readBlock(std::uint64_t bno, std::span<std::uint8_t> out)
{
    readRange(bno, 1, out);
}

void
VerifyingDevice::writeBlock(std::uint64_t bno,
                            std::span<const std::uint8_t> data)
{
    writeRange(bno, 1, data);
}

void
VerifyingDevice::writeRange(std::uint64_t bno, std::uint64_t count,
                            std::span<const std::uint8_t> data)
{
    if (count == 0)
        return;
    checkExtent(bno, count, data.size());
    noteWrite(count);
    inner.writeRange(bno, count, data);

    // Checksums come from the *source* buffer — the writer's intent —
    // so a corrupted landing is detectable later.
    const std::uint32_t bs = blockSize();
    for (std::uint64_t i = 0; i < count; ++i) {
        map.record(bno + i, data.subspan(
                                static_cast<std::size_t>(i) * bs, bs));
        poisoned.erase(bno + i); // fresh data clears any poison
    }
    if (_armedWriteFlips > 0)
        applyArmedWriteFlip(bno, count);
}

void
VerifyingDevice::readRange(std::uint64_t bno, std::uint64_t count,
                           std::span<std::uint8_t> out)
{
    verifiedReadRange(bno, count, out);
}

bool
VerifyingDevice::verifiedReadRange(std::uint64_t bno, std::uint64_t count,
                                   std::span<std::uint8_t> out)
{
    if (count == 0)
        return true;
    checkExtent(bno, count, out.size());
    noteRead(count);
    inner.readRange(bno, count, out);
    if (_armedReadFlips > 0)
        applyArmedReadFlips(out);
    if (!cfg.verifyReads)
        return true;

    const std::uint32_t bs = blockSize();
    bool ok = true;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::span<std::uint8_t> blk =
            out.subspan(static_cast<std::size_t>(i) * bs, bs);
        if (!verifyOneBlock(bno + i, blk)) {
            ++_unrepairableReads;
            ok = false;
        }
    }
    return ok;
}

void
VerifyingDevice::flush()
{
    inner.flush();
}

bool
VerifyingDevice::verifyOneBlock(std::uint64_t bno,
                                std::span<std::uint8_t> blk)
{
    ++_verifiedBlocks;
    if (map.matches(bno, blk)) {
        poisoned.erase(bno);
        return true;
    }
    ++_detected;
    if (repairBlock(bno, blk)) {
        ++_repairs;
        poisoned.erase(bno);
        return true;
    }
    poisoned.insert(bno);
    return false;
}

template <typename Fn>
void
VerifyingDevice::forEachDiskPiece(std::uint64_t byte_off,
                                  std::uint64_t len, Fn &&fn) const
{
    const raid::RaidLayout &layout = array->layout();
    const std::uint64_t unit = layout.unitBytes();
    std::uint64_t pos = byte_off;
    const std::uint64_t end = byte_off + len;
    while (pos < end) {
        unsigned d = 0;
        std::uint64_t doff = 0;
        layout.mapByte(pos, d, doff);
        const std::uint64_t n =
            std::min(end - pos, unit - (doff % unit));
        fn(d, doff, pos - byte_off, n);
        pos += n;
    }
}

bool
VerifyingDevice::repairBlock(std::uint64_t bno,
                             std::span<std::uint8_t> blk)
{
    const std::uint32_t bs = blockSize();

    // Step 1: re-read.  Transfer corruption damaged the bytes in
    // flight, not the media copy — a second read comes back clean.
    inner.readRange(bno, 1, {scratch.data(), bs});
    if (map.matches(bno, {scratch.data(), bs})) {
        std::memcpy(blk.data(), scratch.data(), bs);
        ++_transferRepairs;
        return true;
    }

    // Step 2: the media copy itself is wrong — rebuild from
    // redundancy under the single-corrupt-disk model.  A block that
    // spans several member disks (RAID-3: the stripe unit is smaller
    // than a file-system block) cannot simply reconstruct *every*
    // piece: rebuilding a clean sibling folds the corrupt disk's
    // bytes right back in.  Instead, suspect each member disk in
    // turn: start from the media image, reconstruct only that disk's
    // pieces from the others, and keep the first candidate the
    // checksum vouches for.
    if (!array)
        return false;
    struct Piece
    {
        unsigned d;
        std::uint64_t doff;
        std::uint64_t rel;
        std::uint64_t n;
    };
    std::vector<Piece> pieces;
    forEachDiskPiece(std::uint64_t(bno) * bs, bs,
                     [&](unsigned d, std::uint64_t doff,
                         std::uint64_t rel, std::uint64_t n) {
                         pieces.push_back({d, doff, rel, n});
                     });
    std::vector<std::uint8_t> cand(bs);
    std::vector<bool> tried(array->numDisks(), false);
    unsigned suspect = 0;
    bool repaired = false;
    for (const Piece &lead : pieces) {
        if (tried[lead.d])
            continue; // each disk suspected once
        tried[lead.d] = true;
        std::memcpy(cand.data(), scratch.data(), bs);
        bool reconstructed = true;
        for (const Piece &p : pieces) {
            if (p.d != lead.d)
                continue;
            if (!array->tryReconstructRange(
                    p.d, p.doff,
                    {cand.data() + p.rel,
                     static_cast<std::size_t>(p.n)}))
                reconstructed = false;
        }
        if (reconstructed && map.matches(bno, {cand.data(), bs})) {
            suspect = lead.d;
            repaired = true;
            break;
        }
    }
    if (!repaired)
        return false;

    // Commit: patch the suspect disk's buffer directly.  Parity is
    // NOT recomputed — it already encodes the bytes the candidate was
    // reconstructed from; folding the corrupt copy into a parity
    // update is exactly the laundering this layer exists to prevent.
    for (const Piece &p : pieces)
        if (p.d == suspect)
            array->patchDiskRange(p.d, p.doff,
                                  {cand.data() + p.rel,
                                   static_cast<std::size_t>(p.n)});
    inner.readRange(bno, 1, {scratch.data(), bs});
    if (!map.matches(bno, {scratch.data(), bs}))
        return false;
    std::memcpy(blk.data(), scratch.data(), bs);
    ++_mediaRepairs;
    return true;
}

VerifyingDevice::ScrubSummary
VerifyingDevice::scrubVerify(std::uint64_t bno, std::uint64_t count)
{
    ScrubSummary s;
    const std::uint32_t bs = blockSize();
    std::vector<std::uint8_t> blk(bs);
    for (std::uint64_t i = 0; i < count && bno + i < numBlocks(); ++i) {
        const std::uint64_t b = bno + i;
        ++s.scanned;
        inner.readRange(b, 1, {blk.data(), bs});
        ++_verifiedBlocks;
        if (map.matches(b, {blk.data(), bs})) {
            poisoned.erase(b);
            continue;
        }
        ++_detected;
        if (repairBlock(b, {blk.data(), bs})) {
            ++_repairs;
            ++_scrubRepairs;
            ++s.repaired;
            poisoned.erase(b);
        } else {
            poisoned.insert(b);
            ++s.unrepairable;
        }
    }
    return s;
}

std::uint64_t
VerifyingDevice::nextFlipPos(std::uint64_t space)
{
    _flipSalt = _flipSalt * 6364136223846793005ull +
                1442695040888963407ull;
    return space ? _flipSalt % space : 0;
}

void
VerifyingDevice::applyArmedWriteFlip(std::uint64_t bno,
                                     std::uint64_t count)
{
    // Corrupt one landed disk copy, post-parity: the redundancy still
    // encodes the writer's bytes, so the flip is reconstructible.
    if (!array) {
        --_armedWriteFlips;
        return;
    }
    const std::uint64_t span_bytes = count * std::uint64_t(blockSize());
    const std::uint64_t abs =
        bno * std::uint64_t(blockSize()) + nextFlipPos(span_bytes);
    unsigned d = 0;
    std::uint64_t doff = 0;
    array->layout().mapByte(abs, d, doff);
    if (!array->isFailed(d)) {
        array->diskData(d)[doff] ^= 0x4a;
        ++_writeFlipsApplied;
    }
    --_armedWriteFlips;
}

void
VerifyingDevice::applyArmedReadFlips(std::span<std::uint8_t> out)
{
    while (_armedReadFlips > 0) {
        out[static_cast<std::size_t>(nextFlipPos(out.size()))] ^= 0x10;
        ++_readFlipsApplied;
        --_armedReadFlips;
    }
}

void
VerifyingDevice::registerStats(sim::StatsRegistry &reg,
                               const std::string &prefix) const
{
    auto gauge = [&reg](const std::string &name,
                        const std::uint64_t *v) {
        reg.addGauge(name,
                     [v] { return static_cast<double>(*v); });
    };
    gauge(prefix + ".verified_blocks", &_verifiedBlocks);
    gauge(prefix + ".detected", &_detected);
    gauge(prefix + ".repairs", &_repairs);
    gauge(prefix + ".repairs_media", &_mediaRepairs);
    gauge(prefix + ".repairs_transfer", &_transferRepairs);
    gauge(prefix + ".repairs_scrub", &_scrubRepairs);
    gauge(prefix + ".unrepairable_reads", &_unrepairableReads);
    gauge(prefix + ".transfer_read_flips", &_readFlipsApplied);
    gauge(prefix + ".transfer_write_flips", &_writeFlipsApplied);
    reg.addGauge(prefix + ".poisoned_blocks", [this] {
        return static_cast<double>(poisoned.size());
    });
    reg.addGauge(prefix + ".checksums_known", [this] {
        return static_cast<double>(map.knownCount());
    });
}

} // namespace raid2::integrity
