/**
 * @file
 * Verify-on-read block device with read-repair.
 *
 * Sits between the file system's device chain and the functional RAID
 * array: every write records a per-block checksum (ChecksumMap), every
 * read is verified against it, and a mismatch runs the repair ladder —
 *
 *   1. re-read the inner device (clears one-shot transfer corruption:
 *      the media copy was never wrong, only the bytes in flight);
 *   2. reconstruct the block from redundancy (mirror / parity XOR via
 *      raid::RaidArray::tryReconstructRange), verify the candidate
 *      against the expected checksum, and patch it back into the
 *      member-disk buffer (parity untouched — it already encodes the
 *      bytes the candidate was reconstructed from);
 *   3. neither works (degraded array, corrupt redundancy): the block
 *      is poisoned and verifiedReadRange() reports failure, which the
 *      server surfaces as Status::DataCorrupt — honest refusal, never
 *      silent wrong data.
 *
 * The device also hosts the transfer-corruption injection points:
 * armed one-shot bit flips applied to read buffers after the inner
 * read (SCSI/XBUS return path) or to one landed disk copy after a
 * write (outbound path), both bit-reproducible.
 */

#ifndef RAID2_INTEGRITY_VERIFYING_DEVICE_HH
#define RAID2_INTEGRITY_VERIFYING_DEVICE_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "fs/block_device.hh"
#include "integrity/checksum_map.hh"
#include "raid/raid_array.hh"

namespace raid2::integrity {

/** Checksumming + verifying wrapper over the functional device. */
class VerifyingDevice : public fs::BlockDevice
{
  public:
    struct Config
    {
        /** Verify every read against the checksum map.  Off = detection
         *  disabled (the mutation self-test mode: corruption flows
         *  through untouched, and the test harness must notice). */
        bool verifyReads = true;
    };

    /** @p array enables the reconstruction step of the repair ladder
     *  (nullptr: only the re-read step is available). */
    VerifyingDevice(fs::BlockDevice &inner, raid::RaidArray *array,
                    const Config &cfg);
    VerifyingDevice(fs::BlockDevice &inner, raid::RaidArray *array);

    std::uint32_t blockSize() const override;
    std::uint64_t numBlocks() const override;
    void readBlock(std::uint64_t bno, std::span<std::uint8_t> out) override;
    void writeBlock(std::uint64_t bno,
                    std::span<const std::uint8_t> data) override;
    void readRange(std::uint64_t bno, std::uint64_t count,
                   std::span<std::uint8_t> out) override;
    void writeRange(std::uint64_t bno, std::uint64_t count,
                    std::span<const std::uint8_t> data) override;
    void flush() override;

    /**
     * Read + verify + repair; @return false if any block in the range
     * is unrepairably corrupt (its bytes in @p out are then the best
     * available copy, but wrong — the caller must not serve them).
     * With Config::verifyReads off this is a plain read, always true.
     */
    bool verifiedReadRange(std::uint64_t bno, std::uint64_t count,
                           std::span<std::uint8_t> out);

    /** @{ One-shot transfer-corruption injection (FaultController). */
    void armReadCorruption(unsigned flips = 1) { _armedReadFlips += flips; }
    void armWriteCorruption(unsigned flips = 1)
    {
        _armedWriteFlips += flips;
    }
    /** @} */

    /** Verify @p count blocks from @p bno in place on the device (the
     *  scrub path: no caller buffer, repairs are committed to media). */
    struct ScrubSummary
    {
        std::uint64_t scanned = 0;
        std::uint64_t repaired = 0;
        std::uint64_t unrepairable = 0;
    };
    ScrubSummary scrubVerify(std::uint64_t bno, std::uint64_t count);

    const ChecksumMap &checksums() const { return map; }
    ChecksumMap &checksums() { return map; }

    /** @{ Counters. */
    std::uint64_t verifiedBlocks() const { return _verifiedBlocks; }
    std::uint64_t detected() const { return _detected; }
    std::uint64_t repairs() const { return _repairs; }
    std::uint64_t mediaRepairs() const { return _mediaRepairs; }
    std::uint64_t transferRepairs() const { return _transferRepairs; }
    std::uint64_t scrubRepairs() const { return _scrubRepairs; }
    std::uint64_t unrepairableReads() const { return _unrepairableReads; }
    std::uint64_t readFlipsApplied() const { return _readFlipsApplied; }
    std::uint64_t writeFlipsApplied() const { return _writeFlipsApplied; }
    std::size_t poisonedBlocks() const { return poisoned.size(); }
    bool isPoisoned(std::uint64_t bno) const
    {
        return poisoned.count(bno) != 0;
    }
    /** @} */

    /** Register "<prefix>.verified_blocks" etc. ("integrity.*"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "integrity") const;

  private:
    /** Verify one block in @p blk (its read image); detect, repair,
     *  poison.  @return true if @p blk now holds verified bytes. */
    bool verifyOneBlock(std::uint64_t bno, std::span<std::uint8_t> blk);
    /** The repair ladder (steps 1 and 2 above). */
    bool repairBlock(std::uint64_t bno, std::span<std::uint8_t> blk);
    /** Map [byte_off, byte_off+len) of the logical space onto member
     *  disks at stripe-unit granularity (byte-exact for all levels,
     *  unlike RaidLayout::mapRange's RAID-3 timing view). */
    template <typename Fn>
    void forEachDiskPiece(std::uint64_t byte_off, std::uint64_t len,
                          Fn &&fn) const;
    std::uint64_t nextFlipPos(std::uint64_t space);
    void applyArmedWriteFlip(std::uint64_t bno, std::uint64_t count);
    void applyArmedReadFlips(std::span<std::uint8_t> out);

    fs::BlockDevice &inner;
    raid::RaidArray *array;
    Config cfg;
    ChecksumMap map;
    std::unordered_set<std::uint64_t> poisoned;
    std::vector<std::uint8_t> scratch;

    unsigned _armedReadFlips = 0;
    unsigned _armedWriteFlips = 0;
    std::uint64_t _flipSalt = 0x9e3779b97f4a7c15ull;

    std::uint64_t _verifiedBlocks = 0;
    std::uint64_t _detected = 0;
    std::uint64_t _repairs = 0;
    std::uint64_t _mediaRepairs = 0;
    std::uint64_t _transferRepairs = 0;
    std::uint64_t _scrubRepairs = 0;
    std::uint64_t _unrepairableReads = 0;
    std::uint64_t _readFlipsApplied = 0;
    std::uint64_t _writeFlipsApplied = 0;
};

} // namespace raid2::integrity

#endif // RAID2_INTEGRITY_VERIFYING_DEVICE_HH
