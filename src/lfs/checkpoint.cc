/**
 * @file
 * Checkpoint regions.
 *
 * Two fixed regions alternate; each holds the imap chunk addresses,
 * the segment usage table and the log head position.  Mount picks the
 * valid region with the highest sequence number, so a crash during a
 * checkpoint write simply falls back to the previous checkpoint
 * (§3.1: "LFS periodically performs checkpoint operations that record
 * the current state of the file system").
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

void
Lfs::writeCheckpoint()
{
    CheckpointHeader hdr{};
    hdr.magic = checkpointMagic;
    hdr.seqno = ++cpSeqno;
    hdr.logHeadSegment = segw->currentSegment();
    hdr.nextSegSeq = segw->segSeq();
    hdr.nextIno = nextIno;
    hdr.rootIno = root;
    hdr.numImapChunks =
        static_cast<std::uint32_t>(imapChunkAddr.size());
    hdr.numSegments = static_cast<std::uint32_t>(sb.numSegments);

    std::vector<std::uint8_t> body;
    body.resize(8ull * imapChunkAddr.size() +
                sizeof(UsageEntry) * usage.size());
    std::memcpy(body.data(), imapChunkAddr.data(),
                8ull * imapChunkAddr.size());
    auto *ue = reinterpret_cast<UsageEntry *>(
        body.data() + 8ull * imapChunkAddr.size());
    for (std::size_t s = 0; s < usage.size(); ++s) {
        ue[s].liveBytes = usage[s].liveBytes;
        ue[s].pad = 0;
        ue[s].writeSeq = usage[s].writeSeq;
    }
    hdr.bodyChecksum = fnv1a({body.data(), body.size()});
    {
        CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        hdr.checksum = fnv1a(
            {reinterpret_cast<const std::uint8_t *>(&tmp), sizeof(tmp)});
    }

    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * sb.blockSize, 0);
    if (sizeof(hdr) + body.size() > region.size())
        sim::panic("Lfs: checkpoint body exceeds region size");
    std::memcpy(region.data(), &hdr, sizeof(hdr));
    std::memcpy(region.data() + sizeof(hdr), body.data(), body.size());

    const std::uint64_t base =
        (cpSeqno % 2 == 0) ? sb.cp0Block : sb.cp1Block;
    dev.writeBlocks(base, sb.cpBlocks, {region.data(), region.size()});
    dev.flush();
}

bool
Lfs::readCheckpoint(std::uint64_t region_block, CheckpointHeader &hdr,
                    std::vector<BlockAddr> &chunk_addrs,
                    std::vector<Usage> &usage_out) const
{
    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * sb.blockSize);
    dev.readBlocks(region_block, sb.cpBlocks,
                   {region.data(), region.size()});

    std::memcpy(&hdr, region.data(), sizeof(hdr));
    if (hdr.magic != checkpointMagic)
        return false;
    {
        CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        if (hdr.checksum !=
            fnv1a({reinterpret_cast<const std::uint8_t *>(&tmp),
                   sizeof(tmp)})) {
            return false;
        }
    }
    if (hdr.numImapChunks != imapChunkAddr.size() ||
        hdr.numSegments != sb.numSegments) {
        return false;
    }

    const std::size_t body_size = 8ull * hdr.numImapChunks +
                                  sizeof(UsageEntry) * hdr.numSegments;
    if (sizeof(hdr) + body_size > region.size())
        return false;
    const std::uint8_t *body = region.data() + sizeof(hdr);
    if (hdr.bodyChecksum != fnv1a({body, body_size}))
        return false;

    chunk_addrs.resize(hdr.numImapChunks);
    std::memcpy(chunk_addrs.data(), body, 8ull * hdr.numImapChunks);
    const auto *ue = reinterpret_cast<const UsageEntry *>(
        body + 8ull * hdr.numImapChunks);
    usage_out.resize(hdr.numSegments);
    for (std::size_t s = 0; s < usage_out.size(); ++s) {
        usage_out[s].liveBytes = ue[s].liveBytes;
        usage_out[s].writeSeq = ue[s].writeSeq;
    }
    return true;
}

} // namespace raid2::lfs
