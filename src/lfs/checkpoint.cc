/**
 * @file
 * Checkpoint regions.
 *
 * Two fixed regions alternate; each holds the imap chunk addresses,
 * the segment usage table and the log head position.  Mount picks the
 * valid region with the highest sequence number, so a crash during a
 * checkpoint write simply falls back to the previous checkpoint
 * (§3.1: "LFS periodically performs checkpoint operations that record
 * the current state of the file system").
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

void
Lfs::writeCheckpoint()
{
    CheckpointHeader hdr{};
    hdr.magic = checkpointMagic;
    hdr.seqno = ++cpSeqno;
    hdr.logHeadSegment = segw->currentSegment();
    hdr.nextSegSeq = segw->segSeq();
    hdr.nextIno = nextIno;
    hdr.rootIno = root;
    hdr.numImapChunks =
        static_cast<std::uint32_t>(imapChunkAddr.size());
    hdr.numSegments = static_cast<std::uint32_t>(sb.numSegments);
    hdr.numSnapshots = static_cast<std::uint32_t>(snaps.size());

    std::vector<std::uint8_t> body;
    body.resize(8ull * imapChunkAddr.size() +
                sizeof(UsageEntry) * usage.size());
    std::memcpy(body.data(), imapChunkAddr.data(),
                8ull * imapChunkAddr.size());
    auto *ue = reinterpret_cast<UsageEntry *>(
        body.data() + 8ull * imapChunkAddr.size());
    for (std::size_t s = 0; s < usage.size(); ++s) {
        ue[s].liveBytes = usage[s].liveBytes;
        ue[s].pad = 0;
        ue[s].writeSeq = usage[s].writeSeq;
    }

    // Snapshot table: fixed record + name + imap addrs + pin bitmap
    // per snapshot, all inside the body checksum so a torn checkpoint
    // can never surface a half-updated table.
    for (const SnapshotRecord &r : snaps) {
        SnapshotDiskRecord sr{};
        sr.id = r.id;
        sr.nameLen = static_cast<std::uint32_t>(r.name.size());
        sr.createSeq = r.createSeq;
        sr.nextSegSeq = r.nextSegSeq;
        sr.root = r.root;
        sr.nextIno = r.nextIno;
        sr.numImapChunks =
            static_cast<std::uint32_t>(r.imapChunkAddr.size());
        sr.numSegments = static_cast<std::uint32_t>(sb.numSegments);

        const std::size_t base = body.size();
        body.resize(base + snapshotRecordBytes(sr.nameLen,
                                               sr.numImapChunks,
                                               sr.numSegments));
        std::uint8_t *p = body.data() + base;
        std::memcpy(p, &sr, sizeof(sr));
        p += sizeof(sr);
        std::memcpy(p, r.name.data(), r.name.size());
        p += r.name.size();
        std::memcpy(p, r.imapChunkAddr.data(),
                    8ull * r.imapChunkAddr.size());
        p += 8ull * r.imapChunkAddr.size();
        for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
            if (r.pinned[s])
                p[s / 8] |= std::uint8_t(1u << (s % 8));
        }
    }
    hdr.bodyChecksum = fnv1a({body.data(), body.size()});
    {
        CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        hdr.checksum = fnv1a(
            {reinterpret_cast<const std::uint8_t *>(&tmp), sizeof(tmp)});
    }

    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * sb.blockSize, 0);
    if (sizeof(hdr) + body.size() > region.size())
        sim::panic("Lfs: checkpoint body exceeds region size");
    std::memcpy(region.data(), &hdr, sizeof(hdr));
    std::memcpy(region.data() + sizeof(hdr), body.data(), body.size());

    const std::uint64_t base =
        (cpSeqno % 2 == 0) ? sb.cp0Block : sb.cp1Block;
    dev.writeBlocks(base, sb.cpBlocks, {region.data(), region.size()});
    dev.flush();
}

bool
Lfs::readCheckpoint(std::uint64_t region_block, CheckpointHeader &hdr,
                    std::vector<BlockAddr> &chunk_addrs,
                    std::vector<Usage> &usage_out,
                    std::vector<SnapshotRecord> &snaps_out) const
{
    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * sb.blockSize);
    dev.readBlocks(region_block, sb.cpBlocks,
                   {region.data(), region.size()});

    std::memcpy(&hdr, region.data(), sizeof(hdr));
    if (hdr.magic != checkpointMagic)
        return false;
    {
        CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        if (hdr.checksum !=
            fnv1a({reinterpret_cast<const std::uint8_t *>(&tmp),
                   sizeof(tmp)})) {
            return false;
        }
    }
    if (hdr.numImapChunks != imapChunkAddr.size() ||
        hdr.numSegments != sb.numSegments ||
        hdr.numSnapshots > maxSnapshots) {
        return false;
    }

    const std::size_t fixed_size = 8ull * hdr.numImapChunks +
                                   sizeof(UsageEntry) * hdr.numSegments;
    if (sizeof(hdr) + fixed_size > region.size())
        return false;
    const std::uint8_t *body = region.data() + sizeof(hdr);
    const std::size_t body_cap = region.size() - sizeof(hdr);

    // Walk the snapshot records to learn the body's total size (each
    // is length-prefixed); any inconsistency means a torn or foreign
    // region and invalidates the whole checkpoint.
    std::size_t body_size = fixed_size;
    std::vector<SnapshotDiskRecord> recs(hdr.numSnapshots);
    std::vector<std::size_t> rec_off(hdr.numSnapshots);
    for (std::uint32_t i = 0; i < hdr.numSnapshots; ++i) {
        if (body_size + sizeof(SnapshotDiskRecord) > body_cap)
            return false;
        std::memcpy(&recs[i], body + body_size,
                    sizeof(SnapshotDiskRecord));
        const SnapshotDiskRecord &sr = recs[i];
        if (sr.nameLen == 0 || sr.nameLen > maxSnapshotNameLen ||
            sr.numImapChunks != hdr.numImapChunks ||
            sr.numSegments != hdr.numSegments) {
            return false;
        }
        rec_off[i] = body_size;
        body_size += snapshotRecordBytes(sr.nameLen, sr.numImapChunks,
                                         sr.numSegments);
        if (body_size > body_cap)
            return false;
    }
    if (hdr.bodyChecksum != fnv1a({body, body_size}))
        return false;

    chunk_addrs.resize(hdr.numImapChunks);
    std::memcpy(chunk_addrs.data(), body, 8ull * hdr.numImapChunks);
    const auto *ue = reinterpret_cast<const UsageEntry *>(
        body + 8ull * hdr.numImapChunks);
    usage_out.resize(hdr.numSegments);
    for (std::size_t s = 0; s < usage_out.size(); ++s) {
        usage_out[s].liveBytes = ue[s].liveBytes;
        usage_out[s].writeSeq = ue[s].writeSeq;
    }

    snaps_out.clear();
    snaps_out.reserve(hdr.numSnapshots);
    for (std::uint32_t i = 0; i < hdr.numSnapshots; ++i) {
        const SnapshotDiskRecord &sr = recs[i];
        const std::uint8_t *p =
            body + rec_off[i] + sizeof(SnapshotDiskRecord);
        SnapshotRecord r;
        r.id = sr.id;
        r.name.assign(reinterpret_cast<const char *>(p), sr.nameLen);
        p += sr.nameLen;
        r.createSeq = sr.createSeq;
        r.nextSegSeq = sr.nextSegSeq;
        r.root = sr.root;
        r.nextIno = sr.nextIno;
        r.imapChunkAddr.resize(sr.numImapChunks);
        std::memcpy(r.imapChunkAddr.data(), p, 8ull * sr.numImapChunks);
        p += 8ull * sr.numImapChunks;
        r.pinned.assign(sr.numSegments, false);
        for (std::uint64_t s = 0; s < sr.numSegments; ++s)
            r.pinned[s] = (p[s / 8] >> (s % 8)) & 1u;
        snaps_out.push_back(std::move(r));
    }
    return true;
}

} // namespace raid2::lfs
