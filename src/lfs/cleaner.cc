/**
 * @file
 * The segment cleaner.
 *
 * Implements the Sprite LFS cost-benefit policy: victims maximize
 * (1 - u) * age / (1 + u), where u is the segment's live fraction.
 * Liveness is decided precisely per block — a data block is live iff
 * the owning inode's block pointer still references it; inode copies
 * iff the imap points at them with a matching generation; imap chunks
 * iff the chunk address table does; pointer blocks iff they appear in
 * the owning inode's pointer tree.  Live blocks are re-appended to the
 * log and the victim becomes clean.
 *
 * The paper's prototype shipped without this ("LFS cleaning ... has
 * not yet been implemented", §3.4); it is implemented here as the
 * natural completion of the system.
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

namespace {

/** What role a pointer block plays in an inode's block tree. */
enum class PtrRole { None, Ind1, Ind2Root, Ind2Child };

struct PtrRoleResult
{
    PtrRole role = PtrRole::None;
    std::uint64_t childIndex = 0;
};

} // namespace

/** RAII cleaner-reentry guard + the cleaning pass itself. */
unsigned
Lfs::clean(unsigned target_free)
{
    if (inCleaner)
        return 0;
    struct Guard
    {
        bool &flag;
        explicit Guard(bool &f) : flag(f) { flag = true; }
        ~Guard() { flag = false; }
    } guard(inCleaner);
    unsigned cleaned = 0;
    const std::uint32_t bs = sb.blockSize;
    const std::uint32_t ptrs_per = bs / sizeof(BlockAddr);

    auto pointer_role = [&](const DiskInode &inode,
                            BlockAddr addr) -> PtrRoleResult {
        if (inode.indirect == addr)
            return {PtrRole::Ind1, 0};
        if (inode.dindirect == addr)
            return {PtrRole::Ind2Root, 0};
        if (inode.dindirect != nullAddr) {
            std::vector<std::uint8_t> root(bs);
            readBlockAny(inode.dindirect, {root.data(), root.size()});
            const auto *ptrs =
                reinterpret_cast<const BlockAddr *>(root.data());
            for (std::uint64_t ci = 0; ci < ptrs_per; ++ci) {
                if (ptrs[ci] == addr)
                    return {PtrRole::Ind2Child, ci};
            }
        }
        return {PtrRole::None, 0};
    };

    // Relocate one live pointer block to the log head.
    auto relocate_pointer = [&](DiskInode &inode, BlockAddr addr,
                                const PtrRoleResult &role) {
        std::vector<std::uint8_t> content(bs);
        readBlockAny(addr, {content.data(), content.size()});
        ensureSpace();
        BlockKind kind = role.role == PtrRole::Ind1 ? BlockKind::Ind1
                         : role.role == PtrRole::Ind2Root
                             ? BlockKind::Ind2Root
                             : BlockKind::Ind2Child;
        const BlockAddr naddr =
            segw->add(kind, inode.ino, role.childIndex,
                      {content.data(), content.size()});
        usageAdd(naddr, bs);
        usageSub(addr, bs);

        switch (role.role) {
          case PtrRole::Ind1:
            inode.indirect = naddr;
            break;
          case PtrRole::Ind2Root:
            inode.dindirect = naddr;
            break;
          case PtrRole::Ind2Child: {
            // Update the root entry for this child.
            std::vector<std::uint8_t> root(bs);
            readBlockAny(inode.dindirect, {root.data(), root.size()});
            std::memcpy(root.data() +
                            role.childIndex * sizeof(BlockAddr),
                        &naddr, sizeof(naddr));
            if (segw->contains(inode.dindirect)) {
                segw->updateInPlace(inode.dindirect,
                                    {root.data(), root.size()});
            } else {
                ensureSpace();
                const BlockAddr nroot =
                    segw->add(BlockKind::Ind2Root, inode.ino, 0,
                              {root.data(), root.size()});
                usageAdd(nroot, bs);
                usageSub(inode.dindirect, bs);
                inode.dindirect = nroot;
            }
            break;
          }
          case PtrRole::None:
            sim::panic("relocate_pointer with no role");
        }
        markInodeDirty(inode.ino);
    };

    auto clean_segment = [&](std::uint64_t victim) -> std::uint64_t {
        const std::uint32_t summary_blocks =
            sb.summaryBlocksPerSegment();
        std::vector<std::uint8_t> summary(
            std::size_t(summary_blocks) * bs);
        dev.readBlocks(sb.segmentStartBlock(victim), summary_blocks,
                       {summary.data(), summary.size()});
        SummaryHeader hdr;
        std::memcpy(&hdr, summary.data(), sizeof(hdr));
        if (hdr.magic != summaryMagic ||
            hdr.count > sb.payloadBlocksPerSegment()) {
            // Stale usage for a never-properly-written segment.
            usage[victim] = Usage{};
            return 0;
        }
        const auto *entries = reinterpret_cast<const SummaryEntry *>(
            summary.data() + sizeof(SummaryHeader));

        std::uint64_t copied = 0;
        std::vector<std::uint8_t> content(bs);
        for (std::uint32_t i = 0; i < hdr.count; ++i) {
            const BlockAddr addr =
                sb.segmentStartBlock(victim) + summary_blocks + i;
            const SummaryEntry &e = entries[i];
            const auto kind = static_cast<BlockKind>(e.kind);

            if (kind == BlockKind::ImapChunk) {
                if (e.aux < imapChunkAddr.size() &&
                    imapChunkAddr[e.aux] == addr) {
                    imapChunkDirty[e.aux] = true; // flush relocates it
                    ++copied;
                }
                continue;
            }

            if (kind == BlockKind::InodeBlock) {
                dev.readBlock(addr, {content.data(), content.size()});
                const std::uint32_t per = sb.inodesPerBlock();
                for (std::uint32_t s = 0; s < per; ++s) {
                    DiskInode di;
                    std::memcpy(&di,
                                content.data() +
                                    std::size_t(s) * inodeBytes,
                                sizeof(di));
                    if (di.ino == nullIno || di.ino >= sb.maxInodes)
                        continue;
                    const ImapEntry &ie = imap[di.ino];
                    if (ie.blockAddr == addr && ie.slot == s &&
                        ie.gen == di.gen) {
                        // Live inode: pull into cache and mark dirty so
                        // flushInodes() relocates it.
                        getInode(di.ino);
                        markInodeDirty(di.ino);
                        ++copied;
                    }
                }
                continue;
            }

            // Data and pointer blocks: owned by an inode.
            if (e.ino == nullIno || e.ino >= sb.maxInodes ||
                !imap[e.ino].allocated()) {
                continue;
            }
            DiskInode &inode = getInode(e.ino);

            if (kind == BlockKind::Data) {
                if (getFileBlock(inode, e.aux) != addr)
                    continue;
                readBlockAny(addr, {content.data(), content.size()});
                writeFileBlock(inode, e.aux,
                               {content.data(), content.size()});
                markInodeDirty(e.ino);
                ++copied;
                continue;
            }

            // Pointer blocks: derive the true role from the inode
            // (summary kinds can be stale after partial truncates).
            const PtrRoleResult role = pointer_role(inode, addr);
            if (role.role == PtrRole::None)
                continue;
            relocate_pointer(inode, addr, role);
            ++copied;
        }

        // Persist relocated inodes/imap chunks, then the victim holds
        // nothing live.
        flushInodes();
        flushImap();
        usage[victim] = Usage{};
        return copied;
    };

    // Main loop: pick cost-benefit victims until the target is met.
    unsigned no_progress = 0;
    while (freeSegments() < target_free && no_progress < 2) {
        const double cap =
            static_cast<double>(sb.payloadBlocksPerSegment()) * bs;
        std::uint64_t best = sb.numSegments;
        double best_score = -1.0;
        for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
            if (segw->isOpen() && s == segw->currentSegment())
                continue;
            if (usage[s].liveBytes == 0 || usage[s].writeSeq == 0)
                continue;
            // Pinned segments hold snapshot data; cleaning one would
            // relocate blocks the snapshot still references.
            if (segPinCount[s] > 0)
                continue;
            const double u =
                std::min(1.0, usage[s].liveBytes / cap);
            const double age = static_cast<double>(
                nextSegSeq - usage[s].writeSeq);
            const double score = (1.0 - u) * age / (1.0 + u);
            if (score > best_score) {
                best_score = score;
                best = s;
            }
        }
        if (best == sb.numSegments)
            break; // nothing cleanable

        const std::uint64_t before = freeSegments();
        _stats.cleanerBlocksCopied += clean_segment(best);
        ++_stats.cleanerSegmentsCleaned;
        ++cleaned;
        no_progress = freeSegments() > before ? 0 : no_progress + 1;
    }

    return cleaned;
}

} // namespace raid2::lfs
