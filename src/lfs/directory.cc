/**
 * @file
 * Directory layer: entry serialization and path resolution.
 *
 * Directories are ordinary log files holding a packed list of
 * (inode, name) records; "." and ".." are implicit in path logic.
 * The whole entry list is rewritten on modification — directories in
 * the paper's workloads are small, and LFS folds the rewrite into the
 * open segment anyway.
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

namespace {

constexpr std::size_t maxNameLen = 255;

struct RawEntryHeader
{
    InodeNum ino;
    std::uint16_t nameLen;
};

} // namespace

std::vector<DirEntry>
Lfs::readDirEntries(const DiskInode &dir) const
{
    std::vector<std::uint8_t> raw(dir.size);
    if (dir.size > 0)
        readData(dir, 0, {raw.data(), raw.size()});

    std::vector<DirEntry> entries;
    std::size_t pos = 0;
    while (pos + sizeof(RawEntryHeader) <= raw.size()) {
        RawEntryHeader hdr;
        std::memcpy(&hdr, raw.data() + pos, sizeof(hdr));
        pos += sizeof(hdr);
        if (hdr.ino == nullIno && hdr.nameLen == 0)
            break; // padding tail
        if (hdr.nameLen == 0 || hdr.nameLen > maxNameLen ||
            pos + hdr.nameLen > raw.size()) {
            // Corrupt media, not a program bug: let callers (fsck,
            // the crash checker) handle it.
            throw LfsError(Errno::Invalid,
                           "corrupt directory entry in inode " +
                               std::to_string(dir.ino));
        }
        entries.push_back(DirEntry{
            hdr.ino,
            std::string(reinterpret_cast<const char *>(raw.data() + pos),
                        hdr.nameLen)});
        pos += hdr.nameLen;
    }
    return entries;
}

void
Lfs::writeDirEntries(DiskInode &dir, const std::vector<DirEntry> &entries)
{
    std::vector<std::uint8_t> raw;
    for (const DirEntry &e : entries) {
        RawEntryHeader hdr{e.ino,
                           static_cast<std::uint16_t>(e.name.size())};
        const auto *p = reinterpret_cast<const std::uint8_t *>(&hdr);
        raw.insert(raw.end(), p, p + sizeof(hdr));
        raw.insert(raw.end(), e.name.begin(), e.name.end());
    }

    const std::uint64_t old_size = dir.size;
    if (!raw.empty())
        writeData(dir, 0, {raw.data(), raw.size()});
    if (raw.size() < old_size) {
        // Shrink: clear the tail blocks and the size.
        const std::uint32_t bs = sb.blockSize;
        const std::uint64_t keep = (raw.size() + bs - 1) / bs;
        freeFileBlocks(dir, keep);
        dir.size = raw.size();
    } else {
        dir.size = raw.size();
    }
    dir.mtime = ++logicalTime;
    markInodeDirty(dir.ino);
}

InodeNum
Lfs::dirLookup(const DiskInode &dir, const std::string &name) const
{
    for (const DirEntry &e : readDirEntries(dir)) {
        if (e.name == name)
            return e.ino;
    }
    return nullIno;
}

void
Lfs::dirAdd(DiskInode &dir, const std::string &name, InodeNum ino)
{
    if (name.empty() || name.size() > maxNameLen)
        throw LfsError(Errno::Invalid, "bad file name");
    auto entries = readDirEntries(dir);
    entries.push_back(DirEntry{ino, name});
    writeDirEntries(dir, entries);
}

void
Lfs::dirRemove(DiskInode &dir, const std::string &name)
{
    auto entries = readDirEntries(dir);
    for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->name == name) {
            entries.erase(it);
            writeDirEntries(dir, entries);
            return;
        }
    }
    throw LfsError(Errno::NoEntry, name + " not found");
}

namespace {

/** Split an absolute path into components; rejects relative paths. */
std::vector<std::string>
splitPath(const std::string &path)
{
    if (path.empty() || path[0] != '/')
        throw LfsError(Errno::Invalid, "path must be absolute: " + path);
    std::vector<std::string> parts;
    std::size_t pos = 1;
    while (pos < path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        if (end > pos) {
            std::string comp = path.substr(pos, end - pos);
            if (comp == "." || comp == "..") {
                throw LfsError(Errno::Invalid,
                               "'.'/'..' not supported in paths");
            }
            parts.push_back(std::move(comp));
        }
        pos = end + 1;
    }
    return parts;
}

} // namespace

InodeNum
Lfs::resolve(const std::string &path) const
{
    InodeNum cur = root;
    for (const std::string &comp : splitPath(path)) {
        const DiskInode &inode = getInodeConst(cur);
        if (inode.fileType() != FileType::Directory)
            throw LfsError(Errno::NotDirectory, path);
        const InodeNum next = dirLookup(inode, comp);
        if (next == nullIno)
            throw LfsError(Errno::NoEntry, path + " not found");
        cur = next;
    }
    return cur;
}

InodeNum
Lfs::resolveParent(const std::string &path, std::string &leaf) const
{
    auto parts = splitPath(path);
    if (parts.empty())
        throw LfsError(Errno::Invalid, "no leaf in path: " + path);
    leaf = parts.back();
    InodeNum cur = root;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const DiskInode &inode = getInodeConst(cur);
        if (inode.fileType() != FileType::Directory)
            throw LfsError(Errno::NotDirectory, path);
        const InodeNum next = dirLookup(inode, parts[i]);
        if (next == nullIno)
            throw LfsError(Errno::NoEntry, path + " not found");
        cur = next;
    }
    if (getInodeConst(cur).fileType() != FileType::Directory)
        throw LfsError(Errno::NotDirectory, path);
    return cur;
}

} // namespace raid2::lfs
