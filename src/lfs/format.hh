/**
 * @file
 * On-media format of the log-structured file system.
 *
 * The layout follows Sprite LFS (Rosenblum & Ousterhout, SOSP '91),
 * which RAID-II runs (§3): the device is a superblock, two checkpoint
 * regions, and a log of fixed-size segments.  Each segment starts with
 * a summary block describing every payload block (the information the
 * cleaner and roll-forward recovery need), followed by payload blocks:
 * file data, indirect blocks, inode blocks (16 packed inodes) and
 * inode-map chunks.  The checkpoint stores the inode-map chunk
 * addresses and the segment usage table; recovery rolls the log
 * forward from the last checkpoint by following the summary chain
 * (§3.1: "To recover from a file system crash, the LFS server need
 * only process the log from the position of the last checkpoint").
 */

#ifndef RAID2_LFS_FORMAT_HH
#define RAID2_LFS_FORMAT_HH

#include <cstdint>
#include <cstring>
#include <span>

namespace raid2::lfs {

/** Absolute device block number; 0 (the superblock) doubles as null. */
using BlockAddr = std::uint64_t;
constexpr BlockAddr nullAddr = 0;

using InodeNum = std::uint32_t;
constexpr InodeNum nullIno = 0;

constexpr std::uint32_t superMagic = 0x4c465321;      // "LFS!"
constexpr std::uint32_t summaryMagic = 0x5345474d;    // "SEGM"
constexpr std::uint32_t checkpointMagic = 0x43484b50; // "CHKP"
constexpr std::uint32_t formatVersion = 2; // v2: SummaryEntry.csum

constexpr unsigned numDirect = 12;
constexpr std::uint32_t inodeBytes = 256;

/** Snapshot table limits (records live in the checkpoint body). */
constexpr std::uint32_t maxSnapshots = 8;
constexpr std::uint32_t maxSnapshotNameLen = 64;

/** File types stored in DiskInode::type. */
enum class FileType : std::uint16_t { Free = 0, Regular = 1, Directory = 2 };

/** What a segment payload block holds (summary bookkeeping). */
enum class BlockKind : std::uint32_t {
    Invalid = 0,
    Data = 1,      // file/dir contents; aux = file block number
    InodeBlock = 2, // 16 packed inodes; aux unused
    ImapChunk = 3, // inode-map chunk; aux = chunk index
    Ind1 = 4,      // single-indirect block; aux unused
    Ind2Root = 5,  // double-indirect root; aux unused
    Ind2Child = 6, // double-indirect child; aux = child index
};

/** Simple FNV-1a over a byte range (format checksums). */
inline std::uint32_t
fnv1a(std::span<const std::uint8_t> bytes, std::uint32_t seed = 0x811c9dc5)
{
    std::uint32_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 16777619u;
    }
    return h;
}

/** 64-bit FNV-1a (per-block content checksums; see src/integrity/). */
inline std::uint64_t
fnv1a64(std::span<const std::uint8_t> bytes,
        std::uint64_t seed = 0xcbf29ce484222325ull)
{
    std::uint64_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

#pragma pack(push, 1)

/** Block 0 of the device. */
struct Superblock
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t blockSize;
    std::uint32_t segBlocks;     // blocks per segment incl. summary
    std::uint64_t numSegments;
    std::uint64_t firstSegBlock; // device block of segment 0
    std::uint32_t maxInodes;
    std::uint32_t cpBlocks;      // blocks per checkpoint region
    std::uint64_t cp0Block;
    std::uint64_t cp1Block;
    std::uint32_t checksum;      // over all fields above

    std::uint32_t computeChecksum() const;
    bool valid() const;

    std::uint64_t segmentStartBlock(std::uint64_t seg) const
    {
        return firstSegBlock + seg * segBlocks;
    }
    std::uint64_t segmentOfBlock(BlockAddr b) const
    {
        return (b - firstSegBlock) / segBlocks;
    }
    /** Blocks needed for the summary region (header + one entry per
     *  payload block); more than one for very large segments. */
    std::uint32_t summaryBlocksPerSegment() const;
    std::uint32_t payloadBlocksPerSegment() const
    {
        return segBlocks - summaryBlocksPerSegment();
    }
    std::uint32_t inodesPerBlock() const
    {
        return blockSize / inodeBytes;
    }
    std::uint32_t imapEntriesPerChunk() const;
    std::uint32_t numImapChunks() const
    {
        return (maxInodes + imapEntriesPerChunk() - 1) /
               imapEntriesPerChunk();
    }
};

/** One file or directory, 256 bytes on media. */
struct DiskInode
{
    InodeNum ino;
    std::uint16_t type;   // FileType
    std::uint16_t nlink;
    std::uint64_t size;
    std::uint32_t gen;    // bumped on every reuse of the inode number
    std::uint32_t mtime;  // coarse logical timestamp
    std::uint64_t direct[numDirect];
    std::uint64_t indirect;
    std::uint64_t dindirect;
    std::uint8_t pad[inodeBytes - (4 + 2 + 2 + 8 + 4 + 4 +
                                   8 * numDirect + 8 + 8)];

    FileType fileType() const { return static_cast<FileType>(type); }
};
static_assert(sizeof(DiskInode) == inodeBytes);

/** Inode-map entry: where inode @c ino currently lives. */
struct ImapEntry
{
    BlockAddr blockAddr;  // inode block; nullAddr = inode free
    std::uint32_t slot;   // index within the inode block
    std::uint32_t gen;    // generation of the current incarnation

    bool allocated() const { return blockAddr != nullAddr; }
};
static_assert(sizeof(ImapEntry) == 16);

/** Per-payload-block record in a segment summary. */
struct SummaryEntry
{
    std::uint32_t kind; // BlockKind
    InodeNum ino;
    std::uint64_t aux;
    std::uint64_t csum; // fnv1a64 of the payload block's contents
};
static_assert(sizeof(SummaryEntry) == 24);

/** First block of every written segment. */
struct SummaryHeader
{
    std::uint32_t magic;
    std::uint32_t count;          // payload blocks present
    std::uint64_t segSeq;         // monotonic log sequence number
    std::uint64_t nextSegment;    // successor segment in the log
    std::uint32_t payloadChecksum; // over all payload block bytes
    std::uint32_t checksum;       // over header + entries
};
static_assert(sizeof(SummaryHeader) == 32);

/** Segment usage table entry (lives in the checkpoint region). */
struct UsageEntry
{
    std::uint32_t liveBytes;
    std::uint32_t pad;
    std::uint64_t writeSeq; // segSeq when last written
};
static_assert(sizeof(UsageEntry) == 16);

/** Header of a checkpoint region. */
struct CheckpointHeader
{
    std::uint32_t magic;
    std::uint32_t numSnapshots;   // records after the usage table
    std::uint64_t seqno;          // higher wins at mount
    std::uint64_t logHeadSegment; // open (unwritten) segment
    std::uint64_t nextSegSeq;     // sequence the open segment will get
    InodeNum nextIno;
    InodeNum rootIno;
    std::uint32_t numImapChunks;
    std::uint32_t numSegments;
    std::uint32_t bodyChecksum;   // over imap addrs + usage + snapshots
    std::uint32_t checksum;       // over this header
};
static_assert(sizeof(CheckpointHeader) == 56);

/**
 * Fixed prefix of one snapshot-table record in the checkpoint body.
 * Followed by nameLen name bytes, numImapChunks 8-byte imap chunk
 * addresses, and a ceil(numSegments / 8)-byte pinned-segment bitmap.
 */
struct SnapshotDiskRecord
{
    std::uint32_t id;
    std::uint32_t nameLen;
    std::uint64_t createSeq;      // checkpoint seqno that captured it
    std::uint64_t nextSegSeq;     // log sequence at capture
    InodeNum root;
    InodeNum nextIno;
    std::uint32_t numImapChunks;
    std::uint32_t numSegments;
};
static_assert(sizeof(SnapshotDiskRecord) == 40);

/** Serialized size of one snapshot record with @p name_len name bytes. */
inline std::uint64_t
snapshotRecordBytes(std::uint64_t name_len, std::uint64_t num_imap_chunks,
                    std::uint64_t num_segments)
{
    return sizeof(SnapshotDiskRecord) + name_len + 8 * num_imap_chunks +
           (num_segments + 7) / 8;
}

/** Checkpoint-body bytes format() reserves for a full snapshot table. */
inline std::uint64_t
snapshotReserveBytes(std::uint64_t num_imap_chunks,
                     std::uint64_t num_segments)
{
    return maxSnapshots * snapshotRecordBytes(maxSnapshotNameLen,
                                              num_imap_chunks,
                                              num_segments);
}

#pragma pack(pop)

inline std::uint32_t
Superblock::computeChecksum() const
{
    Superblock copy = *this;
    copy.checksum = 0;
    return fnv1a({reinterpret_cast<const std::uint8_t *>(&copy),
                  sizeof(copy)});
}

inline bool
Superblock::valid() const
{
    return magic == superMagic && version == formatVersion &&
           checksum == computeChecksum();
}

inline std::uint32_t
Superblock::imapEntriesPerChunk() const
{
    return blockSize / sizeof(ImapEntry);
}

inline std::uint32_t
Superblock::summaryBlocksPerSegment() const
{
    std::uint32_t s = 1;
    while (sizeof(SummaryHeader) +
               std::uint64_t(segBlocks - s) * sizeof(SummaryEntry) >
           std::uint64_t(s) * blockSize) {
        ++s;
    }
    return s;
}

} // namespace raid2::lfs

#endif // RAID2_LFS_FORMAT_HH
