/**
 * @file
 * Read-only consistency checker.
 *
 * Verifies the invariants the rest of the implementation relies on:
 * imap entries resolve to matching inodes; every referenced block lies
 * inside the log and inside a segment the usage table believes is
 * live; the directory tree is connected, acyclic, and link counts
 * match; no allocated inode is orphaned.  Used heavily by the property
 * tests (run after random operation sequences, crashes and cleaning)
 * and by the crash-consistency model checker, which consumes the
 * structured verdict to print actionable diffs.
 */

#include <cstring>
#include <deque>
#include <map>
#include <set>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

const char *
fsckIssueName(FsckIssue kind)
{
    switch (kind) {
      case FsckIssue::AddrOutsideLog:
        return "addr-outside-log";
      case FsckIssue::AddrInCleanSegment:
        return "addr-in-clean-segment";
      case FsckIssue::AddrInSummaryArea:
        return "addr-in-summary-area";
      case FsckIssue::ImapSlotRange:
        return "imap-slot-range";
      case FsckIssue::WrongInodeSlot:
        return "wrong-inode-slot";
      case FsckIssue::GenMismatch:
        return "gen-mismatch";
      case FsckIssue::FreeTypeAllocated:
        return "free-type-allocated";
      case FsckIssue::SizeBeyondMax:
        return "size-beyond-max";
      case FsckIssue::MissingRoot:
        return "missing-root";
      case FsckIssue::NotADirectory:
        return "not-a-directory";
      case FsckIssue::DuplicateName:
        return "duplicate-name";
      case FsckIssue::EntryUnallocated:
        return "entry-unallocated";
      case FsckIssue::MultipleParents:
        return "multiple-parents";
      case FsckIssue::OrphanDirectory:
        return "orphan-directory";
      case FsckIssue::OrphanFile:
        return "orphan-file";
      case FsckIssue::BadNlink:
        return "bad-nlink";
      case FsckIssue::CorruptMetadata:
        return "corrupt-metadata";
    }
    return "unknown";
}

std::string
FsckInconsistency::str() const
{
    std::string s = fsckIssueName(kind);
    if (ino != nullIno)
        s += " ino=" + std::to_string(ino);
    if (addr != nullAddr)
        s += " addr=" + std::to_string(addr);
    if (!detail.empty())
        s += ": " + detail;
    return s;
}

std::vector<std::string>
FsckReport::problems() const
{
    std::vector<std::string> out;
    out.reserve(issues.size());
    for (const auto &i : issues)
        out.push_back(i.str());
    return out;
}

FsckReport
Lfs::fsck() const
{
    FsckReport report;
    const std::uint32_t bs = sb.blockSize;
    const std::uint32_t ptrs_per = bs / sizeof(BlockAddr);
    const std::uint64_t log_start = sb.firstSegBlock;
    const std::uint64_t log_end =
        sb.firstSegBlock + sb.numSegments * sb.segBlocks;

    // Inodes whose block pointers are unusable: their data must not be
    // read in later passes (the addresses may point anywhere).
    std::set<InodeNum> damaged;

    auto check_addr = [&](BlockAddr addr, InodeNum ino,
                          const std::string &what) {
        if (addr == nullAddr)
            return false;
        if (addr < log_start || addr >= log_end) {
            report.fail(FsckIssue::AddrOutsideLog, ino, addr,
                        what + ": address outside the log");
            damaged.insert(ino);
            return false;
        }
        const std::uint64_t seg = sb.segmentOfBlock(addr);
        const bool open_seg =
            segw->isOpen() && seg == segw->currentSegment();
        if (usage[seg].liveBytes == 0 && !open_seg) {
            report.fail(FsckIssue::AddrInCleanSegment, ino, addr,
                        what + ": block in a segment marked clean");
        }
        if (addr < sb.segmentStartBlock(seg) +
                       sb.summaryBlocksPerSegment()) {
            report.fail(FsckIssue::AddrInSummaryArea, ino, addr,
                        what + ": address points at a summary block");
            damaged.insert(ino);
            return false;
        }
        return true;
    };

    // Pass 1: imap -> inodes.  Inodes created since the last sync live
    // only in the cache; they are allocated too.
    std::set<InodeNum> allocated;
    for (const auto &[ino, inode] : inodeCache) {
        if (inode.fileType() != FileType::Free)
            allocated.insert(ino);
    }
    for (InodeNum ino = 1; ino < sb.maxInodes; ++ino) {
        const ImapEntry &e = imap[ino];
        if (!e.allocated())
            continue;
        allocated.insert(ino);
        if (!check_addr(e.blockAddr, ino,
                        "imap[" + std::to_string(ino) + "]"))
            continue;
        if (e.slot >= sb.inodesPerBlock()) {
            report.fail(FsckIssue::ImapSlotRange, ino, e.blockAddr,
                        "slot " + std::to_string(e.slot) +
                            " out of range");
            continue;
        }
        std::vector<std::uint8_t> block(bs);
        readBlockAny(e.blockAddr, {block.data(), block.size()});
        DiskInode di;
        std::memcpy(&di, block.data() + std::size_t(e.slot) * inodeBytes,
                    sizeof(di));
        // The cache may be newer than the media copy; prefer it.
        auto it = inodeCache.find(ino);
        const DiskInode &inode = it != inodeCache.end() ? it->second : di;
        if (it == inodeCache.end()) {
            if (di.ino != ino) {
                report.fail(FsckIssue::WrongInodeSlot, ino, e.blockAddr,
                            "slot holds inode " +
                                std::to_string(di.ino));
            }
            if (di.gen != e.gen) {
                report.fail(FsckIssue::GenMismatch, ino, e.blockAddr,
                            "imap gen " + std::to_string(e.gen) +
                                " != inode gen " +
                                std::to_string(di.gen));
            }
        }
        if (inode.fileType() == FileType::Free) {
            report.fail(FsckIssue::FreeTypeAllocated, ino, e.blockAddr,
                        "allocated inode has Free type");
        }
    }

    // Lookup that degrades to a structured verdict on corrupt media
    // instead of propagating.
    auto try_inode = [&](InodeNum ino) -> const DiskInode * {
        try {
            return &getInodeConst(ino);
        } catch (const LfsError &e) {
            report.fail(FsckIssue::CorruptMetadata, ino, nullAddr,
                        e.what());
            damaged.insert(ino);
            return nullptr;
        }
    };

    // Pass 2: block trees.
    for (InodeNum ino : allocated) {
        const DiskInode *inodep = try_inode(ino);
        if (!inodep)
            continue;
        const DiskInode &inode = *inodep;
        const std::string tag = "inode " + std::to_string(ino);
        std::vector<std::uint8_t> block(bs);

        for (unsigned i = 0; i < numDirect; ++i)
            check_addr(inode.direct[i], ino, tag + " direct");

        if (inode.indirect != nullAddr &&
            check_addr(inode.indirect, ino, tag + " indirect")) {
            readBlockAny(inode.indirect, {block.data(), block.size()});
            const auto *ptrs =
                reinterpret_cast<const BlockAddr *>(block.data());
            for (std::uint32_t i = 0; i < ptrs_per; ++i)
                check_addr(ptrs[i], ino, tag + " ind-entry");
        }

        if (inode.dindirect != nullAddr &&
            check_addr(inode.dindirect, ino, tag + " dindirect")) {
            readBlockAny(inode.dindirect, {block.data(), block.size()});
            std::vector<BlockAddr> children(ptrs_per);
            std::memcpy(children.data(), block.data(),
                        ptrs_per * sizeof(BlockAddr));
            for (std::uint32_t ci = 0; ci < ptrs_per; ++ci) {
                if (children[ci] == nullAddr)
                    continue;
                if (!check_addr(children[ci], ino, tag + " ind2-child"))
                    continue;
                readBlockAny(children[ci],
                             {block.data(), block.size()});
                const auto *ptrs =
                    reinterpret_cast<const BlockAddr *>(block.data());
                for (std::uint32_t i = 0; i < ptrs_per; ++i)
                    check_addr(ptrs[i], ino, tag + " ind2-entry");
            }
        }

        const std::uint64_t max_size =
            maxFileBlocks(bs) * std::uint64_t(bs);
        if (inode.size > max_size) {
            report.fail(FsckIssue::SizeBeyondMax, ino, nullAddr,
                        "size " + std::to_string(inode.size) +
                            " beyond maximum");
        }
    }

    // Pass 3: namespace.
    if (root == nullIno || !allocated.count(root)) {
        report.fail(FsckIssue::MissingRoot, root, nullAddr,
                    "missing root directory");
        return report;
    }
    std::map<InodeNum, unsigned> link_count; // from directory entries
    std::map<InodeNum, unsigned> subdir_count;
    std::set<InodeNum> visited;
    std::deque<InodeNum> queue{root};
    visited.insert(root);
    while (!queue.empty()) {
        const InodeNum dir = queue.front();
        queue.pop_front();
        const DiskInode *dnodep = try_inode(dir);
        if (!dnodep)
            continue;
        const DiskInode &dnode = *dnodep;
        if (dnode.fileType() != FileType::Directory) {
            report.fail(FsckIssue::NotADirectory, dir, nullAddr,
                        "walked a non-directory inode");
            continue;
        }
        if (damaged.count(dir)) {
            report.fail(FsckIssue::CorruptMetadata, dir, nullAddr,
                        "directory data unreadable (bad pointers)");
            continue;
        }
        std::vector<DirEntry> dents;
        try {
            dents = readDirEntries(dnode);
        } catch (const LfsError &e) {
            report.fail(FsckIssue::CorruptMetadata, dir, nullAddr,
                        e.what());
            continue;
        }
        std::set<std::string> names;
        for (const DirEntry &e : dents) {
            if (!names.insert(e.name).second) {
                report.fail(FsckIssue::DuplicateName, dir, nullAddr,
                            "duplicate name '" + e.name + "'");
            }
            if (!allocated.count(e.ino)) {
                report.fail(FsckIssue::EntryUnallocated, e.ino, nullAddr,
                            "entry '" + e.name + "' in directory " +
                                std::to_string(dir) +
                                " references a free inode");
                continue;
            }
            ++link_count[e.ino];
            const DiskInode *childp = try_inode(e.ino);
            if (!childp)
                continue;
            const DiskInode &child = *childp;
            if (child.fileType() == FileType::Directory) {
                ++subdir_count[dir];
                if (!visited.insert(e.ino).second) {
                    report.fail(FsckIssue::MultipleParents, e.ino,
                                nullAddr,
                                "directory has multiple parents");
                } else {
                    queue.push_back(e.ino);
                }
            }
        }
    }

    for (InodeNum ino : allocated) {
        const DiskInode *inodep = try_inode(ino);
        if (!inodep)
            continue;
        const DiskInode &inode = *inodep;
        if (inode.fileType() == FileType::Directory) {
            if (!visited.count(ino)) {
                report.fail(FsckIssue::OrphanDirectory, ino, nullAddr,
                            "directory not reachable from root");
                continue;
            }
            const unsigned expect = 2 + subdir_count[ino];
            if (inode.nlink != expect) {
                report.fail(FsckIssue::BadNlink, ino, nullAddr,
                            "directory nlink " +
                                std::to_string(inode.nlink) + " != " +
                                std::to_string(expect));
            }
        } else {
            const unsigned links = link_count.count(ino)
                                       ? link_count.at(ino)
                                       : 0;
            if (links == 0) {
                report.fail(FsckIssue::OrphanFile, ino, nullAddr,
                            "file with no directory entry");
            }
            if (inode.nlink != links) {
                report.fail(FsckIssue::BadNlink, ino, nullAddr,
                            "file nlink " +
                                std::to_string(inode.nlink) + " != " +
                                std::to_string(links));
            }
        }
    }

    return report;
}

} // namespace raid2::lfs
