/**
 * @file
 * Read-only consistency checker.
 *
 * Verifies the invariants the rest of the implementation relies on:
 * imap entries resolve to matching inodes; every referenced block lies
 * inside the log and inside a segment the usage table believes is
 * live; the directory tree is connected, acyclic, and link counts
 * match; no allocated inode is orphaned.  Used heavily by the property
 * tests (run after random operation sequences, crashes and cleaning).
 */

#include <cstring>
#include <deque>
#include <map>
#include <set>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

FsckReport
Lfs::fsck() const
{
    FsckReport report;
    const std::uint32_t bs = sb.blockSize;
    const std::uint32_t ptrs_per = bs / sizeof(BlockAddr);
    const std::uint64_t log_start = sb.firstSegBlock;
    const std::uint64_t log_end =
        sb.firstSegBlock + sb.numSegments * sb.segBlocks;

    auto check_addr = [&](BlockAddr addr, const std::string &what) {
        if (addr == nullAddr)
            return false;
        if (addr < log_start || addr >= log_end) {
            report.fail(what + ": address outside the log");
            return false;
        }
        const std::uint64_t seg = sb.segmentOfBlock(addr);
        const bool open_seg =
            segw->isOpen() && seg == segw->currentSegment();
        if (usage[seg].liveBytes == 0 && !open_seg) {
            report.fail(what + ": block in a segment marked clean");
        }
        if (addr < sb.segmentStartBlock(seg) +
                       sb.summaryBlocksPerSegment()) {
            report.fail(what + ": address points at a summary block");
            return false;
        }
        return true;
    };

    // Pass 1: imap -> inodes.  Inodes created since the last sync live
    // only in the cache; they are allocated too.
    std::set<InodeNum> allocated;
    for (const auto &[ino, inode] : inodeCache) {
        if (inode.fileType() != FileType::Free)
            allocated.insert(ino);
    }
    for (InodeNum ino = 1; ino < sb.maxInodes; ++ino) {
        const ImapEntry &e = imap[ino];
        if (!e.allocated())
            continue;
        allocated.insert(ino);
        if (!check_addr(e.blockAddr, "imap[" + std::to_string(ino) + "]"))
            continue;
        if (e.slot >= sb.inodesPerBlock()) {
            report.fail("imap slot out of range for inode " +
                        std::to_string(ino));
            continue;
        }
        std::vector<std::uint8_t> block(bs);
        readBlockAny(e.blockAddr, {block.data(), block.size()});
        DiskInode di;
        std::memcpy(&di, block.data() + std::size_t(e.slot) * inodeBytes,
                    sizeof(di));
        // The cache may be newer than the media copy; prefer it.
        auto it = inodeCache.find(ino);
        const DiskInode &inode = it != inodeCache.end() ? it->second : di;
        if (it == inodeCache.end()) {
            if (di.ino != ino)
                report.fail("inode block slot holds wrong inode (want " +
                            std::to_string(ino) + ")");
            if (di.gen != e.gen)
                report.fail("generation mismatch for inode " +
                            std::to_string(ino));
        }
        if (inode.fileType() == FileType::Free)
            report.fail("allocated inode " + std::to_string(ino) +
                        " has Free type");
    }

    // Pass 2: block trees.
    for (InodeNum ino : allocated) {
        const DiskInode &inode = getInodeConst(ino);
        const std::string tag = "inode " + std::to_string(ino);
        std::vector<std::uint8_t> block(bs);

        for (unsigned i = 0; i < numDirect; ++i)
            check_addr(inode.direct[i], tag + " direct");

        if (inode.indirect != nullAddr &&
            check_addr(inode.indirect, tag + " indirect")) {
            readBlockAny(inode.indirect, {block.data(), block.size()});
            const auto *ptrs =
                reinterpret_cast<const BlockAddr *>(block.data());
            for (std::uint32_t i = 0; i < ptrs_per; ++i)
                check_addr(ptrs[i], tag + " ind-entry");
        }

        if (inode.dindirect != nullAddr &&
            check_addr(inode.dindirect, tag + " dindirect")) {
            readBlockAny(inode.dindirect, {block.data(), block.size()});
            std::vector<BlockAddr> children(ptrs_per);
            std::memcpy(children.data(), block.data(),
                        ptrs_per * sizeof(BlockAddr));
            for (std::uint32_t ci = 0; ci < ptrs_per; ++ci) {
                if (children[ci] == nullAddr)
                    continue;
                if (!check_addr(children[ci], tag + " ind2-child"))
                    continue;
                readBlockAny(children[ci],
                             {block.data(), block.size()});
                const auto *ptrs =
                    reinterpret_cast<const BlockAddr *>(block.data());
                for (std::uint32_t i = 0; i < ptrs_per; ++i)
                    check_addr(ptrs[i], tag + " ind2-entry");
            }
        }

        const std::uint64_t max_size =
            maxFileBlocks(bs) * std::uint64_t(bs);
        if (inode.size > max_size)
            report.fail(tag + " size beyond maximum");
    }

    // Pass 3: namespace.
    if (root == nullIno || !allocated.count(root)) {
        report.fail("missing root directory");
        return report;
    }
    std::map<InodeNum, unsigned> link_count; // from directory entries
    std::map<InodeNum, unsigned> subdir_count;
    std::set<InodeNum> visited;
    std::deque<InodeNum> queue{root};
    visited.insert(root);
    while (!queue.empty()) {
        const InodeNum dir = queue.front();
        queue.pop_front();
        const DiskInode &dnode = getInodeConst(dir);
        if (dnode.fileType() != FileType::Directory) {
            report.fail("walked a non-directory inode " +
                        std::to_string(dir));
            continue;
        }
        std::set<std::string> names;
        for (const DirEntry &e : readDirEntries(dnode)) {
            if (!names.insert(e.name).second)
                report.fail("duplicate name '" + e.name +
                            "' in directory " + std::to_string(dir));
            if (!allocated.count(e.ino)) {
                report.fail("entry '" + e.name +
                            "' references unallocated inode " +
                            std::to_string(e.ino));
                continue;
            }
            ++link_count[e.ino];
            const DiskInode &child = getInodeConst(e.ino);
            if (child.fileType() == FileType::Directory) {
                ++subdir_count[dir];
                if (!visited.insert(e.ino).second) {
                    report.fail("directory " + std::to_string(e.ino) +
                                " has multiple parents");
                } else {
                    queue.push_back(e.ino);
                }
            }
        }
    }

    for (InodeNum ino : allocated) {
        const DiskInode &inode = getInodeConst(ino);
        if (inode.fileType() == FileType::Directory) {
            if (!visited.count(ino)) {
                report.fail("orphan directory " + std::to_string(ino));
                continue;
            }
            const unsigned expect = 2 + subdir_count[ino];
            if (inode.nlink != expect) {
                report.fail("directory " + std::to_string(ino) +
                            " nlink " + std::to_string(inode.nlink) +
                            " != " + std::to_string(expect));
            }
        } else {
            const unsigned links = link_count.count(ino)
                                       ? link_count.at(ino)
                                       : 0;
            if (links == 0)
                report.fail("orphan file " + std::to_string(ino));
            if (inode.nlink != links) {
                report.fail("file " + std::to_string(ino) + " nlink " +
                            std::to_string(inode.nlink) + " != " +
                            std::to_string(links));
            }
        }
    }

    return report;
}

} // namespace raid2::lfs
