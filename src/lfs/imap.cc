/**
 * @file
 * Inode map: the level of indirection that lets LFS move inodes.
 *
 * The imap translates inode numbers to the log address of the inode's
 * current copy.  It lives in memory, is written to the log in chunks
 * (so updates are themselves log appends), and the checkpoint region
 * records the chunk addresses.
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

ImapEntry &
Lfs::imapEntry(InodeNum ino)
{
    return const_cast<ImapEntry &>(imapEntryConst(ino));
}

const ImapEntry &
Lfs::imapEntryConst(InodeNum ino) const
{
    if (ino == nullIno || ino >= sb.maxInodes)
        throw LfsError(Errno::Invalid, "bad inode number");
    return imap[ino];
}

void
Lfs::markImapDirty(InodeNum ino)
{
    imapChunkDirty.at(ino / sb.imapEntriesPerChunk()) = true;
}

void
Lfs::flushImap()
{
    const std::uint32_t per_chunk = sb.imapEntriesPerChunk();
    std::vector<std::uint8_t> block(sb.blockSize, 0);

    for (std::uint32_t c = 0; c < imapChunkDirty.size(); ++c) {
        if (!imapChunkDirty[c])
            continue;
        std::fill(block.begin(), block.end(), 0);
        const std::uint32_t first = c * per_chunk;
        const std::uint32_t count =
            std::min(per_chunk, sb.maxInodes - first);
        std::memcpy(block.data(), imap.data() + first,
                    std::size_t(count) * sizeof(ImapEntry));

        ensureSpace();
        const BlockAddr old = imapChunkAddr[c];
        if (old != nullAddr && segw->contains(old)) {
            segw->updateInPlace(old, {block.data(), block.size()});
        } else {
            const BlockAddr addr =
                segw->add(BlockKind::ImapChunk, nullIno, c,
                          {block.data(), block.size()});
            usageAdd(addr, sb.blockSize);
            if (old != nullAddr)
                usageSub(old, sb.blockSize);
            imapChunkAddr[c] = addr;
        }
        imapChunkDirty[c] = false;
    }
}

void
Lfs::loadImapChunks()
{
    const std::uint32_t per_chunk = sb.imapEntriesPerChunk();
    std::vector<std::uint8_t> block(sb.blockSize);

    std::fill(imap.begin(), imap.end(), ImapEntry{});
    for (std::uint32_t c = 0; c < imapChunkAddr.size(); ++c) {
        if (imapChunkAddr[c] == nullAddr)
            continue;
        dev.readBlock(imapChunkAddr[c], {block.data(), block.size()});
        const std::uint32_t first = c * per_chunk;
        const std::uint32_t count =
            std::min(per_chunk, sb.maxInodes - first);
        std::memcpy(imap.data() + first, block.data(),
                    std::size_t(count) * sizeof(ImapEntry));
    }
}

} // namespace raid2::lfs
