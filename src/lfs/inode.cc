/**
 * @file
 * Inode layer of the LFS: inode cache, allocation, block-pointer
 * traversal and the log-append write path for file blocks and
 * indirect blocks.
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

namespace {

/** Block pointers per pointer block. */
std::uint32_t
ptrsPer(std::uint32_t block_size)
{
    return block_size / sizeof(BlockAddr);
}

} // namespace

std::uint64_t
Lfs::maxFileBlocks(std::uint32_t block_size)
{
    const std::uint64_t p = ptrsPer(block_size);
    return numDirect + p + p * p;
}

DiskInode &
Lfs::getInode(InodeNum ino)
{
    return const_cast<DiskInode &>(getInodeConst(ino));
}

const DiskInode &
Lfs::getInodeConst(InodeNum ino) const
{
    if (ino == nullIno || ino >= sb.maxInodes)
        throw LfsError(Errno::Invalid, "bad inode number");
    auto it = inodeCache.find(ino);
    if (it != inodeCache.end())
        return it->second;

    const ImapEntry &e = imapEntryConst(ino);
    if (!e.allocated())
        throw LfsError(Errno::NoEntry, "inode not allocated");
    if (e.blockAddr >= dev.numBlocks()) {
        throw LfsError(Errno::Invalid,
                       "imap block address out of range for inode " +
                           std::to_string(ino));
    }

    std::vector<std::uint8_t> block(sb.blockSize);
    readBlockAny(e.blockAddr, {block.data(), block.size()});
    DiskInode inode;
    std::memcpy(&inode, block.data() + std::size_t(e.slot) * inodeBytes,
                sizeof(inode));
    if (inode.ino != ino) {
        // Corrupt media, not a program bug: surface it to callers.
        throw LfsError(Errno::Invalid,
                       "inode block corrupt (want " +
                           std::to_string(ino) + " got " +
                           std::to_string(inode.ino) + ")");
    }
    return inodeCache.emplace(ino, inode).first->second;
}

void
Lfs::markInodeDirty(InodeNum ino)
{
    dirtyInodes.insert(ino);
}

InodeNum
Lfs::allocInode(FileType type)
{
    auto in_use = [this](InodeNum i) {
        if (imap[i].allocated())
            return true;
        auto it = inodeCache.find(i);
        return it != inodeCache.end() &&
               it->second.fileType() != FileType::Free;
    };

    for (std::uint32_t tries = 0; tries < sb.maxInodes; ++tries) {
        InodeNum cand = nextIno;
        nextIno = nextIno + 1 >= sb.maxInodes ? 1 : nextIno + 1;
        if (cand == nullIno || cand >= sb.maxInodes)
            continue;
        if (in_use(cand))
            continue;
        DiskInode inode{};
        inode.ino = cand;
        inode.type = static_cast<std::uint16_t>(type);
        inode.gen = imap[cand].gen + 1;
        inode.mtime = ++logicalTime;
        inodeCache[cand] = inode;
        markInodeDirty(cand);
        return cand;
    }
    throw LfsError(Errno::NoSpace, "out of inodes");
}

void
Lfs::freeInode(InodeNum ino)
{
    ImapEntry &e = imapEntry(ino);
    if (e.allocated()) {
        usageSub(e.blockAddr, inodeBytes);
        e.blockAddr = nullAddr;
        e.slot = 0;
        ++e.gen;
        markImapDirty(ino);
    }
    inodeCache.erase(ino);
    dirtyInodes.erase(ino);
}

void
Lfs::flushInodes()
{
    if (dirtyInodes.empty())
        return;
    std::vector<InodeNum> pending(dirtyInodes.begin(), dirtyInodes.end());
    dirtyInodes.clear();

    const std::uint32_t per_block = sb.inodesPerBlock();
    std::vector<std::uint8_t> block(sb.blockSize);
    std::size_t i = 0;
    while (i < pending.size()) {
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::size_t>(per_block, pending.size() - i));
        std::fill(block.begin(), block.end(), 0);
        for (std::uint32_t s = 0; s < n; ++s) {
            const DiskInode &inode = inodeCache.at(pending[i + s]);
            std::memcpy(block.data() + std::size_t(s) * inodeBytes,
                        &inode, sizeof(inode));
        }
        ensureSpace();
        const BlockAddr addr = segw->add(BlockKind::InodeBlock,
                                         pending[i], 0,
                                         {block.data(), block.size()});
        for (std::uint32_t s = 0; s < n; ++s) {
            const InodeNum ino = pending[i + s];
            ImapEntry &e = imapEntry(ino);
            if (e.allocated())
                usageSub(e.blockAddr, inodeBytes);
            e.blockAddr = addr;
            e.slot = s;
            e.gen = inodeCache.at(ino).gen;
            markImapDirty(ino);
        }
        usageAdd(addr, n * inodeBytes);
        i += n;
    }
}

BlockAddr
Lfs::getFileBlock(const DiskInode &inode, std::uint64_t fbno) const
{
    const std::uint32_t p = ptrsPer(sb.blockSize);
    if (fbno < numDirect)
        return inode.direct[fbno];

    std::vector<std::uint8_t> block(sb.blockSize);
    if (fbno < numDirect + p) {
        if (inode.indirect == nullAddr)
            return nullAddr;
        readBlockAny(inode.indirect, {block.data(), block.size()});
        BlockAddr addr;
        std::memcpy(&addr,
                    block.data() + (fbno - numDirect) * sizeof(addr),
                    sizeof(addr));
        return addr;
    }
    if (fbno < maxFileBlocks(sb.blockSize)) {
        if (inode.dindirect == nullAddr)
            return nullAddr;
        const std::uint64_t rel = fbno - numDirect - p;
        const std::uint64_t ci = rel / p;
        const std::uint64_t idx = rel % p;
        readBlockAny(inode.dindirect, {block.data(), block.size()});
        BlockAddr child;
        std::memcpy(&child, block.data() + ci * sizeof(child),
                    sizeof(child));
        if (child == nullAddr)
            return nullAddr;
        readBlockAny(child, {block.data(), block.size()});
        BlockAddr addr;
        std::memcpy(&addr, block.data() + idx * sizeof(addr),
                    sizeof(addr));
        return addr;
    }
    throw LfsError(Errno::FileTooBig, "file block number out of range");
}

namespace {
/** Shared pointer-block rewrite machinery, as a local helper bound to
 *  an Lfs via friend-like lambdas would be awkward; keep it in-class
 *  through setFileBlock below. */
} // namespace

void
Lfs::setFileBlock(DiskInode &inode, std::uint64_t fbno, BlockAddr addr)
{
    const std::uint32_t p = ptrsPer(sb.blockSize);

    // Rewrite (or update in place) one pointer block.
    auto rewrite = [this](BlockKind kind, InodeNum ino, std::uint64_t aux,
                          BlockAddr ref, std::uint64_t idx,
                          BlockAddr value) -> BlockAddr {
        std::vector<std::uint8_t> block(sb.blockSize, 0);
        if (ref != nullAddr)
            readBlockAny(ref, {block.data(), block.size()});
        std::memcpy(block.data() + idx * sizeof(value), &value,
                    sizeof(value));
        if (ref != nullAddr && segw->contains(ref)) {
            segw->updateInPlace(ref, {block.data(), block.size()});
            return ref;
        }
        const BlockAddr naddr =
            segw->add(kind, ino, aux, {block.data(), block.size()});
        usageAdd(naddr, sb.blockSize);
        if (ref != nullAddr)
            usageSub(ref, sb.blockSize);
        return naddr;
    };

    if (fbno < numDirect) {
        inode.direct[fbno] = addr;
        return;
    }
    if (fbno < numDirect + p) {
        inode.indirect = rewrite(BlockKind::Ind1, inode.ino, 0,
                                 inode.indirect, fbno - numDirect, addr);
        return;
    }
    if (fbno >= maxFileBlocks(sb.blockSize))
        throw LfsError(Errno::FileTooBig, "file too big");

    const std::uint64_t rel = fbno - numDirect - p;
    const std::uint64_t ci = rel / p;
    const std::uint64_t idx = rel % p;

    // Find the current child block.
    BlockAddr child = nullAddr;
    if (inode.dindirect != nullAddr) {
        std::vector<std::uint8_t> root(sb.blockSize);
        readBlockAny(inode.dindirect, {root.data(), root.size()});
        std::memcpy(&child, root.data() + ci * sizeof(child),
                    sizeof(child));
    }
    const BlockAddr new_child = rewrite(BlockKind::Ind2Child, inode.ino,
                                        ci, child, idx, addr);
    if (new_child != child) {
        inode.dindirect = rewrite(BlockKind::Ind2Root, inode.ino, 0,
                                  inode.dindirect, ci, new_child);
    }
}

void
Lfs::writeFileBlock(DiskInode &inode, std::uint64_t fbno,
                    std::span<const std::uint8_t> data)
{
    ensureSpace();
    const BlockAddr old = getFileBlock(inode, fbno);
    if (old != nullAddr && segw->contains(old)) {
        segw->updateInPlace(old, data);
        return;
    }
    const BlockAddr addr =
        segw->add(BlockKind::Data, inode.ino, fbno, data);
    usageAdd(addr, sb.blockSize);
    if (old != nullAddr)
        usageSub(old, sb.blockSize);
    setFileBlock(inode, fbno, addr);
}

void
Lfs::freeFileBlocks(DiskInode &inode, std::uint64_t first_keep_fbno)
{
    const std::uint32_t bs = sb.blockSize;
    const std::uint32_t p = ptrsPer(bs);
    const std::uint64_t keep = first_keep_fbno;

    // Directs.
    for (std::uint64_t i = std::min<std::uint64_t>(keep, numDirect);
         i < numDirect; ++i) {
        if (inode.direct[i] != nullAddr) {
            usageSub(inode.direct[i], bs);
            inode.direct[i] = nullAddr;
        }
    }

    // Clear entries [from, p) of a pointer block; returns true if the
    // block became empty (and frees @p deep children first).
    auto clear_tail = [&](BlockAddr &ref, std::uint64_t from,
                          bool entries_are_children,
                          auto &&clear_child) -> void {
        if (ref == nullAddr)
            return;
        std::vector<std::uint8_t> block(bs);
        readBlockAny(ref, {block.data(), block.size()});
        auto *ptrs = reinterpret_cast<BlockAddr *>(block.data());
        bool any_live = false;
        bool changed = false;
        for (std::uint64_t i = 0; i < p; ++i) {
            if (i < from) {
                any_live = any_live || ptrs[i] != nullAddr;
                continue;
            }
            if (ptrs[i] == nullAddr)
                continue;
            if (entries_are_children) {
                clear_child(ptrs[i]);
            } else {
                usageSub(ptrs[i], bs);
            }
            ptrs[i] = nullAddr;
            changed = true;
        }
        if (!any_live) {
            usageSub(ref, bs);
            ref = nullAddr;
            return;
        }
        if (changed) {
            if (segw->contains(ref)) {
                segw->updateInPlace(ref, {block.data(), block.size()});
            } else {
                // The trimmed pointer block must be relocated; kind is
                // approximate (Ind1) — the cleaner re-derives liveness
                // from the inode, not the summary kind.
                const BlockAddr naddr =
                    segw->add(BlockKind::Ind1, inode.ino, 0,
                              {block.data(), block.size()});
                usageAdd(naddr, bs);
                usageSub(ref, bs);
                ref = naddr;
            }
        }
    };

    auto free_whole_child = [&](BlockAddr child) {
        std::vector<std::uint8_t> block(bs);
        readBlockAny(child, {block.data(), block.size()});
        const auto *ptrs =
            reinterpret_cast<const BlockAddr *>(block.data());
        for (std::uint64_t i = 0; i < p; ++i) {
            if (ptrs[i] != nullAddr)
                usageSub(ptrs[i], bs);
        }
        usageSub(child, bs);
    };

    // Single indirect: file blocks [numDirect, numDirect + p).
    {
        const std::uint64_t from =
            keep <= numDirect ? 0 : std::min<std::uint64_t>(keep -
                                                            numDirect, p);
        if (from < p) {
            ensureSpace();
            clear_tail(inode.indirect, from, false, free_whole_child);
        }
    }

    // Double indirect: file blocks [numDirect + p, ...).
    if (inode.dindirect != nullAddr) {
        const std::uint64_t base = numDirect + p;
        const std::uint64_t from_rel = keep <= base ? 0 : keep - base;
        const std::uint64_t first_child = from_rel / p;
        const std::uint64_t within = from_rel % p;

        std::vector<std::uint8_t> root(bs);
        readBlockAny(inode.dindirect, {root.data(), root.size()});
        auto *ptrs = reinterpret_cast<BlockAddr *>(root.data());

        // Partially trim the boundary child.
        if (within != 0 && first_child < p &&
            ptrs[first_child] != nullAddr) {
            ensureSpace();
            BlockAddr child = ptrs[first_child];
            clear_tail(child, within, false, free_whole_child);
            if (child != ptrs[first_child]) {
                ptrs[first_child] = child;
                // Root content changed; fold into the rewrite below by
                // writing it back through setFileBlock-style path.
                if (segw->contains(inode.dindirect)) {
                    segw->updateInPlace(inode.dindirect,
                                        {root.data(), root.size()});
                } else {
                    ensureSpace();
                    const BlockAddr naddr = segw->add(
                        BlockKind::Ind2Root, inode.ino, 0,
                        {root.data(), root.size()});
                    usageAdd(naddr, bs);
                    usageSub(inode.dindirect, bs);
                    inode.dindirect = naddr;
                }
            }
        }

        // Fully free children after the boundary.
        const std::uint64_t first_whole =
            within == 0 ? first_child : first_child + 1;
        if (first_whole < p) {
            ensureSpace();
            clear_tail(inode.dindirect, first_whole, true,
                       free_whole_child);
        }
    }

    markInodeDirty(inode.ino);
}

} // namespace raid2::lfs
