#include "lfs/lfs.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace raid2::lfs {

// ---------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------

void
Lfs::format(fs::BlockDevice &dev, const Params &params)
{
    if (dev.blockSize() != params.blockSize)
        sim::fatal("Lfs::format: device block size %u != fs block size %u",
                   dev.blockSize(), params.blockSize);
    if (params.segBlocks < 4)
        sim::fatal("Lfs::format: segment too small");

    Superblock sb{};
    sb.magic = superMagic;
    sb.version = formatVersion;
    sb.blockSize = params.blockSize;
    sb.segBlocks = params.segBlocks;
    sb.maxInodes = params.maxInodes;

    // Checkpoint-region size depends on the segment count and vice
    // versa; iterate to a fixed point (monotone decreasing, converges
    // in a couple of rounds).
    const std::uint64_t total = dev.numBlocks();
    std::uint64_t nseg = total / params.segBlocks;
    std::uint32_t cp_blocks = 1;
    for (int round = 0; round < 8; ++round) {
        const std::uint64_t body =
            sizeof(CheckpointHeader) + 8ull * sb.numImapChunks() +
            sizeof(UsageEntry) * nseg +
            snapshotReserveBytes(sb.numImapChunks(), nseg);
        cp_blocks = static_cast<std::uint32_t>(
            (body + params.blockSize - 1) / params.blockSize);
        const std::uint64_t avail = total - 1 - 2ull * cp_blocks;
        const std::uint64_t next = avail / params.segBlocks;
        if (next == nseg)
            break;
        nseg = next;
    }
    if (nseg < 4)
        sim::fatal("Lfs::format: device too small (%llu segments)",
                   (unsigned long long)nseg);

    sb.numSegments = nseg;
    sb.cpBlocks = cp_blocks;
    sb.cp0Block = 1;
    sb.cp1Block = 1 + cp_blocks;
    sb.firstSegBlock = 1 + 2ull * cp_blocks;
    if (params.alignSegmentsTo != 0) {
        // Round segment 0 up to the requested byte alignment (stripe
        // width) so each segment write is one full-stripe write.
        const std::uint64_t align_blocks =
            (params.alignSegmentsTo + params.blockSize - 1) /
            params.blockSize;
        const std::uint64_t rem = sb.firstSegBlock % align_blocks;
        if (rem != 0)
            sb.firstSegBlock += align_blocks - rem;
        while (sb.firstSegBlock + sb.numSegments * params.segBlocks >
               total) {
            --sb.numSegments;
        }
        if (sb.numSegments < 4)
            sim::fatal("Lfs::format: device too small after alignment");
    }
    sb.checksum = sb.computeChecksum();

    std::vector<std::uint8_t> block(params.blockSize, 0);
    std::memcpy(block.data(), &sb, sizeof(sb));
    dev.writeBlock(0, {block.data(), block.size()});

    // Fresh checkpoint: empty imap, empty usage table, no root yet
    // (the first mount creates it).
    CheckpointHeader hdr{};
    hdr.magic = checkpointMagic;
    hdr.seqno = 1;
    hdr.logHeadSegment = 0;
    hdr.nextSegSeq = 1;
    hdr.nextIno = 1;
    hdr.rootIno = nullIno;
    hdr.numImapChunks = sb.numImapChunks();
    hdr.numSegments = static_cast<std::uint32_t>(sb.numSegments);

    std::vector<std::uint8_t> body(8ull * hdr.numImapChunks +
                                       sizeof(UsageEntry) *
                                           sb.numSegments,
                                   0);
    hdr.bodyChecksum = fnv1a({body.data(), body.size()});
    hdr.checksum = 0;
    {
        CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        hdr.checksum =
            fnv1a({reinterpret_cast<const std::uint8_t *>(&tmp),
                   sizeof(tmp)});
    }

    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * params.blockSize, 0);
    std::memcpy(region.data(), &hdr, sizeof(hdr));
    std::memcpy(region.data() + sizeof(hdr), body.data(), body.size());
    dev.writeBlocks(sb.cp0Block, sb.cpBlocks,
                    {region.data(), region.size()});
    // Region 1 is deliberately left invalid (zeroed).
    std::fill(region.begin(), region.end(), 0);
    dev.writeBlocks(sb.cp1Block, sb.cpBlocks,
                    {region.data(), region.size()});
    dev.flush();
}

// ---------------------------------------------------------------------
// Mount / teardown
// ---------------------------------------------------------------------

Lfs::Lfs(fs::BlockDevice &dev_) : dev(dev_)
{
    std::vector<std::uint8_t> block(dev.blockSize(), 0);
    dev.readBlock(0, {block.data(), block.size()});
    std::memcpy(&sb, block.data(), sizeof(sb));
    if (!sb.valid())
        throw LfsError(Errno::Invalid, "not an LFS device (bad superblock)");
    prm.blockSize = sb.blockSize;
    prm.segBlocks = sb.segBlocks;
    prm.maxInodes = sb.maxInodes;

    imap.assign(sb.maxInodes, ImapEntry{});
    imapChunkAddr.assign(sb.numImapChunks(), nullAddr);
    imapChunkDirty.assign(sb.numImapChunks(), false);
    usage.assign(sb.numSegments, Usage{});
    segPinCount.assign(sb.numSegments, 0);
    segw = std::make_unique<SegmentWriter>(dev, sb);
    segw->setReuseGuard([this](std::uint64_t seg) {
        return segPinCount[seg] == 0;
    });

    mount();

    if (root == nullIno) {
        // Fresh file system: create the root directory.
        root = allocInode(FileType::Directory);
        DiskInode &ri = getInode(root);
        ri.nlink = 2;
        markInodeDirty(root);
        checkpoint();
    }
}

Lfs::~Lfs() = default;

// ---------------------------------------------------------------------
// Block helpers
// ---------------------------------------------------------------------

void
Lfs::readBlockAny(BlockAddr addr, std::span<std::uint8_t> out) const
{
    if (addr == nullAddr)
        sim::panic("Lfs: read of null block address");
    if (segw->contains(addr)) {
        segw->readBuffered(addr, out);
        return;
    }
    dev.readBlock(addr, out);
}

std::uint64_t
Lfs::segOfAddr(BlockAddr addr) const
{
    if (addr < sb.firstSegBlock)
        sim::panic("Lfs: address %llu not in the log",
                   (unsigned long long)addr);
    return sb.segmentOfBlock(addr);
}

void
Lfs::usageAdd(BlockAddr addr, std::uint32_t bytes)
{
    usage[segOfAddr(addr)].liveBytes += bytes;
}

void
Lfs::usageSub(BlockAddr addr, std::uint32_t bytes)
{
    Usage &u = usage[segOfAddr(addr)];
    if (u.liveBytes < bytes) {
        // Roll-forward usage reconstruction is approximate; clamp.
        u.liveBytes = 0;
        return;
    }
    u.liveBytes -= bytes;
}

std::uint64_t
Lfs::pickFreeSegment() const
{
    const std::uint64_t cur =
        segw->isOpen() ? segw->currentSegment() : sb.numSegments;
    for (std::uint64_t i = 1; i <= sb.numSegments; ++i) {
        const std::uint64_t seg =
            (cur + i) % sb.numSegments;
        if (seg != cur && usage[seg].liveBytes == 0 &&
            segPinCount[seg] == 0) {
            return seg;
        }
    }
    throw LfsError(Errno::NoSpace, "log full: no clean segments");
}

void
Lfs::closeSegment()
{
    if (!segw->dirty())
        return;
    const std::uint64_t next = pickFreeSegment();
    usage[segw->currentSegment()].writeSeq = segw->segSeq();
    segw->writeOut(next);
    ++_stats.segmentsWritten;
    segw->open(next, nextSegSeq++);
}

void
Lfs::ensureSpace()
{
    // Worst case one operation appends a data block plus rewritten
    // single-indirect, double-indirect child and root blocks.
    if (!segw->hasSpace(4))
        closeSegment();
}

void
Lfs::maybeAutoClean()
{
    if (!autoClean || inCleaner)
        return;
    if (freeSegments() < 4)
        clean(8);
}

std::uint64_t
Lfs::freeSegments() const
{
    std::uint64_t n = 0;
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (usage[s].liveBytes == 0 && segPinCount[s] == 0 &&
            !(segw->isOpen() && s == segw->currentSegment())) {
            ++n;
        }
    }
    return n;
}

double
Lfs::segmentUtilization(std::uint64_t seg) const
{
    const double cap = static_cast<double>(
        sb.payloadBlocksPerSegment()) * sb.blockSize;
    return static_cast<double>(usage.at(seg).liveBytes) / cap;
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

std::uint64_t
Lfs::write(InodeNum ino, std::uint64_t off,
           std::span<const std::uint8_t> data)
{
    DiskInode &inode = getInode(ino);
    if (inode.fileType() == FileType::Directory)
        throw LfsError(Errno::IsDirectory, "write to a directory");
    return writeData(inode, off, data);
}

std::uint64_t
Lfs::writeData(DiskInode &inode, std::uint64_t off,
               std::span<const std::uint8_t> data)
{
    if (data.empty())
        return 0;
    maybeAutoClean();

    const std::uint32_t bs = sb.blockSize;
    std::uint64_t pos = off;
    std::uint64_t left = data.size();
    std::vector<std::uint8_t> blockbuf(bs);

    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));
        const std::uint8_t *src = data.data() + (pos - off);

        if (take == bs) {
            writeFileBlock(inode, fbno, {src, bs});
        } else {
            // Partial block: merge with the existing contents.
            const BlockAddr old = getFileBlock(inode, fbno);
            if (old != nullAddr)
                readBlockAny(old, {blockbuf.data(), bs});
            else
                std::fill(blockbuf.begin(), blockbuf.end(), 0);
            std::memcpy(blockbuf.data() + in_block, src, take);
            writeFileBlock(inode, fbno, {blockbuf.data(), bs});
        }
        pos += take;
        left -= take;
    }

    inode.size = std::max<std::uint64_t>(inode.size, off + data.size());
    inode.mtime = ++logicalTime;
    markInodeDirty(inode.ino);
    return data.size();
}

std::uint64_t
Lfs::read(InodeNum ino, std::uint64_t off,
          std::span<std::uint8_t> out) const
{
    return readData(getInodeConst(ino), off, out);
}

std::uint64_t
Lfs::readData(const DiskInode &inode, std::uint64_t off,
              std::span<std::uint8_t> out) const
{
    if (off >= inode.size || out.empty())
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), inode.size - off);

    const std::uint32_t bs = sb.blockSize;
    std::vector<std::uint8_t> blockbuf(bs);
    std::uint64_t pos = off;
    std::uint64_t left = n;
    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));
        std::uint8_t *dst = out.data() + (pos - off);

        const BlockAddr addr = getFileBlock(inode, fbno);
        if (addr == nullAddr) {
            std::memset(dst, 0, take);
        } else if (take == bs) {
            readBlockAny(addr, {dst, bs});
        } else {
            readBlockAny(addr, {blockbuf.data(), bs});
            std::memcpy(dst, blockbuf.data() + in_block, take);
        }
        pos += take;
        left -= take;
    }
    return n;
}

void
Lfs::truncate(InodeNum ino, std::uint64_t new_size)
{
    DiskInode &inode = getInode(ino);
    if (inode.fileType() == FileType::Directory)
        throw LfsError(Errno::IsDirectory, "truncate of a directory");
    if (new_size >= inode.size) {
        inode.size = new_size; // extending truncate leaves a hole
        markInodeDirty(ino);
        return;
    }
    const std::uint32_t bs = sb.blockSize;
    const std::uint64_t keep = (new_size + bs - 1) / bs;
    freeFileBlocks(inode, keep);

    // Zero the tail of the now-final partial block so later extends
    // read zeros.
    if (new_size % bs != 0) {
        const std::uint64_t fbno = new_size / bs;
        const BlockAddr addr = getFileBlock(inode, fbno);
        if (addr != nullAddr) {
            std::vector<std::uint8_t> buf(bs);
            readBlockAny(addr, {buf.data(), bs});
            std::fill(buf.begin() +
                          static_cast<std::ptrdiff_t>(new_size % bs),
                      buf.end(), 0);
            writeFileBlock(inode, fbno, {buf.data(), bs});
        }
    }
    inode.size = new_size;
    inode.mtime = ++logicalTime;
    markInodeDirty(ino);
}

// ---------------------------------------------------------------------
// Sync / checkpoint
// ---------------------------------------------------------------------

void
Lfs::sync()
{
    flushInodes();
    flushImap();
    if (segw->dirty())
        closeSegment();
    dev.flush();
}

void
Lfs::checkpoint()
{
    sync();
    writeCheckpoint();
    ++_stats.checkpoints;
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

void
Lfs::pinSnapshot(const SnapshotRecord &rec)
{
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (rec.pinned[s])
            ++segPinCount[s];
    }
}

void
Lfs::unpinSnapshot(const SnapshotRecord &rec)
{
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (rec.pinned[s]) {
            if (segPinCount[s] == 0)
                sim::panic("Lfs: unpin of unpinned segment %llu",
                           (unsigned long long)s);
            --segPinCount[s];
        }
    }
}

const SnapshotRecord *
Lfs::findSnapshot(const std::string &name) const
{
    for (const SnapshotRecord &r : snaps) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::uint32_t
Lfs::takeSnapshot(const std::string &name)
{
    if (name.empty() || name.size() > maxSnapshotNameLen)
        throw LfsError(Errno::Invalid, "bad snapshot name");
    if (findSnapshot(name) != nullptr)
        throw LfsError(Errno::Exists, "snapshot " + name + " exists");
    if (snaps.size() >= maxSnapshots)
        throw LfsError(Errno::NoSpace, "snapshot table full");

    // After sync() every snapshot-reachable block sits in a segment
    // with non-zero live bytes, so pinning exactly those segments pins
    // the snapshot's whole closure.  The freshly opened head segment
    // has zero live bytes and stays writable.
    sync();

    SnapshotRecord rec;
    rec.id = nextSnapId++;
    rec.name = name;
    rec.createSeq = cpSeqno + 1; // the checkpoint written below
    rec.nextSegSeq = segw->segSeq();
    rec.root = root;
    rec.nextIno = nextIno;
    rec.imapChunkAddr = imapChunkAddr;
    rec.pinned.assign(sb.numSegments, false);
    for (std::uint64_t s = 0; s < sb.numSegments; ++s)
        rec.pinned[s] = usage[s].liveBytes > 0;

    snaps.push_back(rec);
    pinSnapshot(snaps.back());
    writeCheckpoint();
    ++_stats.checkpoints;
    ++_stats.snapshotsCreated;
    return rec.id;
}

void
Lfs::deleteSnapshot(const std::string &name)
{
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        if (snaps[i].name != name)
            continue;
        // Make the deletion durable while the pins are still in
        // place; only then may the segments be reused.
        SnapshotRecord rec = std::move(snaps[i]);
        snaps.erase(snaps.begin() +
                    static_cast<std::ptrdiff_t>(i));
        sync();
        writeCheckpoint();
        ++_stats.checkpoints;
        unpinSnapshot(rec);
        ++_stats.snapshotsDeleted;
        return;
    }
    throw LfsError(Errno::NoEntry, "snapshot " + name + " not found");
}

// ---------------------------------------------------------------------
// Extent mapping for the timed datapath
// ---------------------------------------------------------------------

std::vector<FileExtent>
Lfs::mapFile(InodeNum ino, std::uint64_t off, std::uint64_t len) const
{
    const DiskInode &inode = getInodeConst(ino);
    std::vector<FileExtent> extents;
    if (off >= inode.size || len == 0)
        return extents;
    len = std::min<std::uint64_t>(len, inode.size - off);

    const std::uint32_t bs = sb.blockSize;
    std::uint64_t pos = off;
    std::uint64_t left = len;
    while (left > 0) {
        const std::uint64_t fbno = pos / bs;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % bs);
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, bs - in_block));
        const BlockAddr addr = getFileBlock(inode, fbno);

        const bool hole = addr == nullAddr;
        const std::uint64_t dev_off =
            hole ? 0 : addr * std::uint64_t(bs) + in_block;

        if (!extents.empty()) {
            FileExtent &prev = extents.back();
            const bool merges =
                prev.hole == hole &&
                prev.fileOffset + prev.bytes == pos &&
                (hole || prev.deviceOffset + prev.bytes == dev_off);
            if (merges) {
                prev.bytes += take;
                pos += take;
                left -= take;
                continue;
            }
        }
        extents.push_back(FileExtent{dev_off, take, pos, hole});
        pos += take;
        left -= take;
    }
    return extents;
}

// ---------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------

InodeNum
Lfs::create(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    DiskInode &parent = getInode(parent_ino);
    if (dirLookup(parent, leaf) != nullIno)
        throw LfsError(Errno::Exists, path + " exists");
    const InodeNum ino = allocInode(FileType::Regular);
    getInode(ino).nlink = 1;
    markInodeDirty(ino);
    dirAdd(getInode(parent_ino), leaf, ino);
    return ino;
}

InodeNum
Lfs::mkdir(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    DiskInode &parent = getInode(parent_ino);
    if (dirLookup(parent, leaf) != nullIno)
        throw LfsError(Errno::Exists, path + " exists");
    const InodeNum ino = allocInode(FileType::Directory);
    getInode(ino).nlink = 2;
    markInodeDirty(ino);
    dirAdd(getInode(parent_ino), leaf, ino);
    DiskInode &p = getInode(parent_ino);
    ++p.nlink;
    markInodeDirty(parent_ino);
    return ino;
}

void
Lfs::link(const std::string &existing, const std::string &newpath)
{
    const InodeNum ino = resolve(existing);
    DiskInode &inode = getInode(ino);
    if (inode.fileType() == FileType::Directory)
        throw LfsError(Errno::IsDirectory,
                       "hard links to directories are not allowed");
    std::string leaf;
    const InodeNum parent_ino = resolveParent(newpath, leaf);
    if (dirLookup(getInode(parent_ino), leaf) != nullIno)
        throw LfsError(Errno::Exists, newpath + " exists");
    dirAdd(getInode(parent_ino), leaf, ino);
    ++inode.nlink;
    markInodeDirty(ino);
}

void
Lfs::unlink(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    const InodeNum ino = dirLookup(getInode(parent_ino), leaf);
    if (ino == nullIno)
        throw LfsError(Errno::NoEntry, path + " not found");
    DiskInode &inode = getInode(ino);
    if (inode.fileType() == FileType::Directory)
        throw LfsError(Errno::IsDirectory, path + " is a directory");

    dirRemove(getInode(parent_ino), leaf);
    --inode.nlink;
    markInodeDirty(ino);
    if (inode.nlink == 0) {
        freeFileBlocks(inode, 0);
        freeInode(ino);
    }
}

void
Lfs::rmdir(const std::string &path)
{
    std::string leaf;
    const InodeNum parent_ino = resolveParent(path, leaf);
    const InodeNum ino = dirLookup(getInode(parent_ino), leaf);
    if (ino == nullIno)
        throw LfsError(Errno::NoEntry, path + " not found");
    DiskInode &inode = getInode(ino);
    if (inode.fileType() != FileType::Directory)
        throw LfsError(Errno::NotDirectory, path + " is not a directory");
    if (!readDirEntries(inode).empty())
        throw LfsError(Errno::NotEmpty, path + " not empty");

    dirRemove(getInode(parent_ino), leaf);
    freeFileBlocks(inode, 0);
    freeInode(ino);
    DiskInode &p = getInode(parent_ino);
    --p.nlink;
    markInodeDirty(parent_ino);
}

void
Lfs::rename(const std::string &from, const std::string &to)
{
    std::string from_leaf, to_leaf;
    const InodeNum from_parent = resolveParent(from, from_leaf);
    const InodeNum to_parent = resolveParent(to, to_leaf);
    const InodeNum ino = dirLookup(getInode(from_parent), from_leaf);
    if (ino == nullIno)
        throw LfsError(Errno::NoEntry, from + " not found");
    const bool moving_dir =
        getInode(ino).fileType() == FileType::Directory;
    if (moving_dir && to.size() > from.size() &&
        to.compare(0, from.size(), from) == 0 &&
        to[from.size()] == '/') {
        // Moving a directory into its own subtree would disconnect it
        // from the root and create a cycle.
        throw LfsError(Errno::Invalid,
                       "cannot move a directory into itself");
    }

    const InodeNum target = dirLookup(getInode(to_parent), to_leaf);
    if (target != nullIno) {
        if (target == ino)
            return;
        DiskInode &t = getInode(target);
        if (t.fileType() == FileType::Directory) {
            if (!moving_dir)
                throw LfsError(Errno::IsDirectory, to + " is a directory");
            if (!readDirEntries(t).empty())
                throw LfsError(Errno::NotEmpty, to + " not empty");
            rmdir(to);
        } else {
            if (moving_dir)
                throw LfsError(Errno::NotDirectory,
                               to + " is not a directory");
            unlink(to);
        }
    }

    dirRemove(getInode(from_parent), from_leaf);
    dirAdd(getInode(to_parent), to_leaf, ino);
    if (moving_dir && from_parent != to_parent) {
        DiskInode &fp = getInode(from_parent);
        --fp.nlink;
        markInodeDirty(from_parent);
        DiskInode &tp = getInode(to_parent);
        ++tp.nlink;
        markInodeDirty(to_parent);
    }
}

InodeNum
Lfs::lookup(const std::string &path) const
{
    return resolve(path);
}

bool
Lfs::exists(const std::string &path) const
{
    try {
        resolve(path);
        return true;
    } catch (const LfsError &) {
        return false;
    }
}

std::vector<DirEntry>
Lfs::readdir(const std::string &path) const
{
    const InodeNum ino = resolve(path);
    const DiskInode &inode = getInodeConst(ino);
    if (inode.fileType() != FileType::Directory)
        throw LfsError(Errno::NotDirectory, path + " is not a directory");
    return readDirEntries(inode);
}

Stat
Lfs::stat(const std::string &path) const
{
    return statIno(resolve(path));
}

Stat
Lfs::statIno(InodeNum ino) const
{
    const DiskInode &inode = getInodeConst(ino);
    Stat st;
    st.ino = ino;
    st.type = inode.fileType();
    st.size = inode.size;
    st.nlink = inode.nlink;
    return st;
}

} // namespace raid2::lfs
