/**
 * @file
 * The Log-Structured File System.
 *
 * A functional implementation of Sprite LFS as run on RAID-II (§3):
 * path-based namespace (files and directories), append-only segmented
 * log with 960 KB default segments, inode map, two-region checkpoints,
 * roll-forward crash recovery, and the segment cleaner (which the
 * paper's prototype had not yet finished — "LFS cleaning ... has not
 * yet been implemented" §3.4 — implemented here).
 *
 * The class is synchronous over a fs::BlockDevice.  The timed server
 * (server/) uses mapFile() to learn where a file's bytes live and
 * drives the simulated array with that layout, exactly as the paper's
 * host software directed the XBUS board.
 */

#ifndef RAID2_LFS_LFS_HH
#define RAID2_LFS_LFS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fs/block_device.hh"
#include "lfs/format.hh"
#include "lfs/segment_writer.hh"

namespace raid2::lfs {

/** POSIX-flavored error conditions surfaced to callers. */
enum class Errno {
    NoEntry,       // ENOENT
    Exists,        // EEXIST
    NotDirectory,  // ENOTDIR
    IsDirectory,   // EISDIR
    NotEmpty,      // ENOTEMPTY
    NoSpace,       // ENOSPC
    Invalid,       // EINVAL
    FileTooBig,    // EFBIG
};

/** Exception carrying an Errno (user errors, never internal bugs). */
class LfsError : public std::runtime_error
{
  public:
    LfsError(Errno code, const std::string &what)
        : std::runtime_error(what), _code(code)
    {
    }
    Errno code() const { return _code; }

  private:
    Errno _code;
};

/** stat() result. */
struct Stat
{
    InodeNum ino = nullIno;
    FileType type = FileType::Free;
    std::uint64_t size = 0;
    std::uint16_t nlink = 0;
};

/** One directory entry. */
struct DirEntry
{
    InodeNum ino;
    std::string name;
};

/** A contiguous byte range on the device backing part of a file. */
struct FileExtent
{
    std::uint64_t deviceOffset; // bytes from device start
    std::uint64_t bytes;
    std::uint64_t fileOffset;   // corresponding file offset
    bool hole = false;          // unwritten range (reads as zero)
};

/**
 * One instant, read-only snapshot: the root/imap state captured by
 * takeSnapshot() plus the set of segments pinned against cleaning.
 * Persisted in the checkpoint body, so snapshots survive crash +
 * roll-forward (a torn checkpoint falls back to the previous table).
 */
struct SnapshotRecord
{
    std::uint32_t id = 0;
    std::string name;
    std::uint64_t createSeq = 0; // checkpoint seqno that captured it
    std::uint64_t nextSegSeq = 0; // log sequence at capture
    InodeNum root = nullIno;
    InodeNum nextIno = 1;
    std::vector<BlockAddr> imapChunkAddr;
    std::vector<bool> pinned;    // per-segment: holds snapshot data
};

/** Kinds of inconsistency fsck() can report. */
enum class FsckIssue {
    AddrOutsideLog,     // block pointer outside the segment log
    AddrInCleanSegment, // pointer into a segment marked clean
    AddrInSummaryArea,  // pointer at a segment summary block
    ImapSlotRange,      // imap slot index out of range
    WrongInodeSlot,     // inode block slot holds a different inode
    GenMismatch,        // imap/inode generation disagree
    FreeTypeAllocated,  // allocated inode has Free type
    SizeBeyondMax,      // file size exceeds the format maximum
    MissingRoot,        // root directory unreachable
    NotADirectory,      // tree walk reached a non-directory inode
    DuplicateName,      // directory holds the same name twice
    EntryUnallocated,   // directory entry references a free inode
    MultipleParents,    // directory reachable via two parents
    OrphanDirectory,    // allocated directory not reachable from root
    OrphanFile,         // allocated file with no directory entry
    BadNlink,           // link count disagrees with the entry count
    CorruptMetadata,    // unreadable inode/directory structure
};

/** Printable name of an FsckIssue ("addr-outside-log", ...). */
const char *fsckIssueName(FsckIssue kind);

/** One structural inconsistency found by fsck(). */
struct FsckInconsistency
{
    FsckIssue kind;
    InodeNum ino = nullIno;  // involved inode (nullIno if n/a)
    BlockAddr addr = nullAddr; // involved block (nullAddr if n/a)
    std::string detail;      // human-readable specifics

    /** Stable one-line rendering ("addr-outside-log ino=3 ..."). */
    std::string str() const;
};

/** fsck() result: a structured verdict, not just a boolean. */
struct FsckReport
{
    bool ok = true;
    std::vector<FsckInconsistency> issues;

    void
    fail(FsckIssue kind, InodeNum ino, BlockAddr addr,
         std::string detail)
    {
        ok = false;
        issues.push_back(FsckInconsistency{kind, ino, addr,
                                           std::move(detail)});
    }

    /** Rendered issues, one line each (for logs and test output). */
    std::vector<std::string> problems() const;
};

/** The file system. */
class Lfs
{
  public:
    struct Params
    {
        std::uint32_t blockSize = 4096;
        /** Blocks per segment incl. summary; 240 x 4 KB = 960 KB, the
         *  paper's segment size (§3.4). */
        std::uint32_t segBlocks = 240;
        std::uint32_t maxInodes = 4096;
        /** Byte alignment of segment 0 on the device; set to the
         *  array's stripe width so every segment flush is a
         *  full-stripe write (0 = no alignment). */
        std::uint64_t alignSegmentsTo = 0;
    };

    /** Statistics exposed to benches and tests. */
    struct Stats
    {
        std::uint64_t segmentsWritten = 0;
        std::uint64_t cleanerSegmentsCleaned = 0;
        std::uint64_t cleanerBlocksCopied = 0;
        std::uint64_t checkpoints = 0;
        std::uint64_t rollForwardSegments = 0;
        std::uint64_t snapshotsCreated = 0;
        std::uint64_t snapshotsDeleted = 0;
    };

    /** Write a fresh, empty file system to @p dev. */
    static void format(fs::BlockDevice &dev, const Params &params);
    static void format(fs::BlockDevice &dev)
    {
        format(dev, Params{});
    }

    /** Mount (runs checkpoint load + roll-forward recovery). */
    explicit Lfs(fs::BlockDevice &dev);
    ~Lfs();

    Lfs(const Lfs &) = delete;
    Lfs &operator=(const Lfs &) = delete;

    /** @{ Namespace operations (absolute paths, '/'-separated). */
    InodeNum create(const std::string &path);
    InodeNum mkdir(const std::string &path);
    void unlink(const std::string &path);
    /** Hard link: @p newpath becomes another name for @p existing. */
    void link(const std::string &existing, const std::string &newpath);
    void rmdir(const std::string &path);
    void rename(const std::string &from, const std::string &to);
    InodeNum lookup(const std::string &path) const;
    bool exists(const std::string &path) const;
    std::vector<DirEntry> readdir(const std::string &path) const;
    Stat stat(const std::string &path) const;
    Stat statIno(InodeNum ino) const;
    /** @} */

    /** @{ File I/O. */
    std::uint64_t write(InodeNum ino, std::uint64_t off,
                        std::span<const std::uint8_t> data);
    std::uint64_t read(InodeNum ino, std::uint64_t off,
                       std::span<std::uint8_t> out) const;
    void truncate(InodeNum ino, std::uint64_t new_size);
    /** @} */

    /** Flush dirty inodes + inode map and close the open segment. */
    void sync();

    /** sync() plus an atomic checkpoint-region update. */
    void checkpoint();

    /**
     * Run the segment cleaner until @p target_free segments are free
     * or no further progress is possible.
     * @return segments reclaimed.
     */
    unsigned clean(unsigned target_free);

    /** Clean when free segments drop below a low-water mark. */
    void setAutoClean(bool on) { autoClean = on; }

    /**
     * @{ Snapshots.  takeSnapshot() syncs, captures the current
     * root/imap state under @p name, pins every live segment so the
     * cleaner and allocator never reclaim snapshot data, and
     * checkpoints so the snapshot is durable.  deleteSnapshot()
     * removes the record durably before releasing the pins.
     */
    std::uint32_t takeSnapshot(const std::string &name);
    void deleteSnapshot(const std::string &name);
    const std::vector<SnapshotRecord> &listSnapshots() const
    {
        return snaps;
    }
    /** Snapshot by name, or nullptr (invalidated by snapshot ops). */
    const SnapshotRecord *findSnapshot(const std::string &name) const;
    /** True if any snapshot pins segment @p seg. */
    bool segmentPinned(std::uint64_t seg) const
    {
        return segPinCount[seg] > 0;
    }
    /** @} */

    /** @{ Introspection. */
    std::uint64_t freeSegments() const;
    std::uint64_t totalSegments() const { return sb.numSegments; }
    double segmentUtilization(std::uint64_t seg) const;
    InodeNum rootIno() const { return root; }
    const Params &params() const { return prm; }
    const Stats &stats() const { return _stats; }
    std::uint32_t blockSize() const { return sb.blockSize; }
    /** @} */

    /** Device byte extents of [off, off+len) of a file (for the timed
     *  high-bandwidth read path). */
    std::vector<FileExtent> mapFile(InodeNum ino, std::uint64_t off,
                                    std::uint64_t len) const;

    /** Full consistency check (read-only). */
    FsckReport fsck() const;

  private:
    friend class Cleaner;

    struct Usage
    {
        std::uint32_t liveBytes = 0;
        std::uint64_t writeSeq = 0;
    };

    /** @{ Block-level helpers (lfs.cc). */
    void readBlockAny(BlockAddr addr, std::span<std::uint8_t> out) const;
    std::uint64_t segOfAddr(BlockAddr addr) const;
    void usageAdd(BlockAddr addr, std::uint32_t bytes);
    void usageSub(BlockAddr addr, std::uint32_t bytes);
    void ensureSpace();
    void closeSegment();
    std::uint64_t pickFreeSegment() const;
    void maybeAutoClean();
    /** @} */

    /** @{ Type-agnostic data I/O cores (lfs.cc). */
    std::uint64_t writeData(DiskInode &inode, std::uint64_t off,
                            std::span<const std::uint8_t> data);
    std::uint64_t readData(const DiskInode &inode, std::uint64_t off,
                           std::span<std::uint8_t> out) const;
    /** @} */

    /** @{ Inode layer (inode.cc). */
    DiskInode &getInode(InodeNum ino);
    const DiskInode &getInodeConst(InodeNum ino) const;
    void markInodeDirty(InodeNum ino);
    InodeNum allocInode(FileType type);
    void freeInode(InodeNum ino);
    void flushInodes();
    BlockAddr getFileBlock(const DiskInode &inode,
                           std::uint64_t fbno) const;
    void setFileBlock(DiskInode &inode, std::uint64_t fbno,
                      BlockAddr addr);
    void writeFileBlock(DiskInode &inode, std::uint64_t fbno,
                        std::span<const std::uint8_t> data);
    void freeFileBlocks(DiskInode &inode, std::uint64_t first_keep_fbno);
    static std::uint64_t maxFileBlocks(std::uint32_t block_size);
    /** @} */

    /** @{ Inode map (imap.cc). */
    ImapEntry &imapEntry(InodeNum ino);
    const ImapEntry &imapEntryConst(InodeNum ino) const;
    void markImapDirty(InodeNum ino);
    void flushImap();
    void loadImapChunks();
    /** @} */

    /** @{ Directories (directory.cc). */
    std::vector<DirEntry> readDirEntries(const DiskInode &dir) const;
    void writeDirEntries(DiskInode &dir,
                         const std::vector<DirEntry> &entries);
    InodeNum dirLookup(const DiskInode &dir,
                       const std::string &name) const;
    void dirAdd(DiskInode &dir, const std::string &name, InodeNum ino);
    void dirRemove(DiskInode &dir, const std::string &name);
    /** Resolve a path to (parent inode, leaf name); parent must exist. */
    InodeNum resolveParent(const std::string &path,
                           std::string &leaf) const;
    InodeNum resolve(const std::string &path) const;
    /** @} */

    /** @{ Checkpoint (checkpoint.cc). */
    void writeCheckpoint();
    bool readCheckpoint(std::uint64_t region_block,
                        CheckpointHeader &hdr,
                        std::vector<BlockAddr> &chunk_addrs,
                        std::vector<Usage> &usage_out,
                        std::vector<SnapshotRecord> &snaps_out) const;
    /** @} */

    /** @{ Snapshot pin accounting (lfs.cc). */
    void pinSnapshot(const SnapshotRecord &rec);
    void unpinSnapshot(const SnapshotRecord &rec);
    /** @} */

    /** Mount-time recovery (recovery.cc). */
    void mount();
    void rollForward(std::uint64_t start_seg, std::uint64_t start_seq);

    fs::BlockDevice &dev;
    Params prm;
    Superblock sb;

    std::vector<ImapEntry> imap;
    std::vector<BlockAddr> imapChunkAddr;
    std::vector<bool> imapChunkDirty;
    std::vector<Usage> usage;
    std::vector<SnapshotRecord> snaps;
    std::vector<std::uint32_t> segPinCount; // snapshots pinning each seg
    std::uint32_t nextSnapId = 1;

    mutable std::map<InodeNum, DiskInode> inodeCache;
    std::set<InodeNum> dirtyInodes;

    std::unique_ptr<SegmentWriter> segw;
    std::uint64_t nextSegSeq = 1;
    std::uint64_t cpSeqno = 0;
    InodeNum nextIno = 1;
    InodeNum root = nullIno;
    std::uint32_t logicalTime = 0;
    bool autoClean = false;
    bool inCleaner = false;

    Stats _stats;
};

} // namespace raid2::lfs

#endif // RAID2_LFS_LFS_HH
