/**
 * @file
 * Mount-time crash recovery.
 *
 * Load the newest valid checkpoint, then roll the log forward: follow
 * the segment chain the summaries record, verifying sequence numbers
 * and payload checksums, and re-apply the imap chunk updates each
 * segment carries.  Everything synced before the crash becomes
 * reachable again; a torn head segment fails its checksum and ends the
 * roll-forward, exactly as in Sprite LFS.  §3.1: "For a 1 gigabyte
 * file system, it takes a few seconds to perform an LFS file system
 * check" — the work here is proportional to the log written since the
 * last checkpoint, not to the file system size.
 */

#include <cstring>

#include "lfs/lfs.hh"
#include "sim/logging.hh"

namespace raid2::lfs {

void
Lfs::mount()
{
    CheckpointHeader h0{}, h1{};
    std::vector<BlockAddr> a0, a1;
    std::vector<Usage> u0, u1;
    std::vector<SnapshotRecord> s0, s1;
    const bool v0 = readCheckpoint(sb.cp0Block, h0, a0, u0, s0);
    const bool v1 = readCheckpoint(sb.cp1Block, h1, a1, u1, s1);
    if (!v0 && !v1)
        throw LfsError(Errno::Invalid, "no valid checkpoint region");

    const bool use1 = v1 && (!v0 || h1.seqno > h0.seqno);
    const CheckpointHeader &hdr = use1 ? h1 : h0;
    imapChunkAddr = use1 ? a1 : a0;
    usage = use1 ? u1 : u0;
    snaps = use1 ? std::move(s1) : std::move(s0);
    cpSeqno = hdr.seqno;
    root = hdr.rootIno;
    nextIno = hdr.nextIno == nullIno ? 1 : hdr.nextIno;

    // Re-arm the snapshot pins before roll-forward touches the log so
    // the recovered head can never land on snapshot data.
    for (const SnapshotRecord &r : snaps) {
        pinSnapshot(r);
        if (r.id >= nextSnapId)
            nextSnapId = r.id + 1;
    }

    loadImapChunks();
    rollForward(hdr.logHeadSegment, hdr.nextSegSeq);

    if (root != nullIno && !imap[root].allocated())
        throw LfsError(Errno::Invalid, "root inode missing after recovery");

    // Advance past the highest allocated inode to cut down on reuse.
    for (InodeNum i = 1; i < sb.maxInodes; ++i) {
        if (imap[i].allocated() && i >= nextIno)
            nextIno = i + 1 >= sb.maxInodes ? 1 : i + 1;
    }
}

void
Lfs::rollForward(std::uint64_t start_seg, std::uint64_t start_seq)
{
    std::uint64_t seg = start_seg;
    std::uint64_t expect_seq = start_seq;
    const std::uint32_t summary_blocks = sb.summaryBlocksPerSegment();
    std::vector<std::uint8_t> summary(
        std::size_t(summary_blocks) * sb.blockSize);
    std::vector<std::uint8_t> payload;
    bool any_applied = false;

    for (std::uint64_t hops = 0; hops <= sb.numSegments; ++hops) {
        if (seg >= sb.numSegments)
            break;
        dev.readBlocks(sb.segmentStartBlock(seg), summary_blocks,
                       {summary.data(), summary.size()});
        SummaryHeader hdr;
        std::memcpy(&hdr, summary.data(), sizeof(hdr));
        if (hdr.magic != summaryMagic || hdr.segSeq != expect_seq ||
            hdr.count == 0 ||
            hdr.count > sb.payloadBlocksPerSegment()) {
            break;
        }
        // Validate the summary checksum (computed with field zeroed).
        {
            std::vector<std::uint8_t> tmp = summary;
            std::uint32_t zero = 0;
            std::memcpy(tmp.data() + offsetof(SummaryHeader, checksum),
                        &zero, sizeof(zero));
            if (hdr.checksum != fnv1a({tmp.data(), tmp.size()}))
                break;
        }
        // Validate the payload (a torn segment write ends recovery).
        payload.resize(std::size_t(hdr.count) * sb.blockSize);
        dev.readBlocks(sb.segmentStartBlock(seg) + summary_blocks,
                       hdr.count, {payload.data(), payload.size()});
        if (hdr.payloadChecksum != fnv1a({payload.data(), payload.size()}))
            break;

        // Apply: the segment is live; its imap chunks supersede the
        // checkpoint's.
        usage[seg].liveBytes =
            static_cast<std::uint32_t>(hdr.count) * sb.blockSize;
        usage[seg].writeSeq = hdr.segSeq;
        const auto *entries = reinterpret_cast<const SummaryEntry *>(
            summary.data() + sizeof(SummaryHeader));
        for (std::uint32_t i = 0; i < hdr.count; ++i) {
            if (static_cast<BlockKind>(entries[i].kind) ==
                BlockKind::ImapChunk) {
                const std::uint64_t chunk = entries[i].aux;
                if (chunk < imapChunkAddr.size()) {
                    imapChunkAddr[chunk] = sb.segmentStartBlock(seg) +
                                           summary_blocks + i;
                }
            }
        }
        ++_stats.rollForwardSegments;
        any_applied = true;

        seg = hdr.nextSegment;
        ++expect_seq;
    }

    if (any_applied)
        loadImapChunks();

    // The first segment that failed validation becomes the new head —
    // unless it is pinned by a snapshot (or the successor pointer is
    // corrupt), in which case fall back to any clean unpinned segment.
    if (seg >= sb.numSegments || segPinCount[seg] > 0) {
        seg = 0;
        while (seg < sb.numSegments &&
               (usage[seg].liveBytes != 0 || segPinCount[seg] > 0)) {
            ++seg;
        }
        if (seg == sb.numSegments)
            throw LfsError(Errno::NoSpace,
                           "no clean segment for the log head");
    }
    usage[seg].liveBytes = 0;
    nextSegSeq = expect_seq + 1;
    segw->open(seg, expect_seq);
}

} // namespace raid2::lfs
