#include "lfs/segment_writer.hh"

#include <cstring>

#include "sim/logging.hh"

namespace raid2::lfs {

SegmentWriter::SegmentWriter(fs::BlockDevice &dev_, const Superblock &sb_)
    : dev(dev_), sb(sb_)
{
}

void
SegmentWriter::open(std::uint64_t seg, std::uint64_t seg_seq)
{
    if (dirty())
        sim::panic("SegmentWriter: opening over a dirty segment");
    if (seg >= sb.numSegments)
        sim::panic("SegmentWriter: segment %llu out of range",
                   (unsigned long long)seg);
    if (reuseGuard && !reuseGuard(seg))
        sim::panic("SegmentWriter: opening pinned segment %llu",
                   (unsigned long long)seg);
    opened = true;
    segIdx = seg;
    seq = seg_seq;
    entries.clear();
    payload.clear();
}

bool
SegmentWriter::hasSpace(unsigned blocks) const
{
    return entries.size() + blocks <= sb.payloadBlocksPerSegment();
}

BlockAddr
SegmentWriter::add(BlockKind kind, InodeNum ino, std::uint64_t aux,
                   std::span<const std::uint8_t> data)
{
    if (!opened)
        sim::panic("SegmentWriter: add with no open segment");
    if (!hasSpace())
        sim::panic("SegmentWriter: segment overflow");
    if (data.size() != sb.blockSize)
        sim::panic("SegmentWriter: bad block size %zu", data.size());

    const BlockAddr addr = payloadBase() + entries.size();
    entries.push_back(SummaryEntry{static_cast<std::uint32_t>(kind), ino,
                                   aux, fnv1a64(data)});
    payload.insert(payload.end(), data.begin(), data.end());
    return addr;
}

bool
SegmentWriter::contains(BlockAddr addr) const
{
    return opened && addr >= payloadBase() &&
           addr < payloadBase() + entries.size();
}

void
SegmentWriter::updateInPlace(BlockAddr addr,
                             std::span<const std::uint8_t> data)
{
    if (!contains(addr))
        sim::panic("SegmentWriter: update of non-buffered block");
    if (data.size() != sb.blockSize)
        sim::panic("SegmentWriter: bad block size %zu", data.size());
    const std::size_t slot =
        static_cast<std::size_t>(addr - payloadBase());
    std::memcpy(payload.data() + slot * sb.blockSize, data.data(),
                sb.blockSize);
    entries[slot].csum = fnv1a64(data);
}

void
SegmentWriter::readBuffered(BlockAddr addr,
                            std::span<std::uint8_t> out) const
{
    if (!contains(addr))
        sim::panic("SegmentWriter: read of non-buffered block");
    if (out.size() != sb.blockSize)
        sim::panic("SegmentWriter: bad block size %zu", out.size());
    const std::size_t slot =
        static_cast<std::size_t>(addr - payloadBase());
    std::memcpy(out.data(), payload.data() + slot * sb.blockSize,
                sb.blockSize);
}

void
SegmentWriter::writeOut(std::uint64_t next_segment)
{
    if (!opened)
        sim::panic("SegmentWriter: writeOut with no open segment");
    if (entries.empty())
        sim::panic("SegmentWriter: writeOut of empty segment");

    // Build the summary region (may span several blocks for large
    // segments).
    const std::uint32_t summary_blocks = sb.summaryBlocksPerSegment();
    std::vector<std::uint8_t> summary(
        std::size_t(summary_blocks) * sb.blockSize, 0);
    SummaryHeader hdr{};
    hdr.magic = summaryMagic;
    hdr.count = static_cast<std::uint32_t>(entries.size());
    hdr.segSeq = seq;
    hdr.nextSegment = next_segment;
    hdr.payloadChecksum = fnv1a({payload.data(), payload.size()});
    hdr.checksum = 0;

    std::memcpy(summary.data(), &hdr, sizeof(hdr));
    std::memcpy(summary.data() + sizeof(hdr), entries.data(),
                entries.size() * sizeof(SummaryEntry));
    const std::uint32_t csum =
        fnv1a({summary.data(), summary.size()});
    std::memcpy(summary.data() + offsetof(SummaryHeader, checksum), &csum,
                sizeof(csum));

    // Assemble summary + payload + zero padding into one image and
    // issue it as a single extent write covering the whole segment: a
    // segment usually closes a few slots short (pointer-block
    // reservation), and padding keeps the device write exactly one
    // full stripe — the efficient RAID-5 case (§3.1).  One extent
    // (instead of summary/payload/pad pieces) also means the array
    // computes each stripe's parity exactly once, single-pass.  The
    // summary's count ignores the padding.
    segImage.assign(std::size_t(sb.segBlocks) * sb.blockSize, 0);
    std::memcpy(segImage.data(), summary.data(), summary.size());
    std::memcpy(segImage.data() + summary.size(), payload.data(),
                payload.size());
    dev.writeRange(sb.segmentStartBlock(segIdx), sb.segBlocks,
                   {segImage.data(), segImage.size()});

    ++written;
    payloadBytes += payload.size();
    entries.clear();
    payload.clear();
    opened = false;
}

} // namespace raid2::lfs
