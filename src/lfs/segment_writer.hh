/**
 * @file
 * The open log segment.
 *
 * Dirty blocks accumulate in an in-memory segment buffer with their
 * final device addresses already assigned; when the buffer fills (or
 * the file system syncs) the whole segment goes to the device as one
 * large sequential write — the key LFS idea ("LFS ... writes all file
 * data and metadata to a sequential append-only log", §3.1).  Repeated
 * updates to a block that is still in the open segment are folded in
 * place, so a burst of small writes to one file costs one log slot.
 */

#ifndef RAID2_LFS_SEGMENT_WRITER_HH
#define RAID2_LFS_SEGMENT_WRITER_HH

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fs/block_device.hh"
#include "lfs/format.hh"

namespace raid2::lfs {

/** In-memory image of the segment currently being filled. */
class SegmentWriter
{
  public:
    SegmentWriter(fs::BlockDevice &dev, const Superblock &sb);

    /** Begin filling segment @p seg with log sequence @p seg_seq. */
    void open(std::uint64_t seg, std::uint64_t seg_seq);

    /**
     * Last-line defence for snapshot pinning: open() panics when the
     * guard returns false for the target segment (a pinned segment
     * must never be rewritten).
     */
    void setReuseGuard(std::function<bool(std::uint64_t)> guard)
    {
        reuseGuard = std::move(guard);
    }

    bool isOpen() const { return opened; }
    std::uint64_t currentSegment() const { return segIdx; }
    std::uint64_t segSeq() const { return seq; }
    unsigned usedSlots() const
    {
        return static_cast<unsigned>(entries.size());
    }
    bool hasSpace(unsigned blocks = 1) const;
    bool dirty() const { return !entries.empty(); }

    /**
     * Append a block; returns its (final) device address.
     * @pre hasSpace()
     */
    BlockAddr add(BlockKind kind, InodeNum ino, std::uint64_t aux,
                  std::span<const std::uint8_t> data);

    /** True if @p addr is a slot of the open segment. */
    bool contains(BlockAddr addr) const;

    /** Overwrite the buffered copy of @p addr (must be contained). */
    void updateInPlace(BlockAddr addr,
                       std::span<const std::uint8_t> data);

    /** Read a buffered block (must be contained). */
    void readBuffered(BlockAddr addr, std::span<std::uint8_t> out) const;

    /**
     * Write summary + payload to the device and reset.  @p next_segment
     * is recorded in the summary so recovery can follow the chain.
     */
    void writeOut(std::uint64_t next_segment);

    /** Total segments written to the device so far. */
    std::uint64_t segmentsWritten() const { return written; }
    /** Total payload bytes written to the device so far. */
    std::uint64_t payloadBytesWritten() const { return payloadBytes; }

  private:
    std::uint64_t payloadBase() const
    {
        return sb.segmentStartBlock(segIdx) +
               sb.summaryBlocksPerSegment();
    }

    fs::BlockDevice &dev;
    const Superblock &sb;
    std::function<bool(std::uint64_t)> reuseGuard;

    bool opened = false;
    std::uint64_t segIdx = 0;
    std::uint64_t seq = 0;
    std::vector<SummaryEntry> entries;
    std::vector<std::uint8_t> payload; // entries.size() * blockSize
    std::vector<std::uint8_t> segImage; // writeOut scratch, reused
    std::uint64_t written = 0;
    std::uint64_t payloadBytes = 0;
};

} // namespace raid2::lfs

#endif // RAID2_LFS_SEGMENT_WRITER_HH
