#include "net/client_model.hh"

#include <utility>

#include "sim/stats_registry.hh"

namespace raid2::net {

ClientModel::ClientModel(sim::EventQueue &eq, std::string name,
                         const Config &cfg_)
    : _name(std::move(name)), cfg(cfg_),
      _nic(eq, _name + ".nic",
           sim::Service::Config{cfg_.readMBs, 0, 1})
{
}

ClientModel::ClientModel(sim::EventQueue &eq, std::string name)
    : ClientModel(eq, std::move(name), Config{})
{
}

void
ClientModel::registerStats(sim::StatsRegistry &reg,
                           const std::string &prefix) const
{
    _nic.registerStats(reg, prefix + ".nic");
}

} // namespace raid2::net
