/**
 * @file
 * Client workstation model.
 *
 * §3.4: "A SPARCstation 10/51 client on the HIPPI network writes data
 * to RAID-II at 3.1 megabytes per second.  Bandwidth is limited on the
 * SPARCstation because its user-level network interface implementation
 * performs many copy operations."  Reads with the initial polling
 * driver ran at 3.2 MB/s.  The client is therefore modeled as a
 * copy-limited NIC stage plus a fixed per-request software cost.
 */

#ifndef RAID2_NET_CLIENT_MODEL_HH
#define RAID2_NET_CLIENT_MODEL_HH

#include <cstdint>
#include <string>

#include "config/calibration.hh"
#include "sim/service.hh"

namespace raid2::net {

/** A network client with an asymmetric, copy-limited NIC path. */
class ClientModel
{
  public:
    struct Config
    {
        /** Client-side receive path rate (server reads -> client). */
        double readMBs = cal::clientReadMBs;
        /** Client-side transmit path rate (client writes -> server). */
        double writeMBs = cal::clientWriteMBs;
        /** Per-request library/socket software cost. */
        sim::Tick perRequestCost = sim::msToTicks(0.3);
    };

    ClientModel(sim::EventQueue &eq, std::string name, const Config &cfg);
    ClientModel(sim::EventQueue &eq, std::string name);

    /** NIC stage for data arriving at the client. */
    sim::Stage rxStage() { return sim::Stage(_nic, cfg.readMBs); }
    /** NIC stage for data leaving the client. */
    sim::Stage txStage() { return sim::Stage(_nic, cfg.writeMBs); }

    /** Charge the per-request socket/library cost on the client CPU. */
    void chargeRequestCost() { _nic.submitBusyTime(cfg.perRequestCost,
                                                   nullptr); }

    sim::Service &nic() { return _nic; }
    const std::string &name() const { return _name; }

    /** Register the NIC station's stats under "<prefix>.nic". */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::string _name;
    Config cfg;
    sim::Service _nic;
};

} // namespace raid2::net

#endif // RAID2_NET_CLIENT_MODEL_HH
