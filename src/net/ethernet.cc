#include "net/ethernet.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/stats_registry.hh"

namespace raid2::net {

EthernetLink::EthernetLink(sim::EventQueue &eq_, std::string name)
    : eq(eq_), _name(std::move(name)),
      _wire(eq_, _name + ".wire",
            sim::Service::Config{cal::ethernetMBs,
                                 cal::ethernetPacketOverhead, 1})
{
}

void
EthernetLink::send(std::uint64_t bytes, std::function<void()> done)
{
    std::uint64_t left = std::max<std::uint64_t>(bytes, 1);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    while (left > 0) {
        const std::uint64_t pkt = std::min(left, cal::ethernetMTU);
        left -= pkt;
        ++_packets;
        const bool last = left == 0;
        _wire.submit(pkt, last ? std::function<void()>([done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        })
                               : std::function<void()>());
    }
}

void
EthernetLink::registerStats(sim::StatsRegistry &reg,
                            const std::string &prefix) const
{
    _wire.registerStats(reg, prefix + ".wire");
    reg.addGauge(prefix + ".packets",
                 [this] { return static_cast<double>(_packets); });
}

} // namespace raid2::net
