/**
 * @file
 * 10 Mb/s Ethernet link model.
 *
 * The host workstation's Ethernet serves "standard mode" requests
 * (§2.1.1).  Transfers are packetized at the MTU with a ~0.5 ms
 * per-packet cost (§2.3: "an Ethernet packet takes approximately 0.5
 * millisecond to transfer" — we charge it as fixed per-packet overhead
 * on top of the 1.25 MB/s wire rate).
 */

#ifndef RAID2_NET_ETHERNET_HH
#define RAID2_NET_ETHERNET_HH

#include <cstdint>
#include <functional>
#include <string>

#include "config/calibration.hh"
#include "sim/service.hh"

namespace raid2::net {

/** A shared 10 Mb/s Ethernet segment. */
class EthernetLink
{
  public:
    EthernetLink(sim::EventQueue &eq, std::string name);

    /** Send @p bytes as a train of MTU-sized packets. */
    void send(std::uint64_t bytes, std::function<void()> done);

    sim::Service &wire() { return _wire; }
    std::uint64_t packets() const { return _packets; }

    /** Register wire + packet stats under @p prefix. */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    sim::EventQueue &eq;
    std::string _name;
    sim::Service _wire;
    std::uint64_t _packets = 0;
};

} // namespace raid2::net

#endif // RAID2_NET_ETHERNET_HH
