#include "net/hippi.hh"

#include <utility>

#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::net {

HippiChannel::HippiChannel(sim::EventQueue &eq_, std::string name,
                           sim::Service &src_port, sim::Service &dst_port,
                           sim::Tick setup_overhead)
    : eq(eq_), _name(std::move(name)), srcPort(src_port),
      dstPort(dst_port), setup(setup_overhead)
{
}

void
HippiChannel::injectLinkDown(sim::Tick duration)
{
    const sim::Tick until = eq.now() + duration;
    ++_linkDrops;
    _downTicks += duration;
    if (until > downUntil)
        downUntil = until;
    if (auto *t = eq.tracer())
        t->complete(_name, "link_down", eq.now(), until, 0);
}

void
HippiChannel::send(std::uint64_t bytes, std::vector<sim::Stage> pre,
                   std::vector<sim::Stage> post,
                   std::function<void()> done)
{
    if (eq.now() < downUntil) {
        // Link is down: hold the packet and retry the connection when
        // the link recovers.  Re-entering send() re-checks downUntil,
        // so a drop extended meanwhile just defers again.
        ++_deferredSends;
        eq.schedule(downUntil,
                    [this, bytes, pre = std::move(pre),
                     post = std::move(post), done = std::move(done)]() mutable {
                        send(bytes, std::move(pre), std::move(post),
                             std::move(done));
                    });
        return;
    }

    ++_packets;
    _bytes += bytes;

    std::vector<sim::Stage> stages;
    for (auto &st : pre)
        stages.push_back(st);
    stages.push_back(sim::Stage(srcPort));
    stages.push_back(sim::Stage(dstPort));
    for (auto &st : post)
        stages.push_back(st);

    // The setup cost serializes on the source port: the host pokes the
    // HIPPI and XBUS control registers before data can move.
    srcPort.submitBusyTime(setup, nullptr);
    if (auto *t = eq.tracer()) {
        const auto span = t->begin(_name, "packet", bytes);
        sim::Pipeline::start(eq, stages, bytes, cal::xbusChunkBytes,
                             [t, span, done = std::move(done)] {
                                 t->end(span);
                                 if (done)
                                     done();
                             });
        return;
    }
    sim::Pipeline::start(eq, stages, bytes, cal::xbusChunkBytes,
                         std::move(done));
}

void
HippiChannel::registerStats(sim::StatsRegistry &reg,
                            const std::string &prefix) const
{
    reg.addGauge(prefix + ".packets",
                 [this] { return static_cast<double>(_packets); });
    reg.addGauge(prefix + ".bytes",
                 [this] { return static_cast<double>(_bytes); });
    reg.addGauge(prefix + ".link_drops",
                 [this] { return static_cast<double>(_linkDrops); });
    reg.addGauge(prefix + ".deferred_sends",
                 [this] { return static_cast<double>(_deferredSends); });
    reg.addGauge(prefix + ".down_ms",
                 [this] { return sim::ticksToMs(_downTicks); });
}

HippiLoopback::HippiLoopback(sim::EventQueue &eq, xbus::XbusBoard &board_)
    : board(board_),
      _channel(eq, board_.name() + ".hippiloop", board_.hippiSrcPort(),
               board_.hippiDstPort())
{
}

void
HippiLoopback::transfer(std::uint64_t bytes, std::function<void()> done)
{
    _channel.send(bytes, {sim::Stage(board.memory())},
                  {sim::Stage(board.memory())}, std::move(done));
}

} // namespace raid2::net
