/**
 * @file
 * HIPPI channel model.
 *
 * §2.2: each XBUS board connects to TMC HIPPI source and destination
 * boards, "each ... designed to sustain 40 megabytes/second ... and
 * bursts of 100 megabytes/second into 32 kilobyte FIFO interfaces".
 * §2.3: "the overhead of sending a HIPPI packet is about 1.1
 * milliseconds, mostly due to setting up the HIPPI and XBUS control
 * registers across the slow VME link"; in loopback the boards move
 * 38.5 MB/s in each direction (Fig 6).
 */

#ifndef RAID2_NET_HIPPI_HH
#define RAID2_NET_HIPPI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "config/calibration.hh"
#include "sim/service.hh"
#include "xbus/xbus_board.hh"

namespace raid2::net {

/**
 * A unidirectional HIPPI transfer path between a source port and a
 * destination port, with per-packet setup cost.
 */
class HippiChannel
{
  public:
    HippiChannel(sim::EventQueue &eq, std::string name,
                 sim::Service &src_port, sim::Service &dst_port,
                 sim::Tick setup_overhead = cal::hippiSetupOverhead);

    /**
     * Send one HIPPI packet of @p bytes.  @p pre stages run before the
     * source port (e.g. XBUS memory read) and @p post stages after the
     * destination port (e.g. XBUS memory write at the receiver).
     */
    void send(std::uint64_t bytes, std::vector<sim::Stage> pre,
              std::vector<sim::Stage> post, std::function<void()> done);

    /**
     * Fault-injection hook: the link drops for @p duration ticks.
     * Packets submitted while the link is down are held and re-issued
     * when it comes back (HIPPI is connection-oriented; the sender
     * retries the connection request).  Overlapping drops extend.
     */
    void injectLinkDown(sim::Tick duration);

    /** True while the link is down. */
    bool linkDown() const { return eq.now() < downUntil; }

    /** Packets sent so far. */
    std::uint64_t packets() const { return _packets; }
    std::uint64_t bytesSent() const { return _bytes; }
    std::uint64_t linkDrops() const { return _linkDrops; }
    std::uint64_t deferredSends() const { return _deferredSends; }
    sim::Tick downTicks() const { return _downTicks; }

    const std::string &name() const { return _name; }

    /** Register packet/byte counters under @p prefix. */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    sim::EventQueue &eq;
    std::string _name;
    sim::Service &srcPort;
    sim::Service &dstPort;
    sim::Tick setup;
    sim::Tick downUntil = 0;
    std::uint64_t _packets = 0;
    std::uint64_t _bytes = 0;
    std::uint64_t _linkDrops = 0;
    std::uint64_t _deferredSends = 0;
    sim::Tick _downTicks = 0;
};

/**
 * The Fig 6 configuration: the board's HIPPI source looped back to its
 * own destination ("Because the network is configured as a loop, there
 * is minimal network protocol overhead").
 */
class HippiLoopback
{
  public:
    explicit HippiLoopback(sim::EventQueue &eq, xbus::XbusBoard &board);

    /** XBUS memory -> HIPPI src -> HIPPI dst -> XBUS memory. */
    void transfer(std::uint64_t bytes, std::function<void()> done);

    /** The underlying channel (e.g. for fault injection). */
    HippiChannel &channel() { return _channel; }

  private:
    xbus::XbusBoard &board;
    HippiChannel _channel;
};

} // namespace raid2::net

#endif // RAID2_NET_HIPPI_HH
