#include "net/ultranet.hh"

#include <utility>

#include "config/calibration.hh"

namespace raid2::net {

UltranetFabric::UltranetFabric(sim::EventQueue &eq_, std::string name,
                               double mb_per_sec, sim::Tick hop_latency)
    : eq(eq_), _name(std::move(name)),
      _ring(eq_, _name + ".ring", sim::Service::Config{mb_per_sec, 0, 1}),
      hopLatency(hop_latency)
{
}

void
UltranetFabric::transfer(std::uint64_t bytes,
                         std::vector<sim::Stage> src_stages,
                         std::vector<sim::Stage> dst_stages,
                         std::function<void()> done)
{
    std::vector<sim::Stage> stages;
    for (auto &st : src_stages)
        stages.push_back(st);
    stages.push_back(sim::Stage(_ring));
    for (auto &st : dst_stages)
        stages.push_back(st);

    auto fire = std::move(done);
    const sim::Tick lat = hopLatency;
    auto &queue = eq;
    sim::Pipeline::start(eq, stages, bytes, cal::xbusChunkBytes,
                         [&queue, lat, fire = std::move(fire)]() mutable {
                             queue.scheduleIn(lat, std::move(fire));
                         });
}

} // namespace raid2::net
