/**
 * @file
 * Ultra Network Technologies ring network model.
 *
 * The Ultranet is the 100 MB/s ring that connects XBUS HIPPI
 * interfaces to supercomputer and workstation clients (Fig 1).  We
 * model the ring as a shared service with a fixed propagation latency;
 * endpoints attach with their own NIC stages.
 */

#ifndef RAID2_NET_ULTRANET_HH
#define RAID2_NET_ULTRANET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/service.hh"

namespace raid2::net {

/** Shared ring fabric. */
class UltranetFabric
{
  public:
    UltranetFabric(sim::EventQueue &eq, std::string name,
                   double mb_per_sec = 100.0,
                   sim::Tick hop_latency = sim::usToTicks(50));

    /**
     * Move @p bytes across the ring between two endpoint stage lists.
     * The ring segment itself is one shared stage; @p hop_latency is
     * added once as pure latency.
     */
    void transfer(std::uint64_t bytes, std::vector<sim::Stage> src_stages,
                  std::vector<sim::Stage> dst_stages,
                  std::function<void()> done);

    sim::Service &ring() { return _ring; }

    /** Register the shared ring stage's stats under "<prefix>.ring". */
    void
    registerStats(sim::StatsRegistry &reg, const std::string &prefix) const
    {
        _ring.registerStats(reg, prefix + ".ring");
    }

  private:
    sim::EventQueue &eq;
    std::string _name;
    sim::Service _ring;
    sim::Tick hopLatency;
};

} // namespace raid2::net

#endif // RAID2_NET_ULTRANET_HH
