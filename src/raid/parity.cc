#include "raid/parity.hh"

#include <cstring>

#include "sim/logging.hh"

namespace raid2::raid {

void
xorInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    // Word-at-a-time main loop; memcpy keeps it alias/alignment safe
    // and compiles to plain loads/stores.
    std::size_t i = 0;
    for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
        std::uint64_t a, b;
        std::memcpy(&a, dst + i, sizeof(a));
        std::memcpy(&b, src + i, sizeof(b));
        a ^= b;
        std::memcpy(dst + i, &a, sizeof(a));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

void
xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src)
{
    if (dst.size() != src.size())
        sim::panic("xorInto: size mismatch (%zu vs %zu)", dst.size(),
                   src.size());
    xorInto(dst.data(), src.data(), dst.size());
}

void
xorFold(std::uint8_t *dst, const std::uint8_t *const *srcs,
        std::size_t k, std::size_t n)
{
    if (k == 0) {
        std::memset(dst, 0, n);
        return;
    }
    std::size_t i = 0;
    for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
        std::uint64_t acc;
        std::memcpy(&acc, srcs[0] + i, sizeof(acc));
        for (std::size_t s = 1; s < k; ++s) {
            std::uint64_t w;
            std::memcpy(&w, srcs[s] + i, sizeof(w));
            acc ^= w;
        }
        std::memcpy(dst + i, &acc, sizeof(acc));
    }
    for (; i < n; ++i) {
        std::uint8_t b = srcs[0][i];
        for (std::size_t s = 1; s < k; ++s)
            b ^= srcs[s][i];
        dst[i] = b;
    }
}

bool
allZero(std::span<const std::uint8_t> buf)
{
    // Word-at-a-time like xorInto: this runs on every parity verify.
    std::size_t i = 0;
    std::uint64_t acc = 0;
    for (; i + sizeof(std::uint64_t) <= buf.size();
         i += sizeof(std::uint64_t)) {
        std::uint64_t w;
        std::memcpy(&w, buf.data() + i, sizeof(w));
        acc |= w;
        if (acc != 0)
            return false;
    }
    for (; i < buf.size(); ++i) {
        if (buf[i] != 0)
            return false;
    }
    return true;
}

} // namespace raid2::raid
