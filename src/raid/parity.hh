/**
 * @file
 * Functional parity (XOR) helpers.
 *
 * The XBUS parity engine's arithmetic: RAID Levels 3 and 5 protect a
 * stripe with the bytewise XOR of its data units, so any single lost
 * unit is the XOR of the survivors.  These helpers are the functional
 * counterpart of xbus::ParityEngine (which models only time).
 */

#ifndef RAID2_RAID_PARITY_HH
#define RAID2_RAID_PARITY_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace raid2::raid {

/** Upper bound on xorFold source counts callers may assume when
 *  using a stack array of source pointers (≥ any supported array
 *  width; RaidArray enforces it at construction). */
inline constexpr std::size_t kMaxFoldSources = 64;

/** dst[i] ^= src[i] for i in [0, n). */
void xorInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t n);

/** dst ^= src (sizes must match). */
void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/**
 * Multi-source XOR fold: dst[i] = srcs[0][i] ^ ... ^ srcs[k-1][i] for
 * i in [0, n), in a single word-at-a-time pass (each word of dst is
 * written once, after all k sources are folded into a register).
 * This is the single-pass parity kernel for full-stripe writes and
 * reconstruction; k passes of xorInto would stream dst through the
 * cache k times.  @p dst may alias one of the sources.  k == 0 zeroes
 * dst.
 */
void xorFold(std::uint8_t *dst, const std::uint8_t *const *srcs,
             std::size_t k, std::size_t n);

/** True if every byte of @p buf is zero (parity-check helper). */
bool allZero(std::span<const std::uint8_t> buf);

} // namespace raid2::raid

#endif // RAID2_RAID_PARITY_HH
