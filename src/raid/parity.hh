/**
 * @file
 * Functional parity (XOR) helpers.
 *
 * The XBUS parity engine's arithmetic: RAID Levels 3 and 5 protect a
 * stripe with the bytewise XOR of its data units, so any single lost
 * unit is the XOR of the survivors.  These helpers are the functional
 * counterpart of xbus::ParityEngine (which models only time).
 */

#ifndef RAID2_RAID_PARITY_HH
#define RAID2_RAID_PARITY_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace raid2::raid {

/** dst[i] ^= src[i] for i in [0, n). */
void xorInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t n);

/** dst ^= src (sizes must match). */
void xorInto(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src);

/** True if every byte of @p buf is zero (parity-check helper). */
bool allZero(std::span<const std::uint8_t> buf);

} // namespace raid2::raid

#endif // RAID2_RAID_PARITY_HH
