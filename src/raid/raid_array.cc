#include "raid/raid_array.hh"

#include <algorithm>
#include <cstring>

#include "raid/parity.hh"
#include "sim/logging.hh"

namespace raid2::raid {

RaidArray::RaidArray(const LayoutConfig &cfg, std::uint64_t disk_bytes)
    : _layout(cfg, disk_bytes), diskBytes(disk_bytes),
      disks(cfg.numDisks, std::vector<std::uint8_t>(disk_bytes, 0)),
      failed(cfg.numDisks, false)
{
}

unsigned
RaidArray::failedCount() const
{
    unsigned n = 0;
    for (bool f : failed)
        n += f ? 1 : 0;
    return n;
}

std::span<const std::uint8_t>
RaidArray::diskData(unsigned d) const
{
    return {disks.at(d).data(), disks.at(d).size()};
}

std::span<std::uint8_t>
RaidArray::diskData(unsigned d)
{
    return {disks.at(d).data(), disks.at(d).size()};
}

void
RaidArray::recomputeParity(std::uint64_t stripe)
{
    const std::uint64_t unit = _layout.unitBytes();
    const std::uint64_t base = stripe * unit;
    const unsigned pd = _layout.parityDisk(stripe);
    std::vector<std::uint8_t> parity(unit, 0);
    for (unsigned k = 0; k < _layout.dataUnitsPerStripe(); ++k) {
        const unsigned d = _layout.dataDisk(stripe, k);
        xorInto(parity.data(), disks[d].data() + base,
                static_cast<std::size_t>(unit));
    }
    std::memcpy(disks[pd].data() + base, parity.data(),
                static_cast<std::size_t>(unit));
}

void
RaidArray::write(std::uint64_t off, std::span<const std::uint8_t> data)
{
    if (data.empty())
        return;
    const RaidLevel level = _layout.level();

    if (level == RaidLevel::Raid3) {
        for (std::uint64_t i = 0; i < data.size(); ++i) {
            unsigned d;
            std::uint64_t db;
            _layout.mapByte(off + i, d, db);
            disks[d][db] = data[i];
        }
        const std::uint64_t row_bytes = _layout.stripeDataBytes();
        const std::uint64_t r0 = off / row_bytes;
        const std::uint64_t r1 = (off + data.size() - 1) / row_bytes;
        for (std::uint64_t r = r0; r <= r1; ++r)
            recomputeParity(r);
        return;
    }

    for (const DiskExtent &e :
         _layout.mapRange(off, data.size(), false)) {
        const std::uint8_t *src = data.data() + (e.logicalOffset - off);
        std::memcpy(disks[e.disk].data() + e.diskOffset, src,
                    static_cast<std::size_t>(e.bytes));
        if (level == RaidLevel::Raid1) {
            const unsigned m = _layout.mirrorDisk(e.disk);
            std::memcpy(disks[m].data() + e.diskOffset, src,
                        static_cast<std::size_t>(e.bytes));
        }
    }

    if (level == RaidLevel::Raid5) {
        const std::uint64_t s0 = _layout.stripeOf(off);
        const std::uint64_t s1 = _layout.stripeOf(off + data.size() - 1);
        for (std::uint64_t s = s0; s <= s1; ++s)
            recomputeParity(s);
    }
}

void
RaidArray::reconstructRange(unsigned dead, std::uint64_t disk_off,
                            std::span<std::uint8_t> out) const
{
    // Every aligned byte position forms a parity group across all
    // disks, so the missing disk's bytes are the XOR of the others.
    std::fill(out.begin(), out.end(), 0);
    for (unsigned d = 0; d < disks.size(); ++d) {
        if (d == dead)
            continue;
        if (failed[d])
            sim::fatal("RaidArray: double failure (disks %u and %u)", dead,
                       d);
        xorInto(out.data(), disks[d].data() + disk_off, out.size());
    }
}

void
RaidArray::read(std::uint64_t off, std::span<std::uint8_t> out) const
{
    if (out.empty())
        return;
    const RaidLevel level = _layout.level();

    if (level == RaidLevel::Raid3) {
        for (std::uint64_t i = 0; i < out.size(); ++i) {
            unsigned d;
            std::uint64_t db;
            _layout.mapByte(off + i, d, db);
            if (!failed[d]) {
                out[i] = disks[d][db];
            } else {
                std::uint8_t byte = 0;
                reconstructRange(d, db, {&byte, 1});
                out[i] = byte;
            }
        }
        return;
    }

    for (const DiskExtent &e :
         _layout.mapRange(off, out.size(), false)) {
        std::uint8_t *dst = out.data() + (e.logicalOffset - off);
        unsigned src_disk = e.disk;
        if (failed[src_disk]) {
            if (level == RaidLevel::Raid1) {
                src_disk = _layout.mirrorDisk(e.disk);
                if (failed[src_disk])
                    sim::fatal("RaidArray: mirror pair %u/%u both failed",
                               e.disk, src_disk);
            } else if (level == RaidLevel::Raid5) {
                reconstructRange(e.disk, e.diskOffset,
                                 {dst, static_cast<std::size_t>(e.bytes)});
                continue;
            } else {
                sim::fatal("RaidArray: RAID-0 cannot survive disk %u",
                           e.disk);
            }
        }
        std::memcpy(dst, disks[src_disk].data() + e.diskOffset,
                    static_cast<std::size_t>(e.bytes));
    }
}

void
RaidArray::failDisk(unsigned d)
{
    if (d >= disks.size())
        sim::panic("failDisk: bad disk %u", d);
    failed[d] = true;
    std::fill(disks[d].begin(), disks[d].end(), 0xde);
}

void
RaidArray::rebuildDisk(unsigned d)
{
    if (d >= disks.size())
        sim::panic("rebuildDisk: bad disk %u", d);
    if (!failed[d])
        return;
    failed[d] = false;

    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid1) {
        const unsigned half = _layout.numDisks() / 2;
        const unsigned partner =
            d < half ? _layout.mirrorDisk(d) : d - half;
        if (failed[partner])
            sim::fatal("rebuildDisk: mirror partner %u also failed",
                       partner);
        disks[d] = disks[partner];
        return;
    }
    if (level == RaidLevel::Raid0)
        sim::fatal("rebuildDisk: RAID-0 has no redundancy");

    // Levels 3/5: the whole disk is the XOR of the survivors over the
    // parity-covered region.
    const std::uint64_t covered =
        _layout.numStripes() * _layout.unitBytes();
    std::fill(disks[d].begin(), disks[d].end(), 0);
    reconstructRange(d, 0, {disks[d].data(),
                            static_cast<std::size_t>(covered)});
}

bool
RaidArray::redundancyConsistent() const
{
    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid0)
        return true;
    if (failedCount() > 0)
        return false;

    if (level == RaidLevel::Raid1) {
        const unsigned half = _layout.numDisks() / 2;
        for (unsigned d = 0; d < half; ++d) {
            if (disks[d] != disks[_layout.mirrorDisk(d)])
                return false;
        }
        return true;
    }

    const std::uint64_t covered =
        _layout.numStripes() * _layout.unitBytes();
    std::vector<std::uint8_t> acc(
        static_cast<std::size_t>(std::min<std::uint64_t>(covered,
                                                         1u << 20)));
    // Check in chunks to bound memory.
    for (std::uint64_t base = 0; base < covered; base += acc.size()) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(acc.size(), covered - base));
        std::fill(acc.begin(), acc.begin() + n, 0);
        for (const auto &disk : disks)
            xorInto(acc.data(), disk.data() + base, n);
        if (!allZero({acc.data(), n}))
            return false;
    }
    return true;
}

} // namespace raid2::raid
