#include "raid/raid_array.hh"

#include <algorithm>
#include <cstring>

#include "raid/parity.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::raid {

RaidArray::RaidArray(const LayoutConfig &cfg, std::uint64_t disk_bytes)
    : _layout(cfg, disk_bytes), diskBytes(disk_bytes),
      disks(cfg.numDisks, std::vector<std::uint8_t>(disk_bytes, 0)),
      failed(cfg.numDisks, false), latents(cfg.numDisks)
{
    if (cfg.numDisks > kMaxFoldSources)
        sim::fatal("RaidArray: %u disks exceeds the %zu-way parity "
                   "fold limit",
                   cfg.numDisks, kMaxFoldSources);
}

/** Mirror partner of @p d, valid for either half of the array. */
static unsigned
mirrorPartnerOf(const RaidLayout &layout, unsigned d)
{
    const unsigned half = layout.numDisks() / 2;
    return d < half ? layout.mirrorDisk(d) : d - half;
}

unsigned
RaidArray::failedCount() const
{
    unsigned n = 0;
    for (bool f : failed)
        n += f ? 1 : 0;
    return n;
}

std::span<const std::uint8_t>
RaidArray::diskData(unsigned d) const
{
    return {disks.at(d).data(), disks.at(d).size()};
}

std::span<std::uint8_t>
RaidArray::diskData(unsigned d)
{
    return {disks.at(d).data(), disks.at(d).size()};
}

void
RaidArray::recomputeParity(std::uint64_t stripe)
{
    const std::uint64_t unit = _layout.unitBytes();
    const std::uint64_t base = stripe * unit;
    const unsigned pd = _layout.parityDisk(stripe);
    const unsigned K = _layout.dataUnitsPerStripe();
    const std::uint8_t *srcs[kMaxFoldSources];
    for (unsigned k = 0; k < K; ++k)
        srcs[k] = disks[_layout.dataDisk(stripe, k)].data() + base;
    xorFold(disks[pd].data() + base, srcs, K,
            static_cast<std::size_t>(unit));
    _parityRecomputes.inc();
}

/**
 * Walk the data units a logical range touches, in logical order:
 * fn(stripe, disk, disk_offset, logical_offset, bytes) per piece.
 * Valid for levels 3 and 5 — Level 3's constructor pins the unit to
 * the sector and its rows are logically contiguous, so the same
 * stripe arithmetic covers both.
 */
template <typename Fn>
static void
forEachDataUnit(const RaidLayout &layout, std::uint64_t off,
                std::uint64_t len, Fn &&fn)
{
    const std::uint64_t unit = layout.unitBytes();
    const std::uint64_t sdb = layout.stripeDataBytes();
    std::uint64_t pos = off;
    const std::uint64_t end = off + len;
    while (pos < end) {
        const std::uint64_t s = pos / sdb;
        const std::uint64_t in_stripe = pos % sdb;
        const unsigned k = static_cast<unsigned>(in_stripe / unit);
        const std::uint64_t in_unit = in_stripe % unit;
        const std::uint64_t n = std::min(end - pos, unit - in_unit);
        fn(s, layout.dataDisk(s, k), s * unit + in_unit, pos, n);
        pos += n;
    }
}

void
RaidArray::write(std::uint64_t off, std::span<const std::uint8_t> data)
{
    if (data.empty())
        return;
    const RaidLevel level = _layout.level();

    if (level == RaidLevel::Raid0 || level == RaidLevel::Raid1) {
        for (const DiskExtent &e :
             _layout.mapRange(off, data.size(), false)) {
            const std::uint8_t *src =
                data.data() + (e.logicalOffset - off);
            std::memcpy(disks[e.disk].data() + e.diskOffset, src,
                        static_cast<std::size_t>(e.bytes));
            // Overwriting a latent sector rewrites (remaps) it.
            eraseLatentRange(e.disk, e.diskOffset, e.bytes);
            if (level == RaidLevel::Raid1) {
                const unsigned m = _layout.mirrorDisk(e.disk);
                std::memcpy(disks[m].data() + e.diskOffset, src,
                            static_cast<std::size_t>(e.bytes));
                eraseLatentRange(m, e.diskOffset, e.bytes);
            }
        }
        return;
    }

    // Levels 3/5: stripe-aware.  Whole stripes take the single-pass
    // path — every data unit comes from the caller's buffer, so parity
    // is one k-way XOR fold straight from the source, with no pre-read
    // of the old contents.  Only the ragged edges (first/last partial
    // stripe) pay the read-modify-write.
    const std::uint64_t unit = _layout.unitBytes();
    const std::uint64_t sdb = _layout.stripeDataBytes();
    const unsigned K = _layout.dataUnitsPerStripe();
    std::uint64_t pos = off;
    const std::uint64_t end = off + data.size();
    const std::uint8_t *srcs[kMaxFoldSources];
    while (pos < end) {
        const std::uint64_t s = pos / sdb;
        const std::uint64_t in_stripe = pos % sdb;
        const std::uint64_t take = std::min(end - pos, sdb - in_stripe);
        const std::uint64_t base = s * unit;
        const std::uint8_t *src = data.data() + (pos - off);

        if (take == sdb) {
            // Full stripe.  New data lands in every buffer (including
            // a failed disk's — kept logically true by convention) and
            // fully overwrites any latent defect.
            for (unsigned k = 0; k < K; ++k) {
                const unsigned d = _layout.dataDisk(s, k);
                srcs[k] = src + k * unit;
                std::memcpy(disks[d].data() + base, srcs[k],
                            static_cast<std::size_t>(unit));
                eraseLatentRange(d, base, unit);
            }
            const unsigned pd = _layout.parityDisk(s);
            xorFold(disks[pd].data() + base, srcs, K,
                    static_cast<std::size_t>(unit));
            eraseLatentRange(pd, base, unit);
            _parityRecomputes.inc();
            _parityFullStripes.inc();
        } else {
            // Ragged edge: bring the stripe to a known-good state,
            // overlay the new bytes, recompute parity once.
            prepareStripeForUpdate(s);
            forEachDataUnit(
                _layout, pos, take,
                [&](std::uint64_t, unsigned d, std::uint64_t doff,
                    std::uint64_t lpos, std::uint64_t n) {
                    std::memcpy(disks[d].data() + doff,
                                data.data() + (lpos - off),
                                static_cast<std::size_t>(n));
                });
            recomputeParity(s);
        }
        pos += take;
    }
}

void
RaidArray::prepareStripeForUpdate(std::uint64_t s)
{
    const std::uint64_t unit = _layout.unitBytes();
    const std::uint64_t base = s * unit;
    // Parity is rewritten wholesale by recomputeParity, which heals
    // any latent defect there without reconstruction.
    eraseLatentRange(_layout.parityDisk(s), base, unit);
    for (unsigned k = 0; k < _layout.dataUnitsPerStripe(); ++k) {
        const unsigned d = _layout.dataDisk(s, k);
        if (failed[d]) {
            // Reconstruct the dead unit's pre-write content into its
            // buffer so the parity recompute re-encodes the bytes the
            // write does not touch.  Without this, a degraded
            // partial-stripe write would fold the destroyed buffer
            // into parity and lose the untouched region of the unit.
            reconstructRange(d, base,
                             {disks[d].data() + base,
                              static_cast<std::size_t>(unit)});
        } else {
            repairLatentIn(d, base, unit);
        }
    }
}

void
RaidArray::reconstructRange(unsigned dead, std::uint64_t disk_off,
                            std::span<std::uint8_t> out) const
{
    // Every aligned byte position forms a parity group across all
    // disks, so the missing disk's bytes are the XOR fold of the
    // others (one pass over out instead of numDisks-1).
    const std::uint8_t *srcs[kMaxFoldSources];
    std::size_t k = 0;
    for (unsigned d = 0; d < disks.size(); ++d) {
        if (d == dead)
            continue;
        if (failed[d])
            sim::fatal("RaidArray: double failure (disks %u and %u)", dead,
                       d);
        if (latentOverlaps(d, disk_off, out.size()))
            sim::fatal("RaidArray: range [%llu, +%zu) of disk %u is "
                       "unrecoverable: survivor %u has a latent error there",
                       (unsigned long long)disk_off, out.size(), dead, d);
        srcs[k++] = disks[d].data() + disk_off;
    }
    xorFold(out.data(), srcs, k, out.size());
}

bool
RaidArray::tryReconstructRange(unsigned dead, std::uint64_t disk_off,
                               std::span<std::uint8_t> out) const
{
    if (out.empty())
        return true;
    if (dead >= disks.size() || disk_off + out.size() > diskBytes)
        return false;
    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid0)
        return false;

    if (level == RaidLevel::Raid1) {
        const unsigned m = mirrorPartnerOf(_layout, dead);
        if (failed[m] || latentOverlaps(m, disk_off, out.size()))
            return false;
        std::memcpy(out.data(), disks[m].data() + disk_off, out.size());
        return true;
    }

    // Levels 3/5: parity only covers whole stripes.
    if (disk_off + out.size() > _layout.numStripes() * _layout.unitBytes())
        return false;
    // Vet every survivor before touching out: a second failure or a
    // survivor latent range means the fold would produce garbage.
    const std::uint8_t *srcs[kMaxFoldSources];
    std::size_t k = 0;
    for (unsigned d = 0; d < disks.size(); ++d) {
        if (d == dead)
            continue;
        if (failed[d] || latentOverlaps(d, disk_off, out.size()))
            return false;
        srcs[k++] = disks[d].data() + disk_off;
    }
    xorFold(out.data(), srcs, k, out.size());
    return true;
}

void
RaidArray::patchDiskRange(unsigned d, std::uint64_t off,
                          std::span<const std::uint8_t> data)
{
    if (d >= disks.size())
        sim::panic("patchDiskRange: bad disk %u", d);
    if (off + data.size() > diskBytes)
        sim::panic("patchDiskRange: range [%llu, +%zu) beyond disk",
                   (unsigned long long)off, data.size());
    if (failed[d])
        sim::panic("patchDiskRange: disk %u is failed", d);
    if (data.empty())
        return;
    std::memcpy(disks[d].data() + off, data.data(), data.size());
    eraseLatentRange(d, off, data.size());
}

bool
RaidArray::healRedundancyRange(unsigned d, std::uint64_t off,
                               std::uint64_t len)
{
    if (len == 0 || _layout.level() == RaidLevel::Raid0)
        return true;
    if (d >= disks.size() || failedCount() > 0)
        return false;
    const std::uint64_t end = std::min(off + len, diskBytes);
    if (off >= end)
        return true;

    if (_layout.level() == RaidLevel::Raid1) {
        // The primary copy holds the verified data; re-copy it onto
        // the mirror half regardless of which side was scanned.
        const unsigned half = _layout.numDisks() / 2;
        const unsigned p = d < half ? d : d - half;
        const unsigned m = _layout.mirrorDisk(p);
        // Heal known-garbled primary bytes from the mirror first, or
        // the copy below would launder them into the good side.
        repairLatentIn(p, off, end - off);
        std::memcpy(disks[m].data() + off, disks[p].data() + off,
                    static_cast<std::size_t>(end - off));
        eraseLatentRange(m, off, end - off);
        return true;
    }

    // Levels 3/5: re-derive parity for every stripe in the range where
    // @p d holds the parity unit (data units were verified upstream).
    const std::uint64_t unit = _layout.unitBytes();
    const std::uint64_t covered = _layout.numStripes() * unit;
    for (std::uint64_t s = off / unit;
         s * unit < std::min(end, covered); ++s) {
        if (_layout.parityDisk(s) == d) {
            // Repairs data-unit latents (and drops the parity-unit
            // latent record) before the recompute folds raw bytes.
            prepareStripeForUpdate(s);
            recomputeParity(s);
        }
    }
    return true;
}

void
RaidArray::readDiskRange(unsigned d, std::uint64_t off,
                         std::span<std::uint8_t> out) const
{
    const auto &lm = latents[d];
    const std::uint64_t end = off + out.size();
    std::uint64_t pos = off;
    while (pos < end) {
        // Does a latent interval cover pos?
        std::uint64_t lat_until = 0;
        auto it = lm.upper_bound(pos);
        if (it != lm.begin()) {
            const auto prev = std::prev(it);
            if (prev->first + prev->second > pos)
                lat_until = std::min(end, prev->first + prev->second);
        }
        if (lat_until > pos) {
            const std::size_t n =
                static_cast<std::size_t>(lat_until - pos);
            std::span<std::uint8_t> sub{out.data() + (pos - off), n};
            const RaidLevel level = _layout.level();
            if (level == RaidLevel::Raid1) {
                const unsigned m = mirrorPartnerOf(_layout, d);
                if (failed[m] || latentOverlaps(m, pos, n))
                    sim::fatal("RaidArray: latent range on disk %u "
                               "unrecoverable (mirror %u unusable)", d, m);
                std::memcpy(sub.data(), disks[m].data() + pos, n);
            } else if (level == RaidLevel::Raid0) {
                sim::fatal("RaidArray: RAID-0 cannot recover latent range "
                           "on disk %u", d);
            } else {
                reconstructRange(d, pos, sub);
            }
            _latentReconstructedBytes += n;
            pos = lat_until;
            continue;
        }
        // Clean up to the next latent interval (or the end).
        std::uint64_t clean_until = end;
        if (it != lm.end() && it->first < end)
            clean_until = it->first;
        std::memcpy(out.data() + (pos - off), disks[d].data() + pos,
                    static_cast<std::size_t>(clean_until - pos));
        pos = clean_until;
    }
}

void
RaidArray::read(std::uint64_t off, std::span<std::uint8_t> out) const
{
    if (out.empty())
        return;
    const RaidLevel level = _layout.level();

    if (level == RaidLevel::Raid3) {
        // Unit-at-a-time (unit == sector): each row's data is
        // logically contiguous, so this is straight memcpy except
        // where a failed disk or latent range forces reconstruction.
        forEachDataUnit(
            _layout, off, out.size(),
            [&](std::uint64_t, unsigned d, std::uint64_t doff,
                std::uint64_t lpos, std::uint64_t n) {
                std::span<std::uint8_t> dst{
                    out.data() + (lpos - off),
                    static_cast<std::size_t>(n)};
                if (failed[d])
                    reconstructRange(d, doff, dst);
                else
                    readDiskRange(d, doff, dst);
            });
        return;
    }

    for (const DiskExtent &e :
         _layout.mapRange(off, out.size(), false)) {
        std::uint8_t *dst = out.data() + (e.logicalOffset - off);
        unsigned src_disk = e.disk;
        if (failed[src_disk]) {
            if (level == RaidLevel::Raid1) {
                src_disk = _layout.mirrorDisk(e.disk);
                if (failed[src_disk])
                    sim::fatal("RaidArray: mirror pair %u/%u both failed",
                               e.disk, src_disk);
            } else if (level == RaidLevel::Raid5) {
                reconstructRange(e.disk, e.diskOffset,
                                 {dst, static_cast<std::size_t>(e.bytes)});
                continue;
            } else {
                sim::fatal("RaidArray: RAID-0 cannot survive disk %u",
                           e.disk);
            }
        }
        readDiskRange(src_disk, e.diskOffset,
                      {dst, static_cast<std::size_t>(e.bytes)});
    }
}

void
RaidArray::failDisk(unsigned d)
{
    if (d >= disks.size())
        sim::panic("failDisk: bad disk %u", d);
    failed[d] = true;
    std::fill(disks[d].begin(), disks[d].end(), 0xde);
    // The whole disk is gone; its latent defects go with it.
    latents[d].clear();
}

void
RaidArray::injectLatent(unsigned d, std::uint64_t off, std::uint64_t bytes)
{
    if (d >= disks.size())
        sim::panic("injectLatent: bad disk %u", d);
    if (off + bytes > diskBytes)
        sim::panic("injectLatent: range [%llu, +%llu) beyond disk",
                   (unsigned long long)off, (unsigned long long)bytes);
    if (bytes == 0 || failed[d])
        return;

    // Garble in place with a position-based pattern (idempotent, so
    // re-injecting an overlapping range is harmless).  The redundancy
    // still encodes the original bytes; only this copy is damaged.
    for (std::uint64_t i = 0; i < bytes; ++i) {
        const std::uint64_t p = off + i;
        disks[d][p] = static_cast<std::uint8_t>(0xb5 ^ p ^ (p >> 8));
    }

    // Merge into the interval map.
    std::uint64_t s = off, e = off + bytes;
    auto &lm = latents[d];
    auto it = lm.upper_bound(s);
    if (it != lm.begin())
        --it;
    while (it != lm.end() && it->first <= e) {
        const std::uint64_t iend = it->first + it->second;
        if (iend < s) {
            ++it;
            continue;
        }
        s = std::min(s, it->first);
        e = std::max(e, iend);
        it = lm.erase(it);
    }
    lm.emplace(s, e - s);
    ++_latentsInjected;
}

bool
RaidArray::latentOverlaps(unsigned d, std::uint64_t off,
                          std::uint64_t bytes) const
{
    const auto &lm = latents.at(d);
    if (lm.empty() || bytes == 0)
        return false;
    auto it = lm.upper_bound(off);
    if (it != lm.begin()) {
        const auto prev = std::prev(it);
        if (prev->first + prev->second > off)
            return true;
    }
    return it != lm.end() && it->first < off + bytes;
}

bool
RaidArray::latentCollision(unsigned d, std::uint64_t off,
                           std::uint64_t bytes) const
{
    for (unsigned o = 0; o < disks.size(); ++o) {
        if (o != d && latentOverlaps(o, off, bytes))
            return true;
    }
    return false;
}

void
RaidArray::repairLatent(unsigned d, std::uint64_t off, std::uint64_t bytes)
{
    if (d >= disks.size())
        sim::panic("repairLatent: bad disk %u", d);
    if (bytes == 0)
        return;
    if (failed[d])
        sim::panic("repairLatent: disk %u is failed", d);

    std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes));
    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid1) {
        const unsigned m = mirrorPartnerOf(_layout, d);
        if (failed[m] || latentOverlaps(m, off, bytes))
            sim::fatal("repairLatent: latent range on disk %u "
                       "unrecoverable (mirror %u unusable)", d, m);
        std::memcpy(buf.data(), disks[m].data() + off, buf.size());
    } else if (level == RaidLevel::Raid0) {
        sim::fatal("repairLatent: RAID-0 has no redundancy");
    } else {
        reconstructRange(d, off, {buf.data(), buf.size()});
    }
    std::memcpy(disks[d].data() + off, buf.data(), buf.size());
    eraseLatentRange(d, off, bytes);
    ++_latentRepairs;
}

void
RaidArray::repairLatentIn(unsigned d, std::uint64_t off, std::uint64_t bytes)
{
    const std::uint64_t end = off + bytes;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> todo;
    for (const auto &[s, len] : latents[d]) {
        const std::uint64_t e = s + len;
        if (e <= off || s >= end)
            continue;
        const std::uint64_t cs = std::max(s, off);
        todo.emplace_back(cs, std::min(e, end) - cs);
    }
    for (const auto &[s, len] : todo)
        repairLatent(d, s, len);
}

void
RaidArray::eraseLatentRange(unsigned d, std::uint64_t off,
                            std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    auto &lm = latents[d];
    const std::uint64_t end = off + bytes;
    auto it = lm.upper_bound(off);
    if (it != lm.begin())
        --it;
    while (it != lm.end() && it->first < end) {
        const std::uint64_t istart = it->first;
        const std::uint64_t iend = it->first + it->second;
        if (iend <= off) {
            ++it;
            continue;
        }
        it = lm.erase(it);
        if (istart < off)
            lm.emplace(istart, off - istart);
        if (iend > end)
            it = lm.emplace(end, iend - end).first;
    }
}

std::uint64_t
RaidArray::scrub()
{
    std::uint64_t repaired = 0;
    for (unsigned d = 0; d < disks.size(); ++d) {
        if (failed[d])
            continue;
        const auto todo = latents[d]; // copy: repairLatent mutates
        for (const auto &[s, len] : todo) {
            repairLatent(d, s, len);
            ++repaired;
        }
    }
    return repaired;
}

std::uint64_t
RaidArray::latentCount() const
{
    std::uint64_t n = 0;
    for (const auto &lm : latents)
        n += lm.size();
    return n;
}

std::uint64_t
RaidArray::latentBytes() const
{
    std::uint64_t n = 0;
    for (const auto &lm : latents)
        for (const auto &[s, len] : lm)
            n += len;
    return n;
}

void
RaidArray::rebuildDisk(unsigned d)
{
    if (d >= disks.size())
        sim::panic("rebuildDisk: bad disk %u", d);
    if (!failed[d])
        return;
    failed[d] = false;

    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid1) {
        const unsigned half = _layout.numDisks() / 2;
        const unsigned partner =
            d < half ? _layout.mirrorDisk(d) : d - half;
        if (failed[partner])
            sim::fatal("rebuildDisk: mirror partner %u also failed",
                       partner);
        disks[d] = disks[partner];
        return;
    }
    if (level == RaidLevel::Raid0)
        sim::fatal("rebuildDisk: RAID-0 has no redundancy");

    // Levels 3/5: the whole disk is the XOR of the survivors over the
    // parity-covered region.
    const std::uint64_t covered =
        _layout.numStripes() * _layout.unitBytes();
    std::fill(disks[d].begin(), disks[d].end(), 0);
    reconstructRange(d, 0, {disks[d].data(),
                            static_cast<std::size_t>(covered)});
}

bool
RaidArray::redundancyConsistent() const
{
    const RaidLevel level = _layout.level();
    if (level == RaidLevel::Raid0)
        return true;
    if (failedCount() > 0)
        return false;

    if (level == RaidLevel::Raid1) {
        const unsigned half = _layout.numDisks() / 2;
        for (unsigned d = 0; d < half; ++d) {
            if (disks[d] != disks[_layout.mirrorDisk(d)])
                return false;
        }
        return true;
    }

    const std::uint64_t covered =
        _layout.numStripes() * _layout.unitBytes();
    std::vector<std::uint8_t> acc(
        static_cast<std::size_t>(std::min<std::uint64_t>(covered,
                                                         1u << 20)));
    // Check in chunks to bound memory.
    const std::uint8_t *srcs[kMaxFoldSources];
    for (std::uint64_t base = 0; base < covered; base += acc.size()) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(acc.size(), covered - base));
        for (unsigned d = 0; d < disks.size(); ++d)
            srcs[d] = disks[d].data() + base;
        xorFold(acc.data(), srcs, disks.size(), n);
        if (!allZero({acc.data(), n}))
            return false;
    }
    return true;
}

void
RaidArray::registerStats(sim::StatsRegistry &reg,
                         const std::string &prefix) const
{
    reg.add(prefix + ".parity.recomputes", _parityRecomputes);
    reg.add(prefix + ".parity.fullStripeWrites", _parityFullStripes);
}

} // namespace raid2::raid
