/**
 * @file
 * Functional RAID array: real bytes, real parity.
 *
 * This is the data plane of the reproduction: an in-memory array of
 * member disks with true XOR parity maintenance, mirrored writes,
 * degraded-mode reconstruction and full rebuild.  The timing plane
 * (SimArray) shares the same RaidLayout, so every timed experiment has
 * a functional twin whose correctness the tests assert.
 */

#ifndef RAID2_RAID_RAID_ARRAY_HH
#define RAID2_RAID_RAID_ARRAY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "raid/raid_layout.hh"

namespace raid2::raid {

/** In-memory functional disk array with parity. */
class RaidArray
{
  public:
    RaidArray(const LayoutConfig &cfg, std::uint64_t disk_bytes);

    const RaidLayout &layout() const { return _layout; }
    std::uint64_t capacity() const { return _layout.dataCapacity(); }
    unsigned numDisks() const { return _layout.numDisks(); }

    /** Write @p data at logical byte @p off, maintaining redundancy. */
    void write(std::uint64_t off, std::span<const std::uint8_t> data);

    /** Read into @p out from logical byte @p off; reconstructs data
     *  living on a failed disk from the survivors. */
    void read(std::uint64_t off, std::span<std::uint8_t> out) const;

    /** Mark a disk failed (its contents are destroyed). */
    void failDisk(unsigned d);

    /** Rebuild a failed disk's contents from the survivors. */
    void rebuildDisk(unsigned d);

    bool isFailed(unsigned d) const { return failed.at(d); }
    unsigned failedCount() const;

    /** True if every stripe's parity equals the XOR of its data (and
     *  every mirror pair matches).  Levels 0 trivially true. */
    bool redundancyConsistent() const;

    /** Raw member-disk bytes (tests / fault injection). */
    std::span<const std::uint8_t> diskData(unsigned d) const;
    std::span<std::uint8_t> diskData(unsigned d);

  private:
    void recomputeParity(std::uint64_t stripe);
    void reconstructRange(unsigned dead, std::uint64_t disk_off,
                          std::span<std::uint8_t> out) const;

    RaidLayout _layout;
    std::uint64_t diskBytes;
    std::vector<std::vector<std::uint8_t>> disks;
    std::vector<bool> failed;
};

} // namespace raid2::raid

#endif // RAID2_RAID_RAID_ARRAY_HH
