/**
 * @file
 * Functional RAID array: real bytes, real parity.
 *
 * This is the data plane of the reproduction: an in-memory array of
 * member disks with true XOR parity maintenance, mirrored writes,
 * degraded-mode reconstruction and full rebuild.  The timing plane
 * (SimArray) shares the same RaidLayout, so every timed experiment has
 * a functional twin whose correctness the tests assert.
 */

#ifndef RAID2_RAID_RAID_ARRAY_HH
#define RAID2_RAID_RAID_ARRAY_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "raid/raid_layout.hh"
#include "sim/stats.hh"

namespace raid2::raid {

/** In-memory functional disk array with parity. */
class RaidArray
{
  public:
    RaidArray(const LayoutConfig &cfg, std::uint64_t disk_bytes);

    const RaidLayout &layout() const { return _layout; }
    std::uint64_t capacity() const { return _layout.dataCapacity(); }
    unsigned numDisks() const { return _layout.numDisks(); }

    /** Write @p data at logical byte @p off, maintaining redundancy. */
    void write(std::uint64_t off, std::span<const std::uint8_t> data);

    /** Read into @p out from logical byte @p off; reconstructs data
     *  living on a failed disk from the survivors. */
    void read(std::uint64_t off, std::span<std::uint8_t> out) const;

    /** Mark a disk failed (its contents are destroyed). */
    void failDisk(unsigned d);

    /** Rebuild a failed disk's contents from the survivors. */
    void rebuildDisk(unsigned d);

    bool isFailed(unsigned d) const { return failed.at(d); }
    unsigned failedCount() const;

    /** @{ Latent (unreadable) media errors.
     *
     * A latent range models a grown media defect: the stored bytes are
     * garbled in place, and reads route around them by reconstructing
     * from redundancy (parity for levels 3/5, the mirror for level 1).
     * The redundancy still encodes the original data, so reconstruction
     * recovers it exactly; repairLatent() writes it back and clears the
     * defect, which is what the scrubber does in bulk.
     *
     * Recoverability invariant (enforced with fatal errors, maintained
     * by fault::FaultController): latent ranges on different disks
     * never overlap in disk-offset space, and no latents exist while a
     * disk is failed.  Either condition would make the range
     * unrecoverable — a data-loss event, which the controller accounts
     * for instead of injecting.
     */
    /** Garble @p bytes at disk offset @p off of disk @p d. */
    void injectLatent(unsigned d, std::uint64_t off, std::uint64_t bytes);
    /** True if disk @p d has a latent range intersecting [off, off+bytes). */
    bool latentOverlaps(unsigned d, std::uint64_t off,
                        std::uint64_t bytes) const;
    /** True if any disk other than @p d has a latent range intersecting
     *  [off, off+bytes) — i.e. reconstructing @p d there would fail. */
    bool latentCollision(unsigned d, std::uint64_t off,
                         std::uint64_t bytes) const;
    /** Reconstruct the latent range from redundancy, write it back, and
     *  clear the defect. */
    void repairLatent(unsigned d, std::uint64_t off, std::uint64_t bytes);
    /** Repair every outstanding latent range.  @return ranges repaired. */
    std::uint64_t scrub();
    /** Outstanding latent ranges / bytes across all disks. */
    std::uint64_t latentCount() const;
    std::uint64_t latentBytes() const;
    const std::map<std::uint64_t, std::uint64_t> &
    latentIntervals(unsigned d) const
    {
        return latents.at(d);
    }
    /** @{ Cumulative counters (reads served via reconstruction, repairs). */
    std::uint64_t latentReconstructedBytes() const
    {
        return _latentReconstructedBytes;
    }
    std::uint64_t latentRepairs() const { return _latentRepairs; }
    std::uint64_t latentsInjected() const { return _latentsInjected; }
    /** @} */
    /** @} */

    /** @{ Parity-work counters (levels 3/5).
     *
     * parity.recomputes counts every parity computation the array
     * performs — one per stripe whose parity is (re)generated, by
     * either path.  parity.fullStripeWrites is the subset served by
     * the single-pass full-stripe path (parity folded straight from
     * the caller's buffer, no pre-read).  A full-segment LFS write
     * should show recomputes == stripes touched — anything higher is
     * redundant parity work. */
    const sim::Scalar &parityRecomputes() const
    {
        return _parityRecomputes;
    }
    const sim::Scalar &parityFullStripeWrites() const
    {
        return _parityFullStripes;
    }
    /** Register "<prefix>.parity.recomputes" /
     *  "<prefix>.parity.fullStripeWrites". */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;
    /** @} */

    /** @{ Integrity-repair primitives (see src/integrity/).
     *
     * tryReconstructRange() is the non-fatal sibling of the internal
     * reconstruction path: it recovers what disk @p dead should hold at
     * [disk_off, disk_off+out.size()) from redundancy (the mirror for
     * level 1, the XOR of the survivors for levels 3/5) and reports
     * failure — RAID-0, a second failed disk, a survivor latent range
     * overlapping the request, or a range beyond the parity-covered
     * region — by returning false with @p out untouched.  It never
     * returns stale or partially reconstructed bytes.
     */
    bool tryReconstructRange(unsigned dead, std::uint64_t disk_off,
                             std::span<std::uint8_t> out) const;
    /** Patch verified bytes straight into disk @p d's buffer without
     *  touching parity (the parity already encodes @p data — this is
     *  the repair-writeback step, same shape as repairLatent). */
    void patchDiskRange(unsigned d, std::uint64_t off,
                        std::span<const std::uint8_t> data);
    /** Re-derive the redundancy covering [off, off+len) of disk @p d
     *  from (verified) data: recompute parity for stripes where @p d
     *  is the parity disk, or re-copy the mirror pair for level 1.
     *  @return false if the array is degraded (heal needs all disks). */
    bool healRedundancyRange(unsigned d, std::uint64_t off,
                             std::uint64_t len);
    /** @} */

    /** True if every stripe's parity equals the XOR of its data (and
     *  every mirror pair matches).  Levels 0 trivially true. */
    bool redundancyConsistent() const;

    /** Raw member-disk bytes (tests / fault injection). */
    std::span<const std::uint8_t> diskData(unsigned d) const;
    std::span<std::uint8_t> diskData(unsigned d);

  private:
    void recomputeParity(std::uint64_t stripe);
    void reconstructRange(unsigned dead, std::uint64_t disk_off,
                          std::span<std::uint8_t> out) const;
    /** Copy [off, off+out.size()) of disk @p d into @p out, routing
     *  latent subranges through reconstruction. */
    void readDiskRange(unsigned d, std::uint64_t off,
                       std::span<std::uint8_t> out) const;
    /** Make stripe @p s safe to recompute parity over: repair latent
     *  ranges in its units and, if a data unit sits on a failed disk,
     *  reconstruct that unit's content into the dead buffer first. */
    void prepareStripeForUpdate(std::uint64_t s);
    /** Repair the portions of d's latent ranges inside [off, off+bytes). */
    void repairLatentIn(unsigned d, std::uint64_t off, std::uint64_t bytes);
    /** Forget (without repairing) latent state in [off, off+bytes). */
    void eraseLatentRange(unsigned d, std::uint64_t off,
                          std::uint64_t bytes);

    RaidLayout _layout;
    std::uint64_t diskBytes;
    std::vector<std::vector<std::uint8_t>> disks;
    std::vector<bool> failed;
    /** Per-disk latent ranges: start offset -> length, non-overlapping. */
    std::vector<std::map<std::uint64_t, std::uint64_t>> latents;
    mutable std::uint64_t _latentReconstructedBytes = 0;
    std::uint64_t _latentRepairs = 0;
    std::uint64_t _latentsInjected = 0;
    sim::Scalar _parityRecomputes;
    sim::Scalar _parityFullStripes;
};

} // namespace raid2::raid

#endif // RAID2_RAID_RAID_ARRAY_HH
