#include "raid/raid_layout.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::raid {

const char *
raidLevelName(RaidLevel level)
{
    switch (level) {
      case RaidLevel::Raid0: return "RAID-0";
      case RaidLevel::Raid1: return "RAID-1";
      case RaidLevel::Raid3: return "RAID-3";
      case RaidLevel::Raid5: return "RAID-5";
    }
    return "RAID-?";
}

RaidLayout::RaidLayout(const LayoutConfig &cfg_,
                       std::uint64_t disk_capacity_bytes)
    : cfg(cfg_), diskCapacity(disk_capacity_bytes)
{
    if (cfg.numDisks < 2)
        sim::fatal("RaidLayout: need at least 2 disks");
    if (cfg.level == RaidLevel::Raid1 && cfg.numDisks % 2 != 0)
        sim::fatal("RaidLayout: RAID-1 needs an even disk count");
    if (cfg.stripeUnitBytes == 0)
        sim::fatal("RaidLayout: zero stripe unit");
    if (cfg.level == RaidLevel::Raid3) {
        // Level 3 interleaves at sector grain.
        cfg.stripeUnitBytes = cfg.sectorBytes;
    }
    if (diskCapacity < cfg.stripeUnitBytes)
        sim::fatal("RaidLayout: disk smaller than one stripe unit");
}

unsigned
RaidLayout::dataUnitsPerStripe() const
{
    switch (cfg.level) {
      case RaidLevel::Raid0: return cfg.numDisks;
      case RaidLevel::Raid1: return cfg.numDisks / 2;
      case RaidLevel::Raid3: return cfg.numDisks - 1;
      case RaidLevel::Raid5: return cfg.numDisks - 1;
    }
    return 0;
}

std::uint64_t
RaidLayout::stripeDataBytes() const
{
    return std::uint64_t(dataUnitsPerStripe()) * cfg.stripeUnitBytes;
}

std::uint64_t
RaidLayout::numStripes() const
{
    return diskCapacity / cfg.stripeUnitBytes;
}

std::uint64_t
RaidLayout::dataCapacity() const
{
    return numStripes() * stripeDataBytes();
}

std::uint64_t
RaidLayout::stripeOf(std::uint64_t off) const
{
    return off / stripeDataBytes();
}

unsigned
RaidLayout::parityDisk(std::uint64_t stripe) const
{
    switch (cfg.level) {
      case RaidLevel::Raid3:
        return cfg.numDisks - 1;
      case RaidLevel::Raid5:
        // Left-symmetric rotation.
        return cfg.numDisks - 1 -
               static_cast<unsigned>(stripe % cfg.numDisks);
      default:
        sim::panic("parityDisk on %s", raidLevelName(cfg.level));
    }
}

unsigned
RaidLayout::dataDisk(std::uint64_t stripe, unsigned k) const
{
    if (k >= dataUnitsPerStripe())
        sim::panic("dataDisk: unit %u out of range", k);
    switch (cfg.level) {
      case RaidLevel::Raid0:
        return k;
      case RaidLevel::Raid1:
        return k;                       // primaries are disks [0, N/2)
      case RaidLevel::Raid3:
        return k;                       // data disks [0, N-1)
      case RaidLevel::Raid5:
        return (parityDisk(stripe) + 1 + k) % cfg.numDisks;
    }
    return 0;
}

unsigned
RaidLayout::mirrorDisk(unsigned primary) const
{
    if (cfg.level != RaidLevel::Raid1)
        sim::panic("mirrorDisk on %s", raidLevelName(cfg.level));
    return primary + cfg.numDisks / 2;
}

DiskExtent
RaidLayout::dataExtent(std::uint64_t stripe, unsigned k,
                       std::uint64_t off_in_unit, std::uint64_t bytes) const
{
    if (off_in_unit + bytes > cfg.stripeUnitBytes)
        sim::panic("dataExtent: slice exceeds unit");
    DiskExtent e;
    e.disk = dataDisk(stripe, k);
    e.diskOffset = stripe * cfg.stripeUnitBytes + off_in_unit;
    e.bytes = bytes;
    e.logicalOffset = stripe * stripeDataBytes() +
                      std::uint64_t(k) * cfg.stripeUnitBytes + off_in_unit;
    return e;
}

DiskExtent
RaidLayout::parityExtent(std::uint64_t stripe) const
{
    DiskExtent e;
    e.disk = parityDisk(stripe);
    e.diskOffset = stripe * cfg.stripeUnitBytes;
    e.bytes = cfg.stripeUnitBytes;
    return e;
}

void
RaidLayout::checkRange(std::uint64_t off, std::uint64_t len) const
{
    if (len == 0)
        sim::panic("RaidLayout: zero-length range");
    if (off + len > dataCapacity())
        sim::panic("RaidLayout: range [%llu, +%llu) beyond capacity %llu",
                   (unsigned long long)off, (unsigned long long)len,
                   (unsigned long long)dataCapacity());
}

std::vector<StripeSpan>
RaidLayout::mapStripes(std::uint64_t off, std::uint64_t len) const
{
    checkRange(off, len);
    if (cfg.level == RaidLevel::Raid3)
        sim::panic("mapStripes is not defined for RAID-3");

    std::vector<StripeSpan> spans;
    const std::uint64_t sdb = stripeDataBytes();
    std::uint64_t pos = off;
    std::uint64_t end = off + len;
    while (pos < end) {
        const std::uint64_t stripe = pos / sdb;
        const std::uint64_t in_stripe = pos % sdb;
        const std::uint64_t take =
            std::min(end - pos, sdb - in_stripe);

        StripeSpan s;
        s.stripe = stripe;
        s.firstUnit = static_cast<unsigned>(in_stripe /
                                            cfg.stripeUnitBytes);
        s.offsetInUnit = in_stripe % cfg.stripeUnitBytes;
        const std::uint64_t last = in_stripe + take - 1;
        s.unitCount = static_cast<unsigned>(last / cfg.stripeUnitBytes) -
                      s.firstUnit + 1;
        s.bytes = take;
        s.logicalOffset = pos;
        spans.push_back(s);
        pos += take;
    }
    return spans;
}

std::vector<DiskExtent>
RaidLayout::mapRange(std::uint64_t off, std::uint64_t len,
                     bool coalesce) const
{
    checkRange(off, len);

    std::vector<DiskExtent> extents;
    if (cfg.level == RaidLevel::Raid3) {
        // Every range spreads over all data disks at sector grain; for
        // timing purposes each data disk sees one contiguous extent of
        // the rows touched.
        const unsigned data_disks = cfg.numDisks - 1;
        const std::uint64_t sector = cfg.sectorBytes;
        const std::uint64_t row_bytes = sector * data_disks;
        const std::uint64_t row0 = off / row_bytes;
        const std::uint64_t row1 = (off + len - 1) / row_bytes;
        const std::uint64_t rows = row1 - row0 + 1;
        for (unsigned d = 0; d < data_disks; ++d) {
            DiskExtent e;
            e.disk = d;
            e.diskOffset = row0 * sector;
            e.bytes = rows * sector;
            e.logicalOffset = off; // representative only
            extents.push_back(e);
        }
        return extents;
    }

    for (const StripeSpan &s : mapStripes(off, len)) {
        std::uint64_t in_unit = s.offsetInUnit;
        std::uint64_t left = s.bytes;
        for (unsigned k = s.firstUnit; left > 0; ++k) {
            const std::uint64_t take =
                std::min(left, cfg.stripeUnitBytes - in_unit);
            DiskExtent e = dataExtent(s.stripe, k, in_unit, take);
            // Coalesce with a previous physically-contiguous extent on
            // the same disk (timing view only; see header).
            bool merged = false;
            if (coalesce) {
                for (auto &prev : extents) {
                    if (prev.disk == e.disk &&
                        prev.diskOffset + prev.bytes == e.diskOffset) {
                        prev.bytes += e.bytes;
                        merged = true;
                        break;
                    }
                }
            }
            if (!merged)
                extents.push_back(e);
            left -= take;
            in_unit = 0;
        }
    }
    return extents;
}

void
RaidLayout::mapByte(std::uint64_t logical, unsigned &disk,
                    std::uint64_t &disk_byte) const
{
    if (logical >= dataCapacity())
        sim::panic("mapByte beyond capacity");
    if (cfg.level == RaidLevel::Raid3) {
        const unsigned data_disks = cfg.numDisks - 1;
        const std::uint64_t sector = cfg.sectorBytes;
        const std::uint64_t lsec = logical / sector;
        const std::uint64_t in_sec = logical % sector;
        disk = static_cast<unsigned>(lsec % data_disks);
        disk_byte = (lsec / data_disks) * sector + in_sec;
        return;
    }
    const std::uint64_t sdb = stripeDataBytes();
    const std::uint64_t stripe = logical / sdb;
    const std::uint64_t in_stripe = logical % sdb;
    const unsigned k =
        static_cast<unsigned>(in_stripe / cfg.stripeUnitBytes);
    disk = dataDisk(stripe, k);
    disk_byte =
        stripe * cfg.stripeUnitBytes + in_stripe % cfg.stripeUnitBytes;
}

} // namespace raid2::raid
