/**
 * @file
 * RAID address mapping.
 *
 * Maps the array's logical byte space onto per-disk locations for the
 * RAID levels the paper discusses: Level 0 (striping only), Level 1
 * (mirrored pairs), Level 3 (fine-grain interleave with a dedicated
 * parity disk, as in HPDS, §4.2) and Level 5 (rotated block-interleaved
 * parity, the RAID-II configuration, §2.3).  Level 5 uses the
 * left-symmetric layout, which keeps sequential runs on each disk
 * contiguous.
 */

#ifndef RAID2_RAID_RAID_LAYOUT_HH
#define RAID2_RAID_RAID_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace raid2::raid {

enum class RaidLevel { Raid0, Raid1, Raid3, Raid5 };

const char *raidLevelName(RaidLevel level);

/** Static array-geometry configuration. */
struct LayoutConfig
{
    RaidLevel level = RaidLevel::Raid5;
    unsigned numDisks = 0;
    /** Striping unit; ignored for Level 3 (sector interleave). */
    std::uint64_t stripeUnitBytes = 64 * 1024;
    /** Sector size used by Level 3 interleaving. */
    std::uint32_t sectorBytes = 512;
};

/** A contiguous range on one member disk. */
struct DiskExtent
{
    unsigned disk = 0;
    std::uint64_t diskOffset = 0;
    std::uint64_t bytes = 0;
    /** Logical byte this extent's first byte corresponds to (data
     *  extents only; parity extents use ~0). */
    std::uint64_t logicalOffset = ~std::uint64_t(0);

    bool
    isParity() const
    {
        return logicalOffset == ~std::uint64_t(0);
    }
};

/** The slice of one stripe touched by a logical range. */
struct StripeSpan
{
    std::uint64_t stripe = 0;
    unsigned firstUnit = 0;       // first data unit index touched
    unsigned unitCount = 0;       // number of data units touched
    std::uint64_t offsetInUnit = 0; // byte offset within the first unit
    std::uint64_t bytes = 0;      // data bytes in this stripe
    std::uint64_t logicalOffset = 0;
};

/** Logical-to-physical mapping for one array geometry. */
class RaidLayout
{
  public:
    RaidLayout(const LayoutConfig &cfg, std::uint64_t disk_capacity_bytes);

    RaidLevel level() const { return cfg.level; }
    unsigned numDisks() const { return cfg.numDisks; }
    std::uint64_t unitBytes() const { return cfg.stripeUnitBytes; }

    /** Data units per stripe (excludes parity/mirror redundancy). */
    unsigned dataUnitsPerStripe() const;

    /** Data bytes per stripe. */
    std::uint64_t stripeDataBytes() const;

    /** Number of stripes the disk capacity provides. */
    std::uint64_t numStripes() const;

    /** Usable logical capacity in bytes. */
    std::uint64_t dataCapacity() const;

    /** Stripe index containing logical byte @p off. */
    std::uint64_t stripeOf(std::uint64_t off) const;

    /**
     * Disk holding parity for @p stripe (Levels 3 and 5 only;
     * left-symmetric rotation for Level 5).
     */
    unsigned parityDisk(std::uint64_t stripe) const;

    /** Disk holding data unit @p k of @p stripe. */
    unsigned dataDisk(std::uint64_t stripe, unsigned k) const;

    /** Mirror partner of a Level 1 primary disk. */
    unsigned mirrorDisk(unsigned primary) const;

    /** Extent of data unit @p k of @p stripe, restricted to
     *  [@p off_in_unit, @p off_in_unit + @p bytes). */
    DiskExtent dataExtent(std::uint64_t stripe, unsigned k,
                          std::uint64_t off_in_unit,
                          std::uint64_t bytes) const;

    /** Extent of the parity unit of @p stripe. */
    DiskExtent parityExtent(std::uint64_t stripe) const;

    /**
     * Decompose [off, off+len) into per-disk data extents.  Level 3
     * spreads every range across all data disks at sector grain.
     *
     * With @p coalesce, physically contiguous runs on the same disk
     * merge into one extent — the left-symmetric layout makes
     * sequential ranges one command per disk.  Merged extents are
     * correct for *timing* but their bytes are logically strided, so
     * functional copies must use @p coalesce = false (each returned
     * extent then maps one logically contiguous piece).
     */
    std::vector<DiskExtent> mapRange(std::uint64_t off,
                                     std::uint64_t len,
                                     bool coalesce = true) const;

    /** Decompose [off, off+len) into per-stripe spans (Levels 0/1/5). */
    std::vector<StripeSpan> mapStripes(std::uint64_t off,
                                       std::uint64_t len) const;

    /**
     * Exact per-byte map for functional I/O: logical byte -> (disk,
     * disk byte).  Valid for all levels (Level 1 returns the primary).
     */
    void mapByte(std::uint64_t logical, unsigned &disk,
                 std::uint64_t &disk_byte) const;

  private:
    void checkRange(std::uint64_t off, std::uint64_t len) const;

    LayoutConfig cfg;
    std::uint64_t diskCapacity;
};

} // namespace raid2::raid

#endif // RAID2_RAID_RAID_LAYOUT_HH
