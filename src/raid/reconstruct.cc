#include "raid/reconstruct.hh"

#include "sim/logging.hh"

namespace raid2::raid {

RebuildJob::RebuildJob(sim::EventQueue &eq_, SimArray &array_,
                       unsigned dead_, unsigned window_)
    : eq(eq_), array(array_), dead(dead_), window(window_),
      total(array_.layout().numStripes())
{
    if (!array.isFailed(dead))
        sim::fatal("RebuildJob: disk %u is not failed", dead);
    if (window == 0)
        sim::fatal("RebuildJob: zero window");
}

void
RebuildJob::start(std::function<void()> done_)
{
    done = std::move(done_);
    pump();
}

void
RebuildJob::pump()
{
    while (inFlight < window && next < total)
        rebuildStripe(next++);
    if (inFlight == 0 && next == total) {
        array.restoreDisk(dead);
        if (done)
            done();
    }
}

void
RebuildJob::rebuildStripe(std::uint64_t stripe)
{
    ++inFlight;
    const std::uint64_t unit = array.layout().unitBytes();
    const std::uint64_t base = stripe * unit;
    const unsigned n = array.layout().numDisks();

    auto remaining = std::make_shared<unsigned>(n - 1);
    auto on_read = [this, remaining, base, unit, n] {
        if (--*remaining > 0)
            return;
        array.board().parity().pass(
            unit * (n - 1), unit, [this, base, unit] {
                array.rawDiskWrite(dead, base, unit, [this] {
                    ++_stripesDone;
                    --inFlight;
                    pump();
                });
            });
    };
    for (unsigned d = 0; d < n; ++d) {
        if (d == dead)
            continue;
        if (array.isFailed(d))
            sim::fatal("RebuildJob: second failure on disk %u", d);
        array.rawDiskRead(d, base, unit, on_read);
    }
}

} // namespace raid2::raid
