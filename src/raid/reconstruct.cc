#include "raid/reconstruct.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::raid {

RebuildJob::RebuildJob(sim::EventQueue &eq_, SimArray &array_,
                       unsigned dead_, unsigned window_,
                       sim::Tick inter_stripe_delay)
    : eq(eq_), array(array_), dead(dead_), window(window_),
      delay(inter_stripe_delay), total(array_.layout().numStripes())
{
    if (!array.isFailed(dead))
        sim::fatal("RebuildJob: disk %u is not failed", dead);
    if (window == 0)
        sim::fatal("RebuildJob: zero window");
}

void
RebuildJob::start(std::function<void()> done_)
{
    done = std::move(done_);
    _startTick = eq.now();
    pump();
}

double
RebuildJob::durationMs() const
{
    const sim::Tick end = _finished ? _endTick : eq.now();
    return sim::ticksToMs(end - _startTick);
}

double
RebuildJob::stripesPerSec() const
{
    const double sec = durationMs() / 1e3;
    return sec > 0 ? static_cast<double>(_stripesDone) / sec : 0.0;
}

void
RebuildJob::pump()
{
    while (inFlight < window && next < total) {
        if (delay > 0) {
            const sim::Tick now = eq.now();
            if (now < nextLaunchAt) {
                // Throttled: resume when the spacing allows the next
                // launch.  One wakeup at a time; pump re-checks.
                if (!wakeupPending) {
                    wakeupPending = true;
                    eq.schedule(nextLaunchAt, [this] {
                        wakeupPending = false;
                        pump();
                    });
                }
                break;
            }
            nextLaunchAt = now + delay;
        }
        rebuildStripe(next++);
    }
    if (inFlight == 0 && next == total && !_finished) {
        _finished = true;
        _endTick = eq.now();
        array.restoreDisk(dead);
        if (done)
            done();
    }
}

void
RebuildJob::rebuildStripe(std::uint64_t stripe)
{
    ++inFlight;
    const std::uint64_t unit = array.layout().unitBytes();
    const std::uint64_t base = stripe * unit;
    const unsigned n = array.layout().numDisks();

    auto remaining = std::make_shared<unsigned>(n - 1);
    auto on_read = [this, remaining, base, unit, n] {
        if (--*remaining > 0)
            return;
        array.board().parity().pass(
            unit * (n - 1), unit, [this, base, unit] {
                array.rawDiskWrite(dead, base, unit, [this] {
                    ++_stripesDone;
                    --inFlight;
                    pump();
                });
            });
    };
    for (unsigned d = 0; d < n; ++d) {
        if (d == dead)
            continue;
        if (array.isFailed(d))
            sim::fatal("RebuildJob: second failure on disk %u", d);
        array.rawDiskRead(d, base, unit, on_read);
    }
}

void
RebuildJob::registerStats(sim::StatsRegistry &reg,
                          const std::string &prefix) const
{
    reg.addGauge(prefix + ".stripes_done",
                 [this] { return static_cast<double>(_stripesDone); });
    reg.addGauge(prefix + ".stripes_total",
                 [this] { return static_cast<double>(total); });
    reg.addGauge(prefix + ".finished",
                 [this] { return _finished ? 1.0 : 0.0; });
    reg.addGauge(prefix + ".duration_ms",
                 [this] { return durationMs(); });
    reg.addGauge(prefix + ".stripes_per_sec",
                 [this] { return stripesPerSec(); });
}

} // namespace raid2::raid
