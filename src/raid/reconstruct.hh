/**
 * @file
 * Timed on-line reconstruction of a failed member disk.
 *
 * Sweeps the array stripe by stripe: read the surviving units, run a
 * parity pass, write the result to the replacement drive.  A window of
 * concurrent stripes keeps the datapath busy while bounding XBUS
 * buffer use, and an optional inter-stripe delay throttles the sweep
 * so foreground traffic keeps a share of the datapath — the classic
 * rebuild-rate vs. MTTR trade (Thomasian, arXiv:1801.08873).
 * (Reliability policy itself is out of the paper's scope —
 * "Techniques for maximizing reliability are beyond the scope of
 * this paper" §2.3 — but degraded operation is needed by the examples
 * and the RAID-3-vs-5 comparison of §4.2.)
 */

#ifndef RAID2_RAID_RECONSTRUCT_HH
#define RAID2_RAID_RECONSTRUCT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "raid/sim_array.hh"

namespace raid2::raid {

/** One timed rebuild of a failed disk in a SimArray. */
class RebuildJob
{
  public:
    /**
     * @param array   degraded array (disk @p dead must be failed)
     * @param dead    the disk being rebuilt in place
     * @param window  concurrent stripes in flight
     * @param inter_stripe_delay  minimum tick spacing between stripe
     *                launches (0 = rebuild at full datapath speed)
     */
    RebuildJob(sim::EventQueue &eq, SimArray &array, unsigned dead,
               unsigned window = 4, sim::Tick inter_stripe_delay = 0);

    /** Begin; @p done fires when the last stripe is written. */
    void start(std::function<void()> done);

    std::uint64_t stripesDone() const { return _stripesDone; }
    std::uint64_t stripesTotal() const { return total; }
    bool finished() const { return _finished; }
    unsigned deadDisk() const { return dead; }
    sim::Tick interStripeDelay() const { return delay; }

    /** @{ Timing, valid once start() has run (live values while the
     *  rebuild is still in flight). */
    sim::Tick startTick() const { return _startTick; }
    sim::Tick endTick() const { return _endTick; }
    /** Wall-clock of the rebuild so far (total once finished), ms. */
    double durationMs() const;
    /** Average rebuild rate in stripes per simulated second. */
    double stripesPerSec() const;
    /** @} */

    /** Register progress/timing under @p prefix (e.g. "rebuild"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    void pump();
    void rebuildStripe(std::uint64_t stripe);

    sim::EventQueue &eq;
    SimArray &array;
    unsigned dead;
    unsigned window;
    sim::Tick delay;
    std::uint64_t next = 0;
    std::uint64_t total = 0;
    std::uint64_t _stripesDone = 0;
    unsigned inFlight = 0;
    bool _finished = false;
    /** @{ Launch pacing for the throttle. */
    sim::Tick nextLaunchAt = 0;
    bool wakeupPending = false;
    /** @} */
    sim::Tick _startTick = 0;
    sim::Tick _endTick = 0;
    std::function<void()> done;
};

} // namespace raid2::raid

#endif // RAID2_RAID_RECONSTRUCT_HH
