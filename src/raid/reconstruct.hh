/**
 * @file
 * Timed on-line reconstruction of a failed member disk.
 *
 * Sweeps the array stripe by stripe: read the surviving units, run a
 * parity pass, write the result to the replacement drive.  A window of
 * concurrent stripes keeps the datapath busy while bounding XBUS
 * buffer use.  (Reliability policy itself is out of the paper's scope
 * — "Techniques for maximizing reliability are beyond the scope of
 * this paper" §2.3 — but degraded operation is needed by the examples
 * and the RAID-3-vs-5 comparison of §4.2.)
 */

#ifndef RAID2_RAID_RECONSTRUCT_HH
#define RAID2_RAID_RECONSTRUCT_HH

#include <cstdint>
#include <functional>

#include "raid/sim_array.hh"

namespace raid2::raid {

/** One timed rebuild of a failed disk in a SimArray. */
class RebuildJob
{
  public:
    /**
     * @param array   degraded array (disk @p dead must be failed)
     * @param dead    the disk being rebuilt in place
     * @param window  concurrent stripes in flight
     */
    RebuildJob(sim::EventQueue &eq, SimArray &array, unsigned dead,
               unsigned window = 4);

    /** Begin; @p done fires when the last stripe is written. */
    void start(std::function<void()> done);

    std::uint64_t stripesDone() const { return _stripesDone; }
    std::uint64_t stripesTotal() const { return total; }

  private:
    void pump();
    void rebuildStripe(std::uint64_t stripe);

    sim::EventQueue &eq;
    SimArray &array;
    unsigned dead;
    unsigned window;
    std::uint64_t next = 0;
    std::uint64_t total = 0;
    std::uint64_t _stripesDone = 0;
    unsigned inFlight = 0;
    std::function<void()> done;
};

} // namespace raid2::raid

#endif // RAID2_RAID_RECONSTRUCT_HH
