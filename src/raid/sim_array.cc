#include "raid/sim_array.hh"

#include <algorithm>
#include <memory>

#include "config/calibration.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::raid {

SimArray::SimArray(sim::EventQueue &eq_, xbus::XbusBoard &board,
                   std::string name, LayoutConfig layout_cfg,
                   const ArrayTopology &topo_)
    : eq(eq_), _board(board), _name(std::move(name)), topo(topo_)
{
    if (topo.numCougars == 0 ||
        topo.numCougars > xbus::XbusBoard::numVmePorts) {
        sim::fatal("SimArray %s: %u controllers won't fit the XBUS VME "
                   "ports", _name.c_str(), topo.numCougars);
    }

    layout_cfg.numDisks = topo.numDisks();
    _layout = std::make_unique<RaidLayout>(layout_cfg,
                                           topo.profile->capacityBytes());

    for (unsigned c = 0; c < topo.totalControllers(); ++c) {
        cougars.push_back(std::make_unique<scsi::CougarController>(
            eq, _name + ".cougar" + std::to_string(c)));
    }

    const unsigned n = topo.numDisks();
    for (unsigned i = 0; i < n; ++i) {
        disks.push_back(std::make_unique<disk::DiskModel>(
            eq, _name + ".disk" + std::to_string(i), *topo.profile,
            topo.elevatorScheduling ? disk::makeElevatorScheduler()
                                    : disk::makeFcfsScheduler()));
        auto &ctrl = *cougars[cougarOf(i)];
        auto &str = ctrl.string(stringOf(i));
        str.attach(disks.back().get());
        channels.push_back(std::make_unique<scsi::DiskChannel>(
            eq, *disks.back(), str, ctrl));
    }
    failedDisks.assign(n, false);
}

SimArray::~SimArray() = default;

unsigned
SimArray::cougarOf(unsigned d) const
{
    const unsigned g = d / topo.disksPerString;
    return g % topo.totalControllers();
}

unsigned
SimArray::stringOf(unsigned d) const
{
    const unsigned g = d / topo.disksPerString;
    return g / topo.totalControllers();
}

bool
SimArray::degraded() const
{
    return std::any_of(failedDisks.begin(), failedDisks.end(),
                       [](bool f) { return f; });
}

void
SimArray::failDisk(unsigned d)
{
    failedDisks.at(d) = true;
}

void
SimArray::restoreDisk(unsigned d)
{
    failedDisks.at(d) = false;
}

std::vector<sim::Stage>
SimArray::readStages(unsigned d)
{
    const unsigned c = cougarOf(d);
    if (c < topo.numCougars)
        return _board.diskToMemory(c);
    // Fifth controller hangs off the slow control-bus link (Table 1).
    return {sim::Stage(_board.hostLink(), cal::controlLinkReadMBs),
            sim::Stage(_board.memory())};
}

std::vector<sim::Stage>
SimArray::writeStages(unsigned d)
{
    const unsigned c = cougarOf(d);
    if (c < topo.numCougars)
        return _board.memoryToDisk(c);
    return {sim::Stage(_board.memory()),
            sim::Stage(_board.hostLink(), cal::controlLinkWriteMBs)};
}

void
SimArray::rawDiskRead(unsigned d, std::uint64_t disk_offset,
                      std::uint64_t bytes, std::function<void()> done)
{
    channels.at(d)->read(disk_offset, bytes, readStages(d),
                         std::move(done));
}

void
SimArray::rawDiskWrite(unsigned d, std::uint64_t disk_offset,
                       std::uint64_t bytes, std::function<void()> done)
{
    channels.at(d)->write(disk_offset, bytes, writeStages(d),
                          std::move(done));
}

void
SimArray::issueExtentRead(const DiskExtent &e, std::function<void()> done)
{
    unsigned d = e.disk;
    if (_layout->level() == RaidLevel::Raid1) {
        // Balance mirror reads by alternating stripe rows.
        if ((e.diskOffset / _layout->unitBytes()) % 2 == 1 &&
            !failedDisks[_layout->mirrorDisk(d)]) {
            d = _layout->mirrorDisk(d);
        }
    }
    if (failedDisks[d]) {
        if (_layout->level() == RaidLevel::Raid1) {
            const unsigned half = _layout->numDisks() / 2;
            d = d < half ? _layout->mirrorDisk(d) : d - half;
            if (failedDisks[d])
                sim::fatal("SimArray %s: mirror pair both failed",
                           _name.c_str());
        } else {
            issueDegradedRead(e, std::move(done));
            return;
        }
    }
    if (oracle && oracle->hasLatent(d, e.diskOffset, e.bytes)) {
        issueLatentRepairRead(e, d, std::move(done));
        return;
    }
    channels[d]->read(e.diskOffset, e.bytes, readStages(d),
                      std::move(done));
}

void
SimArray::issueLatentRepairRead(const DiskExtent &e, unsigned d,
                                std::function<void()> done)
{
    const RaidLevel level = _layout->level();
    const std::uint64_t off = e.diskOffset;
    const std::uint64_t bytes = e.bytes;

    if (level == RaidLevel::Raid0) {
        // No redundancy: the error is reported, not repaired.  Account
        // for it and complete (the request "fails fast").
        ++_unrecoverableReads;
        eq.scheduleIn(0, std::move(done));
        return;
    }

    ++_latentRepairReads;
    _latentRepairBytes += bytes;

    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto writeback = [this, d, off, bytes, done_ptr] {
        // Rewrite the reconstructed range in place, clearing the
        // defect, then report the repair.
        rawDiskWrite(d, off, bytes, [this, d, off, bytes, done_ptr] {
            if (oracle)
                oracle->repairedLatent(d, off, bytes, false);
            if (*done_ptr)
                (*done_ptr)();
        });
    };

    // The drive itself spends a media pass discovering the error
    // (retries, then reports unrecoverable) before recovery starts.
    auto after_attempt = [this, d, off, bytes, level, done_ptr,
                          writeback = std::move(writeback)]() mutable {
        if (auto *t = eq.tracer())
            t->complete(_name, "latent_repair", eq.now(), eq.now(), bytes);
        if (level == RaidLevel::Raid1) {
            const unsigned half = _layout->numDisks() / 2;
            const unsigned m =
                d < half ? _layout->mirrorDisk(d) : d - half;
            if (failedDisks[m]) {
                ++_unrecoverableReads;
                if (*done_ptr)
                    (*done_ptr)();
                return;
            }
            channels[m]->read(off, bytes, readStages(m),
                              std::move(writeback));
            return;
        }
        // Parity levels: read the range from every survivor + XOR.
        const unsigned n = _layout->numDisks();
        auto remaining = std::make_shared<unsigned>(n - 1);
        auto wb_ptr = std::make_shared<std::function<void()>>(
            std::move(writeback));
        auto on_read = [this, remaining, wb_ptr, bytes, n] {
            if (--*remaining > 0)
                return;
            _board.parity().pass(bytes * (n - 1), bytes,
                                 [wb_ptr] { (*wb_ptr)(); });
        };
        for (unsigned s = 0; s < n; ++s) {
            if (s == d)
                continue;
            if (failedDisks[s])
                sim::fatal("SimArray %s: latent repair on disk %u with "
                           "disk %u failed", _name.c_str(), d, s);
            channels[s]->read(off, bytes, readStages(s), on_read);
        }
    };
    disks[d]->submitBytes(off, bytes, false, std::move(after_attempt));
}

void
SimArray::issueExtentWrite(const DiskExtent &e, std::function<void()> done)
{
    const unsigned d = e.disk;
    if (failedDisks[d]) {
        // Writing to a dead disk is a no-op in time (the data is
        // covered by parity / the mirror); complete immediately.
        eq.scheduleIn(0, std::move(done));
        return;
    }
    channels[d]->write(e.diskOffset, e.bytes, writeStages(d),
                       std::move(done));
}

void
SimArray::issueDegradedRead(const DiskExtent &e,
                            std::function<void()> done)
{
    if (_layout->level() != RaidLevel::Raid5 &&
        _layout->level() != RaidLevel::Raid3) {
        sim::fatal("SimArray %s: disk %u failed and %s has no parity",
                   _name.c_str(), e.disk,
                   raidLevelName(_layout->level()));
    }
    ++_degradedReads;
    _degradedBytes += e.bytes;
    // Read the same disk-offset range from every survivor, then XOR.
    const unsigned n = _layout->numDisks();
    auto remaining = std::make_shared<unsigned>(n - 1);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    const std::uint64_t bytes = e.bytes;
    auto on_read = [this, remaining, done_ptr, bytes, n] {
        if (--*remaining > 0)
            return;
        _board.parity().pass(bytes * (n - 1), bytes, [done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        });
    };
    for (unsigned d = 0; d < n; ++d) {
        if (d == e.disk)
            continue;
        if (failedDisks[d])
            sim::fatal("SimArray %s: double disk failure", _name.c_str());
        channels[d]->read(e.diskOffset, e.bytes, readStages(d), on_read);
    }
}

void
SimArray::read(std::uint64_t off, std::uint64_t len,
               std::function<void()> done)
{
    ++_reads;
    _bytesRead += len;
    const sim::Tick start = eq.now();

    auto extents = _layout->mapRange(off, len);
    auto remaining = std::make_shared<std::size_t>(extents.size());
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [this, remaining, done_ptr, start, len] {
        if (--*remaining > 0)
            return;
        _readMs.sample(sim::ticksToMs(eq.now() - start));
        if (auto *t = eq.tracer())
            t->complete(_name, "array_read", start, eq.now(), len);
        if (*done_ptr)
            (*done_ptr)();
    };
    for (const auto &e : extents)
        issueExtentRead(e, finish);
}

void
SimArray::lockStripe(std::uint64_t stripe, std::function<void()> run)
{
    auto [it, fresh] = stripeLocks.try_emplace(stripe);
    if (fresh) {
        run();
        return;
    }
    ++_stripeLockWaits;
    const sim::Tick queued = eq.now();
    it->second.push_back([this, queued, run = std::move(run)] {
        _stripeLockWaitMs.sample(sim::ticksToMs(eq.now() - queued));
        run();
    });
}

void
SimArray::unlockStripe(std::uint64_t stripe)
{
    auto it = stripeLocks.find(stripe);
    if (it == stripeLocks.end())
        sim::panic("unlockStripe: stripe %llu not locked",
                   (unsigned long long)stripe);
    if (it->second.empty()) {
        stripeLocks.erase(it);
        return;
    }
    auto next = std::move(it->second.front());
    it->second.pop_front();
    next();
}

void
SimArray::writeStripeRaid5(const StripeSpan &s, std::function<void()> done)
{
    // Serialize on the stripe: the RMW / reconstruct sequences below
    // must see a stable parity unit.
    lockStripe(s.stripe, [this, s, done = std::move(done)]() mutable {
        writeStripeRaid5Locked(
            s, [this, stripe = s.stripe,
                done = std::move(done)]() mutable {
                unlockStripe(stripe);
                if (done)
                    done();
            });
    });
}

void
SimArray::writeStripeRaid5Locked(const StripeSpan &s,
                                 std::function<void()> done)
{
    const std::uint64_t unit = _layout->unitBytes();
    const unsigned data_units = _layout->dataUnitsPerStripe();

    // Slice the span into per-unit (offset, length) pieces.
    struct UnitPiece
    {
        unsigned k;
        std::uint64_t off;
        std::uint64_t len;
    };
    std::vector<UnitPiece> pieces;
    {
        std::uint64_t in_unit = s.offsetInUnit;
        std::uint64_t left = s.bytes;
        for (unsigned k = s.firstUnit; left > 0; ++k) {
            const std::uint64_t take = std::min(left, unit - in_unit);
            pieces.push_back({k, in_unit, take});
            left -= take;
            in_unit = 0;
        }
    }

    const bool full_stripe =
        s.offsetInUnit == 0 && s.bytes == _layout->stripeDataBytes();

    unsigned fully_touched = 0;
    for (const auto &p : pieces)
        fully_touched += (p.off == 0 && p.len == unit) ? 1 : 0;

    // Read cost of the two partial-stripe algorithms, in units.
    const unsigned rmw_reads =
        static_cast<unsigned>(pieces.size()) + 1;
    const unsigned recon_reads = data_units - fully_touched;
    const bool use_rmw = !full_stripe && rmw_reads <= recon_reads;

    if (full_stripe)
        ++_fullStripes;
    else if (use_rmw)
        ++_rmwStripes;
    else
        ++_rwStripes;

    // Collect the extents of each phase.
    std::vector<DiskExtent> read_extents;
    std::uint64_t pass_in = 0;
    std::uint64_t pass_out = unit;

    if (full_stripe) {
        pass_in = s.bytes;
    } else if (use_rmw) {
        for (const auto &p : pieces)
            read_extents.push_back(
                _layout->dataExtent(s.stripe, p.k, p.off, p.len));
        read_extents.push_back(_layout->parityExtent(s.stripe));
        pass_in = 2 * s.bytes + unit;
    } else {
        for (unsigned k = 0; k < data_units; ++k) {
            const auto it = std::find_if(
                pieces.begin(), pieces.end(),
                [k, unit](const UnitPiece &p) {
                    return p.k == k && p.off == 0 && p.len == unit;
                });
            if (it == pieces.end()) {
                read_extents.push_back(
                    _layout->dataExtent(s.stripe, k, 0, unit));
            }
        }
        pass_in = _layout->stripeDataBytes();
    }

    std::vector<DiskExtent> write_extents;
    for (const auto &p : pieces)
        write_extents.push_back(
            _layout->dataExtent(s.stripe, p.k, p.off, p.len));
    write_extents.push_back(_layout->parityExtent(s.stripe));

    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));

    auto do_writes = [this, write_extents, done_ptr] {
        auto remaining =
            std::make_shared<std::size_t>(write_extents.size());
        auto finish = [remaining, done_ptr] {
            if (--*remaining == 0 && *done_ptr)
                (*done_ptr)();
        };
        for (const auto &e : write_extents)
            issueExtentWrite(e, finish);
    };

    auto do_pass = [this, pass_in, pass_out,
                    do_writes = std::move(do_writes)] {
        _board.parity().pass(pass_in, pass_out, do_writes);
    };

    if (read_extents.empty()) {
        do_pass();
        return;
    }
    auto remaining = std::make_shared<std::size_t>(read_extents.size());
    auto on_read = [remaining, do_pass = std::move(do_pass)] {
        if (--*remaining == 0)
            do_pass();
    };
    for (const auto &e : read_extents)
        issueExtentRead(e, on_read);
}

void
SimArray::write(std::uint64_t off, std::uint64_t len,
                std::function<void()> done)
{
    ++_writes;
    _bytesWritten += len;
    const sim::Tick start = eq.now();

    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto record = [this, done_ptr, start, len] {
        _writeMs.sample(sim::ticksToMs(eq.now() - start));
        if (auto *t = eq.tracer())
            t->complete(_name, "array_write", start, eq.now(), len);
        if (*done_ptr)
            (*done_ptr)();
    };

    const RaidLevel level = _layout->level();

    if (level == RaidLevel::Raid0 || level == RaidLevel::Raid1) {
        auto extents = _layout->mapRange(off, len);
        const std::size_t writes_per_extent =
            level == RaidLevel::Raid1 ? 2 : 1;
        auto remaining = std::make_shared<std::size_t>(
            extents.size() * writes_per_extent);
        auto finish = [remaining, record] {
            if (--*remaining == 0)
                record();
        };
        for (const auto &e : extents) {
            issueExtentWrite(e, finish);
            if (level == RaidLevel::Raid1) {
                DiskExtent m = e;
                m.disk = _layout->mirrorDisk(e.disk);
                issueExtentWrite(m, finish);
            }
        }
        return;
    }

    if (level == RaidLevel::Raid3) {
        // All data disks plus the parity disk participate; parity is
        // computed on the fly as the data streams through the engine.
        auto extents = _layout->mapRange(off, len);
        const std::uint64_t parity_bytes =
            extents.empty() ? 0 : extents.front().bytes;
        auto remaining =
            std::make_shared<std::size_t>(extents.size() + 1);
        auto finish = [remaining, record] {
            if (--*remaining == 0)
                record();
        };
        _board.parity().pass(len, parity_bytes, [this, extents, finish,
                                                 parity_bytes] {
            for (const auto &e : extents)
                issueExtentWrite(e, finish);
            DiskExtent p;
            p.disk = _layout->numDisks() - 1;
            p.diskOffset = extents.front().diskOffset;
            p.bytes = parity_bytes;
            issueExtentWrite(p, finish);
        });
        return;
    }

    // RAID-5: plan per stripe.
    auto spans = _layout->mapStripes(off, len);
    auto remaining = std::make_shared<std::size_t>(spans.size());
    auto finish = [remaining, record] {
        if (--*remaining == 0)
            record();
    };
    for (const auto &s : spans)
        writeStripeRaid5(s, finish);
}

void
SimArray::registerStats(sim::StatsRegistry &reg,
                        const std::string &array_prefix,
                        const std::string &disk_prefix,
                        const std::string &scsi_prefix) const
{
    reg.addGauge(array_prefix + ".reads",
                 [this] { return static_cast<double>(_reads); });
    reg.addGauge(array_prefix + ".writes",
                 [this] { return static_cast<double>(_writes); });
    reg.addGauge(array_prefix + ".bytes_read",
                 [this] { return static_cast<double>(_bytesRead); });
    reg.addGauge(array_prefix + ".bytes_written",
                 [this] { return static_cast<double>(_bytesWritten); });
    reg.addGauge(array_prefix + ".rmw_stripes",
                 [this] { return static_cast<double>(_rmwStripes); });
    reg.addGauge(array_prefix + ".reconstruct_write_stripes",
                 [this] { return static_cast<double>(_rwStripes); });
    reg.addGauge(array_prefix + ".full_stripe_writes",
                 [this] { return static_cast<double>(_fullStripes); });
    reg.addGauge(array_prefix + ".degraded_reads",
                 [this] { return static_cast<double>(_degradedReads); });
    reg.addGauge(array_prefix + ".degraded_bytes",
                 [this] { return static_cast<double>(_degradedBytes); });
    reg.addGauge(array_prefix + ".latent_repair_reads", [this] {
        return static_cast<double>(_latentRepairReads);
    });
    reg.addGauge(array_prefix + ".latent_repair_bytes", [this] {
        return static_cast<double>(_latentRepairBytes);
    });
    reg.addGauge(array_prefix + ".unrecoverable_reads", [this] {
        return static_cast<double>(_unrecoverableReads);
    });
    reg.addGauge(array_prefix + ".stripe_lock_waits", [this] {
        return static_cast<double>(_stripeLockWaits);
    });
    reg.add(array_prefix + ".stripe_lock_wait_ms", _stripeLockWaitMs);
    reg.add(array_prefix + ".read_ms", _readMs);
    reg.add(array_prefix + ".write_ms", _writeMs);
    for (std::size_t d = 0; d < disks.size(); ++d)
        disks[d]->registerStats(reg,
                                disk_prefix + "." + std::to_string(d));
    for (std::size_t c = 0; c < cougars.size(); ++c)
        cougars[c]->registerStats(
            reg, scsi_prefix + ".cougar" + std::to_string(c));
}

void
SimArray::resetStats()
{
    _reads = _writes = 0;
    _bytesRead = _bytesWritten = 0;
    _rmwStripes = _rwStripes = _fullStripes = 0;
    _degradedReads = _degradedBytes = 0;
    _latentRepairReads = _latentRepairBytes = 0;
    _unrecoverableReads = 0;
    _stripeLockWaits = 0;
    _readMs.reset();
    _writeMs.reset();
    _stripeLockWaitMs.reset();
    for (auto &d : disks)
        d->resetStats();
}

} // namespace raid2::raid
