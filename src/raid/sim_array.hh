/**
 * @file
 * Timed RAID array: the full RAID-II datapath.
 *
 * SimArray owns the member disks, SCSI strings and Cougar controllers
 * of one XBUS board's array and maps logical array operations onto
 * timed per-disk commands flowing disk <-> string <-> controller <->
 * VME port <-> XBUS memory.  RAID-5 writes pick between read-modify-
 * write and reconstruct-write per stripe and charge the parity engine
 * for XOR passes — the machinery behind Fig 5, Table 1 and Fig 8.
 *
 * Disk numbering is string-major: disks 0..(S-1) sit on the *first*
 * string of each controller in round-robin, then the second strings.
 * This matches the prototype's striping order: a 768 KB request (12 x
 * 64 KB units) spans exactly the first strings, and slightly larger or
 * unaligned requests spill onto "a second string on one of the
 * controllers" — the cause of Fig 5's dip.
 */

#ifndef RAID2_RAID_SIM_ARRAY_HH
#define RAID2_RAID_SIM_ARRAY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "disk/disk_model.hh"
#include "raid/raid_layout.hh"
#include "scsi/cougar_controller.hh"
#include "sim/stats.hh"
#include "xbus/xbus_board.hh"

namespace raid2::raid {

/** Physical wiring of an array behind one XBUS board. */
struct ArrayTopology
{
    /** Controllers on the four XBUS VME ports (at most 4). */
    unsigned numCougars = 4;
    /** Drives per SCSI string (2 strings per controller). */
    unsigned disksPerString = 3;
    /** Table 1 configuration: one extra controller on the XBUS
     *  control-bus (host VME) link. */
    bool fifthControllerOnHostLink = false;
    /** Drive model for every member disk. */
    const disk::DiskProfile *profile = &disk::ibm0661();
    /** Use C-SCAN elevator queues in the drives instead of FCFS (the
     *  prototype's policy); an ablation knob. */
    bool elevatorScheduling = false;

    unsigned totalControllers() const
    {
        return numCougars + (fifthControllerOnHostLink ? 1 : 0);
    }
    unsigned numDisks() const
    {
        return totalControllers() * scsi::CougarController::numStrings *
               disksPerString;
    }
};

/**
 * Where the timing plane learns about media defects.
 *
 * SimArray moves no real bytes, so it cannot discover a latent sector
 * error by reading; the fault subsystem (fault::FaultController) keeps
 * the defect map and implements this interface.  When a timed read
 * lands on a defective range the array runs the timed
 * reconstruct-and-rewrite sequence and reports the repair back, which
 * the controller mirrors into the functional plane.
 */
class MediaFaultOracle
{
  public:
    virtual ~MediaFaultOracle() = default;
    /** Is any byte of [off, off+bytes) on disk @p d unreadable? */
    virtual bool hasLatent(unsigned d, std::uint64_t off,
                           std::uint64_t bytes) const = 0;
    /** The range was reconstructed and rewritten in place. */
    virtual void repairedLatent(unsigned d, std::uint64_t off,
                                std::uint64_t bytes, bool by_scrub) = 0;
};

/** Timed disk array attached to one XBUS board. */
class SimArray
{
  public:
    /**
     * @param layout_cfg level and stripe unit; numDisks is overwritten
     *                   from the topology.
     */
    SimArray(sim::EventQueue &eq, xbus::XbusBoard &board, std::string name,
             LayoutConfig layout_cfg, const ArrayTopology &topo);
    ~SimArray();

    const RaidLayout &layout() const { return *_layout; }
    unsigned numDisks() const { return static_cast<unsigned>(disks.size()); }
    std::uint64_t capacity() const { return _layout->dataCapacity(); }
    xbus::XbusBoard &board() { return _board; }

    /** Read [off, off+len) from the array into XBUS memory. */
    void read(std::uint64_t off, std::uint64_t len,
              std::function<void()> done);

    /** Write [off, off+len) from XBUS memory to the array. */
    void write(std::uint64_t off, std::uint64_t len,
               std::function<void()> done);

    /** Take a disk offline; subsequent reads reconstruct on the fly. */
    void failDisk(unsigned d);
    /** Bring a (rebuilt) disk back online. */
    void restoreDisk(unsigned d);
    bool isFailed(unsigned d) const { return failedDisks.at(d); }
    bool degraded() const;

    /** Attach (or detach with nullptr) the media-defect oracle. */
    void setFaultOracle(MediaFaultOracle *o) { oracle = o; }

    /** @{ Raw per-disk transfers through the full bus chain (used by
     *  rebuild and by benches that bypass the RAID mapping). */
    void rawDiskRead(unsigned d, std::uint64_t disk_offset,
                     std::uint64_t bytes, std::function<void()> done);
    void rawDiskWrite(unsigned d, std::uint64_t disk_offset,
                      std::uint64_t bytes, std::function<void()> done);
    /** @} */

    disk::DiskModel &disk(unsigned i) { return *disks.at(i); }
    scsi::CougarController &cougar(unsigned c) { return *cougars.at(c); }
    unsigned numCougarControllers() const
    {
        return static_cast<unsigned>(cougars.size());
    }

    /** Controller index a disk hangs off. */
    unsigned cougarOf(unsigned d) const;
    /** String index (0/1) within that controller. */
    unsigned stringOf(unsigned d) const;

    /** @{ Statistics. */
    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }
    std::uint64_t bytesRead() const { return _bytesRead; }
    std::uint64_t bytesWritten() const { return _bytesWritten; }
    const sim::Distribution &readLatencyMs() const { return _readMs; }
    const sim::Distribution &writeLatencyMs() const { return _writeMs; }
    std::uint64_t rmwStripes() const { return _rmwStripes; }
    std::uint64_t reconstructWriteStripes() const { return _rwStripes; }
    std::uint64_t fullStripeWrites() const { return _fullStripes; }
    /** Reads served by reconstructing a failed disk from survivors. */
    std::uint64_t degradedReads() const { return _degradedReads; }
    std::uint64_t degradedBytes() const { return _degradedBytes; }
    /** Reads that hit a latent defect and triggered a timed repair. */
    std::uint64_t latentRepairReads() const { return _latentRepairReads; }
    std::uint64_t latentRepairBytes() const { return _latentRepairBytes; }
    /** Latent hits with no redundancy left to repair from. */
    std::uint64_t unrecoverableReads() const { return _unrecoverableReads; }
    /** Writes that had to queue behind a stripe lock. */
    std::uint64_t stripeLockWaits() const { return _stripeLockWaits; }
    /** Time writes spent queued behind stripe locks (ms). */
    const sim::Distribution &stripeLockWaitMs() const
    {
        return _stripeLockWaitMs;
    }
    void resetStats();

    /**
     * Register array-level stats under @p array_prefix plus the member
     * disks under "<disk_prefix>.N" and the Cougar controllers/strings
     * under "<scsi_prefix>.cougarN".
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &array_prefix = "raid",
                       const std::string &disk_prefix = "disk",
                       const std::string &scsi_prefix = "scsi") const;
    /** @} */

  private:
    /** Issue a timed read of @p e into XBUS memory. */
    void issueExtentRead(const DiskExtent &e,
                         std::function<void()> done);
    /** Issue a timed write of @p e from XBUS memory. */
    void issueExtentWrite(const DiskExtent &e,
                          std::function<void()> done);

    /** Degraded read: rebuild @p e from the survivors + parity pass. */
    void issueDegradedRead(const DiskExtent &e,
                           std::function<void()> done);

    /** A read of disk @p d hit a latent defect: run the timed
     *  reconstruct-and-rewrite sequence, then notify the oracle. */
    void issueLatentRepairRead(const DiskExtent &e, unsigned d,
                               std::function<void()> done);

    /** Plan and run the write of one stripe span (RAID-5), holding
     *  the stripe lock. */
    void writeStripeRaid5(const StripeSpan &s,
                          std::function<void()> done);
    void writeStripeRaid5Locked(const StripeSpan &s,
                                std::function<void()> done);

    /** @{ Per-stripe write serialization: concurrent updates to one
     *  stripe's parity must not interleave (the classic RAID-5 stripe
     *  lock), or the read-modify-write sequences would race. */
    void lockStripe(std::uint64_t stripe, std::function<void()> run);
    void unlockStripe(std::uint64_t stripe);
    /** @} */

    std::vector<sim::Stage> readStages(unsigned d);
    std::vector<sim::Stage> writeStages(unsigned d);

    sim::EventQueue &eq;
    xbus::XbusBoard &_board;
    std::string _name;
    std::unique_ptr<RaidLayout> _layout;
    ArrayTopology topo;

    std::vector<std::unique_ptr<disk::DiskModel>> disks;
    std::vector<std::unique_ptr<scsi::CougarController>> cougars;
    std::vector<std::unique_ptr<scsi::DiskChannel>> channels;
    std::vector<bool> failedDisks;
    MediaFaultOracle *oracle = nullptr;

    /** Stripes with a write in flight -> queued waiters. */
    std::unordered_map<std::uint64_t,
                       std::deque<std::function<void()>>> stripeLocks;

    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    std::uint64_t _bytesRead = 0;
    std::uint64_t _bytesWritten = 0;
    std::uint64_t _rmwStripes = 0;
    std::uint64_t _degradedReads = 0;
    std::uint64_t _degradedBytes = 0;
    std::uint64_t _latentRepairReads = 0;
    std::uint64_t _latentRepairBytes = 0;
    std::uint64_t _unrecoverableReads = 0;
    std::uint64_t _stripeLockWaits = 0;
    std::uint64_t _rwStripes = 0;
    std::uint64_t _fullStripes = 0;
    sim::Distribution _readMs;
    sim::Distribution _writeMs;
    sim::Distribution _stripeLockWaitMs;
};

} // namespace raid2::raid

#endif // RAID2_RAID_SIM_ARRAY_HH
