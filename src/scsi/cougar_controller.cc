#include "scsi/cougar_controller.hh"

#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace raid2::scsi {

CougarController::CougarController(sim::EventQueue &eq, std::string name,
                                   double mb_per_sec)
    : _name(std::move(name)),
      _svc(eq, _name + ".ctrl", sim::Service::Config{mb_per_sec, 0, 1})
{
    for (unsigned i = 0; i < numStrings; ++i) {
        strings[i] = std::make_unique<ScsiString>(
            eq, _name + ".string" + std::to_string(i));
    }
}

ScsiString &
CougarController::string(unsigned idx)
{
    if (idx >= numStrings)
        sim::panic("Cougar %s: bad string index %u", _name.c_str(), idx);
    return *strings[idx];
}

const ScsiString &
CougarController::string(unsigned idx) const
{
    return const_cast<CougarController *>(this)->string(idx);
}

void
CougarController::registerStats(sim::StatsRegistry &reg,
                                const std::string &prefix) const
{
    _svc.registerStats(reg, prefix + ".ctrl");
    for (unsigned i = 0; i < numStrings; ++i)
        strings[i]->registerStats(reg,
                                  prefix + ".string" + std::to_string(i));
}

unsigned
CougarController::numDisks() const
{
    unsigned n = 0;
    for (const auto &s : strings)
        n += s->disks().size();
    return n;
}

DiskChannel::DiskChannel(sim::EventQueue &eq_, disk::DiskModel &drive,
                         ScsiString &string, CougarController &cougar)
    : eq(eq_), _drive(drive), _string(string), _cougar(cougar)
{
}

void
DiskChannel::read(std::uint64_t offset, std::uint64_t bytes,
                  std::vector<sim::Stage> downstream,
                  std::function<void()> done)
{
    auto stages = std::make_shared<std::vector<sim::Stage>>();
    stages->push_back(sim::Stage(_string.bus()));
    stages->push_back(sim::Stage(_cougar.svc()));
    for (auto &st : downstream)
        stages->push_back(st);

    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));

    // The track buffer lets the bus drain data *while* the media read
    // continues: split the command into media sub-chunks, queued
    // back-to-back on the drive (the read-ahead window makes the
    // follow-ons positioning-free), each draining through the bus
    // chain as soon as it is buffered.
    _string.chargeCommandOverhead();
    auto remaining = std::make_shared<std::uint64_t>(bytes);
    std::uint64_t pos = offset;
    std::uint64_t left = bytes;
    while (left > 0) {
        const std::uint64_t chunk =
            std::min<std::uint64_t>(left, cal::xbusChunkBytes);
        _drive.submitBytes(pos, chunk, false, [this, stages, chunk,
                                               remaining, done_ptr] {
            sim::Pipeline::start(eq, *stages, chunk,
                                 cal::xbusChunkBytes,
                                 [remaining, chunk, done_ptr] {
                                     *remaining -= chunk;
                                     if (*remaining == 0 && *done_ptr)
                                         (*done_ptr)();
                                 });
        });
        pos += chunk;
        left -= chunk;
    }
}

void
DiskChannel::write(std::uint64_t offset, std::uint64_t bytes,
                   std::vector<sim::Stage> upstream,
                   std::function<void()> done)
{
    auto stages = std::make_shared<std::vector<sim::Stage>>();
    for (auto &st : upstream)
        stages->push_back(st);
    stages->push_back(sim::Stage(_cougar.svc()));
    stages->push_back(sim::Stage(_string.bus()));

    // Two phases complete independently: the bus phase filling the
    // drive buffer and the media phase committing it.  The drive can
    // position while data streams in, but the command is only done
    // when both have finished.
    auto pending = std::make_shared<int>(2);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [pending, done_ptr] {
        if (--*pending == 0 && *done_ptr)
            (*done_ptr)();
    };

    _string.chargeCommandOverhead();
    sim::Pipeline::start(eq, *stages, bytes, cal::xbusChunkBytes, finish);
    _drive.submitBytes(offset, bytes, true, finish);
}

} // namespace raid2::scsi
