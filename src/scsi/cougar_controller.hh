/**
 * @file
 * Interphase Cougar VME dual-string SCSI disk controller.
 *
 * §2.2: "The Cougar disk controllers can transfer data at 8 megabytes/
 * second" across its two SCSI strings.  The controller-level cap is
 * what causes Fig 5's dip at 768 KB requests: once a request's stripe
 * span wraps onto the *second* string of a controller, the two strings
 * contend inside the controller.
 */

#ifndef RAID2_SCSI_COUGAR_CONTROLLER_HH
#define RAID2_SCSI_COUGAR_CONTROLLER_HH

#include <array>
#include <memory>
#include <string>

#include "config/calibration.hh"
#include "scsi/scsi_string.hh"
#include "sim/service.hh"

namespace raid2::scsi {

/** A dual-string VME SCSI controller. */
class CougarController
{
  public:
    static constexpr unsigned numStrings = 2;

    CougarController(sim::EventQueue &eq, std::string name,
                     double mb_per_sec = cal::cougarMBs);

    ScsiString &string(unsigned idx);
    const ScsiString &string(unsigned idx) const;

    /** Controller-level aggregate service stage. */
    sim::Service &svc() { return _svc; }
    const sim::Service &svc() const { return _svc; }

    const std::string &name() const { return _name; }

    /** Total drives attached across both strings. */
    unsigned numDisks() const;

    /** Register controller + per-string stats under @p prefix. */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::string _name;
    sim::Service _svc;
    std::array<std::unique_ptr<ScsiString>, numStrings> strings;
};

/**
 * One drive together with its path through string and controller.
 * read()/write() run the complete datapath for a single disk command:
 * the drive's media phase overlapped with the chunked bus phase
 * through string -> controller -> caller-supplied downstream stages
 * (VME port, XBUS memory, ...).
 */
class DiskChannel
{
  public:
    DiskChannel(sim::EventQueue &eq, disk::DiskModel &drive,
                ScsiString &string, CougarController &cougar);

    /**
     * Read @p bytes at @p offset: media phase first (drive buffer),
     * then bytes drain over [string, controller] + @p downstream.
     */
    void read(std::uint64_t offset, std::uint64_t bytes,
              std::vector<sim::Stage> downstream,
              std::function<void()> done);

    /**
     * Write @p bytes at @p offset: bytes flow through @p upstream +
     * [controller, string] into the drive buffer while the drive
     * positions; completion when both bus and media phases finish.
     */
    void write(std::uint64_t offset, std::uint64_t bytes,
               std::vector<sim::Stage> upstream,
               std::function<void()> done);

    disk::DiskModel &drive() { return _drive; }
    ScsiString &string() { return _string; }
    CougarController &cougar() { return _cougar; }

  private:
    sim::EventQueue &eq;
    disk::DiskModel &_drive;
    ScsiString &_string;
    CougarController &_cougar;
};

} // namespace raid2::scsi

#endif // RAID2_SCSI_COUGAR_CONTROLLER_HH
