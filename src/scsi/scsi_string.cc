#include "scsi/scsi_string.hh"

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace raid2::scsi {

ScsiString::ScsiString(sim::EventQueue &eq_, std::string name,
                       double mb_per_sec)
    : eq(eq_), _name(std::move(name)),
      _bus(eq_, _name + ".bus",
           sim::Service::Config{mb_per_sec, 0, 1})
{
}

void
ScsiString::attach(disk::DiskModel *drive)
{
    if (!drive)
        sim::panic("ScsiString %s: attaching null drive", _name.c_str());
    if (_disks.size() >= 7)
        sim::fatal("ScsiString %s: SCSI allows at most 7 targets",
                   _name.c_str());
    _disks.push_back(drive);
}

void
ScsiString::chargeCommandOverhead()
{
    _bus.submitBusyTime(cal::scsiCommandOverhead, nullptr);
}

void
ScsiString::injectHang(sim::Tick duration)
{
    ++_hangs;
    _hangTicks += duration;
    if (auto *t = eq.tracer())
        t->complete(_name, "hang", eq.now(), eq.now() + duration, 0);
    _bus.submitBusyTime(duration, nullptr);
}

} // namespace raid2::scsi
