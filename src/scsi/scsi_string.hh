/**
 * @file
 * SCSI string (shared bus) model.
 *
 * A "string" is one SCSI bus hanging off one port of a Cougar disk
 * controller.  §2.3/Fig 7: "Cougar string bandwidth is limited to
 * about 3 megabytes/second, less than that of three disks" — the
 * string is the first-level bottleneck of the RAID-II datapath, and
 * the cause of both Fig 7's saturation and Fig 5's 768 KB dip.
 *
 * Disks disconnect from the bus during positioning, so only data
 * transfer (plus a small arbitration/selection cost per command)
 * occupies the string.
 */

#ifndef RAID2_SCSI_SCSI_STRING_HH
#define RAID2_SCSI_SCSI_STRING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/calibration.hh"
#include "disk/disk_model.hh"
#include "sim/service.hh"
#include "sim/stats_registry.hh"

namespace raid2::scsi {

/** One SCSI bus with its attached drives. */
class ScsiString
{
  public:
    ScsiString(sim::EventQueue &eq, std::string name,
               double mb_per_sec = cal::scsiStringMBs);

    /** Attach a drive (ownership stays with the caller). */
    void attach(disk::DiskModel *drive);

    /** The shared-bus service stage. */
    sim::Service &bus() { return _bus; }
    const sim::Service &bus() const { return _bus; }

    /** Charge per-command arbitration/selection/reselection cost. */
    void chargeCommandOverhead();

    /**
     * Fault-injection hook: seize the bus for @p duration ticks,
     * modeling a target hanging the string mid-handshake.  Transfers
     * already queued behind the hang wait it out; drives themselves
     * keep positioning (they are disconnected during seeks).
     */
    void injectHang(sim::Tick duration);

    std::uint64_t hangs() const { return _hangs; }
    sim::Tick hangTicks() const { return _hangTicks; }

    const std::vector<disk::DiskModel *> &disks() const { return _disks; }
    const std::string &name() const { return _name; }

    /** Register the shared bus's stats under "<prefix>.bus". */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const
    {
        _bus.registerStats(reg, prefix + ".bus");
        reg.addGauge(prefix + ".hangs",
                     [this] { return static_cast<double>(_hangs); });
        reg.addGauge(prefix + ".hang_ms",
                     [this] { return sim::ticksToMs(_hangTicks); });
    }

  private:
    sim::EventQueue &eq;
    std::string _name;
    sim::Service _bus;
    std::vector<disk::DiskModel *> _disks;
    std::uint64_t _hangs = 0;
    sim::Tick _hangTicks = 0;
};

} // namespace raid2::scsi

#endif // RAID2_SCSI_SCSI_STRING_HH
