#include "server/datapath.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace_sink.hh"

namespace raid2::server {

void
PipelinedReader::start(sim::EventQueue &eq, raid::SimArray &array,
                       std::vector<Range> ranges, Config cfg,
                       std::function<void()> done)
{
    new PipelinedReader(eq, array, std::move(ranges), std::move(cfg),
                        std::move(done));
}

PipelinedReader::PipelinedReader(sim::EventQueue &eq_,
                                 raid::SimArray &array_,
                                 std::vector<Range> ranges, Config cfg_,
                                 std::function<void()> done_)
    : eq(eq_), array(array_), cfg(std::move(cfg_)), done(std::move(done_))
{
    if (cfg.depth == 0)
        sim::panic("PipelinedReader: zero depth");
    if (cfg.bufferBytes == 0)
        sim::panic("PipelinedReader: zero buffer size");

    for (const Range &r : ranges) {
        std::uint64_t pos = r.off;
        std::uint64_t left = r.len;
        while (left > 0) {
            const std::uint64_t take =
                std::min(left, cfg.bufferBytes);
            chunks.push_back(Chunk{pos, take});
            pos += take;
            left -= take;
        }
    }
    if (chunks.empty()) {
        // Nothing to read (e.g. an all-hole range).
        eq.scheduleIn(0, [this] {
            if (done)
                done();
            delete this;
        });
        return;
    }
    pump();
}

void
PipelinedReader::pump()
{
    while (inFlight < cfg.depth && nextIssue < chunks.size()) {
        const std::size_t idx = nextIssue++;
        Chunk &c = chunks[idx];
        c.issued = true;
        ++inFlight;
        auto issue = [this, idx] {
            chunks[idx].issueTick = eq.now();
            array.read(chunks[idx].off, chunks[idx].len,
                       [this, idx] { readDone(idx); });
        };
        if (cfg.buffers) {
            cfg.buffers->alloc(c.len, issue);
        } else {
            issue();
        }
    }
}

void
PipelinedReader::readDone(std::size_t idx)
{
    chunks[idx].ready = true;
    if (auto *t = eq.tracer())
        t->complete("pipeline", "prefetch", chunks[idx].issueTick,
                    eq.now(), chunks[idx].len);
    drainInOrder();
}

void
PipelinedReader::drainInOrder()
{
    // Deliver strictly in file order so the receiver sees a stream.
    while (nextSend < chunks.size() && chunks[nextSend].ready &&
           !chunks[nextSend].sent) {
        const std::size_t idx = nextSend++;
        chunks[idx].sent = true;
        chunks[idx].sendTick = eq.now();
        if (cfg.outStages.empty()) {
            chunkSent(idx);
            continue;
        }
        if (!setupCharged && cfg.outSetup > 0) {
            setupCharged = true;
            cfg.outStages.front().svc->submitBusyTime(cfg.outSetup,
                                                      nullptr);
        }
        sim::Pipeline::start(eq, cfg.outStages, chunks[idx].len,
                             cal::xbusChunkBytes,
                             [this, idx] { chunkSent(idx); });
    }
}

void
PipelinedReader::chunkSent(std::size_t idx)
{
    if (auto *t = eq.tracer())
        t->complete("pipeline", "send", chunks[idx].sendTick, eq.now(),
                    chunks[idx].len);
    if (cfg.buffers)
        cfg.buffers->free(chunks[idx].len);
    --inFlight;
    ++completed;
    pump();
    maybeFinish();
}

void
PipelinedReader::maybeFinish()
{
    if (completed < chunks.size())
        return;
    if (done)
        done();
    delete this;
}

} // namespace raid2::server
