/**
 * @file
 * Pipelined high-bandwidth read path.
 *
 * §3.3: "RAID-II handles a read request by pipelining disk reads and
 * network sends ... the file system allocates a buffer in XBUS memory
 * ... calls the RAID driver code to read the first block of data into
 * XBUS memory.  When the read has completed, the file system calls the
 * network code to send the data from XBUS memory to the client.
 * Meanwhile, the file system allocates another XBUS buffer and reads
 * the next block of data."  PipelinedReader is that loop: a window of
 * in-flight array reads over XBUS buffers, with in-order delivery to
 * the output stage chain (network or network-buffer copy).
 */

#ifndef RAID2_SERVER_DATAPATH_HH
#define RAID2_SERVER_DATAPATH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "config/calibration.hh"
#include "raid/sim_array.hh"
#include "xbus/xbus_board.hh"

namespace raid2::server {

/** A logical byte range on the array. */
struct Range
{
    std::uint64_t off;
    std::uint64_t len;
};

/** Windowed read pipeline from array to an output stage chain. */
class PipelinedReader
{
  public:
    struct Config
    {
        /** Concurrent buffers in flight (§3.3 "several pipeline
         *  processes"). */
        unsigned depth = cal::defaultPipelineDepth;
        /** Pipeline buffer size. */
        std::uint64_t bufferBytes = 256 * 1024;
        /** Stages each buffer passes after landing in XBUS memory. */
        std::vector<sim::Stage> outStages;
        /** Fixed cost charged before the first output transfer (e.g.
         *  HIPPI connection setup). */
        sim::Tick outSetup = 0;
        /** Track buffer use against the board's DRAM pool. */
        xbus::BufferPool *buffers = nullptr;
    };

    /** Run the pipeline over @p ranges; self-deletes after @p done. */
    static void start(sim::EventQueue &eq, raid::SimArray &array,
                      std::vector<Range> ranges, Config cfg,
                      std::function<void()> done);

  private:
    PipelinedReader(sim::EventQueue &eq, raid::SimArray &array,
                    std::vector<Range> ranges, Config cfg,
                    std::function<void()> done);

    void pump();
    void readDone(std::size_t idx);
    void drainInOrder();
    void chunkSent(std::size_t idx);
    void maybeFinish();

    sim::EventQueue &eq;
    raid::SimArray &array;
    Config cfg;
    std::function<void()> done;

    struct Chunk
    {
        std::uint64_t off;
        std::uint64_t len;
        bool issued = false;
        bool ready = false;  // read complete, waiting to send
        bool sent = false;   // left the out stages
        sim::Tick issueTick = 0;
        sim::Tick sendTick = 0;
    };
    std::vector<Chunk> chunks;
    std::size_t nextIssue = 0;
    std::size_t nextSend = 0;
    std::size_t completed = 0;
    unsigned inFlight = 0;
    bool setupCharged = false;
};

} // namespace raid2::server

#endif // RAID2_SERVER_DATAPATH_HH
