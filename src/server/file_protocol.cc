#include "server/file_protocol.hh"

#include <utility>

#include "sim/logging.hh"

namespace raid2::server {

namespace {

using ServiceClass = RequestScheduler::ServiceClass;
using OpKind = RequestScheduler::OpKind;

ServiceClass
classFor(const RequestScheduler *sched, OpKind kind, std::uint64_t len)
{
    if (kind == OpKind::Open)
        return ServiceClass::Standard;
    if (sched && len <= sched->config().smallOpBytes)
        return ServiceClass::Standard;
    return ServiceClass::FastPath;
}

} // namespace

RaidFileClient::RaidFileClient(sim::EventQueue &eq_, Raid2Server &server_,
                               net::ClientModel &client_,
                               net::UltranetFabric &net_,
                               const Config &cfg_)
    : eq(eq_), server(server_), client(client_), net(net_), cfg(cfg_)
{
    if (cfg.scheduler)
        _session = cfg.scheduler->allocSession();
}

RaidFileClient::RaidFileClient(sim::EventQueue &eq_, Raid2Server &server_,
                               net::ClientModel &client_,
                               net::UltranetFabric &net_)
    : RaidFileClient(eq_, server_, client_, net_, Config{})
{
}

void
RaidFileClient::completeLocal(Result res, Completion done)
{
    eq.scheduleIn(cfg.commandRtt,
                  [this, res, done = std::move(done)]() mutable {
                      res.completed = eq.now();
                      if (done)
                          done(res);
                  });
}

std::vector<sim::Stage>
RaidFileClient::readOutStages()
{
    return {sim::Stage(server.board().hippiSrcPort()),
            sim::Stage(net.ring()), client.rxStage()};
}

std::vector<sim::Stage>
RaidFileClient::writeInStages()
{
    return {client.txStage(), sim::Stage(net.ring()),
            sim::Stage(server.board().hippiDstPort())};
}

// ---------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------

void
RaidFileClient::raidOpen(const std::string &path, bool create,
                         Completion done)
{
    client.chargeRequestCost();
    Result res;
    res.issued = eq.now();
    res.cls = ServiceClass::Standard;

    if (cfg.scheduler) {
        RequestScheduler::Request r;
        r.session = _session;
        r.kind = OpKind::Open;
        r.path = path;
        r.create = create;
        r.done = [this, res, done = std::move(done)](
                     Status st, lfs::InodeNum ino) mutable {
            res.status = st;
            res.completed = eq.now();
            if (st == Status::Ok) {
                const Handle h = nextHandle++;
                open[h] = OpenFile{ino, 0};
                res.handle = h;
            }
            if (done)
                done(res);
        };
        eq.scheduleIn(cfg.commandRtt,
                      [this, r = std::move(r)]() mutable {
                          cfg.scheduler->submit(std::move(r));
                      });
        return;
    }

    eq.scheduleIn(cfg.commandRtt, [this, path, create, res,
                                   done = std::move(done)]() mutable {
        lfs::InodeNum ino;
        if (server.fs().exists(path)) {
            ino = server.fs().lookup(path);
        } else if (create) {
            ino = server.fs().create(path);
        } else {
            res.status = Status::NotFound;
            res.completed = eq.now();
            if (done)
                done(res);
            return;
        }
        const Handle h = nextHandle++;
        open[h] = OpenFile{ino, 0};
        res.handle = h;
        res.completed = eq.now();
        if (done)
            done(res);
    });
}

// ---------------------------------------------------------------------
// Read
// ---------------------------------------------------------------------

void
RaidFileClient::directRead(lfs::InodeNum ino, std::uint64_t off,
                           std::uint64_t n,
                           std::function<void(bool)> done)
{
    // Command exchange already paid; the server reads through the
    // high-bandwidth path: array -> XBUS memory -> HIPPI source ->
    // Ultranet -> client NIC.
    if (cfg.pollingDriver) {
        // The host busy-waits while the source board transmits.
        server.host().cpu().submitBusyTime(
            sim::transferTicks(n, cal::clientReadMBs), nullptr);
    }
    server.fileReadChecked(ino, off, n, std::move(done),
                           readOutStages(), cal::hippiSetupOverhead);
}

void
RaidFileClient::issueRead(Handle h, lfs::InodeNum ino, std::uint64_t off,
                          std::uint64_t len, bool advance,
                          Completion done)
{
    Result res;
    res.issued = eq.now();
    res.cls = classFor(cfg.scheduler, OpKind::Read, len);

    const std::uint64_t size = server.fs().statIno(ino).size;
    const std::uint64_t n =
        off >= size ? 0 : std::min<std::uint64_t>(len, size - off);
    if (n == 0) {
        // Reading at EOF is a success with zero bytes; it never
        // travels the data path.
        res.bytes = 0;
        completeLocal(res, std::move(done));
        return;
    }

    auto complete = [this, h, off, n, advance, res,
                     done = std::move(done)](Status st) mutable {
        res.status = st;
        res.bytes = st == Status::Ok ? n : 0;
        res.completed = eq.now();
        if (st == Status::Ok && advance) {
            const auto it = open.find(h);
            if (it != open.end())
                it->second.pos = off + n;
        }
        if (done)
            done(res);
    };

    if (cfg.scheduler) {
        RequestScheduler::Request r;
        r.session = _session;
        r.kind = OpKind::Read;
        r.ino = ino;
        r.off = off;
        r.len = n;
        r.outStages = readOutStages();
        if (cfg.pollingDriver)
            r.hostBusyTicks = sim::transferTicks(n, cal::clientReadMBs);
        r.done = [complete = std::move(complete)](
                     Status st, lfs::InodeNum) mutable { complete(st); };
        eq.scheduleIn(cfg.commandRtt,
                      [this, r = std::move(r)]() mutable {
                          cfg.scheduler->submit(std::move(r));
                      });
        return;
    }

    eq.scheduleIn(cfg.commandRtt, [this, ino, off, n,
                                   complete =
                                       std::move(complete)]() mutable {
        directRead(ino, off, n,
                   [complete = std::move(complete)](bool ok) mutable {
                       complete(ok ? Status::Ok : Status::DataCorrupt);
                   });
    });
}

void
RaidFileClient::raidRead(Handle h, std::uint64_t len, Completion done)
{
    client.chargeRequestCost();
    const auto it = open.find(h);
    if (it == open.end()) {
        Result res;
        res.issued = eq.now();
        res.status = Status::BadHandle;
        res.cls = classFor(cfg.scheduler, OpKind::Read, len);
        completeLocal(res, std::move(done));
        return;
    }
    issueRead(h, it->second.ino, it->second.pos, len, /*advance=*/true,
              std::move(done));
}

void
RaidFileClient::raidPRead(Handle h, std::uint64_t off, std::uint64_t len,
                          Completion done)
{
    client.chargeRequestCost();
    const auto it = open.find(h);
    if (it == open.end()) {
        Result res;
        res.issued = eq.now();
        res.status = Status::BadHandle;
        res.cls = classFor(cfg.scheduler, OpKind::Read, len);
        completeLocal(res, std::move(done));
        return;
    }
    issueRead(h, it->second.ino, off, len, /*advance=*/false,
              std::move(done));
}

// ---------------------------------------------------------------------
// Write
// ---------------------------------------------------------------------

void
RaidFileClient::directWrite(lfs::InodeNum ino, std::uint64_t off,
                            std::uint64_t len, std::function<void()> done)
{
    // Client NIC -> Ultranet -> HIPPI destination -> XBUS memory, then
    // the LFS write path buffers and flushes segments.
    sim::Pipeline::start(eq, writeInStages(), len, cal::xbusChunkBytes,
                         [this, ino, off, len,
                          done = std::move(done)]() mutable {
                             server.fileWrite(ino, off, len,
                                              std::move(done));
                         });
}

void
RaidFileClient::issueWrite(Handle h, lfs::InodeNum ino, std::uint64_t off,
                           std::uint64_t len, bool advance,
                           Completion done)
{
    Result res;
    res.issued = eq.now();
    res.cls = classFor(cfg.scheduler, OpKind::Write, len);

    auto complete = [this, h, off, len, advance, res,
                     done = std::move(done)](Status st) mutable {
        res.status = st;
        res.bytes = st == Status::Ok ? len : 0;
        res.completed = eq.now();
        if (st == Status::Ok && advance) {
            const auto it = open.find(h);
            if (it != open.end())
                it->second.pos = off + len;
        }
        if (done)
            done(res);
    };

    if (cfg.scheduler) {
        RequestScheduler::Request r;
        r.session = _session;
        r.kind = OpKind::Write;
        r.ino = ino;
        r.off = off;
        r.len = len;
        r.inStages = writeInStages();
        r.done = [complete = std::move(complete)](
                     Status st, lfs::InodeNum) mutable { complete(st); };
        eq.scheduleIn(cfg.commandRtt,
                      [this, r = std::move(r)]() mutable {
                          cfg.scheduler->submit(std::move(r));
                      });
        return;
    }

    eq.scheduleIn(cfg.commandRtt, [this, ino, off, len,
                                   complete =
                                       std::move(complete)]() mutable {
        directWrite(ino, off, len,
                    [complete = std::move(complete)]() mutable {
                        complete(Status::Ok);
                    });
    });
}

void
RaidFileClient::raidWrite(Handle h, std::uint64_t len, Completion done)
{
    client.chargeRequestCost();
    const auto it = open.find(h);
    if (it == open.end()) {
        Result res;
        res.issued = eq.now();
        res.status = Status::BadHandle;
        res.cls = classFor(cfg.scheduler, OpKind::Write, len);
        completeLocal(res, std::move(done));
        return;
    }
    issueWrite(h, it->second.ino, it->second.pos, len, /*advance=*/true,
               std::move(done));
}

void
RaidFileClient::raidPWrite(Handle h, std::uint64_t off, std::uint64_t len,
                           Completion done)
{
    client.chargeRequestCost();
    const auto it = open.find(h);
    if (it == open.end()) {
        Result res;
        res.issued = eq.now();
        res.status = Status::BadHandle;
        res.cls = classFor(cfg.scheduler, OpKind::Write, len);
        completeLocal(res, std::move(done));
        return;
    }
    issueWrite(h, it->second.ino, off, len, /*advance=*/false,
               std::move(done));
}

// ---------------------------------------------------------------------
// Handle state
// ---------------------------------------------------------------------

Status
RaidFileClient::raidSeek(Handle h, std::uint64_t pos)
{
    const auto it = open.find(h);
    if (it == open.end())
        return Status::BadHandle;
    it->second.pos = pos;
    return Status::Ok;
}

Status
RaidFileClient::raidClose(Handle h)
{
    return open.erase(h) ? Status::Ok : Status::BadHandle;
}

std::optional<std::uint64_t>
RaidFileClient::position(Handle h) const
{
    const auto it = open.find(h);
    if (it == open.end())
        return std::nullopt;
    return it->second.pos;
}

// ---------------------------------------------------------------------
// Deprecated callback-pair shims (kept for one PR)
// ---------------------------------------------------------------------

void
RaidFileClient::raidOpen(const std::string &path, bool create,
                         std::function<void(Status, Handle)> done)
{
    raidOpen(path, create,
             Completion([done = std::move(done)](const Result &r) {
                 if (done)
                     done(r.status, r.handle);
             }));
}

void
RaidFileClient::raidRead(Handle h, std::uint64_t len,
                         std::function<void(Status, std::uint64_t)> done)
{
    raidRead(h, len,
             Completion([done = std::move(done)](const Result &r) {
                 if (done)
                     done(r.status, r.bytes);
             }));
}

void
RaidFileClient::raidWrite(Handle h, std::uint64_t len,
                          std::function<void(Status, std::uint64_t)> done)
{
    raidWrite(h, len,
              Completion([done = std::move(done)](const Result &r) {
                  if (done)
                      done(r.status, r.bytes);
              }));
}

} // namespace raid2::server
