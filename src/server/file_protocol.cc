#include "server/file_protocol.hh"

#include "sim/logging.hh"

namespace raid2::server {

RaidFileClient::RaidFileClient(sim::EventQueue &eq_, Raid2Server &server_,
                               net::ClientModel &client_,
                               net::UltranetFabric &net_,
                               const Config &cfg_)
    : eq(eq_), server(server_), client(client_), net(net_), cfg(cfg_)
{
}

RaidFileClient::RaidFileClient(sim::EventQueue &eq_, Raid2Server &server_,
                               net::ClientModel &client_,
                               net::UltranetFabric &net_)
    : RaidFileClient(eq_, server_, client_, net_, Config{})
{
}

void
RaidFileClient::raidOpen(const std::string &path, bool create,
                         std::function<void(Status, Handle)> done)
{
    client.chargeRequestCost();
    eq.scheduleIn(cfg.commandRtt, [this, path, create,
                                   done = std::move(done)] {
        lfs::InodeNum ino;
        if (server.fs().exists(path)) {
            ino = server.fs().lookup(path);
        } else if (create) {
            ino = server.fs().create(path);
        } else {
            if (done)
                done(Status::NotFound, invalidHandle);
            return;
        }
        const Handle h = nextHandle++;
        open[h] = OpenFile{ino, 0};
        if (done)
            done(Status::Ok, h);
    });
}

void
RaidFileClient::raidRead(Handle h, std::uint64_t len,
                         std::function<void(Status, std::uint64_t)> done)
{
    client.chargeRequestCost();
    auto it = open.find(h);
    if (it == open.end()) {
        eq.scheduleIn(cfg.commandRtt, [done = std::move(done)] {
            if (done)
                done(Status::BadHandle, 0);
        });
        return;
    }
    OpenFile &f = it->second;
    const std::uint64_t off = f.pos;
    const std::uint64_t size = server.fs().statIno(f.ino).size;
    const std::uint64_t n =
        off >= size ? 0 : std::min<std::uint64_t>(len, size - off);
    f.pos += n;

    if (n == 0) {
        eq.scheduleIn(cfg.commandRtt, [done = std::move(done)] {
            if (done)
                done(Status::Ok, 0);
        });
        return;
    }
    // Command exchange, then server reads through the high-bandwidth
    // path: array -> XBUS memory -> HIPPI source -> Ultranet ->
    // client NIC.
    eq.scheduleIn(cfg.commandRtt, [this, ino = f.ino, off, n,
                                   done = std::move(done)] {
        std::vector<sim::Stage> out = {
            sim::Stage(server.board().hippiSrcPort()),
            sim::Stage(net.ring()), client.rxStage()};
        if (cfg.pollingDriver) {
            // The host busy-waits while the source board transmits.
            server.host().cpu().submitBusyTime(
                sim::transferTicks(n, cal::clientReadMBs), nullptr);
        }
        server.fileRead(ino, off, n,
                        [n, done = std::move(done)] {
                            if (done)
                                done(Status::Ok, n);
                        },
                        out, cal::hippiSetupOverhead);
    });
}

void
RaidFileClient::raidWrite(Handle h, std::uint64_t len,
                          std::function<void(Status, std::uint64_t)> done)
{
    client.chargeRequestCost();
    auto it = open.find(h);
    if (it == open.end()) {
        eq.scheduleIn(cfg.commandRtt, [done = std::move(done)] {
            if (done)
                done(Status::BadHandle, 0);
        });
        return;
    }
    OpenFile &f = it->second;
    const std::uint64_t off = f.pos;
    f.pos += len;

    eq.scheduleIn(cfg.commandRtt, [this, ino = f.ino, off, len,
                                   done = std::move(done)] {
        // Client NIC -> Ultranet -> HIPPI destination -> XBUS memory,
        // then the LFS write path buffers and flushes segments.
        std::vector<sim::Stage> in = {
            client.txStage(), sim::Stage(net.ring()),
            sim::Stage(server.board().hippiDstPort())};
        sim::Pipeline::start(
            eq, in, len, cal::xbusChunkBytes,
            [this, ino, off, len, done = std::move(done)]() mutable {
                server.fileWrite(ino, off, len,
                                 [len, done = std::move(done)] {
                                     if (done)
                                         done(Status::Ok, len);
                                 });
            });
    });
}

void
RaidFileClient::raidSeek(Handle h, std::uint64_t pos)
{
    auto it = open.find(h);
    if (it == open.end())
        sim::fatal("raidSeek on closed handle %u", h);
    it->second.pos = pos;
}

void
RaidFileClient::raidClose(Handle h)
{
    open.erase(h);
}

std::uint64_t
RaidFileClient::position(Handle h) const
{
    auto it = open.find(h);
    if (it == open.end())
        sim::fatal("position of closed handle %u", h);
    return it->second.pos;
}

} // namespace raid2::server
