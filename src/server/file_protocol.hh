/**
 * @file
 * The RAID file access library (client side of the fast path).
 *
 * §3.3: clients link "a small library that converts RAID file
 * operations into operations on an Ultranet socket connection":
 * raid_open opens a socket and names the file; raid_read/raid_write
 * stream data over the Ultranet between the XBUS board's HIPPI port
 * and the client NIC.  This class models that library: per-call
 * socket/RPC costs, positional handles, and the timed transfer path
 * through server HIPPI -> Ultranet ring -> client NIC.
 */

#ifndef RAID2_SERVER_FILE_PROTOCOL_HH
#define RAID2_SERVER_FILE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/raid2_server.hh"

namespace raid2::server {

/** Client-side RAID file library over the Ultranet fast path. */
class RaidFileClient
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle invalidHandle = 0;

    /** Result delivered with every completion. */
    enum class Status {
        Ok,
        NotFound,   // raidOpen of a missing path without create
        BadHandle,  // operation on a closed or never-opened handle
    };

    struct Config
    {
        /** Round-trip command latency for open/close and per-request
         *  command exchange (socket + Sprite-RPC on the host). */
        sim::Tick commandRtt = sim::msToTicks(1.0);
        /** Host CPU polls during sends with the initial network driver
         *  (§3.4) instead of taking interrupts. */
        bool pollingDriver = false;
    };

    RaidFileClient(sim::EventQueue &eq, Raid2Server &server,
                   net::ClientModel &client, net::UltranetFabric &net,
                   const Config &cfg);
    RaidFileClient(sim::EventQueue &eq, Raid2Server &server,
                   net::ClientModel &client, net::UltranetFabric &net);

    /**
     * Open (or create) a file; completes with (Status, handle).  On
     * Status::NotFound the handle is invalidHandle.
     */
    void raidOpen(const std::string &path, bool create,
                  std::function<void(Status, Handle)> done);

    /** Read @p len bytes at the handle's position; advances it.
     *  Completes with (Status, bytes read); reading at EOF is
     *  (Status::Ok, 0). */
    void raidRead(Handle h, std::uint64_t len,
                  std::function<void(Status, std::uint64_t)> done);

    /** Write @p len bytes at the handle's position; advances it.
     *  Completes with (Status, bytes written). */
    void raidWrite(Handle h, std::uint64_t len,
                   std::function<void(Status, std::uint64_t)> done);

    void raidSeek(Handle h, std::uint64_t pos);
    void raidClose(Handle h);

    std::uint64_t position(Handle h) const;

  private:
    struct OpenFile
    {
        lfs::InodeNum ino;
        std::uint64_t pos = 0;
    };

    sim::EventQueue &eq;
    Raid2Server &server;
    net::ClientModel &client;
    net::UltranetFabric &net;
    Config cfg;

    std::map<Handle, OpenFile> open;
    Handle nextHandle = 1;
};

} // namespace raid2::server

#endif // RAID2_SERVER_FILE_PROTOCOL_HH
