/**
 * @file
 * The RAID file access library (client side of the fast path).
 *
 * §3.3: clients link "a small library that converts RAID file
 * operations into operations on an Ultranet socket connection":
 * raid_open opens a socket and names the file; raid_read/raid_write
 * stream data over the Ultranet between the XBUS board's HIPPI port
 * and the client NIC.  This class models that library: per-call
 * socket/RPC costs, positional handles, and the timed transfer path
 * through server HIPPI -> Ultranet ring -> client NIC.
 *
 * Every operation completes with a single Result record (status,
 * bytes, handle, issue/complete ticks).  When a RequestScheduler is
 * attached (Config::scheduler) operations flow through the server
 * front end — bounded admission queues, per-session fairness, and the
 * §2.1.1 class split (bulk ops over the HIPPI fast path, metadata and
 * small ops over the Ethernet standard path) — and may complete with
 * Status::Busy or Status::Throttled, which the caller should retry
 * after a backoff.  Without a scheduler, operations hit the datapath
 * directly, as a lone client on an idle server would.
 */

#ifndef RAID2_SERVER_FILE_PROTOCOL_HH
#define RAID2_SERVER_FILE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "server/raid2_server.hh"
#include "server/request_scheduler.hh"

namespace raid2::server {

/** Client-side RAID file library over the Ultranet fast path. */
class RaidFileClient
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle invalidHandle = 0;

    /** Completion status (shared with the front end). */
    using Status = server::Status;

    /** Unified completion record delivered with every operation. */
    struct Result
    {
        Status status = Status::Ok;
        /** Open: the opened handle (invalidHandle on failure). */
        Handle handle = invalidHandle;
        /** Read/Write: payload bytes transferred. */
        std::uint64_t bytes = 0;
        /** Tick the operation was issued at the client. */
        sim::Tick issued = 0;
        /** Tick the completion fired. */
        sim::Tick completed = 0;
        /** Class the op was (or would have been) scheduled under. */
        RequestScheduler::ServiceClass cls =
            RequestScheduler::ServiceClass::FastPath;

        bool ok() const { return status == Status::Ok; }
        double
        latencyMs() const
        {
            return sim::ticksToMs(completed - issued);
        }
    };

    using Completion = std::function<void(const Result &)>;

    struct Config
    {
        /** Round-trip command latency for open/close and per-request
         *  command exchange (socket + Sprite-RPC on the host). */
        sim::Tick commandRtt = sim::msToTicks(1.0);
        /** Host CPU polls during sends with the initial network driver
         *  (§3.4) instead of taking interrupts. */
        bool pollingDriver = false;
        /** Route operations through the server front end.  The client
         *  allocates its scheduler session in the constructor. */
        RequestScheduler *scheduler = nullptr;
    };

    RaidFileClient(sim::EventQueue &eq, Raid2Server &server,
                   net::ClientModel &client, net::UltranetFabric &net,
                   const Config &cfg);
    RaidFileClient(sim::EventQueue &eq, Raid2Server &server,
                   net::ClientModel &client, net::UltranetFabric &net);

    /**
     * Open (or create) a file.  Completes with Result::handle set on
     * success; Status::NotFound when the path is missing and @p create
     * is false.
     */
    void raidOpen(const std::string &path, bool create, Completion done);

    /** Read @p len bytes at the handle's position; the position
     *  advances by the bytes actually read on success.  Reading at EOF
     *  is Status::Ok with 0 bytes. */
    void raidRead(Handle h, std::uint64_t len, Completion done);

    /** Write @p len bytes at the handle's position; the position
     *  advances by @p len on success. */
    void raidWrite(Handle h, std::uint64_t len, Completion done);

    /** Positional read: like raidRead at @p off, but never moves the
     *  handle's position (so many may be in flight on one handle). */
    void raidPRead(Handle h, std::uint64_t off, std::uint64_t len,
                   Completion done);

    /** Positional write at @p off; never moves the position. */
    void raidPWrite(Handle h, std::uint64_t off, std::uint64_t len,
                    Completion done);

    /** Set the handle's position.  Status::BadHandle if @p h is closed
     *  or was never opened. */
    Status raidSeek(Handle h, std::uint64_t pos);

    /** Close @p h; Status::BadHandle if it was not open. */
    Status raidClose(Handle h);

    /** The handle's position, or std::nullopt for a closed or
     *  never-opened handle (the Status::BadHandle case). */
    std::optional<std::uint64_t> position(Handle h) const;

    /** The scheduler session this client was assigned (0 if direct). */
    std::uint32_t session() const { return _session; }

    /** @{ Deprecated callback-pair completions (one-PR shims). */
    [[deprecated("use the Result completion overload")]] void
    raidOpen(const std::string &path, bool create,
             std::function<void(Status, Handle)> done);
    [[deprecated("use the Result completion overload")]] void
    raidRead(Handle h, std::uint64_t len,
             std::function<void(Status, std::uint64_t)> done);
    [[deprecated("use the Result completion overload")]] void
    raidWrite(Handle h, std::uint64_t len,
              std::function<void(Status, std::uint64_t)> done);
    /** @} */

  private:
    struct OpenFile
    {
        lfs::InodeNum ino;
        std::uint64_t pos = 0;
    };

    /** Complete locally (bad handle, EOF) after the command RTT. */
    void completeLocal(Result res, Completion done);

    /** Issue a read/write; when @p advance_from points at an open
     *  file, the cursor advances on successful completion. */
    void issueRead(Handle h, lfs::InodeNum ino, std::uint64_t off,
                   std::uint64_t len, bool advance, Completion done);
    void issueWrite(Handle h, lfs::InodeNum ino, std::uint64_t off,
                    std::uint64_t len, bool advance, Completion done);

    /** @{ Direct (scheduler-less) datapath issue, post-RTT. */
    void directRead(lfs::InodeNum ino, std::uint64_t off,
                    std::uint64_t n, std::function<void(bool ok)> done);
    void directWrite(lfs::InodeNum ino, std::uint64_t off,
                     std::uint64_t len, std::function<void()> done);
    /** @} */

    std::vector<sim::Stage> readOutStages();
    std::vector<sim::Stage> writeInStages();

    sim::EventQueue &eq;
    Raid2Server &server;
    net::ClientModel &client;
    net::UltranetFabric &net;
    Config cfg;
    std::uint32_t _session = 0;

    std::map<Handle, OpenFile> open;
    Handle nextHandle = 1;
};

} // namespace raid2::server

#endif // RAID2_SERVER_FILE_PROTOCOL_HH
