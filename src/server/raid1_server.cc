#include "server/raid1_server.hh"

#include <memory>
#include <string>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::server {

Raid1Server::Raid1Server(sim::EventQueue &eq_, std::string name,
                         const Config &cfg_)
    : eq(eq_), _name(std::move(name)), cfg(cfg_)
{
    _host = std::make_unique<host::HostWorkstation>(eq, _name + ".host",
                                                    cfg.hostCfg);
    for (unsigned c = 0; c < cfg.numControllers; ++c) {
        cougars.push_back(std::make_unique<scsi::CougarController>(
            eq, _name + ".ctrl" + std::to_string(c)));
    }
    const unsigned strings =
        cfg.numControllers * scsi::CougarController::numStrings;
    for (unsigned i = 0; i < cfg.numDisks; ++i) {
        disks.push_back(std::make_unique<disk::DiskModel>(
            eq, _name + ".disk" + std::to_string(i), *cfg.profile));
        // Round-robin across strings so load spreads like the
        // prototype's.
        const unsigned g = i % strings;
        auto &ctrl = *cougars[g % cfg.numControllers];
        auto &str = ctrl.string(g / cfg.numControllers);
        str.attach(disks.back().get());
        channels.push_back(std::make_unique<scsi::DiskChannel>(
            eq, *disks.back(), str, ctrl));
    }

    raid::LayoutConfig lcfg;
    lcfg.level = raid::RaidLevel::Raid0; // striping software, no parity
    lcfg.numDisks = cfg.numDisks;
    lcfg.stripeUnitBytes = cfg.stripeUnitBytes;
    _layout = std::make_unique<raid::RaidLayout>(
        lcfg, cfg.profile->capacityBytes());
}

Raid1Server::~Raid1Server() = default;

std::vector<sim::Stage>
Raid1Server::hostStages()
{
    return _host->dataPathStages();
}

void
Raid1Server::read(std::uint64_t off, std::uint64_t len,
                  std::function<void()> done)
{
    auto extents = _layout->mapRange(off, len);
    auto remaining = std::make_shared<std::size_t>(extents.size());
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [this, remaining, done_ptr] {
        if (--*remaining > 0)
            return;
        // Request completion: context switches + kernel work.
        _host->chargeIoCompletion(true, [done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        });
    };
    for (const auto &e : extents)
        channels[e.disk]->read(e.diskOffset, e.bytes, hostStages(),
                               finish);
}

void
Raid1Server::write(std::uint64_t off, std::uint64_t len,
                   std::function<void()> done)
{
    auto extents = _layout->mapRange(off, len);
    auto remaining = std::make_shared<std::size_t>(extents.size());
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [this, remaining, done_ptr] {
        if (--*remaining > 0)
            return;
        _host->chargeIoCompletion(true, [done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        });
    };
    for (const auto &e : extents)
        channels[e.disk]->write(e.diskOffset, e.bytes, hostStages(),
                                finish);
}

void
Raid1Server::registerStats(sim::StatsRegistry &reg) const
{
    _host->registerStats(reg, "host");
    for (std::size_t c = 0; c < cougars.size(); ++c)
        cougars[c]->registerStats(reg,
                                  "scsi.cougar" + std::to_string(c));
    for (std::size_t d = 0; d < disks.size(); ++d)
        disks[d]->registerStats(reg, "disk." + std::to_string(d));
}

void
Raid1Server::diskRead(unsigned d, std::uint64_t disk_off,
                      std::uint64_t len, std::function<void()> done)
{
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    channels.at(d)->read(disk_off, len, hostStages(), [this, done_ptr] {
        _host->chargeIoCompletion(true, [done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        });
    });
}

} // namespace raid2::server
