/**
 * @file
 * RAID-I baseline server.
 *
 * The first Berkeley prototype (§1): a Sun 4/280 with four dual-string
 * SCSI controllers and 28 Wren IV drives, with *all* data passing
 * through host memory — DMA across the 9 MB/s VME backplane, then
 * kernel-to-user copies that saturate the memory system at 2.3 MB/s
 * of delivered bandwidth.  This server exists to reproduce the §1
 * numbers and the Table 2 comparison.
 */

#ifndef RAID2_SERVER_RAID1_SERVER_HH
#define RAID2_SERVER_RAID1_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/host_workstation.hh"
#include "raid/raid_layout.hh"
#include "scsi/cougar_controller.hh"

namespace raid2::server {

/** Host-centric disk-array file server (the RAID-I prototype). */
class Raid1Server
{
  public:
    struct Config
    {
        unsigned numControllers = 4;
        unsigned numDisks = 28;
        std::uint64_t stripeUnitBytes = 32 * 1024;
        const disk::DiskProfile *profile = &disk::wrenIV();
        host::HostWorkstation::Config hostCfg;
    };

    Raid1Server(sim::EventQueue &eq, std::string name, const Config &cfg);
    ~Raid1Server();

    /**
     * Read [off, len) of the striped array to a user buffer: disks ->
     * SCSI -> backplane DMA -> kernel buffer -> user copy.
     */
    void read(std::uint64_t off, std::uint64_t len,
              std::function<void()> done);

    /** The reverse path. */
    void write(std::uint64_t off, std::uint64_t len,
               std::function<void()> done);

    /** Raw single-disk read (Table 2 single-disk row). */
    void diskRead(unsigned d, std::uint64_t disk_off, std::uint64_t len,
                  std::function<void()> done);

    host::HostWorkstation &host() { return *_host; }
    const raid::RaidLayout &layout() const { return *_layout; }
    unsigned numDisks() const
    {
        return static_cast<unsigned>(channels.size());
    }
    disk::DiskModel &disk(unsigned d) { return *disks.at(d); }

    /** Register host, controller and per-disk stats: "host.*",
     *  "scsi.cougarN.*", "disk.N.*". */
    void registerStats(sim::StatsRegistry &reg) const;

  private:
    std::vector<sim::Stage> hostStages();

    sim::EventQueue &eq;
    std::string _name;
    Config cfg;

    std::unique_ptr<host::HostWorkstation> _host;
    std::vector<std::unique_ptr<scsi::CougarController>> cougars;
    std::vector<std::unique_ptr<disk::DiskModel>> disks;
    std::vector<std::unique_ptr<scsi::DiskChannel>> channels;
    std::unique_ptr<raid::RaidLayout> _layout;
};

} // namespace raid2::server

#endif // RAID2_SERVER_RAID1_SERVER_HH
