#include "server/raid2_server.hh"

#include <algorithm>

#include "integrity/log_seed.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::server {

Raid2Server::Raid2Server(sim::EventQueue &eq_, std::string name,
                         const Config &cfg_)
    : eq(eq_), _name(std::move(name)), cfg(cfg_),
      _hostCache(cfg_.hostCacheBytes)
{
    _board = std::make_unique<xbus::XbusBoard>(eq, _name + ".xbus");
    _array = std::make_unique<raid::SimArray>(eq, *_board,
                                              _name + ".array",
                                              cfg.layout, cfg.topo);
    _host = std::make_unique<host::HostWorkstation>(eq, _name + ".host");
    _ethernet = std::make_unique<net::EthernetLink>(eq, _name + ".ether");
    _loop = std::make_unique<net::HippiLoopback>(eq, *_board);
    fsCpu = std::make_unique<sim::Service>(
        eq, _name + ".fscpu", sim::Service::Config{0.0, 0, 1});

    if (cfg.withFs && cfg.withIntegrity) {
        // Functional RAID twin sized so its data capacity covers the
        // file-system device (whole stripes; geometry shared with the
        // timed array, whose layout carries the disk count the
        // topology resolved).
        raid::LayoutConfig lcfg = cfg.layout;
        lcfg.numDisks = _array->layout().numDisks();
        const raid::RaidLayout probe(lcfg, lcfg.stripeUnitBytes);
        const std::uint64_t sdb = probe.stripeDataBytes();
        const std::uint64_t stripes =
            (cfg.fsDeviceBytes + sdb - 1) / sdb;
        _functional = std::make_unique<raid::RaidArray>(
            lcfg, stripes * lcfg.stripeUnitBytes);
    }

    if (cfg.withReliability) {
        fault::FaultController::Hooks hooks;
        hooks.array = _array.get();
        hooks.functional = _functional.get();
        hooks.hippi = &_loop->channel();
        _faults = std::make_unique<fault::FaultController>(
            eq, _name + ".fault", hooks);
        _recovery = std::make_unique<fault::RecoveryManager>(
            eq, _name + ".recovery", *_array, *_faults, cfg.recovery);
        _scrubber = std::make_unique<fault::Scrubber>(
            eq, _name + ".scrub", *_array, *_faults, cfg.scrub);
    }

    if (cfg.withFs) {
        if (cfg.fsDeviceBytes > _array->capacity())
            sim::fatal("Raid2Server %s: functional device larger than "
                       "the array", _name.c_str());
        if (cfg.fsParams.alignSegmentsTo == 0) {
            // Align LFS segments to the stripe width so segment
            // flushes are full-stripe writes (§3.1's efficient case).
            cfg.fsParams.alignSegmentsTo =
                _array->layout().stripeDataBytes();
        }
        fs::BlockDevice *base = nullptr;
        if (cfg.withIntegrity) {
            // Clamp to fsDeviceBytes: the twin is stripe-rounded, but
            // the file system must see the same geometry either way.
            arrayDev = std::make_unique<fs::ArrayBlockDevice>(
                *_functional, cfg.fsParams.blockSize,
                cfg.fsDeviceBytes / cfg.fsParams.blockSize);
            verifyDev = std::make_unique<integrity::VerifyingDevice>(
                *arrayDev, _functional.get(), cfg.integrityCfg);
            base = verifyDev.get();
        } else {
            fsDev = std::make_unique<fs::MemBlockDevice>(
                cfg.fsParams.blockSize,
                cfg.fsDeviceBytes / cfg.fsParams.blockSize);
            base = fsDev.get();
        }
        hookDev = std::make_unique<fs::HookBlockDevice>(*base);
        hookDev->setHook(
            [this](std::uint64_t off, std::uint64_t len, bool is_write) {
                if (is_write)
                    noteDeviceWrite(off, len);
            });
        lfs::Lfs::format(*hookDev, cfg.fsParams);
        _fs = std::make_unique<lfs::Lfs>(*hookDev);
        _fs->setAutoClean(true);
        // Format/mount traffic is setup, not workload.
        pendingWrites.clear();
    }

    if (verifyDev && _scrubber) {
        _scrubber->setVerifyHook(
            [this](unsigned d, std::uint64_t off, std::uint64_t len) {
                scrubVerifyChunk(d, off, len);
            });
    }
    if (verifyDev && _faults) {
        _faults->onSilentCorruption([this](const fault::FaultEvent &e) {
            switch (e.surface) {
            case fault::CorruptionSurface::TransferRead:
                verifyDev->armReadCorruption();
                break;
            case fault::CorruptionSurface::TransferWrite:
                verifyDev->armWriteCorruption();
                break;
            default:
                // HIPPI payload flip: the link FCS catches it, so the
                // next checked fast-path read pays a retransmit —
                // a timing cost, never bad bytes.
                ++_netFlipsArmed;
                break;
            }
        });
    }
}

Raid2Server::~Raid2Server() = default;

lfs::Lfs &
Raid2Server::fs()
{
    if (!_fs)
        sim::fatal("Raid2Server %s: configured without a file system",
                   _name.c_str());
    return *_fs;
}

fs::BlockDevice &
Raid2Server::fsDevice()
{
    if (!hookDev)
        sim::fatal("Raid2Server %s: configured without a file system",
                   _name.c_str());
    return *hookDev;
}

fs::HookBlockDevice &
Raid2Server::fsHookDevice()
{
    if (!hookDev)
        sim::fatal("Raid2Server %s: configured without a file system",
                   _name.c_str());
    return *hookDev;
}

fs::BlockDevice &
Raid2Server::rawFsDevice()
{
    if (verifyDev)
        return *verifyDev;
    if (!fsDev)
        sim::fatal("Raid2Server %s: configured without a file system",
                   _name.c_str());
    return *fsDev;
}

void
Raid2Server::remountFs()
{
    if (!hookDev)
        sim::fatal("Raid2Server %s: configured without a file system",
                   _name.c_str());
    _fs.reset();
    if (verifyDev) {
        // A remount models a restart: the in-memory expectations are
        // gone, so re-seed them from the checksums persisted in the
        // segment summaries (reads go to the inner device — the map
        // being rebuilt must not be consulted).
        verifyDev->checksums().reset();
        integrity::seedFromSegments(*arrayDev, verifyDev->checksums());
    }
    _fs = std::make_unique<lfs::Lfs>(*hookDev);
    _fs->setAutoClean(true);
    // Mount traffic is recovery bookkeeping, not workload.
    pendingWrites.clear();
}

void
Raid2Server::beginRestore()
{
    if (_restoreActive)
        sim::fatal("Raid2Server %s: restore already active",
                   _name.c_str());
    _restoreActive = true;
    ++_restores;
}

void
Raid2Server::endRestore()
{
    _restoreActive = false;
}

fault::FaultController &
Raid2Server::faults()
{
    if (!_faults)
        sim::fatal("Raid2Server %s: configured without reliability",
                   _name.c_str());
    return *_faults;
}

fault::RecoveryManager &
Raid2Server::recovery()
{
    if (!_recovery)
        sim::fatal("Raid2Server %s: configured without reliability",
                   _name.c_str());
    return *_recovery;
}

fault::Scrubber &
Raid2Server::scrubber()
{
    if (!_scrubber)
        sim::fatal("Raid2Server %s: configured without reliability",
                   _name.c_str());
    return *_scrubber;
}

integrity::VerifyingDevice &
Raid2Server::integrity()
{
    if (!verifyDev)
        sim::fatal("Raid2Server %s: configured without integrity",
                   _name.c_str());
    return *verifyDev;
}

raid::RaidArray &
Raid2Server::functionalArray()
{
    if (!_functional)
        sim::fatal("Raid2Server %s: configured without integrity",
                   _name.c_str());
    return *_functional;
}

// ---------------------------------------------------------------------
// Hardware-level ops
// ---------------------------------------------------------------------

void
Raid2Server::hwRead(std::uint64_t off, std::uint64_t len,
                    std::function<void()> done)
{
    PipelinedReader::Config pcfg;
    pcfg.depth = cfg.pipelineDepth;
    pcfg.bufferBytes = cfg.pipelineBufferBytes;
    pcfg.outStages = {sim::Stage(_board->memory()),
                      sim::Stage(_board->hippiSrcPort()),
                      sim::Stage(_board->hippiDstPort()),
                      sim::Stage(_board->memory())};
    pcfg.outSetup = cal::hippiSetupOverhead;
    pcfg.buffers = &_board->buffers();
    PipelinedReader::start(eq, *_array, {Range{off, len}}, pcfg,
                           std::move(done));
}

void
Raid2Server::hwWrite(std::uint64_t off, std::uint64_t len,
                     std::function<void()> done)
{
    // Data arrives over the HIPPI loop into XBUS memory while the
    // array write (parity passes + disk commands) proceeds; the
    // operation completes when both finish.  The HIPPI path outruns
    // the array, so the overlap approximation is safe.
    auto pending = std::make_shared<int>(2);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [pending, done_ptr] {
        if (--*pending == 0 && *done_ptr)
            (*done_ptr)();
    };
    _loop->transfer(len, finish);
    _array->write(off, len, finish);
}

// ---------------------------------------------------------------------
// LFS write path
// ---------------------------------------------------------------------

void
Raid2Server::noteDeviceWrite(std::uint64_t off, std::uint64_t len)
{
    if (!pendingWrites.empty()) {
        auto &last = pendingWrites.back();
        if (last.first + last.second == off) {
            last.second += len;
            return;
        }
    }
    pendingWrites.emplace_back(off, len);
}

void
Raid2Server::drainPendingWrites(std::function<void()> all_done)
{
    if (pendingWrites.empty()) {
        if (all_done)
            eq.scheduleIn(0, std::move(all_done));
        return;
    }
    auto batch = std::move(pendingWrites);
    pendingWrites.clear();

    auto remaining = std::make_shared<std::size_t>(batch.size());
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(all_done));
    for (const auto &[off, len] : batch) {
        ++flushesInFlight;
        ++_segmentFlushes;
        _flushedBytes += len;
        const sim::Tick issued = eq.now();
        _array->write(off, len,
                      [this, len = len, issued, remaining, done_ptr] {
            if (auto *t = eq.tracer())
                t->complete(_name, "segment_flush", issued, eq.now(),
                            len);
            flushCompleted();
            if (--*remaining == 0 && *done_ptr)
                (*done_ptr)();
        });
    }
}

void
Raid2Server::flushCompleted()
{
    --flushesInFlight;
    while (!flushWaiters.empty() &&
           flushesInFlight < cfg.maxFlushesInFlight) {
        auto waiter = std::move(flushWaiters.front());
        flushWaiters.pop_front();
        waiter();
    }
}

void
Raid2Server::registerStats(sim::StatsRegistry &reg) const
{
    _board->registerStats(reg, "xbus");
    _array->registerStats(reg, "raid", "disk", "scsi");
    _host->registerStats(reg, "host");
    _ethernet->registerStats(reg, "ether");
    if (_faults) {
        _faults->registerStats(reg, "fault");
        _recovery->registerStats(reg, "recovery");
        _scrubber->registerStats(reg, "scrub");
    }
    if (verifyDev) {
        verifyDev->registerStats(reg, "integrity");
        _functional->registerStats(reg, "integrity.array");
        reg.addGauge("integrity.corrupt_reads", [this] {
            return static_cast<double>(_corruptReads);
        });
        reg.addGauge("integrity.net_retransmits", [this] {
            return static_cast<double>(_netRetransmits);
        });
    }
    fsCpu->registerStats(reg, "server.fs_cpu");
    reg.addGauge("server.segment_flushes", [this] {
        return static_cast<double>(_segmentFlushes);
    });
    reg.addGauge("server.flushed_bytes", [this] {
        return static_cast<double>(_flushedBytes);
    });
    reg.addGauge("server.restores", [this] {
        return static_cast<double>(_restores);
    });
    if (_fs) {
        // Capture the server, not the Lfs: remountFs() replaces the
        // file system object and would dangle a raw pointer.
        reg.addGauge("lfs.segments_written", [this] {
            return static_cast<double>(_fs->stats().segmentsWritten);
        });
        reg.addGauge("lfs.cleaner.segments_cleaned", [this] {
            return static_cast<double>(
                _fs->stats().cleanerSegmentsCleaned);
        });
        reg.addGauge("lfs.cleaner.blocks_copied", [this] {
            return static_cast<double>(
                _fs->stats().cleanerBlocksCopied);
        });
        reg.addGauge("lfs.checkpoints", [this] {
            return static_cast<double>(_fs->stats().checkpoints);
        });
        reg.addGauge("lfs.roll_forward_segments", [this] {
            return static_cast<double>(
                _fs->stats().rollForwardSegments);
        });
        reg.addGauge("lfs.free_segments", [this] {
            return static_cast<double>(_fs->freeSegments());
        });
        reg.addGauge("lfs.snapshots", [this] {
            return static_cast<double>(_fs->listSnapshots().size());
        });
        hookDev->registerStats(reg, "lfs.device");
    }
}

lfs::InodeNum
Raid2Server::createFile(const std::string &path)
{
    if (_fsOpObserver)
        _fsOpObserver({FsOp::Kind::Create, path, 0, 0, 0});
    const lfs::InodeNum ino = fs().create(path);
    return ino;
}

void
Raid2Server::fileWrite(lfs::InodeNum ino, std::uint64_t off,
                       std::uint64_t len, std::function<void()> done)
{
    // Synthesize a deterministic payload for benches that don't care
    // about the bytes.
    std::vector<std::uint8_t> data(len);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>((off + i) * 131 + ino);
    fileWriteData(ino, off, {data.data(), data.size()},
                  std::move(done));
}

void
Raid2Server::fileWriteData(lfs::InodeNum ino, std::uint64_t off,
                           std::span<const std::uint8_t> data,
                           std::function<void()> done)
{
    auto copy = std::make_shared<std::vector<std::uint8_t>>(
        data.begin(), data.end());
    // Per-request file system + network software cost (~3 ms, §3.4),
    // serialized on the server software path.
    fsCpu->submitBusyTime(cfg.fsWriteOverhead, [this, ino, off, copy,
                                                done =
                                                    std::move(done)]()
                                                   mutable {
        // Functional write: real bytes into the log; the host's
        // cached copy (if any) is now stale (§3.2: "The file system
        // keeps the two caches consistent").
        if (_fsOpObserver)
            _fsOpObserver({FsOp::Kind::Write, {}, ino, off,
                           copy->size()});
        _hostCache.invalidate(ino);
        fs().write(ino, off, {copy->data(), copy->size()});

        // Copy into the XBUS segment buffer.
        _board->memory().submit(copy->size(), [this,
                                               done = std::move(done)]()
                                                  mutable {
            drainPendingWrites(nullptr);
            if (flushesInFlight >= cfg.maxFlushesInFlight) {
                flushWaiters.push_back(std::move(done));
            } else if (done) {
                done();
            }
        });
    });
}

void
Raid2Server::fileRead(lfs::InodeNum ino, std::uint64_t off,
                      std::uint64_t len, std::function<void()> done,
                      std::vector<sim::Stage> extra_out,
                      sim::Tick out_setup)
{
    fsCpu->submitBusyTime(cfg.fsReadOverhead, [this, ino, off, len,
                                               extra_out =
                                                   std::move(extra_out),
                                               out_setup,
                                               done = std::move(done)]()
                                                  mutable {
        std::vector<Range> ranges;
        for (const lfs::FileExtent &e : fs().mapFile(ino, off, len)) {
            if (e.hole)
                continue;
            ranges.push_back(Range{e.deviceOffset, e.bytes});
        }
        PipelinedReader::Config pcfg;
        pcfg.depth = cfg.pipelineDepth;
        pcfg.bufferBytes = cfg.pipelineBufferBytes;
        pcfg.outStages = {sim::Stage(_board->memory())};
        for (auto &st : extra_out)
            pcfg.outStages.push_back(st);
        pcfg.outSetup = out_setup;
        pcfg.buffers = &_board->buffers();
        PipelinedReader::start(eq, *_array, std::move(ranges), pcfg,
                               std::move(done));
    });
}

bool
Raid2Server::verifyFunctionalRange(std::uint64_t dev_off,
                                   std::uint64_t bytes)
{
    if (!verifyDev || bytes == 0)
        return true;
    const std::uint32_t bs = verifyDev->blockSize();
    const std::uint64_t b0 = dev_off / bs;
    const std::uint64_t b1 =
        std::min((dev_off + bytes + bs - 1) / bs,
                 verifyDev->numBlocks());
    if (b0 >= b1)
        return true;
    _verifyScratch.resize((b1 - b0) * bs);
    return verifyDev->verifiedReadRange(
        b0, b1 - b0, {_verifyScratch.data(), _verifyScratch.size()});
}

void
Raid2Server::fileReadChecked(lfs::InodeNum ino, std::uint64_t off,
                             std::uint64_t len,
                             std::function<void(bool)> done,
                             std::vector<sim::Stage> extra_out,
                             sim::Tick out_setup)
{
    fsCpu->submitBusyTime(cfg.fsReadOverhead, [this, ino, off, len,
                                               extra_out =
                                                   std::move(extra_out),
                                               out_setup,
                                               done = std::move(done)]()
                                                  mutable {
        bool ok = true;
        std::vector<Range> ranges;
        for (const lfs::FileExtent &e : fs().mapFile(ino, off, len)) {
            if (e.hole)
                continue;
            ranges.push_back(Range{e.deviceOffset, e.bytes});
            // Verify-on-read with read-repair on the functional plane;
            // the timed transfer below ships whatever survived.
            if (!verifyFunctionalRange(e.deviceOffset, e.bytes))
                ok = false;
        }
        if (!ok) {
            ++_corruptReads;
            if (auto *t = eq.tracer())
                t->complete(_name, "data_corrupt_read", eq.now(),
                            eq.now(), len);
        }
        PipelinedReader::Config pcfg;
        pcfg.depth = cfg.pipelineDepth;
        pcfg.bufferBytes = cfg.pipelineBufferBytes;
        pcfg.outStages = {sim::Stage(_board->memory())};
        for (auto &st : extra_out)
            pcfg.outStages.push_back(st);
        pcfg.outSetup = out_setup;
        pcfg.buffers = &_board->buffers();
        auto finish = [this, ok, len, done = std::move(done)]() mutable {
            if (_netFlipsArmed > 0) {
                --_netFlipsArmed;
                ++_netRetransmits;
                if (auto *t = eq.tracer())
                    t->complete(_name, "hippi_retransmit", eq.now(),
                                eq.now(), len);
                _loop->transfer(len,
                                [ok, done = std::move(done)]() mutable {
                                    done(ok);
                                });
                return;
            }
            done(ok);
        };
        PipelinedReader::start(eq, *_array, std::move(ranges), pcfg,
                               std::move(finish));
    });
}

void
Raid2Server::standardReadChecked(lfs::InodeNum ino, std::uint64_t off,
                                 std::uint64_t len,
                                 std::function<void(bool)> done)
{
    bool ok = true;
    if (verifyDev) {
        for (const lfs::FileExtent &e : fs().mapFile(ino, off, len)) {
            if (e.hole)
                continue;
            if (!verifyFunctionalRange(e.deviceOffset, e.bytes))
                ok = false;
        }
        if (!ok)
            ++_corruptReads;
    }
    standardRead(ino, off, len,
                 [ok, done = std::move(done)]() mutable { done(ok); });
}

void
Raid2Server::scrubVerifyChunk(unsigned d, std::uint64_t off,
                              std::uint64_t len)
{
    if (!verifyDev)
        return;
    const raid::RaidLayout &lay = _functional->layout();
    const std::uint64_t span = _functional->diskData(0).size();
    if (off >= span)
        return; // timed array extends past the functional twin
    len = std::min(len, span - off);
    // Stripes the member-disk chunk intersects -> the logical blocks
    // they carry.  Verify (and repair) the data first: healing the
    // redundancy from an unverified copy would launder corruption
    // into the parity/mirror.
    const std::uint64_t unit = lay.unitBytes();
    const std::uint64_t s0 = off / unit;
    const std::uint64_t s1 = (off + len + unit - 1) / unit;
    const std::uint64_t sdb = lay.stripeDataBytes();
    const std::uint32_t bs = verifyDev->blockSize();
    const std::uint64_t b0 = (s0 * sdb) / bs;
    const std::uint64_t b1 =
        std::min((s1 * sdb + bs - 1) / bs, verifyDev->numBlocks());
    if (b0 < b1)
        verifyDev->scrubVerify(b0, b1 - b0);
    _functional->healRedundancyRange(d, off, len);
}

void
Raid2Server::fsSync(std::function<void()> done)
{
    fsCpu->submitBusyTime(0, [this, done = std::move(done)]() mutable {
        if (_fsOpObserver)
            _fsOpObserver({FsOp::Kind::Sync, {}, 0, 0, 0});
        fs().sync();
        drainPendingWrites(std::move(done));
    });
}

// ---------------------------------------------------------------------
// Standard mode (Ethernet through the host)
// ---------------------------------------------------------------------

void
Raid2Server::standardRead(lfs::InodeNum ino, std::uint64_t off,
                          std::uint64_t len, std::function<void()> done)
{
    // Name lookup / request handling on the host.
    _host->chargeIoCompletion(true, nullptr);

    // Host file cache (§3.2): a resident file is served from host
    // memory — no XBUS or disk traffic at all.
    if (_hostCache.lookup(ino)) {
        fsCpu->submitBusyTime(
            cfg.fsReadOverhead,
            [this, len, done = std::move(done)]() mutable {
                _host->copyThroughMemory(
                    len, [this, len, done = std::move(done)]() mutable {
                        _ethernet->send(len, std::move(done));
                    });
            });
        return;
    }
    // The read below brings the whole file into the host cache if it
    // fits.
    const std::uint64_t file_size = fs().statIno(ino).size;
    if (file_size > 0 && file_size <= _hostCache.capacity())
        _hostCache.insert(ino, file_size);

    fsCpu->submitBusyTime(cfg.fsReadOverhead, [this, ino, off, len,
                                               done = std::move(done)]()
                                                  mutable {
        std::vector<Range> ranges;
        for (const lfs::FileExtent &e : fs().mapFile(ino, off, len)) {
            if (e.hole)
                continue;
            ranges.push_back(Range{e.deviceOffset, e.bytes});
        }
        auto remaining = std::make_shared<std::size_t>(ranges.size());
        auto done_ptr = std::make_shared<std::function<void()>>(
            std::move(done));
        auto total = len;
        auto after_reads = [this, done_ptr, total] {
            // XBUS -> slow VME link -> host backplane -> host memory
            // copies -> Ethernet to the client.
            std::vector<sim::Stage> stages = {
                sim::Stage(_board->memory()),
                sim::Stage(_board->hostLink(), cal::controlLinkReadMBs)};
            for (auto &st : _host->dataPathStages())
                stages.push_back(st);
            sim::Pipeline::start(
                eq, stages, total, cal::xbusChunkBytes,
                [this, done_ptr, total] {
                    _ethernet->send(total, [done_ptr] {
                        if (*done_ptr)
                            (*done_ptr)();
                    });
                });
        };
        if (ranges.empty()) {
            after_reads();
            return;
        }
        for (const Range &r : ranges) {
            _array->read(r.off, r.len,
                         [remaining, after_reads] {
                             if (--*remaining == 0)
                                 after_reads();
                         });
        }
    });
}

void
Raid2Server::standardWrite(lfs::InodeNum ino, std::uint64_t off,
                           std::uint64_t len, std::function<void()> done)
{
    _host->chargeIoCompletion(true, nullptr);

    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));

    // Client data arrives over the Ethernet, crosses host memory, and
    // descends the slow control link into XBUS memory.
    _ethernet->send(len, [this, ino, off, len, done_ptr] {
        std::vector<sim::Stage> stages = {_host->dataPathStages()[0],
                                          _host->dataPathStages()[1]};
        stages.push_back(
            sim::Stage(_board->hostLink(), cal::controlLinkWriteMBs));
        stages.push_back(sim::Stage(_board->memory()));
        sim::Pipeline::start(eq, stages, len, cal::xbusChunkBytes,
                             [this, ino, off, len, done_ptr] {
            const bool nvram = cfg.nvramBytes > 0;
            if (nvram) {
                // The NVRAM copy makes the write stable immediately;
                // the log flush continues behind the reply.
                fileWrite(ino, off, len, nullptr);
                _host->memoryCopy().submit(len, [done_ptr] {
                    if (*done_ptr)
                        (*done_ptr)();
                });
                return;
            }
            // NFSv2 stable write: reply only after the data is on the
            // disks.
            fileWrite(ino, off, len, [this, done_ptr] {
                fsSync([done_ptr] {
                    if (*done_ptr)
                        (*done_ptr)();
                });
            });
        });
    });
}

} // namespace raid2::server
