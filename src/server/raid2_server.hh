/**
 * @file
 * The RAID-II storage server.
 *
 * Glues the whole prototype together the way Fig 2 draws it: an XBUS
 * board with its disk array (SimArray, timed), the HIPPI pair, the
 * host workstation, and LFS.  The file system runs functionally on a
 * device whose logical space coincides with the timed array's logical
 * space; the server mirrors LFS's device traffic into the timed plane
 * (segment flushes become full-stripe array writes, mapFile() extents
 * become pipelined array reads), which is exactly the division of
 * labor between the Sun 4/280 host software and the XBUS hardware in
 * the real system.
 */

#ifndef RAID2_SERVER_RAID2_SERVER_HH
#define RAID2_SERVER_RAID2_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault_controller.hh"
#include "fault/recovery_manager.hh"
#include "fault/scrubber.hh"
#include "fs/array_block_device.hh"
#include "fs/block_device.hh"
#include "fs/mem_block_device.hh"
#include "integrity/verifying_device.hh"
#include "host/host_workstation.hh"
#include "host/lru_cache.hh"
#include "lfs/lfs.hh"
#include "net/ethernet.hh"
#include "net/hippi.hh"
#include "raid/sim_array.hh"
#include "server/datapath.hh"
#include "xbus/xbus_board.hh"

namespace raid2::server {

/** One-XBUS-board RAID-II server. */
class Raid2Server
{
  public:
    struct Config
    {
        raid::LayoutConfig layout;
        raid::ArrayTopology topo;

        /** Mount LFS on the array (off for raw-hardware benches). */
        bool withFs = true;
        lfs::Lfs::Params fsParams;
        /** Functional device capacity; the timed array's logical space
         *  is usually far larger than a bench's working set, so the
         *  functional twin only needs to cover the set actually
         *  touched. */
        std::uint64_t fsDeviceBytes = 256ull * 1024 * 1024;

        unsigned pipelineDepth = cal::defaultPipelineDepth;
        std::uint64_t pipelineBufferBytes = 256 * 1024;
        sim::Tick fsReadOverhead = cal::lfsReadOpOverhead;
        sim::Tick fsWriteOverhead = cal::lfsWriteOpOverhead;
        /** Write-behind bound on outstanding segment flushes. */
        unsigned maxFlushesInFlight = 2;
        /** Host file-cache budget for standard-mode reads (§3.2: "The
         *  host memory cache contains metadata as well as files that
         *  have been read into workstation memory for transfer over
         *  the Ethernet"). */
        std::uint64_t hostCacheBytes = 64ull * 1024 * 1024;
        /** NVRAM write buffer on the host for standard-mode (NFS-
         *  style) writes; §4.1: NFS servers add "possibly non-volatile
         *  memory to speed up NFS writes".  0 = none: standard-mode
         *  writes are stable (ack only after the log reaches disk). */
        std::uint64_t nvramBytes = 0;

        /** @{ Reliability subsystem.  When set, the server owns a
         *  fault::FaultController wired to the array and the HIPPI
         *  loop, a RecoveryManager that auto-rebuilds onto hot spares,
         *  and a media Scrubber (the caller starts it and the fault
         *  plan).  Off by default: a fault-free server pays nothing. */
        bool withReliability = false;
        fault::RecoveryManager::Config recovery;
        fault::Scrubber::Config scrub;
        /** @} */

        /** @{ End-to-end integrity (src/integrity/).  When set, the
         *  functional device becomes a raid::RaidArray twin (sized to
         *  cover fsDeviceBytes) wrapped in a VerifyingDevice: every
         *  write records a per-block checksum, every read is verified
         *  with read-repair, unrepairable blocks surface as corrupt
         *  reads, and the scrubber (withReliability) upgrades to a
         *  full checksum-verify sweep.  Off by default: the functional
         *  device stays a plain MemBlockDevice and reads cost nothing
         *  extra. */
        bool withIntegrity = false;
        integrity::VerifyingDevice::Config integrityCfg;
        /** @} */

        Config()
        {
            layout.level = raid::RaidLevel::Raid5;
            layout.stripeUnitBytes = cal::lfsStripeUnitBytes;
        }
    };

    Raid2Server(sim::EventQueue &eq, std::string name, const Config &cfg);
    ~Raid2Server();

    /** @{ Subsystems. */
    xbus::XbusBoard &board() { return *_board; }
    raid::SimArray &array() { return *_array; }
    host::HostWorkstation &host() { return *_host; }
    net::EthernetLink &ethernet() { return *_ethernet; }
    lfs::Lfs &fs();
    sim::EventQueue &eventQueue() { return eq; }
    const Config &config() const { return cfg; }
    /** @{ Reliability subsystem (Config::withReliability only). */
    fault::FaultController &faults();
    fault::RecoveryManager &recovery();
    fault::Scrubber &scrubber();
    bool hasReliability() const { return _faults != nullptr; }
    /** @} */
    /** @{ Integrity subsystem (Config::withIntegrity only). */
    integrity::VerifyingDevice &integrity();
    bool hasIntegrity() const { return verifyDev != nullptr; }
    /** The functional RAID twin backing the integrity chain. */
    raid::RaidArray &functionalArray();
    /** @} */
    /** @} */

    // -----------------------------------------------------------------
    // Hardware-level operations (no file system) — §2.3, Fig 5/Table 1.
    // -----------------------------------------------------------------

    /** Disk array -> XBUS memory -> HIPPI loop -> XBUS memory. */
    void hwRead(std::uint64_t off, std::uint64_t len,
                std::function<void()> done);

    /** HIPPI loop -> XBUS memory -> parity -> disk array. */
    void hwWrite(std::uint64_t off, std::uint64_t len,
                 std::function<void()> done);

    // -----------------------------------------------------------------
    // LFS operations — §3.4, Fig 8 (data to/from XBUS network buffers).
    // -----------------------------------------------------------------

    lfs::InodeNum createFile(const std::string &path);

    /**
     * Timed + functional file write.  Completion models LFS
     * write-behind: the request finishes once buffered (overhead +
     * memory copy) unless segment flushes back up.
     */
    void fileWrite(lfs::InodeNum ino, std::uint64_t off,
                   std::uint64_t len, std::function<void()> done);

    /** Like fileWrite() but stores caller-supplied bytes (the data is
     *  copied before the call returns). */
    void fileWriteData(lfs::InodeNum ino, std::uint64_t off,
                       std::span<const std::uint8_t> data,
                       std::function<void()> done);

    /**
     * Timed + functional file read through the pipelined high-
     * bandwidth path into XBUS network buffers.  @p extra_out appends
     * stages after the network-buffer copy (e.g. HIPPI + client NIC).
     */
    void fileRead(lfs::InodeNum ino, std::uint64_t off,
                  std::uint64_t len, std::function<void()> done,
                  std::vector<sim::Stage> extra_out = {},
                  sim::Tick out_setup = 0);

    /**
     * Like fileRead() but the functional bytes are checksum-verified
     * first (with read-repair); the completion reports whether every
     * block held verified data.  @p done(false) means some block was
     * unrepairably corrupt — the front end surfaces it as
     * Status::DataCorrupt, never as silent wrong data.  A pending
     * HIPPI-payload corruption (CorruptionSurface::Network) costs one
     * link-level retransmit of the payload before completion.
     * Without Config::withIntegrity this is fileRead() + done(true).
     */
    void fileReadChecked(lfs::InodeNum ino, std::uint64_t off,
                         std::uint64_t len,
                         std::function<void(bool ok)> done,
                         std::vector<sim::Stage> extra_out = {},
                         sim::Tick out_setup = 0);

    /** Timed sync: flush LFS state and wait for the array writes. */
    void fsSync(std::function<void()> done);

    // -----------------------------------------------------------------
    // Standard mode — Ethernet through the host (§2.1.1, §3.3).
    // -----------------------------------------------------------------

    /** XBUS -> host link -> host memory -> Ethernet -> client.  Whole
     *  files read this way populate the host's LRU cache; later
     *  standard-mode reads of a cached file skip the array entirely
     *  (§3.2). */
    void standardRead(lfs::InodeNum ino, std::uint64_t off,
                      std::uint64_t len, std::function<void()> done);

    /** Checked sibling of standardRead(): verifies the functional
     *  bytes first, like fileReadChecked(). */
    void standardReadChecked(lfs::InodeNum ino, std::uint64_t off,
                             std::uint64_t len,
                             std::function<void(bool ok)> done);

    /**
     * Standard-mode (NFS-style) write: Ethernet -> host memory ->
     * control link -> LFS.  Without NVRAM the reply waits for the data
     * to be stable on disk (NFSv2 semantics: sync + flush); with
     * Config::nvramBytes set, the reply returns once the data is in
     * the host's NVRAM and the log flush proceeds behind it.
     */
    void standardWrite(lfs::InodeNum ino, std::uint64_t off,
                       std::uint64_t len, std::function<void()> done);

    /** The host's standard-mode file cache. */
    host::LruCache &hostCache() { return _hostCache; }

    // -----------------------------------------------------------------
    // Snapshot / backup plumbing (src/snap/).
    // -----------------------------------------------------------------

    /** The functional LFS device (reads return exactly the log bytes
     *  the file system wrote; writes mirror into the timed plane). */
    fs::BlockDevice &fsDevice();
    /** Same device, typed: for attaching a fs::WriteLog capture
     *  (model checking) next to the write-mirroring hook. */
    fs::HookBlockDevice &fsHookDevice();
    /** The functional twin bypassing the write-mirroring hook — for
     *  restore writes whose array timing the BackupEngine models
     *  itself.  With Config::withIntegrity this is the verifying
     *  device (restore writes re-record checksums); otherwise the
     *  in-memory device. */
    fs::BlockDevice &rawFsDevice();
    /** Tear down and re-mount LFS from the functional device (after a
     *  restore rewrote it). */
    void remountFs();
    /** @{ While a restore is rewriting the array, ops arriving through
     *  the request scheduler complete with Status::Busy instead of
     *  racing the restore writer. */
    void beginRestore();
    void endRestore();
    bool restoreActive() const { return _restoreActive; }
    /** @} */

    // -----------------------------------------------------------------
    // Functional-plane mutation observer (model checking).
    // -----------------------------------------------------------------

    /** One LFS mutation the server is about to apply.  Observed in
     *  apply order: the fsCpu service serializes every mutating path,
     *  so the observer sees exactly the sequence the log sees. */
    struct FsOp
    {
        enum class Kind { Create, Write, Sync };
        Kind kind{};
        std::string path;      ///< Create only.
        lfs::InodeNum ino = 0; ///< Write only.
        std::uint64_t off = 0; ///< Write only.
        std::uint64_t len = 0; ///< Write only.
    };
    using FsOpObserver = std::function<void(const FsOp &)>;
    /** Fired synchronously immediately *before* each functional LFS
     *  mutation (create / write / sync).  Null by default: a
     *  production server pays one branch per op. */
    void setFsOpObserver(FsOpObserver obs)
    {
        _fsOpObserver = std::move(obs);
    }

    /** @{ Statistics. */
    std::uint64_t segmentFlushes() const { return _segmentFlushes; }
    std::uint64_t flushedBytes() const { return _flushedBytes; }
    /** Checked reads that completed corrupt (integrity only). */
    std::uint64_t corruptReads() const { return _corruptReads; }
    /** HIPPI payload retransmits forced by network corruption. */
    std::uint64_t netRetransmits() const { return _netRetransmits; }

    /**
     * Register the whole server's stats tree: "xbus.*", "disk.*",
     * "scsi.*", "raid.*", "host.*", "ether.*", "lfs.*" (when a file
     * system is mounted) and "server.*".
     */
    void registerStats(sim::StatsRegistry &reg) const;
    /** @} */

  private:
    /** Collect LFS device writes and issue them to the timed array. */
    void drainPendingWrites(std::function<void()> per_batch_done);
    void noteDeviceWrite(std::uint64_t off, std::uint64_t len);
    void flushCompleted();
    /** Verify [dev_off, dev_off+bytes) of the functional device, with
     *  read-repair; @return false on unrepairable corruption.  True
     *  when integrity is off. */
    bool verifyFunctionalRange(std::uint64_t dev_off,
                               std::uint64_t bytes);
    /** Scrubber VerifyHook: checksum-verify the logical blocks the
     *  scanned member-disk chunk covers, then heal its redundancy. */
    void scrubVerifyChunk(unsigned d, std::uint64_t off,
                          std::uint64_t len);

    sim::EventQueue &eq;
    std::string _name;
    Config cfg;

    std::unique_ptr<xbus::XbusBoard> _board;
    std::unique_ptr<raid::SimArray> _array;
    std::unique_ptr<host::HostWorkstation> _host;
    std::unique_ptr<net::EthernetLink> _ethernet;
    std::unique_ptr<net::HippiLoopback> _loop;

    /** Functional RAID twin; null unless Config::withIntegrity.
     *  Declared before the FaultController (which mirrors faults into
     *  it) and before the device chain built on top of it. */
    std::unique_ptr<raid::RaidArray> _functional;

    /** @{ Reliability subsystem; null unless Config::withReliability.
     *  Declared after the array so the controller detaches its oracle
     *  before the array dies. */
    std::unique_ptr<fault::FaultController> _faults;
    std::unique_ptr<fault::RecoveryManager> _recovery;
    std::unique_ptr<fault::Scrubber> _scrubber;
    /** @} */

    /** Serializes the per-request file system CPU overheads. */
    std::unique_ptr<sim::Service> fsCpu;

    /** Functional device chain.  Plain: fsDev -> hookDev.  Integrity:
     *  _functional -> arrayDev -> verifyDev -> hookDev (declaration
     *  order matters — wrappers must die before what they wrap). */
    std::unique_ptr<fs::MemBlockDevice> fsDev;
    std::unique_ptr<fs::ArrayBlockDevice> arrayDev;
    std::unique_ptr<integrity::VerifyingDevice> verifyDev;
    std::unique_ptr<fs::HookBlockDevice> hookDev;
    std::unique_ptr<lfs::Lfs> _fs;

    /** Device writes recorded by the hook since the last drain. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pendingWrites;
    unsigned flushesInFlight = 0;
    std::deque<std::function<void()>> flushWaiters;

    host::LruCache _hostCache;

    std::uint64_t _segmentFlushes = 0;
    std::uint64_t _flushedBytes = 0;
    std::uint64_t _restores = 0;
    bool _restoreActive = false;

    /** @{ Integrity-path state. */
    std::vector<std::uint8_t> _verifyScratch;
    unsigned _netFlipsArmed = 0;
    std::uint64_t _netRetransmits = 0;
    std::uint64_t _corruptReads = 0;
    /** @} */

    FsOpObserver _fsOpObserver;
};

} // namespace raid2::server

#endif // RAID2_SERVER_RAID2_SERVER_HH
