#include "server/request_scheduler.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::server {

const char *
statusName(Status st)
{
    switch (st) {
    case Status::Ok:
        return "Ok";
    case Status::NotFound:
        return "NotFound";
    case Status::BadHandle:
        return "BadHandle";
    case Status::Busy:
        return "Busy";
    case Status::Throttled:
        return "Throttled";
    case Status::DataCorrupt:
        return "DataCorrupt";
    }
    return "?";
}

const char *
RequestScheduler::className(ServiceClass c)
{
    return c == ServiceClass::FastPath ? "fast" : "std";
}

const char *
RequestScheduler::kindName(OpKind k)
{
    switch (k) {
    case OpKind::Open:
        return "open";
    case OpKind::Read:
        return "read";
    case OpKind::Write:
        return "write";
    }
    return "?";
}

RequestScheduler::RequestScheduler(sim::EventQueue &eq_, Raid2Server &srv_,
                                   const Config &cfg_)
    : eq(eq_), srv(srv_), cfg(cfg_)
{
    fast.cls = ServiceClass::FastPath;
    fast.queueCap = cfg.fastQueueCap;
    fast.inflightCap = std::max(1u, cfg.fastInFlight);
    standard.cls = ServiceClass::Standard;
    standard.queueCap = cfg.stdQueueCap;
    standard.inflightCap = std::max(1u, cfg.stdInFlight);
}

RequestScheduler::RequestScheduler(sim::EventQueue &eq_, Raid2Server &srv_)
    : RequestScheduler(eq_, srv_, Config{})
{
}

RequestScheduler::ClassState &
RequestScheduler::state(ServiceClass c)
{
    return c == ServiceClass::FastPath ? fast : standard;
}

const RequestScheduler::ClassState &
RequestScheduler::state(ServiceClass c) const
{
    return c == ServiceClass::FastPath ? fast : standard;
}

RequestScheduler::ServiceClass
RequestScheduler::classify(const Request &r) const
{
    if (r.kind == OpKind::Open)
        return ServiceClass::Standard;
    return r.len <= cfg.smallOpBytes ? ServiceClass::Standard
                                     : ServiceClass::FastPath;
}

std::uint64_t
RequestScheduler::costOf(const Request &r) const
{
    // Metadata and tiny transfers still cost a scheduling slot: floor
    // at 4 KB so DRR fairness is in requests, not epsilon-bytes.
    return std::max<std::uint64_t>(r.len, 4096);
}

void
RequestScheduler::reject(ClassState &cs, Request &&r, Status st)
{
    cs.rejected.inc();
    eq.scheduleIn(cfg.rejectLatency,
                  [done = std::move(r.done), st]() mutable {
                      if (done)
                          done(st, 0);
                  });
}

void
RequestScheduler::submit(Request r)
{
    ClassState &cs = state(classify(r));
    // A restore is rewriting the array underneath the file system;
    // admitting anything would race the restore writer.  Complete
    // asynchronously with Busy so clients back off and retry.
    if (srv.restoreActive()) {
        reject(cs, std::move(r), Status::Busy);
        return;
    }
    if (cs.depth >= cs.queueCap) {
        reject(cs, std::move(r), Status::Busy);
        return;
    }
    SessionQueue &s = cs.sessions[r.session];
    s.id = r.session;
    if (cfg.sessionQueueCap && s.q.size() >= cfg.sessionQueueCap) {
        reject(cs, std::move(r), Status::Throttled);
        return;
    }
    cs.admitted.inc();
    ++cs.depth;
    s.q.push_back(std::move(r));
    s.enqueuedAt.push_back(eq.now());
    if (!s.active) {
        s.active = true;
        cs.active.push_back(&s);
    }
    pump(cs);
}

void
RequestScheduler::pump(ClassState &cs)
{
    // Deficit round robin: visit the head session, top up its deficit
    // by one quantum, and serve from its queue while the deficit
    // covers the head request.  A session that still has backlog goes
    // to the back of the ring; an emptied session leaves it (and
    // forfeits its deficit, per classic DRR).
    while (cs.inflight < cs.inflightCap && !cs.active.empty()) {
        SessionQueue *s = cs.active.front();
        cs.active.pop_front();
        s->deficit += cfg.quantumBytes;
        while (!s->q.empty() && cs.inflight < cs.inflightCap) {
            const std::uint64_t cost = costOf(s->q.front());
            if (s->deficit < cost)
                break;
            s->deficit -= cost;
            grant(cs, *s);
        }
        if (s->q.empty()) {
            s->deficit = 0;
            s->active = false;
        } else {
            cs.active.push_back(s);
        }
    }
}

void
RequestScheduler::grant(ClassState &cs, SessionQueue &s)
{
    Request r = std::move(s.q.front());
    s.q.pop_front();
    const sim::Tick enq = s.enqueuedAt.front();
    s.enqueuedAt.pop_front();
    --cs.depth;
    ++cs.inflight;
    s.servedBytes += r.len;
    cs.queueDelayMs.sample(sim::ticksToMs(eq.now() - enq));

    std::uint64_t span = 0;
    if (auto *tr = eq.tracer())
        span = tr->begin(std::string("sched.") + className(cs.cls),
                         kindName(r.kind), r.len);

    if (r.hostBusyTicks)
        srv.host().cpu().submitBusyTime(r.hostBusyTicks, nullptr);

    dispatch(cs, std::move(r), eq.now(), span);
}

void
RequestScheduler::dispatch(ClassState &cs, Request &&r,
                           sim::Tick granted_at, std::uint64_t span)
{
    if (r.kind == OpKind::Open) {
        enqueueOpen(std::move(r), granted_at, span);
        return;
    }

    // The request record lives until its datapath completes.
    auto req = std::make_shared<Request>(std::move(r));
    auto on_done = [this, &cs, req, granted_at, span] {
        finish(cs, *req, granted_at, span, Status::Ok, req->ino);
    };
    // Reads report verify-on-read failures (integrity subsystem) as
    // DataCorrupt instead of silently shipping wrong bytes.
    auto on_read_done = [this, &cs, req, granted_at, span](bool ok) {
        finish(cs, *req, granted_at, span,
               ok ? Status::Ok : Status::DataCorrupt, req->ino);
    };

    if (cs.cls == ServiceClass::FastPath) {
        if (req->kind == OpKind::Read) {
            srv.fileReadChecked(req->ino, req->off, req->len,
                                on_read_done, req->outStages,
                                cal::hippiSetupOverhead);
        } else if (req->inStages.empty()) {
            srv.fileWrite(req->ino, req->off, req->len,
                          std::move(on_done));
        } else {
            sim::Pipeline::start(
                eq, req->inStages, req->len, cal::xbusChunkBytes,
                [this, req, on_done]() mutable {
                    srv.fileWrite(req->ino, req->off, req->len,
                                  std::move(on_done));
                });
        }
        return;
    }
    // Standard mode: small transfers ride the Ethernet through the
    // host (§2.1.1).
    if (req->kind == OpKind::Read)
        srv.standardReadChecked(req->ino, req->off, req->len,
                                on_read_done);
    else
        srv.standardWrite(req->ino, req->off, req->len, on_done);
}

void
RequestScheduler::finish(ClassState &cs, Request &r, sim::Tick granted_at,
                         std::uint64_t span, Status st, lfs::InodeNum ino)
{
    cs.serviceMs.sample(sim::ticksToMs(eq.now() - granted_at));
    cs.completed.inc();
    --cs.inflight;
    if (span) {
        if (auto *tr = eq.tracer())
            tr->end(span);
    }
    if (r.done)
        r.done(st, ino);
    pump(cs);
}

void
RequestScheduler::enqueueOpen(Request &&r, sim::Tick granted_at,
                              std::uint64_t span)
{
    batch.push_back(BatchedOpen{std::move(r), granted_at, span});
    if (batch.size() >= cfg.metaBatchMax) {
        if (batchTimer != sim::EventQueue::invalidEvent) {
            eq.cancel(batchTimer);
            batchTimer = sim::EventQueue::invalidEvent;
        }
        flushBatch();
        return;
    }
    if (batch.size() == 1)
        batchTimer = eq.scheduleIn(cfg.metaBatchWindow, [this] {
            batchTimer = sim::EventQueue::invalidEvent;
            flushBatch();
        });
}

void
RequestScheduler::flushBatch()
{
    if (batch.empty())
        return;
    auto ops = std::make_shared<std::vector<BatchedOpen>>(
        std::move(batch));
    batch.clear();
    _batches.inc();
    _batchedOps.inc(ops->size());

    // One kernel entry per batch: full per-op cost for the first,
    // amortized cost for the rest.
    const sim::Tick cpu =
        cfg.metaOpCpu +
        cfg.metaBatchedOpCpu * static_cast<sim::Tick>(ops->size() - 1);
    srv.host().cpu().submitBusyTime(cpu, [this, ops] {
        for (BatchedOpen &b : *ops) {
            Status st = Status::Ok;
            lfs::InodeNum ino = 0;
            if (srv.fs().exists(b.req.path)) {
                ino = srv.fs().lookup(b.req.path);
            } else if (b.req.create) {
                // Through the server so its FsOp observer sees the
                // mutation (model checking).
                ino = srv.createFile(b.req.path);
            } else {
                st = Status::NotFound;
            }
            finish(standard, b.req, b.grantedAt, b.span, st, ino);
        }
    });
}

std::size_t
RequestScheduler::queueDepth(ServiceClass c) const
{
    return state(c).depth;
}

unsigned
RequestScheduler::inFlight(ServiceClass c) const
{
    return state(c).inflight;
}

std::uint64_t
RequestScheduler::admitted(ServiceClass c) const
{
    return state(c).admitted.value();
}

std::uint64_t
RequestScheduler::rejected(ServiceClass c) const
{
    return state(c).rejected.value();
}

std::uint64_t
RequestScheduler::completed(ServiceClass c) const
{
    return state(c).completed.value();
}

std::uint64_t
RequestScheduler::sessionServedBytes(ServiceClass c,
                                     std::uint32_t session) const
{
    const auto &sessions = state(c).sessions;
    const auto it = sessions.find(session);
    return it == sessions.end() ? 0 : it->second.servedBytes;
}

const sim::Distribution &
RequestScheduler::serviceMs(ServiceClass c) const
{
    return state(c).serviceMs;
}

void
RequestScheduler::registerStats(sim::StatsRegistry &reg,
                                const std::string &prefix)
{
    for (ClassState *cs : {&fast, &standard}) {
        const std::string p =
            prefix + "." + className(cs->cls) + ".";
        reg.addGauge(p + "depth", [cs] {
            return static_cast<double>(cs->depth);
        });
        reg.addGauge(p + "sessions", [cs] {
            return static_cast<double>(cs->sessions.size());
        });
        reg.add(p + "admitted", cs->admitted);
        reg.add(p + "rejected", cs->rejected);
        reg.add(p + "completed", cs->completed);
        reg.add(p + "queue_delay_ms", cs->queueDelayMs);
        reg.add(p + "service_ms", cs->serviceMs);
    }
    reg.add(prefix + ".std.batches", _batches);
    reg.add(prefix + ".std.batched_ops", _batchedOps);
}

} // namespace raid2::server
