/**
 * @file
 * Server front end: admission control + fair scheduling of client ops.
 *
 * The paper's server is shared by many simultaneous clients on the
 * Ultranet and the Ethernet (Fig 1); §2.1.1 splits their traffic into
 * two access modes ("smaller requests use the Ethernet network and
 * larger requests use the HIPPI network").  This front end models the
 * server-resident request layer that makes such sharing workable:
 *
 *  - client operations become typed Request records;
 *  - each service class (fast-path HIPPI bulk vs standard-mode
 *    Ethernet metadata/small ops) has a bounded admission queue —
 *    when it is full the request completes immediately with
 *    Status::Busy and the client is expected to back off and retry;
 *  - within a class, sessions are scheduled by deficit round robin so
 *    one aggressive client cannot starve the rest;
 *  - metadata operations (opens) are batched on the host CPU: one
 *    kernel entry per batch instead of one per op, mirroring how the
 *    Sprite server amortized request handling.
 *
 * Scheduler stats register under "server.sched.*" and every granted
 * request is traced as a span when a TraceSink is attached.
 */

#ifndef RAID2_SERVER_REQUEST_SCHEDULER_HH
#define RAID2_SERVER_REQUEST_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "server/raid2_server.hh"
#include "sim/event_queue.hh"
#include "sim/service.hh"
#include "sim/stats.hh"

namespace raid2::server {

/** Completion status delivered with every front-end operation. */
enum class Status {
    Ok,
    NotFound,   // open of a missing path without create
    BadHandle,  // operation on a closed or never-opened handle
    Busy,       // admission queue full; back off and retry
    Throttled,  // per-session backlog cap exceeded; back off and retry
    DataCorrupt, // read hit unrepairable corruption; retry may succeed
                 // once the scrubber or a rewrite heals the block
};

const char *statusName(Status st);

/** Front-end request scheduler for one Raid2Server. */
class RequestScheduler
{
  public:
    /** §2.1.1 access modes, as scheduling classes. */
    enum class ServiceClass : std::uint8_t {
        FastPath, // bulk data over HIPPI/Ultranet, XBUS datapath
        Standard, // metadata + small ops over Ethernet via the host
    };

    enum class OpKind : std::uint8_t { Open, Read, Write };

    static const char *className(ServiceClass c);
    static const char *kindName(OpKind k);

    /** One client operation, as the front end sees it. */
    struct Request
    {
        std::uint32_t session = 0;
        OpKind kind = OpKind::Read;

        /** @{ Open only. */
        std::string path;
        bool create = false;
        /** @} */

        /** @{ Read/Write only. */
        lfs::InodeNum ino = 0;
        std::uint64_t off = 0;
        std::uint64_t len = 0;
        /** @} */

        /** Fast-path read egress after the XBUS network buffers
         *  (HIPPI source -> ring -> client NIC). */
        std::vector<sim::Stage> outStages;
        /** Fast-path write ingress before the LFS write path
         *  (client NIC -> ring -> HIPPI destination). */
        std::vector<sim::Stage> inStages;
        /** Host CPU busy time charged when the request is granted
         *  (the §3.4 polling network driver). */
        sim::Tick hostBusyTicks = 0;

        /** Completion; for Open the inode is the opened file's. */
        std::function<void(Status, lfs::InodeNum)> done;
    };

    struct Config
    {
        /** @{ Admission bounds (requests queued, per class). */
        std::size_t fastQueueCap = 64;
        std::size_t stdQueueCap = 128;
        /** @} */
        /** Per-session backlog cap within a class; a session whose
         *  queue is this deep gets Status::Throttled even while the
         *  class queue still has room (keeps one runaway session from
         *  consuming the whole admission budget). 0 = no cap. */
        std::size_t sessionQueueCap = 16;
        /** @{ Requests in service simultaneously, per class.  A
         *  granted request holds its slot until the data drains to
         *  the client, so the fast-path budget must cover many
         *  concurrent ~3 MB/s client NICs (the XBUS buffer pool
         *  holds dozens of in-flight streams). */
        unsigned fastInFlight = 16;
        unsigned stdInFlight = 8;
        /** @} */
        /** Deficit round robin quantum added per scheduling visit. */
        std::uint64_t quantumBytes = 256 * 1024;
        /** Reads/writes of at most this many bytes are standard-mode
         *  ops (§2.1.1: small requests go over the Ethernet). */
        std::uint64_t smallOpBytes = 64 * 1024;
        /** @{ Host-CPU batching of metadata ops: a batch flushes when
         *  it reaches metaBatchMax ops or metaBatchWindow after its
         *  first op; the batch costs metaOpCpu for the first op plus
         *  metaBatchedOpCpu for each further one. */
        unsigned metaBatchMax = 8;
        sim::Tick metaBatchWindow = sim::usToTicks(500);
        sim::Tick metaOpCpu = sim::usToTicks(500);
        sim::Tick metaBatchedOpCpu = sim::usToTicks(100);
        /** @} */
        /** Server-side turnaround of a rejected request. */
        sim::Tick rejectLatency = sim::usToTicks(100);
    };

    RequestScheduler(sim::EventQueue &eq, Raid2Server &srv,
                     const Config &cfg);
    RequestScheduler(sim::EventQueue &eq, Raid2Server &srv);

    /** Session ids returned are dense and start at 1. */
    std::uint32_t allocSession() { return nextSession++; }

    /** The class @p r will be scheduled under. */
    ServiceClass classify(const Request &r) const;

    /**
     * Submit a request.  Completion is always asynchronous, including
     * rejections (Status::Busy / Status::Throttled after
     * Config::rejectLatency), so callers may retry from the completion
     * without reentrancy hazards.
     */
    void submit(Request r);

    /** @{ Introspection (tests, benches). */
    std::size_t queueDepth(ServiceClass c) const;
    unsigned inFlight(ServiceClass c) const;
    std::uint64_t admitted(ServiceClass c) const;
    std::uint64_t rejected(ServiceClass c) const;
    std::uint64_t completed(ServiceClass c) const;
    std::uint64_t batches() const { return _batches.value(); }
    std::uint64_t batchedOps() const { return _batchedOps.value(); }
    /** Bytes granted to @p session in class @p c (fairness tests). */
    std::uint64_t sessionServedBytes(ServiceClass c,
                                     std::uint32_t session) const;
    const sim::Distribution &serviceMs(ServiceClass c) const;
    /** @} */

    /**
     * Register scheduler stats under @p prefix: per class
     * "<prefix>.<fast|std>.{depth,sessions,admitted,rejected,
     * completed,queue_delay_ms,service_ms}" plus
     * "<prefix>.std.{batches,batched_ops}".
     */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "server.sched");

    const Config &config() const { return cfg; }

  private:
    struct SessionQueue
    {
        std::uint32_t id = 0;
        std::deque<Request> q;
        /** Enqueue tick of each queued request (parallel to q). */
        std::deque<sim::Tick> enqueuedAt;
        std::uint64_t deficit = 0;
        std::uint64_t servedBytes = 0;
        bool active = false; // member of ClassState::active
    };

    struct ClassState
    {
        ServiceClass cls;
        std::size_t queueCap = 0;
        unsigned inflightCap = 1;
        std::size_t depth = 0;
        unsigned inflight = 0;
        std::map<std::uint32_t, SessionQueue> sessions;
        std::deque<SessionQueue *> active; // DRR visiting order
        sim::Scalar admitted, rejected, completed;
        sim::Distribution queueDelayMs, serviceMs;
    };

    /** One open waiting in the metadata batch. */
    struct BatchedOpen
    {
        Request req;
        sim::Tick grantedAt = 0;
        std::uint64_t span = 0;
    };

    ClassState &state(ServiceClass c);
    const ClassState &state(ServiceClass c) const;

    /** DRR cost of a request (bytes, with a floor for tiny ops). */
    std::uint64_t costOf(const Request &r) const;

    void reject(ClassState &cs, Request &&r, Status st);
    void pump(ClassState &cs);
    void grant(ClassState &cs, SessionQueue &s);
    void dispatch(ClassState &cs, Request &&r, sim::Tick granted_at,
                  std::uint64_t span);
    void finish(ClassState &cs, Request &r, sim::Tick granted_at,
                std::uint64_t span, Status st, lfs::InodeNum ino);

    void enqueueOpen(Request &&r, sim::Tick granted_at,
                     std::uint64_t span);
    void flushBatch();

    sim::EventQueue &eq;
    Raid2Server &srv;
    Config cfg;

    ClassState fast;
    ClassState standard;

    std::vector<BatchedOpen> batch;
    sim::EventQueue::EventId batchTimer = sim::EventQueue::invalidEvent;
    sim::Scalar _batches, _batchedOps;

    std::uint32_t nextSession = 1;
};

} // namespace raid2::server

#endif // RAID2_SERVER_REQUEST_SCHEDULER_HH
