/**
 * @file
 * Small-buffer-optimized event callable.
 *
 * sim::Event is the kernel's replacement for std::function<void()> on
 * the hot scheduling paths.  Callables up to inlineSize bytes (the
 * typical capture-by-value continuation: a `this` pointer plus a few
 * integers) are stored inline in the Event itself, so scheduling one
 * performs no heap allocation; larger callables fall back to the heap.
 * Unlike std::function, Event is move-only and therefore accepts
 * move-only captures (e.g. a unique_ptr riding along a completion).
 */

#ifndef RAID2_SIM_EVENT_HH
#define RAID2_SIM_EVENT_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace raid2::sim {

namespace detail {

/** True for callables that can be compared against nullptr (function
 *  pointers, std::function); used to map "null" to an empty Event. */
template <typename T, typename = void>
struct NullComparable : std::false_type
{};
template <typename T>
struct NullComparable<
    T, std::void_t<decltype(std::declval<const T &>() == nullptr)>>
    : std::true_type
{};

} // namespace detail

/**
 * Move-only `void()` callable with inline storage.
 *
 * The dispatch table is a pair of function pointers per concrete
 * callable type: invoke() and manage() (move-construct-into /
 * destroy).  An empty Event has a null invoke pointer, so emptiness is
 * one pointer test and moved-from Events are safely empty.
 */
class Event
{
  public:
    /** Inline storage; callables up to this size never hit the heap. */
    static constexpr std::size_t inlineSize = 48;

    Event() = default;
    Event(std::nullptr_t) {} // NOLINT: implicit by design

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Event> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Event(F &&f) // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        // An empty std::function or null function pointer makes an
        // empty Event, preserving "done may be null" call sites.
        if constexpr (detail::NullComparable<Fn>::value) {
            if (f == nullptr)
                return;
        }
        if constexpr (sizeof(Fn) <= inlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(store)) Fn(std::forward<F>(f));
            _invoke = &invokeInline<Fn>;
            _manage = &manageInline<Fn>;
        } else {
            ptr() = new Fn(std::forward<F>(f));
            _invoke = &invokeHeap<Fn>;
            _manage = &manageHeap<Fn>;
        }
    }

    Event(Event &&other) noexcept { moveFrom(other); }

    Event &
    operator=(Event &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    ~Event() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return _invoke != nullptr; }

    /** Invoke the callable (must not be empty). */
    void operator()() { _invoke(store); }

    /** Drop the callable; the Event becomes empty. */
    void
    reset()
    {
        if (_manage)
            _manage(nullptr, store);
        _invoke = nullptr;
        _manage = nullptr;
    }

  private:
    /** manage(dst, src): dst != null moves src into dst and destroys
     *  src; dst == null just destroys src. */
    using InvokeFn = void (*)(void *);
    using ManageFn = void (*)(void *dst, void *src);

    void *&ptr() { return *reinterpret_cast<void **>(store); }

    void
    moveFrom(Event &other) noexcept
    {
        _invoke = other._invoke;
        _manage = other._manage;
        if (_manage)
            _manage(store, other.store);
        other._invoke = nullptr;
        other._manage = nullptr;
    }

    template <typename Fn>
    static void
    invokeInline(void *s)
    {
        (*std::launder(reinterpret_cast<Fn *>(s)))();
    }

    template <typename Fn>
    static void
    manageInline(void *dst, void *src)
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(src));
        if (dst)
            ::new (dst) Fn(std::move(*f));
        f->~Fn();
    }

    template <typename Fn>
    static void
    invokeHeap(void *s)
    {
        (*static_cast<Fn *>(*reinterpret_cast<void **>(s)))();
    }

    template <typename Fn>
    static void
    manageHeap(void *dst, void *src)
    {
        void *&p = *reinterpret_cast<void **>(src);
        if (dst)
            *reinterpret_cast<void **>(dst) = p;
        else
            delete static_cast<Fn *>(p);
        p = nullptr;
    }

    alignas(std::max_align_t) unsigned char store[inlineSize];
    InvokeFn _invoke = nullptr;
    ManageFn _manage = nullptr;
};

} // namespace raid2::sim

#endif // RAID2_SIM_EVENT_HH
