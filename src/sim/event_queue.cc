#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace raid2::sim {

EventQueue::EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < _now)
        panic("scheduling event in the past: when=%llu now=%llu",
              (unsigned long long)when, (unsigned long long)_now);
    EventId id = nextId++;
    events.emplace(Key{when, id}, std::move(fn));
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    for (auto it = events.begin(); it != events.end(); ++it) {
        if (it->first.second == id) {
            events.erase(it);
            return true;
        }
    }
    return false;
}

void
EventQueue::step()
{
    auto it = events.begin();
    _now = it->first.first;
    auto fn = std::move(it->second);
    events.erase(it);
    ++numExecuted;
    fn();
}

Tick
EventQueue::run()
{
    while (!events.empty())
        step();
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.begin()->first.first <= limit)
        step();
    if (_now < limit && events.empty())
        return _now;
    _now = limit;
    return _now;
}

bool
EventQueue::runUntilDone(const std::function<bool()> &done)
{
    if (done())
        return true;
    while (!events.empty()) {
        step();
        if (done())
            return true;
    }
    return false;
}

} // namespace raid2::sim
