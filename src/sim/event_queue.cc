#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace raid2::sim {

/** Storage retained from destroyed queues for reuse on this thread.
 *  Holds at most one queue's vectors plus a bounded stack of arena
 *  chunks (all Events empty), so retention is a few MB per thread. */
struct EventQueue::Recycler
{
    static constexpr std::size_t maxChunks = 64;

    std::vector<std::unique_ptr<Event[]>> chunks;
    std::vector<Entry> ring;
    std::vector<Entry> heap;
    std::vector<EventId> slotState;
    std::vector<std::uint32_t> freeSlots;
};

EventQueue::Recycler &
EventQueue::recycler()
{
    thread_local Recycler r;
    return r;
}

EventQueue::EventQueue()
{
    // Adopt pooled vector capacity (the pooled vectors are empty);
    // arena chunks are taken one at a time by acquireSlot() so a small
    // queue does not claim the whole pool.
    Recycler &r = recycler();
    ring.swap(r.ring);
    heap.swap(r.heap);
    slotState.swap(r.slotState);
    freeSlots.swap(r.freeSlots);
}

EventQueue::~EventQueue()
{
    // Destroy surviving closures; pooled chunks must hold only empty
    // Events so no user state outlives its queue.
    for (std::uint32_t s = 0; s < slotCount; ++s)
        if (slotState[s] != 0)
            slotRef(s).reset();

    Recycler &r = recycler();
    if (r.chunks.size() < slotChunks.size() &&
        slotChunks.size() <= Recycler::maxChunks)
        r.chunks.swap(slotChunks);
    const auto keepLarger = [](auto &mine, auto &pooled) {
        if (mine.capacity() > pooled.capacity()) {
            mine.clear();
            pooled.swap(mine);
        }
    };
    keepLarger(ring, r.ring);
    keepLarger(heap, r.heap);
    keepLarger(slotState, r.slotState);
    keepLarger(freeSlots, r.freeSlots);
}

EventQueue::EventId
EventQueue::schedule(Tick when, Event fn)
{
    if (when < _now)
        panic("scheduling event in the past: when=%llu now=%llu",
              (unsigned long long)when, (unsigned long long)_now);
    // The 31-bit sequence wraps after 2^31 schedules; same-tick
    // insertion ordering across a live window that wide is not
    // meaningful.
    const std::uint32_t slot = acquireSlot();
    slotRef(slot) = std::move(fn);
    const EventId id = (static_cast<EventId>(nextSeq) << 32) | slot;
    if (++nextSeq == (1u << 31))
        nextSeq = 1;
    slotState[slot] = id;

    const Entry e{id, when};
    // Monotone fast path: an event no earlier than the ring's tail
    // appends in O(1).  The sequence grows monotonically, so a fresh
    // entry never ties with the tail.
    if (ring.size() == ringHead || !later(ring.back(), e)) {
        if (ring.size() == ring.capacity())
            ring.reserve(ring.capacity() < 1024 ? 1024
                                                : ring.capacity() * 4);
        ring.push_back(e);
    } else {
        heap.push_back(e);
        siftUp(heap.size() - 1, e);
    }
    return id;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots.empty()) {
        const std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        return slot;
    }
    if (slotCount == slotChunks.size() << slotChunkShift) {
        Recycler &r = recycler();
        if (!r.chunks.empty()) {
            slotChunks.push_back(std::move(r.chunks.back()));
            r.chunks.pop_back();
        } else {
            slotChunks.push_back(std::make_unique<Event[]>(slotChunkSize));
        }
        // One reserve per chunk keeps the slot-return path realloc-free.
        freeSlots.reserve(slotChunks.size() << slotChunkShift);
        slotState.resize(slotChunks.size() << slotChunkShift, 0);
    }
    return slotCount++;
}

void
EventQueue::siftUp(std::size_t i, const Entry &e)
{
    while (i > 0) {
        const std::size_t p = (i - 1) / arity;
        if (!later(heap[p], e))
            break;
        heap[i] = heap[p];
        i = p;
    }
    heap[i] = e;
}

void
EventQueue::siftDown(std::size_t i, const Entry &e)
{
    const std::size_t n = heap.size();
    for (;;) {
        const std::size_t first = arity * i + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + arity, n);
        std::size_t m = first;
        for (std::size_t j = first + 1; j < last; ++j) {
            if (later(heap[m], heap[j]))
                m = j;
        }
        if (!later(e, heap[m]))
            break;
        heap[i] = heap[m];
        i = m;
    }
    heap[i] = e;
}

void
EventQueue::popTop()
{
    const Entry last = heap.back();
    heap.pop_back();
    if (!heap.empty())
        siftDown(0, last);
}

const EventQueue::Entry &
EventQueue::minEntry() const
{
    if (heap.empty())
        return ring[ringHead];
    if (ring.size() == ringHead)
        return heap.front();
    return later(heap.front(), ring[ringHead]) ? ring[ringHead]
                                               : heap.front();
}

void
EventQueue::discardMin()
{
    if (!heap.empty() &&
        (ring.size() == ringHead || later(ring[ringHead], heap.front()))) {
        popTop();
        return;
    }
    ++ringHead;
    if (ringHead == ring.size()) {
        ring.clear();
        ringHead = 0;
    } else if (ringHead >= 1024 && ringHead * 2 >= ring.size()) {
        // Keep a long-lived ring from growing without bound.
        ring.erase(ring.begin(),
                   ring.begin() + static_cast<std::ptrdiff_t>(ringHead));
        ringHead = 0;
    }
}

bool
EventQueue::cancel(EventId id)
{
    // Lazy cancellation, O(1): the id names its slot, whose state word
    // holds the id of the current occupant.  A fired or already
    // cancelled id no longer matches (the slot is free, reused under a
    // newer sequence, or carries the tombstone bit), so it returns
    // false.  The closure dies now; the queue entry is reclaimed when
    // it surfaces.
    if (id == invalidEvent)
        return false;
    const std::uint32_t slot = slotOf(id);
    if (slot >= slotCount || slotState[slot] != id)
        return false;
    slotState[slot] = id | tombstoneBit;
    slotRef(slot).reset();
    ++numTombstones;
    return true;
}

void
EventQueue::purgeTop()
{
    while (rawSize() != 0) {
        const std::uint32_t slot = slotOf(minEntry().id);
        if (slotState[slot] == minEntry().id)
            return;
        slotState[slot] = 0;
        freeSlots.push_back(slot);
        discardMin();
        --numTombstones;
    }
}

void
EventQueue::step()
{
    const Entry top = minEntry();
    _now = top.when;
    discardMin();
    // Move the closure out before invoking: it may schedule (reusing
    // the slot, which the move left empty).
    const std::uint32_t slot = slotOf(top.id);
    Event fn = std::move(slotRef(slot));
    slotState[slot] = 0;
    freeSlots.push_back(slot);
    ++numExecuted;
    fn();
}

Tick
EventQueue::run()
{
    // The drain loop is the kernel's hottest path; it folds the
    // tombstone check of purgeTop()/step() into one pass per entry.
    while (rawSize() != 0) {
        const Entry top = minEntry();
        discardMin();
        const std::uint32_t slot = slotOf(top.id);
        if (slotState[slot] != top.id) {
            slotState[slot] = 0;
            freeSlots.push_back(slot);
            --numTombstones;
            continue;
        }
        _now = top.when;
        Event fn = std::move(slotRef(slot));
        slotState[slot] = 0;
        freeSlots.push_back(slot);
        ++numExecuted;
        fn();
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    purgeTop();
    while (rawSize() != 0 && minEntry().when <= limit) {
        step();
        purgeTop();
    }
    if (_now < limit && rawSize() == 0)
        return _now;
    _now = limit;
    return _now;
}

bool
EventQueue::runUntilDone(const std::function<bool()> &done)
{
    if (done())
        return true;
    purgeTop();
    while (rawSize() != 0) {
        step();
        if (done())
            return true;
        purgeTop();
    }
    return false;
}

} // namespace raid2::sim
