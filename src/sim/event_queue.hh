/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue drives all timed components.  Events
 * are closures scheduled at absolute ticks; ties are broken by
 * insertion order so a run is fully deterministic.  Components hold a
 * reference to the queue and schedule continuations on it; there is no
 * global singleton, so tests can run many independent simulations —
 * and bench sweeps can run one simulation per worker thread.
 *
 * The queue is a 4-ary min-heap over a contiguous vector, ordered by
 * (tick, sequence); the wide fanout halves the sift depth of a binary
 * heap and keeps siblings on adjacent cache lines.  In front of the
 * heap sits a monotone ring: an event scheduled no earlier than the
 * ring's tail is appended in O(1), so the common simulation patterns —
 * bulk scheduling, arrival generators, trace replay — never touch the
 * heap at all, and popping compares the ring head with the heap top to
 * preserve the exact global (tick, sequence) order.  Scheduling is
 * O(log n) worst case with no per-node allocations: entries are
 * 16-byte trivially-copyable (id, tick) pairs so sifts are plain
 * loads/stores, and the closures — sim::Event values (small-buffer
 * optimized) — sit still in a chunked slot arena recycled through a
 * free list.  Cancellation is lazy and O(1): cancel() destroys the
 * closure and tombstones the event's slot-state word (the id names its
 * slot directly); the dead entry is discarded when it surfaces.  A
 * destroyed queue donates its storage to a thread-local recycler so
 * back-to-back simulations (bench sweeps, test suites) reuse warm
 * memory instead of page-faulting a fresh working set.  This
 * follows the gem5/FlashSim
 * lesson that the event kernel is the hot path everything else stands
 * on.
 */

#ifndef RAID2_SIM_EVENT_QUEUE_HH
#define RAID2_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace raid2::sim {

class TraceSink;

/**
 * Deterministic single-threaded event queue.
 *
 * schedule() returns an EventId that may be passed to cancel() as long
 * as the event has not yet fired.  The queue owns the closures.
 */
class EventQueue
{
  public:
    using EventId = std::uint64_t;
    static constexpr EventId invalidEvent = 0;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    EventId schedule(Tick when, Event fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, Event fn)
    {
        return schedule(_now + delay, std::move(fn));
    }

    /**
     * Cancel a pending event (lazy: the node is tombstoned in place
     * and reclaimed when it surfaces; its closure is destroyed now).
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return rawSize() - numTombstones; }

    /** True if no live events remain. */
    bool empty() const { return pending() == 0; }

    /** Total events executed so far (cancelled events never count). */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Run events until the queue is empty.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run events with timestamps <= @p limit; afterwards now() ==
     * min(limit, time queue drained).  Events scheduled during the run
     * are honored if they fall within the limit.
     */
    Tick runUntil(Tick limit);

    /**
     * Run until @p done returns true (checked after each event) or the
     * queue drains.  @return true if the predicate was satisfied.
     */
    bool runUntilDone(const std::function<bool()> &done);

    /** @{ Optional span tracer.  Components test for null before
     *  recording, so an untraced run costs one pointer check. */
    TraceSink *tracer() const { return _tracer; }
    void setTracer(TraceSink *t) { _tracer = t; }
    /** @} */

  private:
    /**
     * One heap entry; 16 bytes and trivially copyable so heap sifts
     * compile to plain loads/stores.  The EventId packs a
     * monotonically increasing 31-bit sequence in bits 62..32 (the
     * insertion-order tie-break) and the arena slot of the closure in
     * the low 32, so the entry needs no third field.  Entries are
     * immutable once queued; liveness lives in slotState (below), so
     * cancellation never reorders anything.
     */
    struct Entry
    {
        EventId id;
        Tick when;
    };

    /** Bit 63 of a slotState word marks a cancelled event; queued ids
     *  themselves never have it set (the sequence is 31 bits). */
    static constexpr EventId tombstoneBit = EventId(1) << 63;

    static std::uint32_t slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }

    /** Min-heap order by (when, sequence). */
    static bool
    later(const Entry &a, const Entry &b)
    {
        return a.when != b.when ? a.when > b.when : a.id > b.id;
    }

    /** Heap fanout; 4 wins over 2 on sift depth and cache locality. */
    static constexpr std::size_t arity = 4;

    /** @{ Hole-based sifts: @p e is written once at its final slot. */
    void siftUp(std::size_t i, const Entry &e);
    void siftDown(std::size_t i, const Entry &e);
    /** @} */

    /** Remove the top entry, restoring the heap property. */
    void popTop();

    /** @{ Closure arena: fixed-size chunks, so growing never moves an
     *  Event and slot references stay stable. */
    static constexpr std::size_t slotChunkShift = 10;
    static constexpr std::size_t slotChunkSize = 1u << slotChunkShift;

    Event &
    slotRef(std::uint32_t s)
    {
        return slotChunks[s >> slotChunkShift][s & (slotChunkSize - 1)];
    }
    const Event &
    slotRef(std::uint32_t s) const
    {
        return slotChunks[s >> slotChunkShift][s & (slotChunkSize - 1)];
    }

    std::uint32_t acquireSlot();
    /** @} */

    /**
     * Thread-local recycler for kernel storage.  Sweeps and tests
     * build one EventQueue per measurement; without recycling each
     * queue's ~1 MB working set (ring, arena chunks, slot state) is
     * returned to the OS at destruction and page-faulted back in by
     * the next queue, which dominates short runs.  The destructor
     * donates its storage here and the constructor (or acquireSlot)
     * adopts it, so back-to-back simulations on one thread reuse warm
     * memory.  Per-thread, so parallel bench sweeps never contend.
     */
    struct Recycler;
    static Recycler &recycler();

    /** @{ Two-part priority queue: sorted monotone ring + 4-ary heap.
     *  The ring is a vector consumed from ringHead; it holds entries
     *  appended in nondecreasing key order.  The global minimum is the
     *  smaller of ring[ringHead] and heap[0]. */
    std::vector<Entry> ring;
    std::size_t ringHead = 0;
    std::vector<Entry> heap;

    /** Raw entry count, tombstones included. */
    std::size_t rawSize() const { return ring.size() - ringHead + heap.size(); }

    /** Earliest entry (pre: rawSize() != 0). */
    const Entry &minEntry() const;

    /** Remove the earliest entry (pre: rawSize() != 0). */
    void discardMin();
    /** @} */

    std::vector<std::unique_ptr<Event[]>> slotChunks;
    std::uint32_t slotCount = 0;
    std::vector<std::uint32_t> freeSlots;

    /** Per-slot liveness: the id currently occupying the slot, with
     *  tombstoneBit set once cancelled; 0 when the slot is free.  The
     *  slot index inside an id makes cancel() a two-load O(1) check
     *  instead of a queue scan, and a stale id (fired, cancelled, or
     *  slot since reused under a new sequence) simply fails to match. */
    std::vector<EventId> slotState;
    std::size_t numTombstones = 0;
    Tick _now = 0;
    std::uint32_t nextSeq = 1; // 31-bit, wraps to 1
    std::uint64_t numExecuted = 0;
    TraceSink *_tracer = nullptr;

    /** Discard tombstoned entries sitting at the front of the queue. */
    void purgeTop();

    /** Pop and execute the earliest live event (queue must be
     *  non-empty and purged). */
    void step();
};

} // namespace raid2::sim

#endif // RAID2_SIM_EVENT_QUEUE_HH
