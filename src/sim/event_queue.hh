/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue drives all timed components.  Events
 * are closures scheduled at absolute ticks; ties are broken by
 * insertion order so a run is fully deterministic.  Components hold a
 * reference to the queue and schedule continuations on it; there is no
 * global singleton, so tests can run many independent simulations.
 */

#ifndef RAID2_SIM_EVENT_QUEUE_HH
#define RAID2_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "sim/types.hh"

namespace raid2::sim {

class TraceSink;

/**
 * Deterministic single-threaded event queue.
 *
 * schedule() returns an EventId that may be passed to cancel() as long
 * as the event has not yet fired.  The queue owns the closures.
 */
class EventQueue
{
  public:
    using EventId = std::uint64_t;
    static constexpr EventId invalidEvent = 0;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn at absolute tick @p when (>= now). */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        return schedule(_now + delay, std::move(fn));
    }

    /**
     * Cancel a pending event.
     * @return true if the event was found and removed.
     */
    bool cancel(EventId id);

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /** True if no events remain. */
    bool empty() const { return events.empty(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Run events until the queue is empty.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run events with timestamps <= @p limit; afterwards now() ==
     * min(limit, time queue drained).  Events scheduled during the run
     * are honored if they fall within the limit.
     */
    Tick runUntil(Tick limit);

    /**
     * Run until @p done returns true (checked after each event) or the
     * queue drains.  @return true if the predicate was satisfied.
     */
    bool runUntilDone(const std::function<bool()> &done);

    /** @{ Optional span tracer.  Components test for null before
     *  recording, so an untraced run costs one pointer check. */
    TraceSink *tracer() const { return _tracer; }
    void setTracer(TraceSink *t) { _tracer = t; }
    /** @} */

  private:
    /** Key orders by (tick, sequence) for deterministic ties. */
    using Key = std::pair<Tick, EventId>;

    std::map<Key, std::function<void()>> events;
    Tick _now = 0;
    EventId nextId = 1;
    std::uint64_t numExecuted = 0;
    TraceSink *_tracer = nullptr;

    /** Pop and execute the earliest event. */
    void step();
};

} // namespace raid2::sim

#endif // RAID2_SIM_EVENT_QUEUE_HH
