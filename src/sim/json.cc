#include "sim/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace raid2::sim {

JsonWriter::JsonWriter(std::ostream &os_, bool pretty_)
    : os(os_), pretty(pretty_)
{
}

void
JsonWriter::newlineIndent()
{
    if (!pretty)
        return;
    os << '\n';
    for (std::size_t i = 0; i < levels.size(); ++i)
        os << "  ";
}

void
JsonWriter::beforeElement()
{
    if (pendingKey) {
        // The key already placed the separator.
        pendingKey = false;
        return;
    }
    if (levels.empty())
        return;
    if (levels.back().hasElements)
        os << ',';
    levels.back().hasElements = true;
    newlineIndent();
}

void
JsonWriter::beginObject()
{
    beforeElement();
    os << '{';
    levels.push_back(Level{true});
}

void
JsonWriter::endObject()
{
    if (levels.empty() || !levels.back().isObject)
        panic("JsonWriter: endObject outside an object");
    const bool had = levels.back().hasElements;
    levels.pop_back();
    if (had)
        newlineIndent();
    os << '}';
}

void
JsonWriter::beginArray()
{
    beforeElement();
    os << '[';
    levels.push_back(Level{false});
}

void
JsonWriter::endArray()
{
    if (levels.empty() || levels.back().isObject)
        panic("JsonWriter: endArray outside an array");
    const bool had = levels.back().hasElements;
    levels.pop_back();
    if (had)
        newlineIndent();
    os << ']';
}

void
JsonWriter::key(std::string_view k)
{
    if (levels.empty() || !levels.back().isObject)
        panic("JsonWriter: key outside an object");
    if (levels.back().hasElements)
        os << ',';
    levels.back().hasElements = true;
    newlineIndent();
    os << escape(k) << (pretty ? ": " : ":");
    pendingKey = true;
}

void
JsonWriter::value(double v)
{
    beforeElement();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeElement();
    os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeElement();
    os << v;
}

void
JsonWriter::value(bool v)
{
    beforeElement();
    os << (v ? "true" : "false");
}

void
JsonWriter::value(std::string_view v)
{
    beforeElement();
    os << escape(v);
}

void
JsonWriter::rawValue(std::string_view json)
{
    beforeElement();
    os << json;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace raid2::sim
