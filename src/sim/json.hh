/**
 * @file
 * Minimal streaming JSON writer.
 *
 * The observability layer (StatsRegistry snapshots, TraceSink exports,
 * bench Reporter files) emits JSON; this writer handles the mechanical
 * parts — comma placement, indentation, string escaping, number
 * formatting — without pulling in an external dependency.  It is a
 * forward-only emitter: callers drive the document structure with
 * beginObject()/beginArray() pairs and the writer keeps a small state
 * stack to know where separators go.
 */

#ifndef RAID2_SIM_JSON_HH
#define RAID2_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace raid2::sim {

/** Forward-only JSON emitter with optional pretty-printing. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** @{ Containers. */
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** @} */

    /** Emit an object key; must be followed by a value or container. */
    void key(std::string_view k);

    /** @{ Values. */
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    /** @} */

    /** Splice @p json in verbatim as one value (must be valid JSON;
     *  used to embed a pre-serialized snapshot). */
    void rawValue(std::string_view json);

    /** @{ key() + value() in one call. */
    template <typename T>
    void
    kv(std::string_view k, T v)
    {
        key(k);
        value(v);
    }
    /** @} */

    /** Escape @p s as a JSON string literal (with quotes). */
    static std::string escape(std::string_view s);

  private:
    /** Comma/indent bookkeeping before an element at the current level. */
    void beforeElement();
    void newlineIndent();

    struct Level
    {
        bool isObject;
        bool hasElements = false;
    };

    std::ostream &os;
    bool pretty;
    std::vector<Level> levels;
    bool pendingKey = false;
};

} // namespace raid2::sim

#endif // RAID2_SIM_JSON_HH
