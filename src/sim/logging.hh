/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 *
 *  - panic():  something happened that should never happen regardless
 *              of user input (a simulator bug).  Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).  Exits with 1.
 *  - warn():   functionality may be incorrect but probably works.
 *  - inform(): normal operating status messages.
 */

#ifndef RAID2_SIM_LOGGING_HH
#define RAID2_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace raid2::sim {

/** Verbosity filter applied to inform()/warn() output. */
enum class LogLevel { Quiet, Warn, Info, Debug };

/** Set the global verbosity level (defaults to Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Abort with a message: simulator bug, never the user's fault. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: user/configuration error. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status output. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level trace output. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace raid2::sim

#endif // RAID2_SIM_LOGGING_HH
