#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace raid2::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Random::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - ~std::uint64_t(0) % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Random::inRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Random::inRange: lo > hi");
    return lo + below(hi - lo + 1);
}

double
Random::unit()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Random::exponential(double mean)
{
    double u;
    do {
        u = unit();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

} // namespace raid2::sim
