/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * A small xoshiro256** implementation seeded through SplitMix64, so
 * every experiment is reproducible from its seed and independent of
 * the C++ standard library's unspecified distributions.
 */

#ifndef RAID2_SIM_RANDOM_HH
#define RAID2_SIM_RANDOM_HH

#include <cstdint>

namespace raid2::sim {

/** Deterministic RNG (xoshiro256**). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x52414944ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t inRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double unit();

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** True with probability @p p. */
    bool chance(double p) { return unit() < p; }

  private:
    std::uint64_t s[4];
};

} // namespace raid2::sim

#endif // RAID2_SIM_RANDOM_HH
