#include "sim/service.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::sim {

Service::Service(EventQueue &eq_, std::string name, const Config &cfg_)
    : eq(eq_), _name(std::move(name)), cfg(cfg_)
{
    if (cfg.servers == 0)
        fatal("Service %s: servers must be >= 1", _name.c_str());
    for (unsigned i = 0; i < cfg.servers; ++i)
        serverFree.push(0);
}

Tick
Service::serviceTime(std::uint64_t bytes) const
{
    Tick t = cfg.overhead;
    if (cfg.mbPerSec > 0.0)
        t += transferTicks(bytes, cfg.mbPerSec);
    return t;
}

Tick
Service::nextFree() const
{
    return std::max(serverFree.top(), eq.now());
}

void
Service::submit(std::uint64_t bytes, Event done)
{
    submitBusyTime(serviceTime(bytes), std::move(done));
    _bytesServed += bytes;
}

void
Service::submitAtRate(std::uint64_t bytes, double mb_per_sec, Event done)
{
    Tick t = cfg.overhead;
    if (mb_per_sec > 0.0)
        t += transferTicks(bytes, mb_per_sec);
    else if (cfg.mbPerSec > 0.0)
        t += transferTicks(bytes, cfg.mbPerSec);
    submitBusyTime(t, std::move(done));
    _bytesServed += bytes;
}

void
Service::submitBusyTime(Tick service_ticks, Event done)
{
    const Tick start = nextFree();
    const Tick finish = start + service_ticks;
    serverFree.pop();
    serverFree.push(finish);

    ++_requests;
    busy.addBusy(start, finish);
    _queueDelay.sample(ticksToMs(start - eq.now()));

    if (done)
        eq.schedule(finish, std::move(done));
}

void
Service::registerStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.addGauge(prefix + ".bytes",
                 [this] { return static_cast<double>(_bytesServed); });
    reg.addGauge(prefix + ".requests",
                 [this] { return static_cast<double>(_requests); });
    reg.add(prefix + ".busy", busy);
    reg.add(prefix + ".queue_delay_ms", _queueDelay);
}

void
Service::resetStats()
{
    _bytesServed = 0;
    _requests = 0;
    busy.reset();
    _queueDelay.reset();
}

Pipeline::Pipeline(EventQueue &eq_, std::vector<Stage> stages_,
                   std::uint64_t bytes, std::uint64_t chunk,
                   Event done_)
    : eq(eq_), stages(std::move(stages_)), done(std::move(done_)),
      remainingAtLast(bytes)
{
    if (stages.empty())
        panic("Pipeline with no stages");
    if (chunk == 0)
        panic("Pipeline with zero chunk size");
    for (const auto &st : stages) {
        if (!st.svc)
            panic("Pipeline with null stage");
    }
    // Feed every chunk into stage 0; the Service itself serializes.
    std::uint64_t left = bytes;
    while (left > 0) {
        const std::uint64_t this_chunk = std::min(left, chunk);
        submitChunk(0, this_chunk);
        left -= this_chunk;
    }
}

void
Pipeline::start(EventQueue &eq, const std::vector<Stage> &stages,
                std::uint64_t bytes, std::uint64_t chunk_bytes,
                Event done)
{
    if (bytes == 0)
        bytes = 1; // still pay each stage's fixed overhead
    new Pipeline(eq, stages, bytes, chunk_bytes, std::move(done));
}

void
Pipeline::submitChunk(std::size_t stage, std::uint64_t chunk_bytes)
{
    stages[stage].svc->submitAtRate(
        chunk_bytes, stages[stage].mbPerSec,
        [this, stage, chunk_bytes] { chunkLeft(stage, chunk_bytes); });
}

void
Pipeline::chunkLeft(std::size_t stage, std::uint64_t chunk_bytes)
{
    if (stage + 1 < stages.size()) {
        submitChunk(stage + 1, chunk_bytes);
        return;
    }
    remainingAtLast -= std::min(remainingAtLast, chunk_bytes);
    if (remainingAtLast == 0) {
        if (done)
            done();
        delete this;
    }
}

} // namespace raid2::sim
