/**
 * @file
 * Rate-limited service stages and chunked pipeline transfers.
 *
 * Nearly every shared resource in the RAID-II datapath (a SCSI string,
 * a Cougar controller, a VME port, an XBUS memory module, a HIPPI
 * port, the host CPU) is modeled as a Service: a FIFO station with a
 * byte rate, an optional fixed per-request overhead, and an optional
 * degree of internal concurrency.  A Pipeline moves a transfer through
 * a chain of Services in chunks, so sustained throughput of a long
 * transfer is the minimum stage rate while short transfers are
 * dominated by per-request overheads — the two regimes all of the
 * paper's performance curves live in.
 */

#ifndef RAID2_SIM_SERVICE_HH
#define RAID2_SIM_SERVICE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace raid2::sim {

class StatsRegistry;

/**
 * A FIFO service station with byte rate, fixed per-request overhead
 * and configurable concurrency.
 *
 * Requests are serviced in submission order.  With @c servers > 1 up
 * to that many requests are in service simultaneously (used for
 * resources that are internally parallel, e.g. the four interleaved
 * XBUS memory modules when modeled as one station).
 */
class Service
{
  public:
    struct Config
    {
        /** Service rate in MB/s; 0 means infinitely fast. */
        double mbPerSec = 0.0;
        /** Fixed cost charged to every request. */
        Tick overhead = 0;
        /** Number of internal servers (concurrency). */
        unsigned servers = 1;
    };

    Service(EventQueue &eq, std::string name, const Config &cfg);

    /** Service time for @p bytes excluding queueing. */
    Tick serviceTime(std::uint64_t bytes) const;

    /**
     * Enqueue a request for @p bytes; @p done fires when the request
     * completes service.  @p done may be null.
     */
    void submit(std::uint64_t bytes, Event done);

    /**
     * Like submit() but at an explicit rate, for stations whose speed
     * is direction-dependent (e.g. the XBUS VME ports: 6.9 MB/s reads
     * vs 5.9 MB/s writes through one physical port).  @p mb_per_sec of
     * 0 means infinitely fast (only the fixed overhead is charged).
     */
    void submitAtRate(std::uint64_t bytes, double mb_per_sec, Event done);

    /** Occupy the station for an explicit duration. */
    void submitBusyTime(Tick service_ticks, Event done);

    /** Earliest tick at which a request submitted now could start. */
    Tick nextFree() const;

    /** True when no request is queued or in service. */
    bool idle() const { return nextFree() <= eq.now(); }

    const std::string &name() const { return _name; }
    double rateMBs() const { return cfg.mbPerSec; }

    /** @{ Statistics. */
    std::uint64_t bytesServed() const { return _bytesServed; }
    std::uint64_t requests() const { return _requests; }
    Tick busyTicks() const { return busy.busy(); }
    double utilization(Tick elapsed) const { return busy.fraction(elapsed); }
    const Distribution &queueDelay() const { return _queueDelay; }
    void resetStats();
    /** Register this station's stats under @p prefix ("<prefix>.bytes",
     *  ".requests", ".busy", ".queue_delay_ms"). */
    void registerStats(StatsRegistry &reg, const std::string &prefix) const;
    /** @} */

  private:
    EventQueue &eq;
    std::string _name;
    Config cfg;

    /** Completion times of the busiest tail per server (min-heap). */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<>> serverFree;

    std::uint64_t _bytesServed = 0;
    std::uint64_t _requests = 0;
    Utilization busy;
    Distribution _queueDelay; // milliseconds
};

/**
 * One hop of a pipelined transfer: a Service plus an optional rate
 * override for direction-dependent stations (0 = use the Service's
 * configured rate).
 */
struct Stage
{
    Service *svc = nullptr;
    double mbPerSec = 0.0;

    Stage() = default;
    Stage(Service *s) : svc(s) {}             // NOLINT: implicit by design
    Stage(Service *s, double rate) : svc(s), mbPerSec(rate) {}
    Stage(Service &s) : svc(&s) {}            // NOLINT: implicit by design
    Stage(Service &s, double rate) : svc(&s), mbPerSec(rate) {}
};

/**
 * Move a transfer of @c bytes through a chain of Services in chunks.
 *
 * Chunk i is submitted to stage j+1 as soon as it completes stage j,
 * so stages overlap (store-and-forward pipelining).  The @c done
 * callback fires when the last chunk leaves the last stage.  The
 * Pipeline object owns per-transfer state and deletes itself.
 */
class Pipeline
{
  public:
    /** Begin a pipelined transfer; returns immediately. */
    static void start(EventQueue &eq, const std::vector<Stage> &stages,
                      std::uint64_t bytes, std::uint64_t chunk_bytes,
                      Event done);

  private:
    Pipeline(EventQueue &eq, std::vector<Stage> stages, std::uint64_t bytes,
             std::uint64_t chunk, Event done);

    void submitChunk(std::size_t stage, std::uint64_t chunk_bytes);
    void chunkLeft(std::size_t stage, std::uint64_t chunk_bytes);

    EventQueue &eq;
    std::vector<Stage> stages;
    Event done;
    std::uint64_t remainingAtLast;
};

} // namespace raid2::sim

#endif // RAID2_SIM_SERVICE_HH
