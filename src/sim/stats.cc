#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace raid2::sim {

void
Distribution::sample(double v)
{
    ++n;
    sum += v;
    sumSq += v * v;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

void
Distribution::reset()
{
    n = 0;
    sum = sumSq = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

double
Distribution::variance() const
{
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo_, double hi_, std::size_t buckets_)
    : lo(lo_), hi(hi_), width((hi_ - lo_) / static_cast<double>(buckets_)),
      counts(buckets_, 0)
{
    if (buckets_ == 0 || hi_ <= lo_)
        panic("Histogram: bad range/bucket configuration");
}

void
Histogram::sample(double v)
{
    ++n;
    std::size_t idx;
    if (v < lo) {
        idx = 0;
    } else if (v >= hi) {
        idx = counts.size() - 1;
    } else {
        idx = static_cast<std::size_t>((v - lo) / width);
        idx = std::min(idx, counts.size() - 1);
    }
    ++counts[idx];
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    n = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo + width * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return bucketLo(i) + width;
}

double
Histogram::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(n));
    // q = 1.0 must land on the last sample, not one past it (which
    // would fall through to the histogram's upper edge regardless of
    // which buckets are occupied).
    if (target >= n)
        target = n - 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen > target)
            return bucketLo(i) + width / 2.0;
    }
    return bucketHi(counts.size() - 1);
}

double
exactQuantile(std::vector<double> &samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= samples.size())
        return samples.back();
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

void
Histogram::print(std::ostream &os, const std::string &label) const
{
    os << label << " (n=" << n << ")\n";
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        os << "  [" << bucketLo(i) << ", " << bucketHi(i)
           << "): " << counts[i] << "\n";
    }
}

} // namespace raid2::sim
