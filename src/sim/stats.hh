/**
 * @file
 * Lightweight statistics collection.
 *
 * Components expose counters and sample distributions; benches and
 * tests read them back.  Modeled loosely on gem5's stats package but
 * intentionally tiny: a Scalar counter, a sampled Distribution, and a
 * fixed-bucket Histogram, plus a registry for named dumping.
 */

#ifndef RAID2_SIM_STATS_HH
#define RAID2_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace raid2::sim {

class StatsRegistry; // stats_registry.hh

/** Monotonic counter. */
class Scalar
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** Online mean / min / max / variance over double samples. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double min() const { return n ? _min : 0.0; }
    double max() const { return n ? _max : 0.0; }
    double variance() const;
    double stddev() const;
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-width bucket histogram over [lo, hi); out-of-range samples
 *  land in saturating edge buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return n; }
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;

    /** Approximate p-quantile (q in [0,1]) from bucket midpoints. */
    double quantile(double q) const;

    void print(std::ostream &os, const std::string &label) const;

  private:
    double lo, hi, width;
    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
};

/**
 * Exact q-quantile (q in [0,1]) of a sample set by linear
 * interpolation between order statistics; sorts @p samples in place.
 * Returns 0 for an empty set.  Tail percentiles (p99/p999) from a
 * fixed-bucket Histogram are only as good as the bucket width, so
 * latency-curve benches keep the raw samples and use this instead.
 */
double exactQuantile(std::vector<double> &samples, double q);

/**
 * Utilization tracker for a resource: accumulates busy time so a bench
 * can report fraction-busy over an interval.
 */
class Utilization
{
  public:
    /** Record the resource busy for [start, end). Overlaps allowed for
     *  multi-server resources; busy time simply accumulates. */
    void
    addBusy(Tick start, Tick end)
    {
        if (end > start)
            busyTicks += end - start;
    }

    Tick busy() const { return busyTicks; }

    double
    fraction(Tick elapsed) const
    {
        return elapsed ? static_cast<double>(busyTicks) /
                             static_cast<double>(elapsed)
                       : 0.0;
    }

    void reset() { busyTicks = 0; }

  private:
    Tick busyTicks = 0;
};

} // namespace raid2::sim

#endif // RAID2_SIM_STATS_HH
