#include "sim/stats_registry.hh"

#include <iomanip>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace raid2::sim {

void
StatsRegistry::insert(const std::string &name, Entry e)
{
    if (name.empty())
        panic("StatsRegistry: empty stat name");
    // A name may not be both a leaf and an interior node ("a.b" and
    // "a.b.c") or the nested JSON would emit a duplicate key.
    for (std::size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        if (entries.count(name.substr(0, dot)))
            panic("StatsRegistry: '%s' conflicts with existing leaf '%s'",
                  name.c_str(), name.substr(0, dot).c_str());
    }
    auto next = entries.lower_bound(name + ".");
    if (next != entries.end() &&
        next->first.compare(0, name.size() + 1, name + ".") == 0)
        panic("StatsRegistry: leaf '%s' conflicts with existing subtree "
              "'%s'", name.c_str(), next->first.c_str());
    auto [it, inserted] = entries.emplace(name, std::move(e));
    if (!inserted)
        panic("StatsRegistry: duplicate stat name '%s'", name.c_str());
}

void
StatsRegistry::add(const std::string &name, const Scalar &s)
{
    Entry e;
    e.kind = Entry::Kind::ScalarStat;
    e.scalar = &s;
    insert(name, std::move(e));
}

void
StatsRegistry::add(const std::string &name, const Distribution &d)
{
    Entry e;
    e.kind = Entry::Kind::Dist;
    e.dist = &d;
    insert(name, std::move(e));
}

void
StatsRegistry::add(const std::string &name, const Histogram &h)
{
    Entry e;
    e.kind = Entry::Kind::Hist;
    e.hist = &h;
    insert(name, std::move(e));
}

void
StatsRegistry::add(const std::string &name, const Utilization &u)
{
    Entry e;
    e.kind = Entry::Kind::Util;
    e.util = &u;
    insert(name, std::move(e));
}

void
StatsRegistry::addGauge(const std::string &name, Gauge fn)
{
    if (!fn)
        panic("StatsRegistry: null gauge for '%s'", name.c_str());
    Entry e;
    e.kind = Entry::Kind::GaugeFn;
    e.gauge = std::move(fn);
    insert(name, std::move(e));
}

void
StatsRegistry::removePrefix(const std::string &prefix)
{
    for (auto it = entries.lower_bound(prefix); it != entries.end();) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        it = entries.erase(it);
    }
}

bool
StatsRegistry::contains(const std::string &name) const
{
    return entries.count(name) != 0;
}

void
StatsRegistry::dumpEntry(std::ostream &os, const std::string &name,
                         const Entry &e) const
{
    os << name << " = ";
    switch (e.kind) {
      case Entry::Kind::ScalarStat:
        os << e.scalar->value();
        break;
      case Entry::Kind::GaugeFn:
        os << e.gauge();
        break;
      case Entry::Kind::Dist:
        os << "dist(n=" << e.dist->count() << ", mean=" << e.dist->mean()
           << ", min=" << e.dist->min() << ", max=" << e.dist->max()
           << ", stddev=" << e.dist->stddev() << ")";
        break;
      case Entry::Kind::Hist:
        os << "hist(n=" << e.hist->count()
           << ", p50=" << e.hist->quantile(0.5)
           << ", p99=" << e.hist->quantile(0.99) << ")";
        break;
      case Entry::Kind::Util: {
        os << "busy_ms=" << ticksToMs(e.util->busy());
        if (elapsedFn)
            os << ", util=" << e.util->fraction(elapsedFn());
        break;
      }
    }
    os << "\n";
}

void
StatsRegistry::dump(std::ostream &os) const
{
    // std::map iteration is sorted: dotted siblings come out adjacent,
    // which is the hierarchical grouping a reader wants.
    for (const auto &[name, entry] : entries)
        dumpEntry(os, name, entry);
}

void
StatsRegistry::jsonValue(JsonWriter &jw, const Entry &e) const
{
    switch (e.kind) {
      case Entry::Kind::ScalarStat:
        jw.value(e.scalar->value());
        break;
      case Entry::Kind::GaugeFn:
        jw.value(e.gauge());
        break;
      case Entry::Kind::Dist:
        jw.beginObject();
        jw.kv("count", e.dist->count());
        jw.kv("mean", e.dist->mean());
        jw.kv("min", e.dist->min());
        jw.kv("max", e.dist->max());
        jw.kv("stddev", e.dist->stddev());
        jw.kv("total", e.dist->total());
        jw.endObject();
        break;
      case Entry::Kind::Hist:
        jw.beginObject();
        jw.kv("count", e.hist->count());
        jw.kv("p50", e.hist->quantile(0.5));
        jw.kv("p90", e.hist->quantile(0.9));
        jw.kv("p99", e.hist->quantile(0.99));
        jw.key("buckets");
        jw.beginArray();
        for (std::size_t i = 0; i < e.hist->buckets(); ++i) {
            if (e.hist->bucketCount(i) == 0)
                continue;
            jw.beginObject();
            jw.kv("lo", e.hist->bucketLo(i));
            jw.kv("hi", e.hist->bucketHi(i));
            jw.kv("n", e.hist->bucketCount(i));
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
        break;
      case Entry::Kind::Util:
        jw.beginObject();
        jw.kv("busy_ms", ticksToMs(e.util->busy()));
        if (elapsedFn)
            jw.kv("utilization", e.util->fraction(elapsedFn()));
        jw.endObject();
        break;
    }
}

void
StatsRegistry::writeJsonBody(JsonWriter &jw) const
{
    // Nest dotted names into objects.  The sorted map guarantees all
    // children of a prefix are contiguous, so a simple open/close walk
    // over the name components reconstructs the tree.
    std::vector<std::string> open; // currently-open object path
    for (const auto &[name, entry] : entries) {
        // Split the dotted name.
        std::vector<std::string> parts;
        std::size_t start = 0;
        while (true) {
            const std::size_t dot = name.find('.', start);
            if (dot == std::string::npos) {
                parts.push_back(name.substr(start));
                break;
            }
            parts.push_back(name.substr(start, dot - start));
            start = dot + 1;
        }
        // Close objects that are no longer on the path; the last part
        // is the leaf key, everything before it is the object path.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < parts.size() &&
               open[common] == parts[common])
            ++common;
        while (open.size() > common) {
            jw.endObject();
            open.pop_back();
        }
        while (open.size() + 1 < parts.size()) {
            jw.key(parts[open.size()]);
            jw.beginObject();
            open.push_back(parts[open.size()]);
        }
        jw.key(parts.back());
        jsonValue(jw, entry);
    }
    while (!open.empty()) {
        jw.endObject();
        open.pop_back();
    }
}

void
StatsRegistry::toJson(std::ostream &os, bool pretty) const
{
    JsonWriter jw(os, pretty);
    jw.beginObject();
    writeJsonBody(jw);
    jw.endObject();
}

std::string
StatsRegistry::toJson() const
{
    std::ostringstream oss;
    toJson(oss);
    return oss.str();
}

} // namespace raid2::sim
