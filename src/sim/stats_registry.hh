/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register their Scalar/Distribution/Histogram/Utilization
 * stats (or a Gauge closure over an existing counter) under dotted
 * names ("xbus.port.hippi_src.bytes", "disk.0.service_ms"); a bench or
 * tool then dumps the whole tree as text or as nested JSON.  The
 * registry stores non-owning pointers: it must not outlive the
 * components that registered with it, which holds naturally because
 * benches create the registry alongside the simulated system and dump
 * it before teardown.
 *
 * The dotted names are the hierarchy: dump() prints them sorted (so
 * siblings group), toJson() nests them into objects at the dots.
 */

#ifndef RAID2_SIM_STATS_REGISTRY_HH
#define RAID2_SIM_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace raid2::sim {

class JsonWriter;

/** Name -> stat registry with text and JSON dumping. */
class StatsRegistry
{
  public:
    /** Closure returning the current value of a derived statistic. */
    using Gauge = std::function<double()>;

    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** @{ Register a stat under @p name (panics on duplicates). */
    void add(const std::string &name, const Scalar &s);
    void add(const std::string &name, const Distribution &d);
    void add(const std::string &name, const Histogram &h);
    void add(const std::string &name, const Utilization &u);
    void addGauge(const std::string &name, Gauge fn);
    /** @} */

    /** Drop every entry whose name starts with @p prefix. */
    void removePrefix(const std::string &prefix);

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries.size(); }

    /**
     * Supply the elapsed-time closure used to turn Utilization busy
     * time into a fraction (typically bound to EventQueue::now).
     */
    void setElapsed(std::function<Tick()> fn) { elapsedFn = std::move(fn); }

    /** Sorted "name = value" text dump; siblings group by prefix. */
    void dump(std::ostream &os) const;

    /** Nested-object JSON snapshot of every registered stat. */
    void toJson(std::ostream &os, bool pretty = true) const;
    std::string toJson() const;

    /** Emit the snapshot into an already-open JSON object. */
    void writeJsonBody(JsonWriter &jw) const;

  private:
    struct Entry
    {
        enum class Kind { ScalarStat, Dist, Hist, Util, GaugeFn };
        Kind kind;
        const Scalar *scalar = nullptr;
        const Distribution *dist = nullptr;
        const Histogram *hist = nullptr;
        const Utilization *util = nullptr;
        Gauge gauge;
    };

    void insert(const std::string &name, Entry e);
    void dumpEntry(std::ostream &os, const std::string &name,
                   const Entry &e) const;
    void jsonValue(JsonWriter &jw, const Entry &e) const;

    std::map<std::string, Entry> entries;
    std::function<Tick()> elapsedFn;
};

} // namespace raid2::sim

#endif // RAID2_SIM_STATS_REGISTRY_HH
