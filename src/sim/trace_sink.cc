#include "sim/trace_sink.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <queue>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace raid2::sim {

TraceSink::TraceSink(EventQueue &eq_) : eq(eq_)
{
}

TraceSink::SpanId
TraceSink::begin(std::string_view component, std::string_view name,
                 std::uint64_t bytes)
{
    Span s;
    s.id = nextId++;
    s.component = std::string(component);
    s.name = std::string(name);
    s.begin = eq.now();
    s.bytes = bytes;
    _spans.push_back(std::move(s));
    ++_open;
    return _spans.back().id;
}

void
TraceSink::end(SpanId id)
{
    // Spans close in roughly LIFO/FIFO order near the tail; a reverse
    // scan finds the target quickly without an index structure.
    for (auto it = _spans.rbegin(); it != _spans.rend(); ++it) {
        if (it->id != id)
            continue;
        if (it->closed)
            panic("TraceSink: span %llu closed twice",
                  (unsigned long long)id);
        it->end = eq.now();
        it->closed = true;
        --_open;
        return;
    }
    panic("TraceSink: end of unknown span %llu", (unsigned long long)id);
}

void
TraceSink::complete(std::string_view component, std::string_view name,
                    Tick begin_tick, Tick end_tick, std::uint64_t bytes)
{
    Span s;
    s.id = nextId++;
    s.component = std::string(component);
    s.name = std::string(name);
    s.begin = begin_tick;
    s.end = end_tick;
    s.bytes = bytes;
    s.closed = true;
    _spans.push_back(std::move(s));
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Group spans per component; assign overlapping spans of one
    // component to separate lanes (greedy first-free) so concurrent
    // operations render as stacked tracks instead of hiding each
    // other.  Lane -> Chrome tid.
    struct Placed
    {
        const Span *span;
        unsigned tid;
    };
    std::vector<Placed> placed;
    std::map<std::string, std::vector<const Span *>> byComponent;
    for (const Span &s : _spans) {
        if (!s.closed)
            continue;
        byComponent[s.component].push_back(&s);
    }

    unsigned nextTid = 1;
    std::vector<std::pair<std::string, unsigned>> trackNames;
    for (auto &[component, list] : byComponent) {
        std::stable_sort(list.begin(), list.end(),
                         [](const Span *a, const Span *b) {
                             return a->begin < b->begin;
                         });
        std::vector<Tick> laneEnd; // lane -> busy-until
        std::vector<unsigned> laneTid;
        for (const Span *s : list) {
            std::size_t lane = laneEnd.size();
            for (std::size_t i = 0; i < laneEnd.size(); ++i) {
                if (laneEnd[i] <= s->begin) {
                    lane = i;
                    break;
                }
            }
            if (lane == laneEnd.size()) {
                laneEnd.push_back(0);
                laneTid.push_back(nextTid++);
                trackNames.emplace_back(
                    lane == 0 ? component
                              : component + " #" + std::to_string(lane),
                    laneTid.back());
            }
            laneEnd[lane] = s->end;
            placed.push_back(Placed{s, laneTid[lane]});
        }
    }

    JsonWriter jw(os, /*pretty=*/false);
    jw.beginObject();
    jw.key("traceEvents");
    jw.beginArray();
    // Thread-name metadata so Perfetto labels each track.
    for (const auto &[label, tid] : trackNames) {
        jw.beginObject();
        jw.kv("name", "thread_name");
        jw.kv("ph", "M");
        jw.kv("pid", 1);
        jw.kv("tid", tid);
        jw.key("args");
        jw.beginObject();
        jw.kv("name", label);
        jw.endObject();
        jw.endObject();
    }
    for (const Placed &p : placed) {
        const Span &s = *p.span;
        jw.beginObject();
        jw.kv("name", s.name);
        jw.kv("cat", s.component);
        jw.kv("ph", "X");
        // trace_event timestamps are microseconds; ticks are ns.
        jw.kv("ts", static_cast<double>(s.begin) / 1000.0);
        jw.kv("dur", static_cast<double>(s.end - s.begin) / 1000.0);
        jw.kv("pid", 1);
        jw.kv("tid", p.tid);
        jw.key("args");
        jw.beginObject();
        jw.kv("id", s.id);
        if (s.bytes)
            jw.kv("bytes", s.bytes);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.kv("displayTimeUnit", "ms");
    jw.endObject();
    os << "\n";
}

bool
TraceSink::writeChromeTrace(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    writeChromeTrace(f);
    return f.good();
}

} // namespace raid2::sim
