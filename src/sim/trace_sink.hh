/**
 * @file
 * Timestamped span recording with Chrome trace_event export.
 *
 * Components record spans — (op id, component, begin/end tick, bytes)
 * — through the TraceSink attached to their EventQueue; a bench run
 * with tracing enabled then writes the spans as Chrome trace_event
 * JSON, loadable in chrome://tracing or Perfetto.  Overlapping spans
 * of one component (e.g. the prefetch pipeline's concurrent array
 * reads) are spread across lanes at export time so the overlap is
 * visible as stacked tracks.
 *
 * Tracing is opt-in per run: when no sink is attached the only cost in
 * the datapath is a null-pointer check (see EventQueue::tracer()).
 */

#ifndef RAID2_SIM_TRACE_SINK_HH
#define RAID2_SIM_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace raid2::sim {

class EventQueue;

/** Span recorder; one per traced simulation run. */
class TraceSink
{
  public:
    using SpanId = std::uint64_t;
    static constexpr SpanId invalidSpan = 0;

    /** One recorded span. */
    struct Span
    {
        SpanId id;
        std::string component; // trace track ("pipeline", "disk.3", ...)
        std::string name;      // operation label ("prefetch", "read", ...)
        Tick begin = 0;
        Tick end = 0;
        std::uint64_t bytes = 0;
        bool closed = false;
    };

    explicit TraceSink(EventQueue &eq);

    /** Open a span at the current simulated time. */
    SpanId begin(std::string_view component, std::string_view name,
                 std::uint64_t bytes = 0);

    /** Close span @p id at the current simulated time. */
    void end(SpanId id);

    /** Record an already-timed span in one call. */
    void complete(std::string_view component, std::string_view name,
                  Tick begin_tick, Tick end_tick,
                  std::uint64_t bytes = 0);

    /** @{ Introspection (tests, reporters). */
    std::size_t spanCount() const { return _spans.size(); }
    const std::vector<Span> &spans() const { return _spans; }
    std::size_t openSpans() const { return _open; }
    /** @} */

    /** Write all closed spans as Chrome trace_event JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /** Convenience: write to @p path; returns false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    EventQueue &eq;
    std::vector<Span> _spans;
    SpanId nextId = 1;
    std::size_t _open = 0;
};

} // namespace raid2::sim

#endif // RAID2_SIM_TRACE_SINK_HH
