/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulated clock counts nanoseconds in a 64-bit unsigned integer,
 * which is enough for ~584 years of simulated time.  All latency
 * calibration constants in the project are expressed through the helper
 * functions here so the unit is never ambiguous at a call site.
 */

#ifndef RAID2_SIM_TYPES_HH
#define RAID2_SIM_TYPES_HH

#include <cstdint>

namespace raid2::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A tick value that compares later than any schedulable time. */
constexpr Tick maxTick = ~Tick(0);

constexpr Tick nsPerUs = 1000;
constexpr Tick nsPerMs = 1000 * 1000;
constexpr Tick nsPerSec = 1000ull * 1000 * 1000;

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(nsPerUs));
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(nsPerMs));
}

/** Convert seconds to ticks. */
constexpr Tick
secToTicks(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(nsPerSec));
}

/** Convert ticks to seconds as a double (for reporting). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(nsPerSec);
}

/** Convert ticks to milliseconds as a double (for reporting). */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(nsPerMs);
}

/**
 * Time to move @p bytes at @p mb_per_sec (1 MB = 10^6 bytes, matching
 * the paper's "megabytes/second" usage).
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double mb_per_sec)
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             (mb_per_sec * 1e6) *
                             static_cast<double>(nsPerSec));
}

/** Bandwidth in MB/s given bytes moved over elapsed ticks. */
constexpr double
mbPerSec(std::uint64_t bytes, Tick elapsed)
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bytes) / 1e6 / ticksToSec(elapsed);
}

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;
constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

/** The paper reports sizes in decimal kilobytes/megabytes. */
constexpr std::uint64_t KB = 1000;
constexpr std::uint64_t MB = 1000 * 1000;

} // namespace raid2::sim

#endif // RAID2_SIM_TYPES_HH
