#include "snap/backup_engine.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::snap {

using lfs::BlockAddr;
using lfs::Errno;
using lfs::LfsError;

BackupEngine::BackupEngine(sim::EventQueue &eq_,
                           server::Raid2Server &src_,
                           server::Raid2Server &dst_, const Config &cfg_)
    : eq(eq_), src(src_), dst(dst_), cfg(cfg_),
      chan(eq_, src_.board().name() + "-backup",
           src_.board().hippiSrcPort(), dst_.board().hippiDstPort())
{
    if (!src.config().withFs || !dst.config().withFs)
        sim::panic("BackupEngine: both servers need a file system");

    std::vector<std::uint8_t> block(src.rawFsDevice().blockSize());
    src.rawFsDevice().readBlock(0, {block.data(), block.size()});
    std::memcpy(&sb, block.data(), sizeof(sb));
    if (!sb.valid())
        sim::panic("BackupEngine: bad source superblock");

    // The stream rewrites target segments in place, so the two file
    // systems must share a geometry.
    std::vector<std::uint8_t> dblock(dst.rawFsDevice().blockSize());
    dst.rawFsDevice().readBlock(0, {dblock.data(), dblock.size()});
    lfs::Superblock dsb;
    std::memcpy(&dsb, dblock.data(), sizeof(dsb));
    if (!dsb.valid() || dsb.blockSize != sb.blockSize ||
        dsb.segBlocks != sb.segBlocks ||
        dsb.numSegments != sb.numSegments ||
        dsb.firstSegBlock != sb.firstSegBlock ||
        dsb.maxInodes != sb.maxInodes) {
        sim::panic("BackupEngine: source/target geometry mismatch");
    }

    if (cfg.windowSegments == 0)
        cfg.windowSegments = 1;
    const std::uint64_t cap = src.board().buffers().capacity();
    const std::uint64_t fit =
        std::max<std::uint64_t>(1, cap / segmentBytes());
    cfg.windowSegments = static_cast<unsigned>(
        std::min<std::uint64_t>(cfg.windowSegments, fit));
}

BackupEngine::BackupEngine(sim::EventQueue &eq_,
                           server::Raid2Server &src_,
                           server::Raid2Server &dst_)
    : BackupEngine(eq_, src_, dst_, Config{})
{
}

std::uint64_t
BackupEngine::segmentBytes() const
{
    return std::uint64_t(sb.segBlocks) * sb.blockSize;
}

std::uint64_t
BackupEngine::segmentByteOffset(std::uint64_t seg) const
{
    return sb.segmentStartBlock(seg) * sb.blockSize;
}

const lfs::SnapshotRecord &
BackupEngine::findSnap(const std::string &name) const
{
    const lfs::SnapshotRecord *rec = src.fs().findSnapshot(name);
    if (rec == nullptr)
        throw LfsError(Errno::NoEntry, "no snapshot named " + name);
    return *rec;
}

void
BackupEngine::sendWithRetry(std::uint64_t bytes, unsigned attempt,
                            std::function<void()> done)
{
    if (chan.linkDown() && attempt < cfg.maxRetries) {
        // Deterministic exponential backoff: the link is down right
        // now, so burning a send on it would only defer inside the
        // channel; back off and probe again.
        ++_retries;
        sim::Tick delay = cfg.retryBackoff;
        for (unsigned i = 0; i < attempt && delay < cfg.retryBackoffMax;
             ++i)
            delay *= 2;
        delay = std::min(delay, cfg.retryBackoffMax);
        eq.scheduleIn(delay, [this, bytes, attempt,
                              done = std::move(done)]() mutable {
            sendWithRetry(bytes, attempt + 1, std::move(done));
        });
        return;
    }
    chan.send(bytes, {src.board().memory()}, {dst.board().memory()},
              std::move(done));
}

void
BackupEngine::backupFull(const std::string &snap_name,
                         std::function<void()> done)
{
    const lfs::SnapshotRecord rec = findSnap(snap_name);
    std::vector<std::uint64_t> segs;
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (rec.pinned[s])
            segs.push_back(s);
    }
    ++_full;
    startStream(rec, std::move(segs), std::move(done));
}

void
BackupEngine::backupIncremental(const std::string &snap_name,
                                const std::string &base_name,
                                std::function<void()> done)
{
    const lfs::SnapshotRecord rec = findSnap(snap_name);
    const lfs::SnapshotRecord base = findSnap(base_name);

    std::vector<std::uint64_t> segs;
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (!rec.pinned[s])
            continue;
        if (base.pinned[s]) {
            // Pinned segments are immutable: the base already shipped
            // this exact image.
            if (shipped.count(s) == 0) {
                throw LfsError(Errno::Invalid,
                               "base snapshot " + base_name +
                                   " is not on the backup target");
            }
            ++_skipped;
            continue;
        }
        segs.push_back(s);
    }
    ++_incremental;
    startStream(rec, std::move(segs), std::move(done));
}

void
BackupEngine::startStream(const lfs::SnapshotRecord &rec,
                          std::vector<std::uint64_t> segs,
                          std::function<void()> done)
{
    if (active)
        throw LfsError(Errno::Invalid, "backup engine busy");
    active = true;
    streamSegs = std::move(segs);
    nextIssue = 0;
    completedSegs = 0;
    inFlight = 0;
    streamDone = std::move(done);

    // Manifest frame first: superblock + the serialized snapshot
    // record, so the receiver can interpret the segments that follow.
    const std::uint64_t manifest_bytes =
        sb.blockSize + lfs::snapshotRecordBytes(rec.name.size(),
                                                sb.numImapChunks(),
                                                sb.numSegments);
    const sim::Tick began = eq.now();
    sendWithRetry(manifest_bytes, 0, [this, began, manifest_bytes] {
        if (auto *tr = eq.tracer())
            tr->complete("backup", "manifest", began, eq.now(),
                         manifest_bytes);
        if (streamSegs.empty())
            finishStream();
        else
            issueNext();
    });
}

void
BackupEngine::issueNext()
{
    while (inFlight < cfg.windowSegments &&
           nextIssue < streamSegs.size())
        issueSegment(streamSegs[nextIssue++]);
}

void
BackupEngine::issueSegment(std::uint64_t seg)
{
    ++inFlight;
    const std::uint64_t off = segmentByteOffset(seg);
    const std::uint64_t n = segmentBytes();
    src.board().buffers().alloc(n, [this, seg, off, n] {
        const sim::Tick began = eq.now();
        src.array().read(off, n, [this, seg, off, n, began] {
            sendWithRetry(n, 0, [this, seg, off, n, began] {
                dst.array().write(off, n, [this, seg, off, n, began] {
                    finishSegment(seg, off, n, began);
                });
            });
        });
    });
}

void
BackupEngine::finishSegment(std::uint64_t seg, std::uint64_t off,
                            std::uint64_t bytes, sim::Tick began)
{
    // Functional twin of the transfer: the segment image lands at the
    // same address on the target.  Pinned segments are immutable on
    // the source, so reading them now (after the timed transfer) sees
    // the same bytes the timed reads moved.
    const std::uint64_t bno = off / sb.blockSize;
    const std::uint64_t count = bytes / sb.blockSize;
    std::vector<std::uint8_t> buf(bytes);
    src.rawFsDevice().readRange(bno, count, {buf.data(), buf.size()});
    dst.rawFsDevice().writeRange(bno, count, {buf.data(), buf.size()});

    src.board().buffers().free(bytes);
    shipped.insert(seg);
    ++_segments;
    _bytes += bytes;
    if (auto *tr = eq.tracer())
        tr->complete("backup", "segment", began, eq.now(), bytes);

    --inFlight;
    ++completedSegs;
    if (completedSegs == streamSegs.size())
        finishStream();
    else
        issueNext();
}

void
BackupEngine::finishStream()
{
    active = false;
    auto done = std::move(streamDone);
    streamDone = nullptr;
    if (done)
        done();
}

std::vector<std::uint8_t>
BackupEngine::synthesizeCheckpoint(const lfs::SnapshotRecord &rec) const
{
    lfs::CheckpointHeader hdr{};
    hdr.magic = lfs::checkpointMagic;
    hdr.numSnapshots = 1;
    hdr.seqno = std::max<std::uint64_t>(rec.createSeq, 1);
    hdr.nextSegSeq = rec.nextSegSeq;
    hdr.nextIno = rec.nextIno;
    hdr.rootIno = rec.root;
    hdr.numImapChunks =
        static_cast<std::uint32_t>(rec.imapChunkAddr.size());
    hdr.numSegments = static_cast<std::uint32_t>(sb.numSegments);

    // Log head: the first segment the snapshot does not pin.  It was
    // never shipped, so roll-forward finds no matching summary there
    // and mount opens it fresh.
    std::uint64_t head = 0;
    while (head < sb.numSegments && rec.pinned[head])
        ++head;
    if (head == sb.numSegments)
        sim::panic("BackupEngine: snapshot pins every segment");
    hdr.logHeadSegment = head;

    // Usage table: shipped (pinned) segments get their summary's
    // block count — a safe superset of the live bytes, which is all
    // the allocator and cleaner need to stay away; everything else is
    // clean.
    std::vector<std::uint8_t> body;
    body.resize(8ull * rec.imapChunkAddr.size() +
                sizeof(lfs::UsageEntry) * sb.numSegments);
    std::memcpy(body.data(), rec.imapChunkAddr.data(),
                8ull * rec.imapChunkAddr.size());
    auto *ue = reinterpret_cast<lfs::UsageEntry *>(
        body.data() + 8ull * rec.imapChunkAddr.size());
    std::vector<std::uint8_t> sum(sb.blockSize);
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        ue[s] = lfs::UsageEntry{};
        if (!rec.pinned[s])
            continue;
        dst.rawFsDevice().readBlock(sb.segmentStartBlock(s),
                                    {sum.data(), sum.size()});
        lfs::SummaryHeader sh;
        std::memcpy(&sh, sum.data(), sizeof(sh));
        if (sh.magic != lfs::summaryMagic) {
            sim::panic("BackupEngine: shipped segment %llu has no "
                       "valid summary",
                       (unsigned long long)s);
        }
        ue[s].liveBytes = sh.count * sb.blockSize;
        ue[s].writeSeq = sh.segSeq;
    }

    // The snapshot record itself rides in the checkpoint, so the
    // restored file system keeps the pins (and the snapshot remains
    // openable on the target).
    {
        lfs::SnapshotDiskRecord sr{};
        sr.id = rec.id;
        sr.nameLen = static_cast<std::uint32_t>(rec.name.size());
        sr.createSeq = rec.createSeq;
        sr.nextSegSeq = rec.nextSegSeq;
        sr.root = rec.root;
        sr.nextIno = rec.nextIno;
        sr.numImapChunks =
            static_cast<std::uint32_t>(rec.imapChunkAddr.size());
        sr.numSegments = static_cast<std::uint32_t>(sb.numSegments);

        const std::size_t base = body.size();
        body.resize(base + lfs::snapshotRecordBytes(sr.nameLen,
                                                    sr.numImapChunks,
                                                    sr.numSegments));
        std::uint8_t *p = body.data() + base;
        std::memcpy(p, &sr, sizeof(sr));
        p += sizeof(sr);
        std::memcpy(p, rec.name.data(), rec.name.size());
        p += rec.name.size();
        std::memcpy(p, rec.imapChunkAddr.data(),
                    8ull * rec.imapChunkAddr.size());
        p += 8ull * rec.imapChunkAddr.size();
        for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
            if (rec.pinned[s])
                p[s / 8] |= std::uint8_t(1u << (s % 8));
        }
    }

    hdr.bodyChecksum = lfs::fnv1a({body.data(), body.size()});
    {
        lfs::CheckpointHeader tmp = hdr;
        tmp.checksum = 0;
        hdr.checksum = lfs::fnv1a(
            {reinterpret_cast<const std::uint8_t *>(&tmp), sizeof(tmp)});
    }

    std::vector<std::uint8_t> region(
        std::size_t(sb.cpBlocks) * sb.blockSize, 0);
    if (sizeof(hdr) + body.size() > region.size())
        sim::panic("BackupEngine: checkpoint body exceeds region size");
    std::memcpy(region.data(), &hdr, sizeof(hdr));
    std::memcpy(region.data() + sizeof(hdr), body.data(), body.size());
    return region;
}

void
BackupEngine::restore(const std::string &snap_name,
                      std::function<void(const lfs::FsckReport &)> done)
{
    if (active)
        throw LfsError(Errno::Invalid, "backup engine busy");
    const lfs::SnapshotRecord rec = findSnap(snap_name);
    for (std::uint64_t s = 0; s < sb.numSegments; ++s) {
        if (rec.pinned[s] && shipped.count(s) == 0) {
            throw LfsError(Errno::Invalid,
                           "snapshot " + snap_name +
                               " is not fully on the backup target");
        }
    }

    active = true;
    dst.beginRestore();
    const sim::Tick began = eq.now();

    // Write the synthesized checkpoint to both regions so mount picks
    // it regardless of which one the target's old state favored.
    const std::vector<std::uint8_t> region = synthesizeCheckpoint(rec);
    dst.rawFsDevice().writeRange(sb.cp0Block, sb.cpBlocks,
                                 {region.data(), region.size()});
    dst.rawFsDevice().writeRange(sb.cp1Block, sb.cpBlocks,
                                 {region.data(), region.size()});

    const std::uint64_t cp_bytes = region.size();
    dst.array().write(sb.cp0Block * sb.blockSize, cp_bytes,
                      [this, cp_bytes, began,
                       done = std::move(done)]() mutable {
        dst.array().write(
            sb.cp1Block * sb.blockSize, cp_bytes,
            [this, began, done = std::move(done)] {
                dst.remountFs();
                const lfs::FsckReport rep = dst.fs().fsck();
                dst.endRestore();
                ++_restores;
                active = false;
                if (auto *tr = eq.tracer())
                    tr->complete("backup", "restore", began, eq.now());
                if (done)
                    done(rep);
            });
    });
}

BackupEngine::VerifyReport
BackupEngine::verify(const std::string &snap_name) const
{
    VerifyReport vr;
    const SnapshotView view(src.rawFsDevice(), findSnap(snap_name));
    lfs::Lfs &tfs = dst.fs();

    // Snapshot -> target: every node exists with identical type, size
    // and contents.
    std::vector<std::string> snap_paths;
    view.walk([&](const std::string &path, const lfs::Stat &st) {
        snap_paths.push_back(path);
        if (st.type == lfs::FileType::Directory) {
            ++vr.directories;
            if (!tfs.exists(path) ||
                tfs.stat(path).type != lfs::FileType::Directory) {
                vr.ok = false;
                vr.mismatches.push_back("missing directory " + path);
            }
            return;
        }
        ++vr.files;
        if (!tfs.exists(path)) {
            vr.ok = false;
            vr.mismatches.push_back("missing file " + path);
            return;
        }
        const lfs::Stat tst = tfs.stat(path);
        if (tst.type != st.type || tst.size != st.size) {
            vr.ok = false;
            vr.mismatches.push_back("stat mismatch " + path);
            return;
        }
        std::vector<std::uint8_t> want(st.size), got(st.size);
        view.read(st.ino, 0, {want.data(), want.size()});
        tfs.read(tst.ino, 0, {got.data(), got.size()});
        vr.bytes += st.size;
        if (want != got) {
            vr.ok = false;
            vr.mismatches.push_back("content mismatch " + path);
        }
    });

    // Target -> snapshot: no extra nodes appeared.
    std::set<std::string> in_snap(snap_paths.begin(), snap_paths.end());
    std::function<void(const std::string &)> sweep =
        [&](const std::string &path) {
            if (in_snap.count(path.empty() ? "/" : path) == 0) {
                vr.ok = false;
                vr.mismatches.push_back("unexpected node " +
                                        (path.empty() ? "/" : path));
            }
            const std::string dir = path.empty() ? "/" : path;
            if (tfs.stat(dir).type != lfs::FileType::Directory)
                return;
            for (const lfs::DirEntry &e : tfs.readdir(dir))
                sweep(path + "/" + e.name);
        };
    sweep("");
    return vr;
}

void
BackupEngine::registerStats(sim::StatsRegistry &reg,
                            const std::string &prefix) const
{
    reg.addGauge(prefix + ".segments", [this] {
        return static_cast<double>(_segments);
    });
    reg.addGauge(prefix + ".bytes", [this] {
        return static_cast<double>(_bytes);
    });
    reg.addGauge(prefix + ".retries", [this] {
        return static_cast<double>(_retries);
    });
    reg.addGauge(prefix + ".skipped_segments", [this] {
        return static_cast<double>(_skipped);
    });
    reg.addGauge(prefix + ".full", [this] {
        return static_cast<double>(_full);
    });
    reg.addGauge(prefix + ".incremental", [this] {
        return static_cast<double>(_incremental);
    });
    reg.addGauge(prefix + ".restores", [this] {
        return static_cast<double>(_restores);
    });
    reg.addGauge(prefix + ".window", [this] {
        return static_cast<double>(cfg.windowSegments);
    });
    chan.registerStats(reg, prefix + ".hippi");
}

} // namespace raid2::snap
