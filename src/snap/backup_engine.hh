/**
 * @file
 * High-bandwidth online backup/restore between two RAID-II servers.
 *
 * The engine streams snapshot segments from a source server to a
 * backup server over a dedicated HIPPI channel (source board's HIPPI
 * source port to the target board's destination port), the
 * configuration §2.2 describes for server-to-server transfers.  A
 * full backup ships every segment the snapshot pins; an incremental
 * backup ships only segments pinned by the new snapshot and not by
 * the base — valid because pinned segments are immutable, so the
 * base's segments are still byte-identical on the target.
 *
 * Each in-flight segment holds an XBUS buffer-pool reservation on the
 * source board, bounding the window: disk-array read into board
 * memory, HIPPI transfer, array write on the target, release.  The
 * source keeps serving fleet traffic throughout — backup reads simply
 * compete in the timed array like any other I/O.  Link drops injected
 * through fault::FaultPlan/HippiChannel::injectLinkDown are survived
 * by deterministic exponential backoff before each send.
 *
 * restore() rebuilds a mountable file system on the (empty) target
 * from previously shipped segments by synthesizing a checkpoint from
 * the snapshot record — imap chunk addresses, a usage table derived
 * from the shipped segment summaries, and the snapshot record itself
 * so the restored file system keeps the pins — then remounts and
 * fscks the target.
 */

#ifndef RAID2_SNAP_BACKUP_ENGINE_HH
#define RAID2_SNAP_BACKUP_ENGINE_HH

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "net/hippi.hh"
#include "server/raid2_server.hh"
#include "snap/snapshot_view.hh"

namespace raid2::snap {

/** Streams snapshots between two servers over HIPPI. */
class BackupEngine
{
  public:
    struct Config
    {
        /** Segments in flight at once; each holds one segment-sized
         *  XBUS buffer on the source board. */
        unsigned windowSegments = 4;
        /** Exponential backoff base when the link is down at send
         *  time; doubles per attempt up to retryBackoffMax. */
        sim::Tick retryBackoff = sim::msToTicks(1.0);
        sim::Tick retryBackoffMax = sim::msToTicks(64.0);
        /** After this many backoffs the packet is handed to the
         *  channel anyway (it defers internally until link-up). */
        unsigned maxRetries = 16;
    };

    /** restore() + verify() outcome against the source snapshot. */
    struct VerifyReport
    {
        bool ok = true;
        std::uint64_t files = 0;
        std::uint64_t directories = 0;
        std::uint64_t bytes = 0;
        std::vector<std::string> mismatches;
    };

    BackupEngine(sim::EventQueue &eq, server::Raid2Server &src,
                 server::Raid2Server &dst, const Config &cfg);
    BackupEngine(sim::EventQueue &eq, server::Raid2Server &src,
                 server::Raid2Server &dst);

    /** Ship every segment snapshot @p snap_name pins. */
    void backupFull(const std::string &snap_name,
                    std::function<void()> done);

    /**
     * Ship only segments pinned by @p snap_name and not by
     * @p base_name.  The base must already be on the target.
     */
    void backupIncremental(const std::string &snap_name,
                           const std::string &base_name,
                           std::function<void()> done);

    /**
     * Rebuild the target file system at snapshot @p snap_name from
     * shipped segments: synthesize + write the checkpoint, remount,
     * fsck.  The target rejects scheduler traffic (Status::Busy)
     * while the rewrite is in progress.
     */
    void restore(const std::string &snap_name,
                 std::function<void(const lfs::FsckReport &)> done);

    /** Byte-compare the restored target tree against the source
     *  snapshot (both directions; functional, off the clock). */
    VerifyReport verify(const std::string &snap_name) const;

    /** The backup HIPPI channel (fault injection hooks here). */
    net::HippiChannel &channel() { return chan; }

    bool busy() const { return active; }

    /** @{ Counters. */
    std::uint64_t segmentsSent() const { return _segments; }
    std::uint64_t bytesSent() const { return _bytes; }
    std::uint64_t retries() const { return _retries; }
    std::uint64_t segmentsSkipped() const { return _skipped; }
    std::uint64_t fullBackups() const { return _full; }
    std::uint64_t incrementalBackups() const { return _incremental; }
    std::uint64_t restoresDone() const { return _restores; }
    /** @} */

    /** Register "backup.*" (plus the channel under
     *  "backup.hippi.*"). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "backup") const;

  private:
    void startStream(const lfs::SnapshotRecord &rec,
                     std::vector<std::uint64_t> segs,
                     std::function<void()> done);
    void issueNext();
    void issueSegment(std::uint64_t seg);
    void finishSegment(std::uint64_t seg, std::uint64_t off,
                       std::uint64_t bytes, sim::Tick began);
    void finishStream();
    /** linkDown-aware send with deterministic exponential backoff. */
    void sendWithRetry(std::uint64_t bytes, unsigned attempt,
                       std::function<void()> done);

    std::uint64_t segmentBytes() const;
    std::uint64_t segmentByteOffset(std::uint64_t seg) const;
    const lfs::SnapshotRecord &findSnap(const std::string &name) const;
    std::vector<std::uint8_t>
    synthesizeCheckpoint(const lfs::SnapshotRecord &rec) const;

    sim::EventQueue &eq;
    server::Raid2Server &src;
    server::Raid2Server &dst;
    Config cfg;
    net::HippiChannel chan;
    lfs::Superblock sb; // shared geometry (checked at construction)

    /** @{ One stream at a time. */
    bool active = false;
    std::vector<std::uint64_t> streamSegs;
    std::size_t nextIssue = 0;
    std::size_t completedSegs = 0;
    unsigned inFlight = 0;
    std::function<void()> streamDone;
    /** @} */

    /** Segments whose images are present on the target. */
    std::set<std::uint64_t> shipped;

    std::uint64_t _segments = 0;
    std::uint64_t _bytes = 0;
    std::uint64_t _retries = 0;
    std::uint64_t _skipped = 0;
    std::uint64_t _full = 0;
    std::uint64_t _incremental = 0;
    std::uint64_t _restores = 0;
};

} // namespace raid2::snap

#endif // RAID2_SNAP_BACKUP_ENGINE_HH
