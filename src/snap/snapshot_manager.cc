#include "snap/snapshot_manager.hh"

#include "sim/stats_registry.hh"
#include "sim/trace_sink.hh"

namespace raid2::snap {

SnapshotManager::SnapshotManager(server::Raid2Server &srv_) : srv(srv_)
{
}

void
SnapshotManager::traceOp(const char *op, const std::string &name,
                         sim::Tick began) const
{
    if (auto *tr = srv.eventQueue().tracer())
        tr->complete("snap", std::string(op) + ":" + name, began,
                     srv.eventQueue().now());
}

std::uint32_t
SnapshotManager::create(const std::string &name)
{
    const sim::Tick began = srv.eventQueue().now();
    const std::uint32_t id = srv.fs().takeSnapshot(name);
    ++_created;
    traceOp("create", name, began);
    return id;
}

void
SnapshotManager::createTimed(const std::string &name,
                             std::function<void(std::uint32_t)> done)
{
    const std::uint32_t id = create(name);
    // takeSnapshot() synced and checkpointed through the hooked
    // device; fsSync() pushes those mirrored writes through the timed
    // array so the snapshot's durability cost is on the clock.
    srv.fsSync([id, done = std::move(done)] {
        if (done)
            done(id);
    });
}

void
SnapshotManager::remove(const std::string &name)
{
    const sim::Tick began = srv.eventQueue().now();
    srv.fs().deleteSnapshot(name);
    ++_deleted;
    traceOp("delete", name, began);
}

const std::vector<lfs::SnapshotRecord> &
SnapshotManager::list() const
{
    return srv.fs().listSnapshots();
}

const lfs::SnapshotRecord *
SnapshotManager::find(const std::string &name) const
{
    return srv.fs().findSnapshot(name);
}

SnapshotView
SnapshotManager::open(const std::string &name) const
{
    const lfs::SnapshotRecord *rec = srv.fs().findSnapshot(name);
    if (rec == nullptr)
        throw lfs::LfsError(lfs::Errno::NoEntry,
                            "no snapshot named " + name);
    ++_views;
    // The raw device: view reads are functional and must not perturb
    // the timed plane.
    return SnapshotView(srv.rawFsDevice(), *rec);
}

std::uint64_t
SnapshotManager::pinnedSegments() const
{
    const lfs::Lfs &fs = srv.fs();
    std::uint64_t n = 0;
    for (std::uint64_t s = 0; s < fs.totalSegments(); ++s)
        n += fs.segmentPinned(s) ? 1 : 0;
    return n;
}

void
SnapshotManager::registerStats(sim::StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.addGauge(prefix + ".created", [this] {
        return static_cast<double>(_created);
    });
    reg.addGauge(prefix + ".deleted", [this] {
        return static_cast<double>(_deleted);
    });
    reg.addGauge(prefix + ".views", [this] {
        return static_cast<double>(_views);
    });
    reg.addGauge(prefix + ".count", [this] {
        return static_cast<double>(list().size());
    });
    reg.addGauge(prefix + ".pinned_segments", [this] {
        return static_cast<double>(pinnedSegments());
    });
}

} // namespace raid2::snap
