/**
 * @file
 * Snapshot lifecycle for a running RAID-II server.
 *
 * SnapshotManager fronts lfs::Lfs's snapshot table with server-level
 * concerns: per-operation trace spans, the "snap.*" stats tree, a
 * timed variant of create that drains the mirrored checkpoint writes
 * through the simulated array, and SnapshotView construction for
 * reading files as of a snapshot while the live file system keeps
 * moving.
 */

#ifndef RAID2_SNAP_SNAPSHOT_MANAGER_HH
#define RAID2_SNAP_SNAPSHOT_MANAGER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "server/raid2_server.hh"
#include "snap/snapshot_view.hh"

namespace raid2::snap {

/** Named instant snapshots of a server's file system. */
class SnapshotManager
{
  public:
    explicit SnapshotManager(server::Raid2Server &srv);

    /** Take a snapshot (functional; durable via checkpoint).
     *  @return the snapshot id. */
    std::uint32_t create(const std::string &name);

    /** Like create(), then drain the mirrored checkpoint/segment
     *  writes through the timed array before @p done fires. */
    void createTimed(const std::string &name,
                     std::function<void(std::uint32_t)> done);

    /** Delete a snapshot (durable before the pins release). */
    void remove(const std::string &name);

    const std::vector<lfs::SnapshotRecord> &list() const;
    const lfs::SnapshotRecord *find(const std::string &name) const;

    /** Open a read-only view of @p name.
     *  @throw lfs::LfsError(NoEntry) if it does not exist. */
    SnapshotView open(const std::string &name) const;

    /** Segments currently pinned by at least one snapshot. */
    std::uint64_t pinnedSegments() const;

    /** @{ Counters. */
    std::uint64_t created() const { return _created; }
    std::uint64_t deleted() const { return _deleted; }
    std::uint64_t viewsOpened() const { return _views; }
    /** @} */

    /** Register "snap.*": created/deleted/views/count/pinned_segments. */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "snap") const;

  private:
    void traceOp(const char *op, const std::string &name,
                 sim::Tick began) const;

    server::Raid2Server &srv;
    std::uint64_t _created = 0;
    std::uint64_t _deleted = 0;
    mutable std::uint64_t _views = 0;
};

} // namespace raid2::snap

#endif // RAID2_SNAP_SNAPSHOT_MANAGER_HH
