#include "snap/snapshot_view.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace raid2::snap {

using lfs::BlockAddr;
using lfs::DiskInode;
using lfs::Errno;
using lfs::FileType;
using lfs::ImapEntry;
using lfs::InodeNum;
using lfs::LfsError;

namespace {

constexpr std::size_t maxNameLen = 255;

/** On-media directory entry prefix (matches lfs/directory.cc). */
struct RawEntryHeader
{
    InodeNum ino;
    std::uint16_t nameLen;
};

std::vector<std::string>
splitPath(const std::string &path)
{
    if (path.empty() || path[0] != '/')
        throw LfsError(Errno::Invalid, "path must be absolute: " + path);
    std::vector<std::string> parts;
    std::size_t pos = 1;
    while (pos < path.size()) {
        const std::size_t next = path.find('/', pos);
        const std::size_t end =
            next == std::string::npos ? path.size() : next;
        if (end > pos)
            parts.push_back(path.substr(pos, end - pos));
        pos = end + 1;
    }
    return parts;
}

} // namespace

SnapshotView::SnapshotView(fs::BlockDevice &dev_,
                           const lfs::SnapshotRecord &rec_)
    : dev(dev_), rec(rec_)
{
    std::vector<std::uint8_t> block(dev.blockSize());
    dev.readBlock(0, {block.data(), block.size()});
    std::memcpy(&sb, block.data(), sizeof(sb));
    if (!sb.valid())
        sim::panic("SnapshotView: bad superblock");
    if (sb.blockSize != dev.blockSize())
        sim::panic("SnapshotView: block size mismatch");
    if (rec.imapChunkAddr.size() != sb.numImapChunks())
        sim::panic("SnapshotView: snapshot imap chunk count mismatch");

    // Load the captured inode map.  Every chunk address points into a
    // pinned segment, so these reads see exactly the bytes the
    // snapshot froze.
    imap.assign(sb.maxInodes, ImapEntry{});
    const std::uint32_t per = sb.imapEntriesPerChunk();
    for (std::uint32_t c = 0; c < rec.imapChunkAddr.size(); ++c) {
        if (rec.imapChunkAddr[c] == lfs::nullAddr)
            continue; // no inode in this chunk's range ever flushed
        readBlock(rec.imapChunkAddr[c], {block.data(), block.size()});
        const std::uint32_t first = c * per;
        const std::uint32_t n =
            std::min(per, sb.maxInodes - first);
        std::memcpy(imap.data() + first, block.data(),
                    std::size_t(n) * sizeof(ImapEntry));
    }
}

void
SnapshotView::readBlock(BlockAddr addr,
                        std::span<std::uint8_t> out) const
{
    if (addr == lfs::nullAddr || addr >= dev.numBlocks()) {
        throw LfsError(Errno::Invalid,
                       "snapshot block address out of range");
    }
    dev.readBlock(addr, out);
}

DiskInode
SnapshotView::getInode(InodeNum ino) const
{
    if (ino == lfs::nullIno || ino >= sb.maxInodes)
        throw LfsError(Errno::Invalid, "bad inode number");
    const ImapEntry &e = imap[ino];
    if (!e.allocated())
        throw LfsError(Errno::NoEntry, "inode not allocated in snapshot");

    std::vector<std::uint8_t> block(sb.blockSize);
    readBlock(e.blockAddr, {block.data(), block.size()});
    DiskInode inode;
    std::memcpy(&inode, block.data() + std::size_t(e.slot) * lfs::inodeBytes,
                sizeof(inode));
    if (inode.ino != ino) {
        throw LfsError(Errno::Invalid,
                       "snapshot inode block corrupt (want " +
                           std::to_string(ino) + " got " +
                           std::to_string(inode.ino) + ")");
    }
    return inode;
}

BlockAddr
SnapshotView::fileBlock(const DiskInode &inode, std::uint64_t fbno) const
{
    const std::uint32_t p = sb.blockSize / sizeof(BlockAddr);
    if (fbno < lfs::numDirect)
        return inode.direct[fbno];

    std::vector<std::uint8_t> block(sb.blockSize);
    if (fbno < lfs::numDirect + p) {
        if (inode.indirect == lfs::nullAddr)
            return lfs::nullAddr;
        readBlock(inode.indirect, {block.data(), block.size()});
        BlockAddr addr;
        std::memcpy(&addr,
                    block.data() + (fbno - lfs::numDirect) * sizeof(addr),
                    sizeof(addr));
        return addr;
    }
    if (inode.dindirect == lfs::nullAddr)
        return lfs::nullAddr;
    const std::uint64_t rel = fbno - lfs::numDirect - p;
    const std::uint64_t ci = rel / p;
    const std::uint64_t idx = rel % p;
    if (ci >= p)
        throw LfsError(Errno::FileTooBig, "file block number out of range");
    readBlock(inode.dindirect, {block.data(), block.size()});
    BlockAddr child;
    std::memcpy(&child, block.data() + ci * sizeof(child), sizeof(child));
    if (child == lfs::nullAddr)
        return lfs::nullAddr;
    readBlock(child, {block.data(), block.size()});
    BlockAddr addr;
    std::memcpy(&addr, block.data() + idx * sizeof(addr), sizeof(addr));
    return addr;
}

std::uint64_t
SnapshotView::readData(const DiskInode &inode, std::uint64_t off,
                       std::span<std::uint8_t> out) const
{
    if (off >= inode.size)
        return 0;
    const std::uint64_t n =
        std::min<std::uint64_t>(out.size(), inode.size - off);

    std::vector<std::uint8_t> block(sb.blockSize);
    std::uint64_t done = 0;
    while (done < n) {
        const std::uint64_t pos = off + done;
        const std::uint64_t fbno = pos / sb.blockSize;
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(pos % sb.blockSize);
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(sb.blockSize - in_block, n - done));

        const BlockAddr addr = fileBlock(inode, fbno);
        if (addr == lfs::nullAddr) {
            std::memset(out.data() + done, 0, chunk);
        } else {
            readBlock(addr, {block.data(), block.size()});
            std::memcpy(out.data() + done, block.data() + in_block,
                        chunk);
        }
        done += chunk;
    }
    return n;
}

std::vector<lfs::DirEntry>
SnapshotView::readDirEntries(const DiskInode &dir) const
{
    std::vector<std::uint8_t> raw(dir.size);
    if (dir.size > 0)
        readData(dir, 0, {raw.data(), raw.size()});

    std::vector<lfs::DirEntry> entries;
    std::size_t pos = 0;
    while (pos + sizeof(RawEntryHeader) <= raw.size()) {
        RawEntryHeader hdr;
        std::memcpy(&hdr, raw.data() + pos, sizeof(hdr));
        pos += sizeof(hdr);
        if (hdr.ino == lfs::nullIno && hdr.nameLen == 0)
            break; // padding tail
        if (hdr.nameLen == 0 || hdr.nameLen > maxNameLen ||
            pos + hdr.nameLen > raw.size()) {
            throw LfsError(Errno::Invalid,
                           "corrupt snapshot directory entry in inode " +
                               std::to_string(dir.ino));
        }
        entries.push_back(lfs::DirEntry{
            hdr.ino,
            std::string(reinterpret_cast<const char *>(raw.data() + pos),
                        hdr.nameLen)});
        pos += hdr.nameLen;
    }
    return entries;
}

InodeNum
SnapshotView::resolve(const std::string &path) const
{
    InodeNum cur = rec.root;
    for (const std::string &part : splitPath(path)) {
        const DiskInode dir = getInode(cur);
        if (dir.fileType() != FileType::Directory)
            throw LfsError(Errno::NotDirectory, path);
        InodeNum next = lfs::nullIno;
        for (const lfs::DirEntry &e : readDirEntries(dir)) {
            if (e.name == part) {
                next = e.ino;
                break;
            }
        }
        if (next == lfs::nullIno)
            throw LfsError(Errno::NoEntry, path);
        cur = next;
    }
    return cur;
}

InodeNum
SnapshotView::lookup(const std::string &path) const
{
    return resolve(path);
}

bool
SnapshotView::exists(const std::string &path) const
{
    try {
        resolve(path);
        return true;
    } catch (const LfsError &) {
        return false;
    }
}

lfs::Stat
SnapshotView::statIno(InodeNum ino) const
{
    const DiskInode inode = getInode(ino);
    lfs::Stat st;
    st.ino = ino;
    st.type = inode.fileType();
    st.size = inode.size;
    st.nlink = inode.nlink;
    return st;
}

lfs::Stat
SnapshotView::stat(const std::string &path) const
{
    return statIno(resolve(path));
}

std::vector<lfs::DirEntry>
SnapshotView::readdir(const std::string &path) const
{
    const DiskInode dir = getInode(resolve(path));
    if (dir.fileType() != FileType::Directory)
        throw LfsError(Errno::NotDirectory, path);
    return readDirEntries(dir);
}

std::uint64_t
SnapshotView::read(InodeNum ino, std::uint64_t off,
                   std::span<std::uint8_t> out) const
{
    const DiskInode inode = getInode(ino);
    if (inode.fileType() == FileType::Directory)
        throw LfsError(Errno::IsDirectory, "read of a directory");
    const std::uint64_t n = readData(inode, off, out);
    ++_reads;
    _readBytes += n;
    return n;
}

void
SnapshotView::walkFrom(const std::string &path, InodeNum ino,
                       const std::function<void(const std::string &,
                                                const lfs::Stat &)> &fn)
    const
{
    const lfs::Stat st = statIno(ino);
    fn(path.empty() ? "/" : path, st);
    if (st.type != FileType::Directory)
        return;
    for (const lfs::DirEntry &e : readDirEntries(getInode(ino)))
        walkFrom(path + "/" + e.name, e.ino, fn);
}

void
SnapshotView::walk(const std::function<void(const std::string &,
                                            const lfs::Stat &)> &fn) const
{
    walkFrom("", rec.root, fn);
}

} // namespace raid2::snap
