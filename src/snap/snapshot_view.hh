/**
 * @file
 * Read-only file system view at a snapshot.
 *
 * A SnapshotView interprets the on-media LFS structures rooted at a
 * SnapshotRecord's captured imap, independently of the live Lfs
 * object: the record's imap chunk addresses point into segments the
 * snapshot pins, so every block the view touches is immutable for the
 * snapshot's lifetime even while the live file system overwrites and
 * cleans around it.  This is what lets the BackupEngine stream and
 * verify a consistent image while the server keeps serving clients.
 */

#ifndef RAID2_SNAP_SNAPSHOT_VIEW_HH
#define RAID2_SNAP_SNAPSHOT_VIEW_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fs/block_device.hh"
#include "lfs/lfs.hh"

namespace raid2::snap {

/** Read-only traversal of one snapshot's file tree. */
class SnapshotView
{
  public:
    /**
     * @p rec is copied: the view stays valid across later snapshot
     * table operations (which may move the live records).
     */
    SnapshotView(fs::BlockDevice &dev, const lfs::SnapshotRecord &rec);

    const lfs::SnapshotRecord &record() const { return rec; }
    lfs::InodeNum rootIno() const { return rec.root; }

    /** @{ Namespace (absolute '/'-separated paths, like lfs::Lfs). */
    lfs::InodeNum lookup(const std::string &path) const;
    bool exists(const std::string &path) const;
    lfs::Stat stat(const std::string &path) const;
    lfs::Stat statIno(lfs::InodeNum ino) const;
    std::vector<lfs::DirEntry> readdir(const std::string &path) const;
    /** @} */

    /** Read [off, off+out.size()) of file @p ino; returns bytes read
     *  (clamped at the snapshot's file size; holes read as zero). */
    std::uint64_t read(lfs::InodeNum ino, std::uint64_t off,
                       std::span<std::uint8_t> out) const;

    /**
     * Depth-first walk of the whole tree: @p fn is called for every
     * node with its absolute path ("/" for the root) and stat.
     */
    void walk(const std::function<void(const std::string &,
                                       const lfs::Stat &)> &fn) const;

    /** @{ Access accounting (snap.* stats). */
    std::uint64_t reads() const { return _reads; }
    std::uint64_t readBytes() const { return _readBytes; }
    /** @} */

  private:
    lfs::DiskInode getInode(lfs::InodeNum ino) const;
    lfs::BlockAddr fileBlock(const lfs::DiskInode &inode,
                             std::uint64_t fbno) const;
    std::uint64_t readData(const lfs::DiskInode &inode, std::uint64_t off,
                           std::span<std::uint8_t> out) const;
    std::vector<lfs::DirEntry>
    readDirEntries(const lfs::DiskInode &dir) const;
    lfs::InodeNum resolve(const std::string &path) const;
    void readBlock(lfs::BlockAddr addr,
                   std::span<std::uint8_t> out) const;
    void walkFrom(const std::string &path, lfs::InodeNum ino,
                  const std::function<void(const std::string &,
                                           const lfs::Stat &)> &fn) const;

    fs::BlockDevice &dev;
    lfs::SnapshotRecord rec;
    lfs::Superblock sb;
    std::vector<lfs::ImapEntry> imap;

    mutable std::uint64_t _reads = 0;
    mutable std::uint64_t _readBytes = 0;
};

} // namespace raid2::snap

#endif // RAID2_SNAP_SNAPSHOT_VIEW_HH
