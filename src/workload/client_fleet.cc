#include "workload/client_fleet.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "net/client_model.hh"
#include "net/ultranet.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace raid2::workload {

namespace {

using server::RaidFileClient;
using server::RequestScheduler;
using server::Status;

/** One drawn operation; a retry reissues the identical spec. */
struct OpSpec
{
    bool read = true;
    std::uint64_t off = 0;
    std::uint64_t len = 0;
};

struct Session
{
    std::uint32_t index = 0;
    sim::Random rng{0};
    std::unique_ptr<net::ClientModel> nic;
    std::unique_ptr<RaidFileClient> lib;
    RaidFileClient::Handle handle = RaidFileClient::invalidHandle;
    std::uint64_t opsIssued = 0; // closed loop
};

/**
 * Whole-run state shared by the per-session closures.
 *
 * pendingWork counts everything that still owes the run a completion:
 * un-acknowledged opens, scheduled-but-unfired arrival/think events,
 * and in-flight ops (across all their retries).  The run is over when
 * it reaches zero, which makes the termination predicate immune to
 * momentary quiet spells while a think or arrival event is pending.
 */
struct Fleet
{
    sim::EventQueue &eq;
    const ClientFleet::Config &cfg;

    net::UltranetFabric ring;
    std::vector<Session> sessions;
    ClientFleet::Results results;

    sim::Tick issueDeadline = 0; // open loop: last admissible arrival
    std::uint64_t pendingWork = 0;

    Fleet(sim::EventQueue &eq_, const ClientFleet::Config &cfg_)
        : eq(eq_), cfg(cfg_), ring(eq_, "fleet.ring")
    {
    }

    ClientFleet::ClassBreakdown &
    slice(RequestScheduler::ServiceClass cls)
    {
        return cls == RequestScheduler::ServiceClass::FastPath
                   ? results.fast
                   : results.standard;
    }

    OpSpec
    drawOp(Session &s)
    {
        OpSpec op;
        op.read = s.rng.chance(cfg.readFraction);
        op.len = s.rng.chance(cfg.smallFraction) ? cfg.smallBytes
                                                 : cfg.bulkBytes;
        op.len = std::min(op.len, cfg.fileBytes);
        const std::uint64_t slots = cfg.fileBytes / op.len;
        op.off = s.rng.below(slots) * op.len;
        return op;
    }

    /** Jittered exponential backoff; returns the wait, advances the
     *  backoff for the next round. */
    sim::Tick
    backoffWait(Session &s, sim::Tick &backoff)
    {
        const sim::Tick wait = static_cast<sim::Tick>(
            static_cast<double>(backoff) * (0.5 + s.rng.unit()));
        backoff = std::min<sim::Tick>(backoff * 2,
                                      cfg.retryBackoffMax);
        return wait;
    }

    /**
     * Issue @p op; retries on Busy/Throttled until it completes or
     * exhausts maxRetries.  Fires at most once into the run's
     * bookkeeping, then (closed loop) chains the session's next op.
     */
    void
    issueOp(Session &s, const OpSpec &op, sim::Tick arrival,
            unsigned attempt, unsigned corrupt_attempt,
            sim::Tick backoff)
    {
        auto completion = [this, &s, op, arrival, attempt,
                           corrupt_attempt,
                           backoff](const RaidFileClient::Result &r) {
            if (r.status == Status::Busy ||
                r.status == Status::Throttled) {
                slice(r.cls).rejects++;
                if (attempt + 1 >= cfg.maxRetries) {
                    results.dropped++;
                    finishOp(s);
                    return;
                }
                results.retries++;
                sim::Tick next = backoff;
                const sim::Tick wait = backoffWait(s, next);
                eq.scheduleIn(wait, [this, &s, op, arrival, attempt,
                                     corrupt_attempt, next] {
                    issueOp(s, op, arrival, attempt + 1,
                            corrupt_attempt, next);
                });
                return;
            }
            if (r.status == Status::DataCorrupt) {
                // The server refused to ship wrong bytes.  Retry a
                // bounded number of times (a scrub or rewrite may
                // have healed the block), then give up honestly.
                if (corrupt_attempt + 1 >= cfg.corruptRetryMax) {
                    results.corruptOps++;
                    finishOp(s);
                    return;
                }
                results.corruptRetries++;
                sim::Tick next = backoff;
                const sim::Tick wait = backoffWait(s, next);
                eq.scheduleIn(wait, [this, &s, op, arrival, attempt,
                                     corrupt_attempt, next] {
                    issueOp(s, op, arrival, attempt,
                            corrupt_attempt + 1, next);
                });
                return;
            }
            if (r.status != Status::Ok)
                sim::fatal("fleet op failed: %s",
                           server::statusName(r.status));
            auto &cb = slice(r.cls);
            cb.ops++;
            cb.bytes += r.bytes;
            cb.latencyMs.push_back(sim::ticksToMs(eq.now() - arrival));
            results.ops++;
            results.bytes += r.bytes;
            finishOp(s);
        };
        if (op.read)
            s.lib->raidPRead(s.handle, op.off, op.len,
                             std::move(completion));
        else
            s.lib->raidPWrite(s.handle, op.off, op.len,
                              std::move(completion));
    }

    void
    finishOp(Session &s)
    {
        --pendingWork;
        if (cfg.mode == ClientFleet::Mode::Closed)
            scheduleThink(s);
    }

    /** @{ Closed loop: one outstanding op per session. */
    void
    closedNext(Session &s)
    {
        if (s.opsIssued >= cfg.opsPerSession)
            return;
        ++s.opsIssued;
        ++pendingWork;
        issueOp(s, drawOp(s), eq.now(), 0, 0, cfg.retryBackoff);
    }

    void
    scheduleThink(Session &s)
    {
        if (s.opsIssued >= cfg.opsPerSession)
            return;
        if (!cfg.thinkTime) {
            closedNext(s);
            return;
        }
        ++pendingWork;
        eq.scheduleIn(cfg.thinkTime, [this, &s] {
            --pendingWork;
            closedNext(s);
        });
    }
    /** @} */

    /** @{ Open loop: Poisson arrivals, independent of completions. */
    void
    scheduleArrival(Session &s)
    {
        if (cfg.offeredOpsPerSec <= 0.0)
            return;
        const double mean_gap_s =
            static_cast<double>(cfg.sessions) / cfg.offeredOpsPerSec;
        const sim::Tick at =
            eq.now() + sim::secToTicks(s.rng.exponential(mean_gap_s));
        if (at > issueDeadline)
            return;
        ++pendingWork;
        eq.schedule(at, [this, &s] {
            // The arrival slot becomes the op slot.
            issueOp(s, drawOp(s), eq.now(), 0, 0, cfg.retryBackoff);
            scheduleArrival(s);
        });
    }
    /** @} */

    void
    openSession(Session &s, sim::Tick backoff)
    {
        const std::string path =
            "/fleet" + std::to_string(s.index % cfg.fileCount);
        s.lib->raidOpen(
            path, /*create=*/false,
            [this, &s, backoff](const RaidFileClient::Result &r) {
                if (r.status == Status::Busy ||
                    r.status == Status::Throttled) {
                    results.retries++;
                    sim::Tick next = backoff;
                    const sim::Tick wait = backoffWait(s, next);
                    eq.scheduleIn(wait, [this, &s, next] {
                        openSession(s, next);
                    });
                    return;
                }
                if (r.status != Status::Ok)
                    sim::fatal("fleet open failed: %s",
                               server::statusName(r.status));
                s.handle = r.handle;
                --pendingWork; // the open
                if (cfg.mode == ClientFleet::Mode::Closed)
                    closedNext(s);
                else
                    scheduleArrival(s);
            });
    }
};

} // namespace

ClientFleet::Results
ClientFleet::run(sim::EventQueue &eq, server::Raid2Server &srv,
                 server::RequestScheduler &sched, const Config &cfg)
{
    if (cfg.sessions == 0 || cfg.fileCount == 0)
        sim::fatal("ClientFleet: sessions and fileCount must be > 0");

    auto fleet = std::make_unique<Fleet>(eq, cfg);

    // File population, functional-plane only (setup, not measured).
    {
        std::vector<std::uint8_t> buf(cfg.fileBytes);
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(i * 13 + 7);
        for (unsigned f = 0; f < cfg.fileCount; ++f) {
            const std::string path = "/fleet" + std::to_string(f);
            const lfs::InodeNum ino = srv.fs().exists(path)
                                          ? srv.fs().lookup(path)
                                          : srv.fs().create(path);
            srv.fs().write(ino, 0, {buf.data(), buf.size()});
        }
        srv.fs().checkpoint();
        // Drain the timed plane's segment-flush backlog from the
        // population before the measured run begins — otherwise the
        // fleet's first write queues it all inside the window and
        // every early op measures the setup, not the workload.
        bool synced = false;
        srv.fsSync([&synced] { synced = true; });
        eq.runUntilDone([&synced] { return synced; });
    }

    const sim::Tick start = eq.now();
    fleet->issueDeadline = start + cfg.duration;
    fleet->sessions.resize(cfg.sessions);
    for (unsigned i = 0; i < cfg.sessions; ++i) {
        Session &s = fleet->sessions[i];
        s.index = i;
        s.rng = sim::Random(cfg.seed * 0x9e3779b97f4a7c15ull + i);
        s.nic = std::make_unique<net::ClientModel>(
            eq, "fleet.c" + std::to_string(i));
        auto ccfg = cfg.clientCfg;
        ccfg.scheduler = &sched;
        s.lib = std::make_unique<RaidFileClient>(eq, srv, *s.nic,
                                                 fleet->ring, ccfg);
        ++fleet->pendingWork; // the open
        eq.schedule(start + cfg.startStagger * i,
                    [f = fleet.get(), &s] {
                        f->openSession(s, f->cfg.retryBackoff);
                    });
    }

    eq.runUntilDone([f = fleet.get()] { return f->pendingWork == 0; });
    if (fleet->pendingWork != 0)
        sim::fatal("ClientFleet: event queue drained with %llu units "
                   "of work outstanding",
                   static_cast<unsigned long long>(fleet->pendingWork));

    fleet->results.elapsed = eq.now() - start;
    return std::move(fleet->results);
}

} // namespace raid2::workload
