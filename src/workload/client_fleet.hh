/**
 * @file
 * A fleet of RaidFileClient sessions driving one server front end.
 *
 * The paper's server exists to be shared: Fig 1 hangs supercomputers,
 * client workstations, and an Ethernet full of NFS clients off one
 * RAID-II.  This runner spawns N client sessions (N >= 256 is the
 * bench default), each with its own NIC model, scheduler session, and
 * seeded workload mix, and drives them in either of the two classic
 * load-generation shapes:
 *
 *  - closed loop: each session keeps one request outstanding and
 *    thinks between requests — throughput is self-limiting;
 *  - open loop: arrivals are a Poisson process at a configured offered
 *    rate, independent of completions — the shape used to sweep a
 *    server from underload through saturation (Gug's iSCSI disk-server
 *    comparison and Dagenais's Linux-RAID study both plot this curve).
 *
 * Admission rejections (Status::Busy / Status::Throttled) are retried
 * with jittered exponential backoff; latency is measured from first
 * issue to final completion, so queueing *and* retry delay show up in
 * the tail percentiles.  Runs are bit-reproducible from (config,
 * seed): every random draw comes from a per-session xoshiro stream.
 */

#ifndef RAID2_WORKLOAD_CLIENT_FLEET_HH
#define RAID2_WORKLOAD_CLIENT_FLEET_HH

#include <cstdint>
#include <vector>

#include "server/file_protocol.hh"
#include "server/request_scheduler.hh"
#include "sim/event_queue.hh"

namespace raid2::workload {

/** N-session client fleet over one scheduler. */
class ClientFleet
{
  public:
    enum class Mode { Closed, Open };

    struct Config
    {
        unsigned sessions = 256;
        Mode mode = Mode::Closed;

        /** @{ Shared file population, pre-created before the run.
         *  Session i works against file (i % fileCount). */
        unsigned fileCount = 32;
        std::uint64_t fileBytes = 2ull * 1024 * 1024;
        /** @} */

        /** @{ Per-op mix, drawn per arrival from the session's RNG:
         *  read with readFraction, small with smallFraction; small ops
         *  ride the Ethernet standard path, bulk ops the HIPPI fast
         *  path (the scheduler's §2.1.1 split). */
        double readFraction = 0.8;
        double smallFraction = 0.25;
        std::uint64_t bulkBytes = 512 * 1024;
        std::uint64_t smallBytes = 8 * 1024;
        /** @} */

        /** @{ Closed loop. */
        std::uint64_t opsPerSession = 32;
        sim::Tick thinkTime = 0;
        /** @} */

        /** @{ Open loop: aggregate Poisson arrival rate, sustained for
         *  @c duration after the fleet's sessions are open. */
        double offeredOpsPerSec = 100.0;
        sim::Tick duration = sim::secToTicks(10.0);
        /** @} */

        /** @{ Busy/Throttled retry: jittered exponential backoff. */
        sim::Tick retryBackoff = sim::msToTicks(1.0);
        sim::Tick retryBackoffMax = sim::msToTicks(50.0);
        unsigned maxRetries = 10000;
        /** @} */

        /** DataCorrupt retry bound: a read that hit unrepairable
         *  corruption is retried with the same backoff (a scrub or a
         *  rewrite may have healed the block since), but only this
         *  many times — the op then completes as corrupt instead of
         *  spinning forever on a permanently poisoned block. */
        unsigned corruptRetryMax = 4;

        /** Session i opens its file at i * startStagger. */
        sim::Tick startStagger = sim::usToTicks(100);

        std::uint64_t seed = 0x524149;

        /** Per-client library settings; the scheduler field is
         *  overridden with the scheduler passed to run(). */
        server::RaidFileClient::Config clientCfg;
    };

    /** Per-service-class slice of the results. */
    struct ClassBreakdown
    {
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        /** Busy/Throttled completions that led to a retry. */
        std::uint64_t rejects = 0;
        /** Final first-issue-to-completion latency of each op. */
        std::vector<double> latencyMs;
    };

    struct Results
    {
        sim::Tick elapsed = 0;
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        std::uint64_t retries = 0;
        /** Ops abandoned after maxRetries (should stay 0). */
        std::uint64_t dropped = 0;
        /** DataCorrupt completions that led to a retry. */
        std::uint64_t corruptRetries = 0;
        /** Reads still DataCorrupt after corruptRetryMax attempts;
         *  the server refused to return wrong bytes and the client
         *  gave up.  Excluded from @c ops. */
        std::uint64_t corruptOps = 0;
        ClassBreakdown fast;
        ClassBreakdown standard;

        double
        goodputMBs() const
        {
            return sim::mbPerSec(bytes, elapsed);
        }
        double
        opsPerSec() const
        {
            return elapsed ? static_cast<double>(ops) /
                                 sim::ticksToSec(elapsed)
                           : 0.0;
        }
    };

    /**
     * Create the file population, open one handle per session through
     * the scheduler (exercising metadata batching), drive the
     * configured load shape to completion, and return the aggregated
     * results.  Runs the event queue.
     */
    static Results run(sim::EventQueue &eq, server::Raid2Server &srv,
                       server::RequestScheduler &sched,
                       const Config &cfg);
};

} // namespace raid2::workload

#endif // RAID2_WORKLOAD_CLIENT_FLEET_HH
