#include "workload/generators.hh"

#include <memory>

#include "sim/logging.hh"

namespace raid2::workload {

Results
ClosedLoopRunner::run(sim::EventQueue &eq, const Config &cfg,
                      const Op &op)
{
    if (cfg.regionBytes == 0)
        sim::fatal("ClosedLoopRunner: regionBytes required");
    if (cfg.requestBytes == 0 || cfg.requestBytes > cfg.regionBytes)
        sim::fatal("ClosedLoopRunner: bad request size");

    struct State
    {
        Config cfg;
        const Op &op;
        sim::EventQueue &eq;
        sim::Random rng;
        std::uint64_t issued = 0;
        std::uint64_t finished = 0;
        std::uint64_t measuredOps = 0;
        std::uint64_t measuredBytes = 0;
        sim::Tick measureStart = 0;
        sim::Tick lastFinish = 0;
        sim::Distribution latencyMs;
        std::vector<std::uint64_t> cursor; // per-process, sequential

        State(const Config &c, const Op &o, sim::EventQueue &q)
            : cfg(c), op(o), eq(q), rng(c.seed)
        {
        }
    };
    State st(cfg, op, eq);

    const std::uint64_t align =
        cfg.alignBytes ? cfg.alignBytes : cfg.requestBytes;
    const std::uint64_t slots =
        (cfg.regionBytes - cfg.requestBytes) / align + 1;
    const std::uint64_t total = cfg.totalOps + cfg.warmupOps;

    // Per-process sequential partitions.
    st.cursor.resize(cfg.processes);
    for (unsigned p = 0; p < cfg.processes; ++p)
        st.cursor[p] = (cfg.regionBytes / cfg.processes) * p;

    // Issue loop, one outstanding request per process.
    std::function<void(unsigned)> next = [&](unsigned p) {
        if (st.issued >= total)
            return;
        ++st.issued;

        std::uint64_t off;
        if (st.cfg.sequential) {
            const unsigned slot = st.cfg.sharedCursor ? 0 : p;
            off = st.cursor[slot];
            st.cursor[slot] += st.cfg.requestBytes;
            if (st.cursor[slot] + st.cfg.requestBytes >
                st.cfg.regionBytes) {
                st.cursor[slot] = 0;
            }
        } else {
            off = st.rng.below(slots) * align;
        }

        const sim::Tick start = st.eq.now();
        st.op(off, st.cfg.requestBytes, [&st, p, start, &next] {
            ++st.finished;
            const bool measured = st.finished > st.cfg.warmupOps;
            if (st.finished == st.cfg.warmupOps + 1)
                st.measureStart = start;
            if (measured) {
                ++st.measuredOps;
                st.measuredBytes += st.cfg.requestBytes;
                st.latencyMs.sample(
                    sim::ticksToMs(st.eq.now() - start));
                st.lastFinish = st.eq.now();
            }
            next(p);
        });
    };

    const sim::Tick t0 = eq.now();
    for (unsigned p = 0; p < cfg.processes && st.issued < total; ++p)
        next(p);
    eq.runUntilDone([&st, total] { return st.finished >= total; });

    if (st.finished < total)
        sim::fatal("ClosedLoopRunner: queue drained with %llu/%llu ops",
                   (unsigned long long)st.finished,
                   (unsigned long long)total);

    Results res;
    res.ops = st.measuredOps;
    res.bytes = st.measuredBytes;
    const sim::Tick begin = cfg.warmupOps ? st.measureStart : t0;
    res.elapsed = st.lastFinish > begin ? st.lastFinish - begin : 0;
    res.latencyMs = st.latencyMs;
    return res;
}

StreamRunner::StreamResults
StreamRunner::run(sim::EventQueue &eq, const Config &cfg, const Op &op)
{
    struct Shared
    {
        StreamResults res;
        std::uint64_t outstanding = 0;
        std::uint64_t totalFrames = 0;
    };
    auto sh = std::make_shared<Shared>();
    sh->totalFrames =
        std::uint64_t(cfg.streams) * cfg.framesPerStream;

    const sim::Tick t0 = eq.now();
    for (unsigned s = 0; s < cfg.streams; ++s) {
        for (std::uint64_t f = 0; f < cfg.framesPerStream; ++f) {
            const sim::Tick when = t0 + f * cfg.framePeriod;
            const std::uint64_t off =
                std::uint64_t(s) * cfg.streamStrideBytes +
                f * cfg.frameBytes;
            eq.schedule(when, [&eq, &op, &cfg, sh, off, when] {
                ++sh->outstanding;
                op(off, cfg.frameBytes, [&eq, &cfg, sh, when] {
                    --sh->outstanding;
                    ++sh->res.frames;
                    const sim::Tick lat = eq.now() - when;
                    sh->res.frameLatencyMs.sample(sim::ticksToMs(lat));
                    if (lat > cfg.framePeriod)
                        ++sh->res.deadlineMisses;
                });
            });
        }
    }
    eq.runUntilDone([sh] {
        return sh->res.frames >= sh->totalFrames;
    });
    sh->res.elapsed = eq.now() - t0;
    return sh->res;
}

} // namespace raid2::workload
