/**
 * @file
 * Workload generators for benches and examples.
 *
 * Two shapes cover the paper's experiments: closed-loop fixed-size
 * request streams ("a single process issued requests to the disk
 * array", "a separate process issuing random I/O operations to each
 * disk", §2.3/§3.4) and open-loop periodic streams (the video
 * playback service RAID-II was slated for, §5.1).
 */

#ifndef RAID2_WORKLOAD_GENERATORS_HH
#define RAID2_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace raid2::workload {

/** An asynchronous byte-range operation under test. */
using Op = std::function<void(std::uint64_t off, std::uint64_t len,
                              std::function<void()> done)>;

/** Aggregate results of a run. */
struct Results
{
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    sim::Tick elapsed = 0;
    sim::Distribution latencyMs;

    double
    throughputMBs() const
    {
        return sim::mbPerSec(bytes, elapsed);
    }
    double
    opsPerSec() const
    {
        return elapsed ? static_cast<double>(ops) /
                             sim::ticksToSec(elapsed)
                       : 0.0;
    }
};

/**
 * N logical processes, each keeping exactly one request outstanding.
 * Offsets are uniform-random aligned multiples of @c alignBytes within
 * the region, or per-process sequential partitions.
 */
class ClosedLoopRunner
{
  public:
    struct Config
    {
        unsigned processes = 1;
        std::uint64_t requestBytes = 4096;
        std::uint64_t regionBytes = 0;  // required
        std::uint64_t alignBytes = 0;   // 0 -> align to requestBytes
        bool sequential = false;
        /** Sequential mode: all processes pull from one shared cursor
         *  (back-to-back async requests) instead of per-process
         *  partitions. */
        bool sharedCursor = false;
        std::uint64_t totalOps = 100;   // across all processes
        std::uint64_t seed = 0x524149;
        /** Optional settling ops excluded from the statistics. */
        std::uint64_t warmupOps = 0;
    };

    /** Drive @p op until completion; runs the event queue. */
    static Results run(sim::EventQueue &eq, const Config &cfg,
                       const Op &op);
};

/** Open-loop periodic reader streams (video playback). */
class StreamRunner
{
  public:
    struct Config
    {
        unsigned streams = 4;
        std::uint64_t frameBytes = 256 * 1024;
        sim::Tick framePeriod = sim::msToTicks(33.3); // ~30 fps
        std::uint64_t framesPerStream = 100;
        /** Byte distance between consecutive streams' regions. */
        std::uint64_t streamStrideBytes = 64ull * 1024 * 1024;
    };

    struct StreamResults
    {
        std::uint64_t frames = 0;
        std::uint64_t deadlineMisses = 0;
        sim::Distribution frameLatencyMs;
        sim::Tick elapsed = 0;

        double
        missRate() const
        {
            return frames ? static_cast<double>(deadlineMisses) /
                                static_cast<double>(frames)
                          : 0.0;
        }
    };

    static StreamResults run(sim::EventQueue &eq, const Config &cfg,
                             const Op &op);
};

} // namespace raid2::workload

#endif // RAID2_WORKLOAD_GENERATORS_HH
