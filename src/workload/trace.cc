#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace raid2::workload {

namespace {

char
kindChar(TraceRecord::Kind k)
{
    switch (k) {
      case TraceRecord::Kind::Read: return 'R';
      case TraceRecord::Kind::Write: return 'W';
      case TraceRecord::Kind::Create: return 'C';
      case TraceRecord::Kind::Unlink: return 'U';
    }
    return '?';
}

TraceRecord::Kind
charKind(char c)
{
    switch (c) {
      case 'R': return TraceRecord::Kind::Read;
      case 'W': return TraceRecord::Kind::Write;
      case 'C': return TraceRecord::Kind::Create;
      case 'U': return TraceRecord::Kind::Unlink;
      default:
        throw std::runtime_error(std::string("bad trace op '") + c +
                                 "'");
    }
}

} // namespace

Trace
Trace::parse(std::istream &in)
{
    Trace t;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        double ms;
        char op;
        if (!(ls >> ms >> op))
            continue; // blank/comment line
        TraceRecord rec;
        rec.when = sim::msToTicks(ms);
        rec.kind = charKind(op);
        if (!(ls >> rec.path) || rec.path.empty() || rec.path[0] != '/')
            throw std::runtime_error(
                "trace line " + std::to_string(lineno) +
                ": missing or relative path");
        if (rec.kind == TraceRecord::Kind::Read ||
            rec.kind == TraceRecord::Kind::Write) {
            if (!(ls >> rec.offset >> rec.bytes))
                throw std::runtime_error(
                    "trace line " + std::to_string(lineno) +
                    ": R/W need offset and bytes");
        }
        if (!t.recs.empty() && rec.when < t.recs.back().when)
            throw std::runtime_error(
                "trace line " + std::to_string(lineno) +
                ": timestamps must be non-decreasing");
        t.recs.push_back(std::move(rec));
    }
    return t;
}

void
Trace::save(std::ostream &out) const
{
    out << "# raid2 trace: <ms> R|W|C|U <path> [<offset> <bytes>]\n";
    for (const auto &r : recs) {
        out << sim::ticksToMs(r.when) << ' ' << kindChar(r.kind) << ' '
            << r.path;
        if (r.kind == TraceRecord::Kind::Read ||
            r.kind == TraceRecord::Kind::Write) {
            out << ' ' << r.offset << ' ' << r.bytes;
        }
        out << '\n';
    }
}

void
Trace::add(TraceRecord rec)
{
    if (!recs.empty() && rec.when < recs.back().when)
        sim::panic("Trace::add: out-of-order record");
    recs.push_back(std::move(rec));
}

std::uint64_t
Trace::totalBytes() const
{
    std::uint64_t n = 0;
    for (const auto &r : recs) {
        if (r.kind == TraceRecord::Kind::Read ||
            r.kind == TraceRecord::Kind::Write) {
            n += r.bytes;
        }
    }
    return n;
}

Trace
Trace::synthesizeOffice(unsigned clients, sim::Tick duration,
                        std::uint64_t seed)
{
    sim::Random rng(seed);
    Trace t;

    struct File
    {
        std::string path;
        std::uint64_t size = 0;
        bool created = false;
    };
    // Per client: a pool of small files and a couple of big ones.
    std::vector<std::vector<File>> small(clients), big(clients);
    for (unsigned c = 0; c < clients; ++c) {
        for (int i = 0; i < 12; ++i) {
            small[c].push_back(
                {"/u" + std::to_string(c) + "/f" + std::to_string(i),
                 0, false});
        }
        for (int i = 0; i < 2; ++i) {
            big[c].push_back(
                {"/u" + std::to_string(c) + "/big" + std::to_string(i),
                 0, false});
        }
    }

    // Each client emits roughly one operation every 200 ms, with the
    // classic office skew: mostly whole-file reads of small files,
    // bursty small writes, occasional large sequential reads.
    std::vector<sim::Tick> next(clients);
    for (unsigned c = 0; c < clients; ++c)
        next[c] = sim::msToTicks(rng.unit() * 200.0);

    std::vector<TraceRecord> out;
    auto emit = [&out](sim::Tick when, TraceRecord::Kind k,
                       const std::string &path, std::uint64_t off,
                       std::uint64_t bytes) {
        out.push_back(TraceRecord{when, k, path, off, bytes});
    };

    bool work_left = true;
    while (work_left) {
        // Pick the client with the earliest next-op time.
        unsigned c = 0;
        for (unsigned i = 1; i < clients; ++i) {
            if (next[i] < next[c])
                c = i;
        }
        if (next[c] > duration) {
            work_left = false;
            break;
        }
        const sim::Tick now = next[c];
        next[c] += sim::msToTicks(50.0 + rng.exponential(150.0));

        const double dice = rng.unit();
        if (dice < 0.55) {
            // Whole read of a small file (if it exists yet).
            File &f = small[c][rng.below(small[c].size())];
            if (f.created && f.size > 0)
                emit(now, TraceRecord::Kind::Read, f.path, 0, f.size);
        } else if (dice < 0.80) {
            // Burst of small writes to one file (create on demand).
            File &f = small[c][rng.below(small[c].size())];
            if (!f.created) {
                emit(now, TraceRecord::Kind::Create, f.path, 0, 0);
                f.created = true;
            }
            const unsigned burst = 1 + static_cast<unsigned>(
                rng.below(4));
            for (unsigned b = 0; b < burst; ++b) {
                const std::uint64_t len = 512 + rng.below(16 * 1024);
                emit(now + b * sim::msToTicks(2.0),
                     TraceRecord::Kind::Write, f.path, f.size, len);
                f.size += len;
            }
        } else if (dice < 0.92) {
            // Sequential chunk of a big file.
            File &f = big[c][rng.below(big[c].size())];
            if (!f.created) {
                emit(now, TraceRecord::Kind::Create, f.path, 0, 0);
                f.created = true;
            }
            if ((rng.chance(0.5) && f.size < 8 * 1024 * 1024) ||
                f.size == 0) {
                // Grow the file up to a cap, then cycle to overwrites
                // so a long trace's live set stays bounded.
                const std::uint64_t len = 256 * 1024;
                emit(now, TraceRecord::Kind::Write, f.path, f.size,
                     len);
                f.size += len;
            } else if (rng.chance(0.5)) {
                const std::uint64_t len = 256 * 1024;
                const std::uint64_t off =
                    rng.below(f.size / len) * len;
                emit(now, TraceRecord::Kind::Write, f.path, off, len);
            } else {
                const std::uint64_t off =
                    rng.below(f.size / 65536 + 1) * 65536;
                emit(now, TraceRecord::Kind::Read, f.path,
                     std::min(off, f.size - 1),
                     std::min<std::uint64_t>(256 * 1024,
                                             f.size -
                                                 std::min(off,
                                                          f.size - 1)));
            }
        } else {
            // Delete + recreate churn.
            File &f = small[c][rng.below(small[c].size())];
            if (f.created) {
                emit(now, TraceRecord::Kind::Unlink, f.path, 0, 0);
                f.created = false;
                f.size = 0;
            }
        }
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.when < b.when;
                     });
    for (auto &r : out)
        t.add(std::move(r));
    return t;
}

TraceReplayer::Results
TraceReplayer::replay(sim::EventQueue &eq, server::Raid2Server &server,
                      const Trace &trace, const Config &cfg)
{
    struct State
    {
        Results res;
        std::size_t issued = 0;
        std::size_t finished = 0;
        std::map<std::string, lfs::InodeNum> files;
    };
    auto st = std::make_shared<State>();

    // Pre-pass: the namespace directories traces reference.
    for (const auto &r : trace.records()) {
        const auto slash = r.path.rfind('/');
        if (slash != 0 && slash != std::string::npos) {
            const std::string dir = r.path.substr(0, slash);
            if (!server.fs().exists(dir))
                server.fs().mkdir(dir);
        }
    }

    auto ino_of = [&server, st](const std::string &path) {
        auto it = st->files.find(path);
        if (it != st->files.end())
            return it->second;
        const auto ino = server.fs().exists(path)
                             ? server.fs().lookup(path)
                             : server.fs().create(path);
        st->files[path] = ino;
        return ino;
    };

    const sim::Tick t0 = eq.now();
    auto run_one = [&eq, &server, st, ino_of,
                    cfg](const TraceRecord &r,
                         std::function<void()> done) {
        const sim::Tick start = eq.now();
        auto finish = [&eq, st, start, done = std::move(done)] {
            ++st->finished;
            st->res.latencyMs.sample(sim::ticksToMs(eq.now() - start));
            if (done)
                done();
        };
        switch (r.kind) {
          case TraceRecord::Kind::Create:
            ino_of(r.path);
            ++st->res.creates;
            eq.scheduleIn(0, finish);
            break;
          case TraceRecord::Kind::Unlink:
            if (server.fs().exists(r.path)) {
                server.fs().unlink(r.path);
                st->files.erase(r.path);
            }
            ++st->res.unlinks;
            eq.scheduleIn(0, finish);
            break;
          case TraceRecord::Kind::Write:
            st->res.writeBytes += r.bytes;
            server.fileWrite(ino_of(r.path), r.offset, r.bytes, finish);
            break;
          case TraceRecord::Kind::Read: {
            st->res.readBytes += r.bytes;
            const auto ino = ino_of(r.path);
            const auto size = server.fs().statIno(ino).size;
            const auto len = r.offset >= size
                                 ? 0
                                 : std::min(r.bytes, size - r.offset);
            if (len == 0) {
                eq.scheduleIn(0, finish);
                break;
            }
            if (cfg.standardMode)
                server.standardRead(ino, r.offset, len, finish);
            else
                server.fileRead(ino, r.offset, len, finish);
            break;
          }
        }
    };

    st->res.ops = trace.size();
    if (cfg.paced) {
        for (const auto &r : trace.records()) {
            ++st->issued;
            eq.schedule(t0 + r.when,
                        [&run_one, &r] { run_one(r, nullptr); });
        }
        eq.runUntilDone([st, total = trace.size()] {
            return st->finished >= total;
        });
    } else {
        // Closed loop: one outstanding at a time.
        std::function<void(std::size_t)> step = [&](std::size_t i) {
            if (i >= trace.size())
                return;
            run_one(trace.records()[i],
                    [&step, i] { step(i + 1); });
        };
        step(0);
        eq.runUntilDone([st, total = trace.size()] {
            return st->finished >= total;
        });
    }
    st->res.elapsed = eq.now() - t0;
    return st->res;
}

} // namespace raid2::workload
