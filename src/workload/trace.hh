/**
 * @file
 * I/O trace capture, synthesis and replay.
 *
 * §4.1 positions RAID-II against NFS-style workstation file service:
 * "a large number of clients" issuing small, latency-sensitive
 * operations.  A Trace is a time-stamped list of file operations in a
 * simple text format; it can be parsed from a file, saved back, or
 * synthesized (a Sprite-flavored office/engineering mix: mostly whole
 * reads of small files, bursts of writes, a few large sequential
 * monsters — the distribution shapes reported in the Sprite and BSD
 * trace studies of the era).  TraceReplayer drives a Raid2Server with
 * one, either open-loop at the recorded timestamps or closed-loop as
 * fast as the server allows.
 */

#ifndef RAID2_WORKLOAD_TRACE_HH
#define RAID2_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "server/raid2_server.hh"
#include "sim/stats.hh"

namespace raid2::workload {

/** One traced file operation. */
struct TraceRecord
{
    enum class Kind { Read, Write, Create, Unlink };

    sim::Tick when = 0; // offset from trace start
    Kind kind = Kind::Read;
    std::string path;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
};

/** A time-ordered operation trace. */
class Trace
{
  public:
    /**
     * Text format, one record per line:
     *   <ms> R|W|C|U <path> [<offset> <bytes>]
     * '#' starts a comment.  Throws std::runtime_error on bad input.
     */
    static Trace parse(std::istream &in);
    void save(std::ostream &out) const;

    void add(TraceRecord rec);
    const std::vector<TraceRecord> &records() const { return recs; }
    std::size_t size() const { return recs.size(); }
    bool empty() const { return recs.empty(); }

    /** Total bytes moved by reads/writes. */
    std::uint64_t totalBytes() const;

    /** Duration (timestamp of the last record). */
    sim::Tick duration() const
    {
        return recs.empty() ? 0 : recs.back().when;
    }

    /**
     * Synthesize an office/engineering client mix: @p clients emitting
     * operations over @p duration.  ~80% of operations touch small
     * files (whole-file reads dominate), writes arrive in bursts, and
     * each client owns a handful of large files it reads sequentially.
     * Deterministic in @p seed.
     */
    static Trace synthesizeOffice(unsigned clients, sim::Tick duration,
                                  std::uint64_t seed);

  private:
    std::vector<TraceRecord> recs;
};

/** Drives a Raid2Server with a Trace. */
class TraceReplayer
{
  public:
    struct Config
    {
        /** true: issue at recorded timestamps (open loop); false:
         *  back-to-back (closed loop, one outstanding). */
        bool paced = true;
        /** Serve reads over the Ethernet/standard path instead of the
         *  high-bandwidth path. */
        bool standardMode = false;
    };

    struct Results
    {
        std::uint64_t ops = 0;
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::uint64_t creates = 0;
        std::uint64_t unlinks = 0;
        sim::Tick elapsed = 0;
        sim::Distribution latencyMs;

        double
        opsPerSec() const
        {
            return elapsed ? static_cast<double>(ops) /
                                 sim::ticksToSec(elapsed)
                           : 0.0;
        }
    };

    static Results replay(sim::EventQueue &eq,
                          server::Raid2Server &server,
                          const Trace &trace, const Config &cfg);
};

} // namespace raid2::workload

#endif // RAID2_WORKLOAD_TRACE_HH
