#include "xbus/buffer_pool.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace raid2::xbus {

BufferPool::BufferPool(sim::EventQueue &eq_, std::string name,
                       std::uint64_t capacity_bytes)
    : eq(eq_), _name(std::move(name)), _capacity(capacity_bytes)
{
}

void
BufferPool::alloc(std::uint64_t bytes, std::function<void()> granted)
{
    if (bytes > _capacity)
        sim::fatal("BufferPool %s: request of %llu exceeds capacity %llu",
                   _name.c_str(), (unsigned long long)bytes,
                   (unsigned long long)_capacity);
    waitQueue.push_back(Waiter{bytes, std::move(granted)});
    drain();
}

void
BufferPool::free(std::uint64_t bytes)
{
    if (bytes > used)
        sim::panic("BufferPool %s: freeing %llu with only %llu in use",
                   _name.c_str(), (unsigned long long)bytes,
                   (unsigned long long)used);
    used -= bytes;
    drain();
}

void
BufferPool::drain()
{
    while (!waitQueue.empty() &&
           waitQueue.front().bytes <= _capacity - used) {
        Waiter w = std::move(waitQueue.front());
        waitQueue.pop_front();
        used += w.bytes;
        _peakUse = std::max(_peakUse, used);
        if (w.granted) {
            // Defer to an event so the caller never reenters itself.
            eq.scheduleIn(0, std::move(w.granted));
        }
    }
}

} // namespace raid2::xbus
