/**
 * @file
 * XBUS on-board memory allocator.
 *
 * The XBUS board carries 4 x 8 MB of DRAM (§2.2) used for "prefetch
 * buffers, pipelining buffers, HIPPI network buffers, and write
 * buffers for LFS segments" (§3.2).  The pool tracks allocation
 * against that capacity; requests that don't fit wait FIFO until
 * space frees, which is how a too-deep prefetch pipeline throttles
 * itself.
 */

#ifndef RAID2_XBUS_BUFFER_POOL_HH
#define RAID2_XBUS_BUFFER_POOL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace raid2::xbus {

/** FIFO byte-granular allocator over the board's DRAM capacity. */
class BufferPool
{
  public:
    BufferPool(sim::EventQueue &eq, std::string name,
               std::uint64_t capacity_bytes);

    /**
     * Request @p bytes; @p granted runs (possibly immediately) once
     * the reservation is made.  Requests are granted strictly FIFO to
     * avoid starvation of large buffers.
     */
    void alloc(std::uint64_t bytes, std::function<void()> granted);

    /** Return @p bytes to the pool, waking waiters in order. */
    void free(std::uint64_t bytes);

    std::uint64_t capacity() const { return _capacity; }
    std::uint64_t inUse() const { return used; }
    std::uint64_t available() const { return _capacity - used; }
    std::size_t waiters() const { return waitQueue.size(); }

    /** High-water mark of bytes in use. */
    std::uint64_t peakUse() const { return _peakUse; }

  private:
    struct Waiter
    {
        std::uint64_t bytes;
        std::function<void()> granted;
    };

    void drain();

    sim::EventQueue &eq;
    std::string _name;
    std::uint64_t _capacity;
    std::uint64_t used = 0;
    std::uint64_t _peakUse = 0;
    std::deque<Waiter> waitQueue;
};

} // namespace raid2::xbus

#endif // RAID2_XBUS_BUFFER_POOL_HH
