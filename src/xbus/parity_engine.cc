#include "xbus/parity_engine.hh"

namespace raid2::xbus {

ParityEngine::ParityEngine(sim::EventQueue &eq_, sim::Service &port_,
                           sim::Service &memory_)
    : eq(eq_), port(port_), memory(memory_)
{
}

void
ParityEngine::pass(std::uint64_t input_bytes, std::uint64_t output_bytes,
                   std::function<void()> done)
{
    const std::uint64_t total = input_bytes + output_bytes;
    ++_passes;
    _bytes += total;
    // Source blocks stream from memory through the engine's port; the
    // result streams back through the same port into memory.
    sim::Pipeline::start(eq, {sim::Stage(memory), sim::Stage(port)}, total,
                         cal::xbusChunkBytes, std::move(done));
}

} // namespace raid2::xbus
