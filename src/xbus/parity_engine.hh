/**
 * @file
 * XBUS parity computation engine (timing side).
 *
 * One of the eight XBUS ports is "a parity computation engine" (§2.2).
 * A parity pass streams source blocks out of XBUS memory through the
 * engine and streams the XOR result back, so it occupies both the
 * engine's port and the memory system for (inputs + output) bytes.
 * The functional XOR lives in raid/parity.hh; this class only models
 * time.
 */

#ifndef RAID2_XBUS_PARITY_ENGINE_HH
#define RAID2_XBUS_PARITY_ENGINE_HH

#include <cstdint>
#include <functional>

#include "config/calibration.hh"
#include "sim/service.hh"

namespace raid2::xbus {

/** Timed XOR engine attached to one XBUS port. */
class ParityEngine
{
  public:
    ParityEngine(sim::EventQueue &eq, sim::Service &port,
                 sim::Service &memory);

    /**
     * Run a parity pass over @p input_bytes of source data producing
     * @p output_bytes of parity; @p done fires at completion.
     */
    void pass(std::uint64_t input_bytes, std::uint64_t output_bytes,
              std::function<void()> done);

    std::uint64_t passes() const { return _passes; }
    std::uint64_t bytesProcessed() const { return _bytes; }

  private:
    sim::EventQueue &eq;
    sim::Service &port;
    sim::Service &memory;
    std::uint64_t _passes = 0;
    std::uint64_t _bytes = 0;
};

} // namespace raid2::xbus

#endif // RAID2_XBUS_PARITY_ENGINE_HH
