#include "xbus/xbus_board.hh"

#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::xbus {

XbusBoard::XbusBoard(sim::EventQueue &eq, std::string name)
    : _name(std::move(name)),
      _memory(eq, _name + ".mem",
              sim::Service::Config{cal::xbusMemModuleMBs, 0,
                                   cal::xbusMemModules}),
      _hippiSrc(eq, _name + ".hippis",
                sim::Service::Config{cal::hippiPortMBs, 0, 1}),
      _hippiDst(eq, _name + ".hippid",
                sim::Service::Config{cal::hippiPortMBs, 0, 1}),
      _parityPort(eq, _name + ".xor",
                  sim::Service::Config{cal::parityEngineMBs, 0, 1}),
      _hostLink(eq, _name + ".vmelink",
                sim::Service::Config{cal::controlLinkReadMBs, 0, 1}),
      _buffers(eq, _name + ".dram", cal::xbusMemBytes)
{
    for (unsigned i = 0; i < numVmePorts; ++i) {
        // Rate chosen per direction at submit time via Stage override.
        _vmePorts[i] = std::make_unique<sim::Service>(
            eq, _name + ".vme" + std::to_string(i),
            sim::Service::Config{cal::vmePortReadMBs, 0, 1});
    }
    _parity = std::make_unique<ParityEngine>(eq, _parityPort, _memory);
}

sim::Service &
XbusBoard::vmePort(unsigned idx)
{
    if (idx >= numVmePorts)
        sim::panic("XbusBoard %s: bad VME port index %u", _name.c_str(),
                   idx);
    return *_vmePorts[idx];
}

void
XbusBoard::injectPortError(unsigned vme_idx, sim::Tick stall)
{
    sim::Service &port = vmePort(vme_idx);
    ++_portErrors;
    _portErrorTicks += stall;
    port.submitBusyTime(stall, nullptr);
}

void
XbusBoard::registerStats(sim::StatsRegistry &reg,
                         const std::string &prefix) const
{
    _memory.registerStats(reg, prefix + ".memory");
    _hippiSrc.registerStats(reg, prefix + ".port.hippi_src");
    _hippiDst.registerStats(reg, prefix + ".port.hippi_dst");
    for (unsigned i = 0; i < numVmePorts; ++i)
        _vmePorts[i]->registerStats(
            reg, prefix + ".port.vme" + std::to_string(i));
    _parityPort.registerStats(reg, prefix + ".port.parity");
    _hostLink.registerStats(reg, prefix + ".host_link");
    reg.addGauge(prefix + ".parity.passes", [this] {
        return static_cast<double>(_parity->passes());
    });
    reg.addGauge(prefix + ".parity.bytes", [this] {
        return static_cast<double>(_parity->bytesProcessed());
    });
    reg.addGauge(prefix + ".dram.peak_use", [this] {
        return static_cast<double>(_buffers.peakUse());
    });
    reg.addGauge(prefix + ".dram.capacity", [this] {
        return static_cast<double>(_buffers.capacity());
    });
    reg.addGauge(prefix + ".port_errors", [this] {
        return static_cast<double>(_portErrors);
    });
    reg.addGauge(prefix + ".port_error_ms", [this] {
        return sim::ticksToMs(_portErrorTicks);
    });
}

std::vector<sim::Stage>
XbusBoard::diskToMemory(unsigned vme_idx)
{
    return {sim::Stage(vmePort(vme_idx), cal::vmePortReadMBs),
            sim::Stage(_memory)};
}

std::vector<sim::Stage>
XbusBoard::memoryToDisk(unsigned vme_idx)
{
    return {sim::Stage(_memory),
            sim::Stage(vmePort(vme_idx), cal::vmePortWriteMBs)};
}

} // namespace raid2::xbus
