/**
 * @file
 * The XBUS disk array controller board.
 *
 * §2.2/Fig 4: a 4x8 crossbar connects four interleaved 8 MB memory
 * modules to eight 40 MB/s ports: two HIPPI (source/destination), four
 * VME links to Cougar disk controllers, a parity engine, and the VME
 * control link to the host.  We model each port as a rate-limited
 * service stage and the memory system as four parallel servers
 * (aggregate 160 MB/s); a transfer's chunks occupy one port and one
 * memory server, which reproduces the crossbar's conflict structure
 * for the traffic patterns in the paper.
 */

#ifndef RAID2_XBUS_XBUS_BOARD_HH
#define RAID2_XBUS_XBUS_BOARD_HH

#include <array>
#include <memory>
#include <string>

#include "config/calibration.hh"
#include "sim/service.hh"
#include "xbus/buffer_pool.hh"
#include "xbus/parity_engine.hh"

namespace raid2::xbus {

/** One XBUS controller board. */
class XbusBoard
{
  public:
    static constexpr unsigned numVmePorts = 4;

    XbusBoard(sim::EventQueue &eq, std::string name);

    /** Board DRAM (four interleaved modules as parallel servers). */
    sim::Service &memory() { return _memory; }

    /** HIPPI source port (board -> network). */
    sim::Service &hippiSrcPort() { return _hippiSrc; }
    /** HIPPI destination port (network -> board). */
    sim::Service &hippiDstPort() { return _hippiDst; }

    /** VME link to Cougar controller @p idx (0..3). */
    sim::Service &vmePort(unsigned idx);

    /** Port feeding the parity engine. */
    sim::Service &parityPort() { return _parityPort; }

    /** VME control link to the host workstation (slow). */
    sim::Service &hostLink() { return _hostLink; }

    ParityEngine &parity() { return *_parity; }
    BufferPool &buffers() { return _buffers; }

    const std::string &name() const { return _name; }

    /** @{ Stage lists for common directions through a VME port. */
    std::vector<sim::Stage> diskToMemory(unsigned vme_idx);
    std::vector<sim::Stage> memoryToDisk(unsigned vme_idx);
    /** @} */

    /**
     * Fault-injection hook: a parity/handshake error on VME port
     * @p vme_idx costs @p stall ticks of retry before the port moves
     * data again.  Queued transfers ride it out.
     */
    void injectPortError(unsigned vme_idx, sim::Tick stall);

    std::uint64_t portErrors() const { return _portErrors; }
    sim::Tick portErrorTicks() const { return _portErrorTicks; }

    /** Register every port, the parity engine and the buffer pool
     *  under @p prefix ("<prefix>.port.hippi_src.bytes", ...). */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::string _name;
    sim::Service _memory;
    sim::Service _hippiSrc;
    sim::Service _hippiDst;
    std::array<std::unique_ptr<sim::Service>, numVmePorts> _vmePorts;
    sim::Service _parityPort;
    sim::Service _hostLink;
    BufferPool _buffers;
    std::unique_ptr<ParityEngine> _parity;
    std::uint64_t _portErrors = 0;
    sim::Tick _portErrorTicks = 0;
};

} // namespace raid2::xbus

#endif // RAID2_XBUS_XBUS_BOARD_HH
