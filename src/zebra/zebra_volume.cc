#include "zebra/zebra_volume.hh"

#include <algorithm>
#include <cstring>

#include "raid/parity.hh"
#include "sim/logging.hh"
#include "sim/stats_registry.hh"

namespace raid2::zebra {

ZebraVolume::ZebraVolume(sim::EventQueue &eq_,
                         std::vector<server::Raid2Server *> servers_,
                         const Config &cfg_)
    : eq(eq_), servers(std::move(servers_)), cfg(cfg_)
{
    if (servers.size() < 2)
        sim::fatal("ZebraVolume: need at least 2 servers");
    if (cfg.fragmentBytes == 0)
        sim::fatal("ZebraVolume: zero fragment size");
    for (auto *srv : servers) {
        if (!srv)
            sim::fatal("ZebraVolume: null server");
        fragIno.push_back(srv->createFile(cfg.fragmentPath));
    }
    failed.assign(servers.size(), false);
}

unsigned
ZebraVolume::parityServer(std::uint64_t stripe) const
{
    return static_cast<unsigned>(stripe % servers.size());
}

unsigned
ZebraVolume::dataServer(std::uint64_t stripe, unsigned k) const
{
    if (k >= numServers() - 1)
        sim::panic("ZebraVolume: fragment index %u out of range", k);
    const unsigned p = parityServer(stripe);
    return k < p ? k : k + 1;
}

void
ZebraVolume::emitStripe(std::function<void()> done_one)
{
    const unsigned n = numServers();
    const std::uint64_t frag = cfg.fragmentBytes;
    const std::uint64_t stripe = flushedStripes++;
    ++_stripesWritten;

    // Slice the data fragments off the pending buffer and compute the
    // parity fragment (the *client* computes parity in Zebra).
    std::vector<std::vector<std::uint8_t>> frags(n);
    std::vector<std::uint8_t> parity(frag, 0);
    for (unsigned k = 0; k < n - 1; ++k) {
        const std::uint8_t *src = pending.data() + std::uint64_t(k) * frag;
        frags[dataServer(stripe, k)].assign(src, src + frag);
        raid::xorInto(parity.data(), src, frag);
    }
    frags[parityServer(stripe)] = std::move(parity);
    _parityBytes += frag;
    pending.erase(pending.begin(),
                  pending.begin() +
                      static_cast<std::ptrdiff_t>(stripeDataBytes()));

    auto remaining = std::make_shared<unsigned>(0);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done_one));
    for (unsigned j = 0; j < n; ++j) {
        if (failed[j])
            continue; // the fragment is lost until rebuildServer()
        ++*remaining;
    }
    if (*remaining == 0) {
        eq.scheduleIn(0, [done_ptr] {
            if (*done_ptr)
                (*done_ptr)();
        });
        return;
    }
    for (unsigned j = 0; j < n; ++j) {
        if (failed[j])
            continue;
        servers[j]->fileWriteData(
            fragIno[j], stripe * frag,
            {frags[j].data(), frags[j].size()}, [remaining, done_ptr] {
                if (--*remaining == 0 && *done_ptr)
                    (*done_ptr)();
            });
    }
}

void
ZebraVolume::append(std::span<const std::uint8_t> data,
                    std::function<void()> done)
{
    pending.insert(pending.end(), data.begin(), data.end());
    logicalSize += data.size();

    const unsigned stripes = static_cast<unsigned>(
        pending.size() / stripeDataBytes());
    if (stripes == 0) {
        if (done)
            eq.scheduleIn(0, std::move(done));
        return;
    }
    // Recount properly: each emitStripe consumes one stripe of bytes.
    auto remaining = std::make_shared<unsigned>(stripes);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    for (unsigned i = 0; i < stripes; ++i) {
        emitStripe([remaining, done_ptr] {
            if (--*remaining == 0 && *done_ptr)
                (*done_ptr)();
        });
    }
}

void
ZebraVolume::flush(std::function<void()> done)
{
    if (pending.empty()) {
        if (done)
            eq.scheduleIn(0, std::move(done));
        return;
    }
    // Zero-pad to a full stripe; logical size is unchanged.
    pending.resize(stripeDataBytes(), 0);
    emitStripe(std::move(done));
}

void
ZebraVolume::readFragment(std::uint64_t stripe, unsigned k,
                          std::uint64_t off_in_frag,
                          std::span<std::uint8_t> out)
{
    const std::uint64_t frag = cfg.fragmentBytes;
    const unsigned srv = dataServer(stripe, k);
    const std::uint64_t file_off = stripe * frag + off_in_frag;

    if (!failed[srv]) {
        servers[srv]->fs().read(fragIno[srv], file_off, out);
        return;
    }

    // Degraded: XOR the same byte range of every other fragment of
    // the stripe (data and parity alike).
    ++_degradedReads;
    std::fill(out.begin(), out.end(), 0);
    std::vector<std::uint8_t> tmp(out.size());
    for (unsigned j = 0; j < numServers(); ++j) {
        if (j == srv)
            continue;
        if (failed[j])
            sim::fatal("ZebraVolume: two servers down (%u and %u)", srv,
                       j);
        servers[j]->fs().read(fragIno[j], file_off,
                              {tmp.data(), tmp.size()});
        raid::xorInto(out.data(), tmp.data(), out.size());
    }
}

void
ZebraVolume::read(std::uint64_t off, std::span<std::uint8_t> out,
                  std::function<void()> done)
{
    if (off + out.size() > logicalSize)
        sim::fatal("ZebraVolume: read beyond the log end");

    const std::uint64_t frag = cfg.fragmentBytes;
    const std::uint64_t sdb = stripeDataBytes();
    const std::uint64_t flushed_bytes = flushedStripes * sdb;

    auto remaining = std::make_shared<std::size_t>(1);
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [remaining, done_ptr] {
        if (--*remaining == 0 && *done_ptr)
            (*done_ptr)();
    };

    std::uint64_t pos = off;
    std::uint64_t left = out.size();
    while (left > 0) {
        std::uint8_t *dst = out.data() + (pos - off);
        if (pos >= flushed_bytes) {
            // Tail still in the client's own buffer: free functional
            // copy, no server I/O.
            const std::uint64_t take = left;
            std::memcpy(dst, pending.data() + (pos - flushed_bytes),
                        static_cast<std::size_t>(take));
            pos += take;
            left -= take;
            continue;
        }
        const std::uint64_t stripe = pos / sdb;
        const std::uint64_t in_stripe = pos % sdb;
        const unsigned k = static_cast<unsigned>(in_stripe / frag);
        const std::uint64_t in_frag = in_stripe % frag;
        const std::uint64_t take =
            std::min(left, frag - in_frag);

        readFragment(stripe, k, in_frag,
                     {dst, static_cast<std::size_t>(take)});

        // Timed transfer(s).
        const std::uint64_t file_off = stripe * frag + in_frag;
        const unsigned srv = dataServer(stripe, k);
        if (!failed[srv]) {
            ++*remaining;
            servers[srv]->fileRead(fragIno[srv], file_off, take, finish);
        } else {
            for (unsigned j = 0; j < numServers(); ++j) {
                if (j == srv)
                    continue;
                ++*remaining;
                servers[j]->fileRead(fragIno[j], file_off, take, finish);
            }
        }
        pos += take;
        left -= take;
    }
    finish(); // drop the guard
}

void
ZebraVolume::failServer(unsigned s)
{
    failed.at(s) = true;
}

void
ZebraVolume::restoreServer(unsigned s)
{
    failed.at(s) = false;
}

void
ZebraVolume::rebuildServer(unsigned s, std::function<void()> done)
{
    if (failed.at(s))
        sim::fatal("ZebraVolume: restoreServer(%u) before rebuild", s);

    const std::uint64_t frag = cfg.fragmentBytes;
    auto done_ptr =
        std::make_shared<std::function<void()>>(std::move(done));
    auto step = std::make_shared<std::function<void(std::uint64_t)>>();
    *step = [this, s, frag, done_ptr, step](std::uint64_t stripe) {
        if (stripe >= flushedStripes) {
            ++_rebuilds;
            if (*done_ptr)
                (*done_ptr)();
            return;
        }
        // Functional reconstruction: XOR every other fragment.
        std::vector<std::uint8_t> rebuilt(frag, 0);
        std::vector<std::uint8_t> tmp(frag);
        for (unsigned j = 0; j < numServers(); ++j) {
            if (j == s)
                continue;
            servers[j]->fs().read(fragIno[j], stripe * frag,
                                  {tmp.data(), tmp.size()});
            raid::xorInto(rebuilt.data(), tmp.data(), frag);
        }
        // Timed: read the survivors, write the rebuilt fragment.
        auto remaining =
            std::make_shared<unsigned>(numServers() - 1);
        auto cont = [this, s, stripe, frag, step,
                     rebuilt = std::move(rebuilt), remaining]() mutable {
            if (--*remaining > 0)
                return;
            servers[s]->fileWriteData(
                fragIno[s], stripe * frag,
                {rebuilt.data(), rebuilt.size()},
                [step, stripe] { (*step)(stripe + 1); });
        };
        for (unsigned j = 0; j < numServers(); ++j) {
            if (j == s)
                continue;
            servers[j]->fileRead(fragIno[j], stripe * frag, frag, cont);
        }
    };
    (*step)(0);
}

void
ZebraVolume::registerStats(sim::StatsRegistry &reg,
                           const std::string &prefix) const
{
    reg.addGauge(prefix + ".appended_bytes", [this] {
        return static_cast<double>(logicalSize);
    });
    reg.addGauge(prefix + ".stripes", [this] {
        return static_cast<double>(_stripesWritten);
    });
    reg.addGauge(prefix + ".degraded_reads", [this] {
        return static_cast<double>(_degradedReads);
    });
    reg.addGauge(prefix + ".rebuilds", [this] {
        return static_cast<double>(_rebuilds);
    });
    reg.addGauge(prefix + ".parity_bytes", [this] {
        return static_cast<double>(_parityBytes);
    });
}

} // namespace raid2::zebra
