/**
 * @file
 * Zebra: striping a client's log across multiple RAID-II servers.
 *
 * §5.2: "Zebra is a network file system designed to provide high-
 * bandwidth file access by striping files across multiple file
 * servers. ... Zebra incorporates ideas from both RAID and LFS: from
 * RAID, the ideas of combining many relatively low-performance devices
 * into a single high-performance logical device, and using parity to
 * survive device failures; and from LFS the concept of treating the
 * storage system as a log. ... the servers in Zebra perform very
 * simple operations, merely storing blocks of the logical log of files
 * without examining the content of the blocks."
 *
 * ZebraVolume implements exactly that client role: an append-only
 * logical log divided into stripes of (N-1) data fragments plus one
 * client-computed parity fragment, each fragment appended to a dumb
 * per-server fragment file over the servers' high-bandwidth path.
 * Parity rotates across servers; any single server loss is survived
 * (degraded reads reconstruct from the survivors, and a replacement
 * server's fragment file can be rebuilt on line).
 */

#ifndef RAID2_ZEBRA_ZEBRA_VOLUME_HH
#define RAID2_ZEBRA_ZEBRA_VOLUME_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "server/raid2_server.hh"

namespace raid2::zebra {

/** Client-side striped log over N RAID-II servers. */
class ZebraVolume
{
  public:
    struct Config
    {
        /** Per-server fragment size (the striping unit). */
        std::uint64_t fragmentBytes = 512 * 1024;
        /** Path of the dumb fragment file on each server. */
        std::string fragmentPath = "/zebra-frag";
    };

    ZebraVolume(sim::EventQueue &eq,
                std::vector<server::Raid2Server *> servers,
                const Config &cfg);

    /** @{ Geometry. */
    unsigned numServers() const
    {
        return static_cast<unsigned>(servers.size());
    }
    std::uint64_t fragmentBytes() const { return cfg.fragmentBytes; }
    /** Data bytes per stripe: (N-1) fragments. */
    std::uint64_t stripeDataBytes() const
    {
        return cfg.fragmentBytes * (numServers() - 1);
    }
    /** @} */

    /**
     * Append @p data to the logical log (Zebra clients batch all
     * writes into their log).  Full stripes are emitted to the
     * servers as they form; @p done fires when every stripe this call
     * emitted is stored (immediately if none).
     */
    void append(std::span<const std::uint8_t> data,
                std::function<void()> done);

    /** Force out the partial tail stripe (zero-padded). */
    void flush(std::function<void()> done);

    /** Logical bytes appended so far. */
    std::uint64_t size() const { return logicalSize; }

    /**
     * Read [off, off+len) of the log: functional bytes into @p out
     * (reconstructing via parity if a server is down), timed transfer
     * through each involved server's high-bandwidth read path.
     */
    void read(std::uint64_t off, std::span<std::uint8_t> out,
              std::function<void()> done);

    /** Mark a server unavailable (its fragments reconstruct). */
    void failServer(unsigned s);
    /** Bring a server back (after rebuildServer). */
    void restoreServer(unsigned s);
    bool isFailed(unsigned s) const { return failed.at(s); }

    /**
     * Rebuild a (restored but empty) server's fragment file from the
     * survivors: read every stripe's other fragments, XOR, store.
     */
    void rebuildServer(unsigned s, std::function<void()> done);

    /** @{ Statistics. */
    std::uint64_t stripesWritten() const { return _stripesWritten; }
    std::uint64_t bytesAppended() const { return logicalSize; }
    std::uint64_t degradedReads() const { return _degradedReads; }
    std::uint64_t rebuilds() const { return _rebuilds; }
    std::uint64_t parityBytesWritten() const { return _parityBytes; }

    /** Register "zebra.*": appended_bytes, stripes, degraded_reads,
     *  rebuilds, parity_bytes. */
    void registerStats(sim::StatsRegistry &reg,
                       const std::string &prefix = "zebra") const;
    /** @} */

    /** Which server holds parity for @p stripe. */
    unsigned parityServer(std::uint64_t stripe) const;
    /** Which server holds data fragment @p k of @p stripe. */
    unsigned dataServer(std::uint64_t stripe, unsigned k) const;

  private:
    /** Emit the (full) stripe at the head of the pending buffer. */
    void emitStripe(std::function<void()> done_one);

    /** Functional fragment fetch (degraded-aware). */
    void readFragment(std::uint64_t stripe, unsigned k,
                      std::uint64_t off_in_frag,
                      std::span<std::uint8_t> out);

    sim::EventQueue &eq;
    std::vector<server::Raid2Server *> servers;
    Config cfg;

    std::vector<lfs::InodeNum> fragIno; // per-server fragment file
    std::vector<bool> failed;

    std::vector<std::uint8_t> pending; // unflushed tail of the log
    std::uint64_t logicalSize = 0;     // total appended
    std::uint64_t flushedStripes = 0;

    std::uint64_t _stripesWritten = 0;
    std::uint64_t _degradedReads = 0;
    std::uint64_t _rebuilds = 0;
    std::uint64_t _parityBytes = 0;
};

} // namespace raid2::zebra

#endif // RAID2_ZEBRA_ZEBRA_VOLUME_HH
